"""Columnar pointset representation for the vectorized engine.

A :class:`PointArray` stores one pointset as three aligned numpy arrays
(``x``, ``y``, ``oid``) — the structure-of-arrays layout every batch
kernel in :mod:`repro.engine.kernels` operates on.  Conversion to and
from the object representation (:class:`~repro.geometry.point.Point`
lists) happens only at the engine boundary, so the hot path never touches
Python objects.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.geometry.point import Point


def _owned(data, dtype) -> np.ndarray:
    """A contiguous array of ``dtype`` that this module exclusively owns.

    Copies whenever coercion would hand back the caller's array (or a
    view into one): the columns are frozen read-only below, which must
    never leak into caller-owned storage, and caller mutations must
    never leak in.
    """
    arr = np.ascontiguousarray(data, dtype=dtype)
    if arr is data or arr.base is not None:
        arr = arr.copy()
    return arr


class PointArray:
    """An immutable columnar pointset.

    Parameters
    ----------
    x, y:
        Coordinate arrays (coerced to contiguous ``float64``).
    oid:
        Object-identifier array (coerced to ``int64``); generated
        sequentially from ``start_oid`` when omitted.
    """

    __slots__ = ("x", "y", "oid")

    def __init__(
        self,
        x: np.ndarray | Sequence[float],
        y: np.ndarray | Sequence[float],
        oid: np.ndarray | Sequence[int] | None = None,
        start_oid: int = 0,
    ):
        x_arr = _owned(x, np.float64)
        y_arr = _owned(y, np.float64)
        if x_arr.ndim != 1 or y_arr.ndim != 1:
            raise ValueError("coordinate arrays must be one-dimensional")
        if x_arr.shape != y_arr.shape:
            raise ValueError(
                f"coordinate arrays disagree: {x_arr.shape} vs {y_arr.shape}"
            )
        if oid is None:
            oid_arr = np.arange(start_oid, start_oid + len(x_arr), dtype=np.int64)
        else:
            oid_arr = _owned(oid, np.int64)
            if oid_arr.shape != x_arr.shape:
                raise ValueError(
                    f"oid array disagrees with coordinates: "
                    f"{oid_arr.shape} vs {x_arr.shape}"
                )
        object.__setattr__(self, "x", x_arr)
        object.__setattr__(self, "y", y_arr)
        object.__setattr__(self, "oid", oid_arr)
        for arr in (x_arr, y_arr, oid_arr):
            arr.setflags(write=False)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("PointArray is immutable")

    # ------------------------------------------------------------------
    # constructors / converters
    # ------------------------------------------------------------------
    @classmethod
    def from_points(cls, points: Iterable[Point]) -> "PointArray":
        """Build from a sequence of :class:`Point` objects."""
        pts = list(points)
        if not pts:
            return cls.empty()
        x = np.fromiter((p.x for p in pts), dtype=np.float64, count=len(pts))
        y = np.fromiter((p.y for p in pts), dtype=np.float64, count=len(pts))
        oid = np.fromiter((p.oid for p in pts), dtype=np.int64, count=len(pts))
        return cls(x, y, oid)

    @classmethod
    def from_coords(
        cls, coords: np.ndarray | Sequence[Sequence[float]], start_oid: int = 0
    ) -> "PointArray":
        """Build from an ``(n, 2)`` coordinate array with sequential oids."""
        arr = np.asarray(coords, dtype=np.float64)
        if arr.size == 0:
            return cls.empty()
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError(f"expected an (n, 2) coordinate array, got {arr.shape}")
        return cls(arr[:, 0], arr[:, 1], start_oid=start_oid)

    @classmethod
    def empty(cls) -> "PointArray":
        """The empty pointset."""
        return cls(np.empty(0), np.empty(0), np.empty(0, dtype=np.int64))

    @classmethod
    def _wrap(
        cls, x: np.ndarray, y: np.ndarray, oid: np.ndarray
    ) -> "PointArray":
        """Zero-copy constructor over caller-managed column storage.

        Used by :mod:`repro.parallel` to view columns living in shared
        memory without duplicating them per worker process.  The caller
        guarantees dtype (``float64``/``int64``), contiguity and aligned
        lengths; the views are frozen read-only here, which only affects
        this process's view objects, never the backing block.
        """
        arr = cls.__new__(cls)
        for name, col in (("x", x), ("y", y), ("oid", oid)):
            view = col.view()
            view.setflags(write=False)
            object.__setattr__(arr, name, view)
        return arr

    def to_points(self) -> list[Point]:
        """Materialise as a list of :class:`Point` objects."""
        return [
            Point(float(x), float(y), int(o))
            for x, y, o in zip(self.x, self.y, self.oid)
        ]

    def coords(self) -> np.ndarray:
        """The ``(n, 2)`` coordinate matrix (a fresh writable array)."""
        return np.column_stack((self.x, self.y))

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.x)

    def __iter__(self) -> Iterator[Point]:
        return iter(self.to_points())

    def __getitem__(self, i: int) -> Point:
        return Point(float(self.x[i]), float(self.y[i]), int(self.oid[i]))

    def __repr__(self) -> str:
        return f"PointArray(n={len(self)})"
