"""The unified join planner.

:func:`run_join` is the single entry point every caller (CLI, bench
harness, tests, applications) can dispatch through: it takes the two
pointsets, an algorithm name and an execution backend, runs the join and
returns the ordinary :class:`~repro.core.pairs.JoinReport` — so
accounting, evaluation and resemblance tooling work identically whether
the join ran on the paper's R-tree algorithms, the main-memory
comparators, or the vectorized array engine.

Algorithms and their backends:

================== ========== ==========================================
algorithm          backend    implementation
================== ========== ==========================================
``inj``            ``rtree``  :func:`repro.core.inj.inj`
``bij``            ``rtree``  :func:`repro.core.bij.bij`
``obj``            ``rtree``  :func:`repro.core.bij.bij` (symmetric)
``brute``          ``memory`` :func:`repro.core.brute.brute_force_rcj`
``gabriel``        ``memory`` :func:`repro.core.gabriel.gabriel_rcj`
``array``          ``memory`` :func:`array_rcj` (vectorized kernels)
``array-parallel`` ``memory`` :func:`array_parallel_rcj`
                              (sharded worker pool, :mod:`repro.parallel`)
``auto``           (planned)  cost-based choice among ``array-parallel``,
                              ``array`` and ``obj``
================== ========== ==========================================

``backend="auto"`` (the default) infers the backend from the algorithm;
passing an explicit backend that the algorithm cannot run on raises
``ValueError`` rather than silently substituting an implementation.

``algorithm="auto"`` (equivalently ``engine="auto"``) consults the
cost-based planner (:mod:`repro.parallel.costmodel`): dataset sizes, a
density sample and the memory budget pick the engine and worker count,
and the decision — an
:class:`~repro.parallel.costmodel.ExecutionPlan` — is attached to the
returned report as ``report.plan`` (the CLI's ``--explain``).

Beyond the bulk join, the planner fronts the other two workloads of the
paper's applications: :func:`run_topk` (ordered browsing — also
reachable as ``run_join(mode="topk", k=...)``) dispatches between the
streamed array enumeration and the R-tree incremental distance join,
and :func:`make_dynamic` builds an incremental-maintenance backend
(columnar or R*-tree) behind the shared
:class:`~repro.core.dynamic.DynamicBackend` protocol.  Memory-engine
executions record measured per-stage wall times on
``report.stage_seconds`` (and on ``report.plan.measured`` for planned
runs) for later cost-model calibration.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.core.bij import bij
from repro.core.brute import brute_candidate_count, brute_force_rcj
from repro.core.gabriel import gabriel_rcj
from repro.core.inj import inj
from repro.core.pairs import JoinReport, RCJPair
from repro.engine.arrays import PointArray
from repro.engine.kernels import rcj_pair_indices
from repro.geometry.point import Point
from repro.obs.trace import stage_totals
from repro.obs.trace import trace as obs_trace
from repro.storage.stats import CostModel

#: Every algorithm :func:`run_join` can dispatch.
ALGORITHM_NAMES = (
    "inj",
    "bij",
    "obj",
    "brute",
    "gabriel",
    "array",
    "array-parallel",
    "auto",
)

#: Backend implied by each algorithm.
_ALGORITHM_BACKEND = {
    "inj": "rtree",
    "bij": "rtree",
    "obj": "rtree",
    "brute": "memory",
    "gabriel": "memory",
    "array": "memory",
    "array-parallel": "memory",
}

#: ``engine=`` values accepted as an execution-strategy override of
#: ``algorithm`` (``"pointwise"`` keeps the algorithm as given).
ENGINE_NAMES = ("pointwise", "array", "array-parallel", "auto")


def array_rcj(
    points_p: Sequence[Point],
    points_q: Sequence[Point],
    exclude_same_oid: bool = False,
    k0: int = 16,
    stage_seconds: dict | None = None,
) -> tuple[list[RCJPair], int]:
    """Compute the RCJ with the vectorized array engine.

    Converts both pointsets to :class:`PointArray`, runs the batch
    kernels, and materialises result pairs over the *original*
    :class:`Point` objects (identity is preserved, not reconstructed).
    ``stage_seconds`` (when given) accumulates the measured
    candidate/prune/verify wall times.

    Returns ``(pairs, candidate_count)``.
    """
    parr = PointArray.from_points(points_p)
    qarr = PointArray.from_points(points_q)
    p_idx, q_idx, candidate_count = rcj_pair_indices(
        parr,
        qarr,
        k0=k0,
        exclude_same_oid=exclude_same_oid,
        stage_seconds=stage_seconds,
    )
    points_p = list(points_p)
    points_q = list(points_q)
    pairs = [
        RCJPair(points_p[pi], points_q[qi])
        for pi, qi in zip(p_idx.tolist(), q_idx.tolist())
    ]
    return pairs, candidate_count


def array_parallel_rcj(
    points_p: Sequence[Point],
    points_q: Sequence[Point],
    exclude_same_oid: bool = False,
    k0: int = 16,
    workers: int | None = None,
    min_shard: int | None = None,
    stage_seconds: dict | None = None,
    exec_info: dict | None = None,
) -> tuple[list[RCJPair], int]:
    """Compute the RCJ with the sharded multi-process engine.

    Same contract as :func:`array_rcj` — identical pair sets, original
    :class:`Point` identity preserved — with the probe pipeline fanned
    over a worker pool (:func:`repro.parallel.parallel_rcj_pair_indices`).
    ``workers=None`` uses all cores; small inputs fall back to the
    serial kernels in-process.  ``stage_seconds`` (when given)
    accumulates worker-measured per-stage times summed over shards;
    ``exec_info`` (when given) receives how the run actually executed
    (effective ``workers``, ``shards``, ``pooled``, ``bytes_shipped``).

    Returns ``(pairs, candidate_count)``.
    """
    # Imported lazily: repro.parallel builds on the engine's kernels.
    from repro.parallel.pool import parallel_rcj_pair_indices

    parr = PointArray.from_points(points_p)
    qarr = PointArray.from_points(points_q)
    kwargs = {} if min_shard is None else {"min_shard": min_shard}
    p_idx, q_idx, candidate_count = parallel_rcj_pair_indices(
        parr,
        qarr,
        workers=workers,
        k0=k0,
        exclude_same_oid=exclude_same_oid,
        stage_seconds=stage_seconds,
        exec_info=exec_info,
        **kwargs,
    )
    points_p = list(points_p)
    points_q = list(points_q)
    pairs = [
        RCJPair(points_p[pi], points_q[qi])
        for pi, qi in zip(p_idx.tolist(), q_idx.tolist())
    ]
    return pairs, candidate_count


def run_join(
    points_p: Sequence[Point],
    points_q: Sequence[Point],
    algorithm: str = "obj",
    backend: str = "auto",
    *,
    engine: str | None = None,
    family: str = "rcj",
    mode: str = "join",
    k: int | None = None,
    eps: float | None = None,
    workers: int | None = None,
    buffer_budget_bytes: int | None = None,
    exclude_same_oid: bool = False,
    buffer_fraction: float | None = None,
    cost_model: CostModel | None = None,
    workload=None,
    **algorithm_kwargs,
) -> JoinReport:
    """Run one RCJ algorithm end to end and return its report.

    Parameters
    ----------
    points_p, points_q:
        The inner and outer datasets (``points_q`` drives the probe
        loop of the R-tree algorithms, matching
        :func:`repro.ring_constrained_join`).
    algorithm:
        One of :data:`ALGORITHM_NAMES` (case-insensitive).
        ``"auto"`` defers the choice to the cost-based planner.
    backend:
        ``"auto"`` (infer), ``"rtree"`` (simulated-disk R-trees with
        full cost accounting) or ``"memory"`` (main-memory engines; the
        report carries measured CPU time but no I/O model).
    engine:
        Execution-strategy override of ``algorithm``: ``"array"``,
        ``"array-parallel"``, ``"auto"`` (cost-based planning) or
        ``"pointwise"`` (keep ``algorithm`` as given).  Mirrors the
        CLI's ``--engine`` flag.
    family:
        The join family (:data:`repro.engine.families.FAMILY_NAMES`).
        ``"rcj"`` (default) runs this planner's own algorithms; any
        other family dispatches to
        :func:`repro.engine.families.run_family_join` with the same
        engine selection — ε-joins need ``eps``, kNN and
        k-closest-pairs need ``k``.
    mode:
        ``"join"`` (the full result; default) or ``"topk"`` (the ``k``
        smallest-diameter pairs in ascending order — the CLI's
        ``--mode topk``); top-k requests delegate to :func:`run_topk`
        with the same engine selection.
    k:
        Result-size bound for ``mode="topk"`` (required there, ignored
        otherwise).
    workers:
        Worker-process budget for the parallel engine and the planner
        (``None`` = all cores; ignored by serial engines).
    buffer_budget_bytes:
        Memory budget consulted by ``"auto"`` planning (default
        :func:`repro.parallel.costmodel.memory_budget_bytes`).
    exclude_same_oid:
        Self-join mode — a point never pairs with itself.
    buffer_fraction:
        LRU buffer sizing for the R-tree backend (paper default 1 %).
    cost_model:
        I/O and CPU charging model for the R-tree backend.
    workload:
        Optional prebuilt :class:`repro.bench.runner.Workload` to reuse
        existing indexes (R-tree backend only); its counters are reset.
    algorithm_kwargs:
        Passed through to the underlying algorithm (e.g. ``verify``,
        ``search_order`` for INJ, ``k0`` for the array engine).
    """
    if family != "rcj":
        # Imported lazily: families builds on this planner.
        from repro.engine.families import run_family_join

        if mode != "join":
            raise ValueError(
                f"family={family!r} supports mode='join' only"
                " (k-closest-pairs IS the family's ordered mode)"
            )
        if algorithm != "obj" or backend != "auto":
            raise ValueError(
                "family joins take engine=..., not algorithm/backend"
            )
        if exclude_same_oid:
            raise ValueError(
                f"exclude_same_oid is not defined for family={family!r}"
            )
        return run_family_join(
            points_p,
            points_q,
            family,
            engine=engine,
            eps=eps,
            k=k,
            workers=workers,
            buffer_budget_bytes=buffer_budget_bytes,
            **algorithm_kwargs,
        )
    if eps is not None:
        raise ValueError("eps applies to family='epsilon' only")

    name = algorithm.lower()
    if engine is not None:
        if engine not in ENGINE_NAMES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {ENGINE_NAMES}"
            )
        if engine != "pointwise":
            name = engine

    if mode not in ("join", "topk"):
        raise ValueError(f"unknown mode {mode!r}; expected 'join' or 'topk'")
    if mode == "topk":
        if k is None:
            raise ValueError("mode='topk' requires k")
        return run_topk(
            points_p,
            points_q,
            k,
            engine=name,
            exclude_same_oid=exclude_same_oid,
            workers=workers,
            buffer_budget_bytes=buffer_budget_bytes,
            workload=workload,
            **algorithm_kwargs,
        )

    plan = None
    if name == "auto":
        if backend != "auto":
            raise ValueError(
                "engine='auto' plans its own backend; "
                f"cannot force backend={backend!r}"
            )
        # Imported lazily: repro.parallel builds on the engine package.
        from repro.parallel.costmodel import choose_plan

        plan = choose_plan(
            points_p,
            points_q,
            workers=workers,
            budget_bytes=buffer_budget_bytes,
        )
        name = plan.engine
        workers = plan.workers
        if name == "obj":
            # Array-engine tuning hints are meaningless on the planned
            # R-tree path; under auto they are hints, not commands, so
            # they are dropped rather than crashing the fallback.
            for hint in ("k0", "min_shard"):
                algorithm_kwargs.pop(hint, None)

    if name not in _ALGORITHM_BACKEND:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; expected one of {ALGORITHM_NAMES}"
        )
    implied = _ALGORITHM_BACKEND[name]
    if backend == "auto":
        backend = implied
    if backend != implied:
        raise ValueError(
            f"algorithm {name!r} runs on the {implied!r} backend, not {backend!r}"
        )

    if backend == "rtree":
        # Imported lazily: repro.bench.runner dispatches back into this
        # planner for the array engine.
        from repro.bench.runner import DEFAULT_BUFFER_FRACTION, build_workload

        if workload is None:
            workload = build_workload(
                points_q,
                points_p,
                buffer_fraction=(
                    DEFAULT_BUFFER_FRACTION
                    if buffer_fraction is None
                    else buffer_fraction
                ),
            )
        else:
            workload.reset()
        common = dict(
            exclude_same_oid=exclude_same_oid,
            cost_model=cost_model,
            **algorithm_kwargs,
        )
        with obs_trace(
            "join",
            engine=name,
            backend="rtree",
            n_p=len(points_p),
            n_q=len(points_q),
        ) as root:
            if name == "inj":
                report = inj(workload.tree_q, workload.tree_p, **common)
            elif name == "bij":
                report = bij(
                    workload.tree_q, workload.tree_p, symmetric=False, **common
                )
            else:
                report = bij(
                    workload.tree_q, workload.tree_p, symmetric=True, **common
                )
        if root is not None:
            root.add("node-accesses", report.node_accesses)
            root.add("page-faults", report.page_faults)
            root.add("buffer-hits", report.buffer_hits)
            root.add("candidates", report.candidate_count)
            root.add("pairs", len(report.pairs))
        report.trace = root
        report.workers_used = 1
        report.plan = plan
        _record_observation(plan, report, "join")
        return report

    # -- main-memory backends ------------------------------------------
    report = JoinReport(name.upper())
    report.plan = plan
    stages: dict = {}
    exec_info: dict = {}
    t0 = time.perf_counter()
    with obs_trace(
        "join", engine=name, n_p=len(points_p), n_q=len(points_q)
    ) as root:
        if name == "brute":
            report.pairs = brute_force_rcj(
                points_p, points_q, exclude_same_oid=exclude_same_oid
            )
            report.candidate_count = brute_candidate_count(
                len(points_p), len(points_q)
            )
        elif name == "gabriel":
            report.pairs = gabriel_rcj(
                points_p, points_q, exclude_same_oid=exclude_same_oid
            )
            report.candidate_count = len(report.pairs)
        elif name == "array-parallel":
            report.pairs, report.candidate_count = array_parallel_rcj(
                points_p,
                points_q,
                exclude_same_oid=exclude_same_oid,
                workers=workers,
                stage_seconds=stages,
                exec_info=exec_info,
                **algorithm_kwargs,
            )
        else:  # array
            report.pairs, report.candidate_count = array_rcj(
                points_p,
                points_q,
                exclude_same_oid=exclude_same_oid,
                stage_seconds=stages,
                **algorithm_kwargs,
            )
    report.cpu_seconds = time.perf_counter() - t0
    report.workers_used = exec_info.get("workers", 1)
    if root is not None:
        root.set(workers=report.workers_used)
        root.add("pairs", len(report.pairs))
    _attach_measurements(report, stages, root)
    _record_observation(plan, report, "join")
    return report


def _attach_measurements(
    report: JoinReport, stages: dict, root=None
) -> None:
    """Record measured per-stage wall times on the report (and, for
    planned runs, on the plan itself — estimates next to measurements
    is what later cost-model calibration consumes).

    With a trace ``root``, the stage times come from the trace tree
    (:func:`repro.obs.trace.stage_totals`) — the accumulator dict and
    the tree measure the same instants, but deriving from the tree
    keeps ``report.stage_seconds``, ``report.plan.measured`` and the
    calibration observation sum-consistent with the exported trace by
    construction.  The trace itself rides on ``report.trace``.
    """
    report.trace = root
    if root is not None:
        totals = stage_totals(root)
        if totals:
            stages = totals
    if not stages:
        return
    report.stage_seconds = dict(stages)
    if report.plan is not None:
        report.plan = report.plan.with_measured(stages)


def _record_observation(
    plan, report, kind: str, family: str | None = None
) -> None:
    """Feed one planned execution to the calibration observation log.

    Only ``engine="auto"`` runs are recorded (they carry the estimates
    a fit needs).  Nothing here may fail the join: the whole hook is
    exception-fenced, and :mod:`repro.calibration` is imported lazily
    so a broken or disabled calibration store degrades to a no-op.
    """
    if plan is None:
        return
    try:
        from repro.calibration.observations import record_planned_run

        record_planned_run(plan, report, kind, family=family)
    except Exception:
        pass


#: ``engine=`` values :func:`run_topk` accepts.  ``"pointwise"`` and
#: ``"obj"`` are the lazy R-tree route; ``"array-parallel"`` coerces to
#: the (serial) streamed array route — the stream's bands are too small
#: to amortize a process pool.
TOPK_ENGINE_NAMES = ("auto", "array", "array-parallel", "obj", "pointwise")


def run_topk(
    points_p: Sequence[Point],
    points_q: Sequence[Point],
    k: int,
    engine: str = "auto",
    *,
    exclude_same_oid: bool = False,
    workers: int | None = None,
    buffer_budget_bytes: int | None = None,
    workload=None,
) -> JoinReport:
    """The ``k`` smallest-diameter RCJ pairs, through the planner.

    The ordered-browsing entry point (the paper's tourist
    recommendation): returns a :class:`JoinReport` whose ``pairs`` are
    the first ``k`` entries of the canonically sorted join result
    (ascending ring diameter, ties by ``(p.oid, q.oid)``), computed
    lazily — neither route materialises the full join for small ``k``.

    Engines
    -------
    ``"array"``
        The streamed columnar enumerator
        (:func:`repro.engine.streaming.stream_pairs_by_diameter`):
        expanding-radius candidate bands with a resume cursor, Ψ−
        pruning, batch ring verification.
    ``"obj"`` / ``"pointwise"``
        The R-tree incremental distance join
        (:func:`repro.core.topk.top_k_rcj`) — work proportional to the
        answer's neighbourhood; reuses ``workload``'s indexes when
        given.  Note the heap's tie order is arrival order, so on
        datasets with exactly tied pair distances the tail of a tied
        run may differ from the canonical order (the array route sorts
        ties canonically).
    ``"auto"``
        :func:`repro.parallel.costmodel.choose_topk_plan` picks from
        ``k``, the sizes and the density sample; the decision rides on
        ``report.plan``.
    """
    from repro.engine.streaming import topk_array

    if engine not in TOPK_ENGINE_NAMES:
        raise ValueError(
            f"unknown top-k engine {engine!r}; "
            f"expected one of {TOPK_ENGINE_NAMES}"
        )
    name = {"pointwise": "obj", "array-parallel": "array"}.get(engine, engine)

    plan = None
    if name == "auto":
        from repro.parallel.costmodel import choose_topk_plan

        plan = choose_topk_plan(
            points_p,
            points_q,
            k,
            workers=workers,
            budget_bytes=buffer_budget_bytes,
            trees_prebuilt=workload is not None,
        )
        name = plan.engine

    report = JoinReport(f"TOPK-{name.upper()}")
    report.plan = plan
    stages: dict = {}
    t0 = time.perf_counter()
    with obs_trace(
        "topk", engine=name, k=k, n_p=len(points_p), n_q=len(points_q)
    ) as root:
        if name == "array":
            report.pairs, report.candidate_count = topk_array(
                points_p,
                points_q,
                k,
                exclude_same_oid=exclude_same_oid,
                stage_seconds=stages,
            )
        else:  # obj: the R-tree incremental route
            from repro.bench.runner import build_workload
            from repro.core.topk import top_k_rcj

            if workload is None:
                workload = build_workload(points_q, points_p)
            else:
                workload.reset()
            report.pairs = top_k_rcj(
                workload.tree_p,
                workload.tree_q,
                k,
                exclude_same_oid=exclude_same_oid,
            )
            report.candidate_count = len(report.pairs)
            report.node_accesses = (
                workload.tree_p.node_accesses + workload.tree_q.node_accesses
            )
            report.page_faults = workload.buffer.stats.page_faults
            report.buffer_hits = workload.buffer.stats.buffer_hits
    report.cpu_seconds = time.perf_counter() - t0
    report.workers_used = 1
    if root is not None:
        root.add("pairs", len(report.pairs))
        if name != "array":
            root.add("node-accesses", report.node_accesses)
            root.add("page-faults", report.page_faults)
    _attach_measurements(report, stages, root)
    _record_observation(plan, report, "topk")
    return report


def make_dynamic(
    points_p: Sequence[Point] = (),
    points_q: Sequence[Point] = (),
    backend: str = "auto",
    *,
    batch_size: int = 1,
    **backend_kwargs,
):
    """Build a dynamic RCJ maintainer behind the shared protocol.

    Returns a :class:`repro.core.dynamic.DynamicBackend`: the columnar
    :class:`repro.engine.streaming.DynamicArrayRCJ` (``"array"``), the
    R*-tree :class:`repro.core.dynamic.DynamicRCJ` (``"obj"``), or the
    cost model's choice (``"auto"`` —
    :func:`repro.parallel.costmodel.choose_dynamic_backend`: columnar
    while the resident working set fits the memory budget, disk-backed
    beyond it, and — once ``kind="dynamic"`` calibration observations
    exist for both backends — whichever the fitted profile predicts
    faster per batch).  Both backends maintain identical pair sets, so
    the choice is purely an execution-cost decision.

    ``batch_size`` is the expected ``apply_batch`` size of the
    deployment (it parameterizes the profile prediction; it does not
    constrain usage).  Planned (``"auto"``) instances record their
    batches to the calibration log, which is what makes the next
    planning decision profile-aware.

    ``backend_kwargs`` pass through to the chosen class (``bounds``
    for either; ``page_size`` for the R*-tree backend).
    """
    from repro.engine.streaming import DynamicArrayRCJ

    planned = backend == "auto"
    if planned:
        from repro.parallel.costmodel import choose_dynamic_backend

        backend, _reason = choose_dynamic_backend(
            len(points_p), len(points_q), batch_size
        )
    if backend == "array":
        dyn = DynamicArrayRCJ(points_p, points_q, **backend_kwargs)
    elif backend == "obj":
        from repro.core.dynamic import DynamicRCJ

        dyn = DynamicRCJ(points_p, points_q, **backend_kwargs)
    else:
        raise ValueError(
            f"unknown dynamic backend {backend!r}; "
            "expected 'auto', 'array' or 'obj'"
        )
    if planned:
        dyn.record_calibration = True
    return dyn
