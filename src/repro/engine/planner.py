"""The unified join planner.

:func:`run_join` is the single entry point every caller (CLI, bench
harness, tests, applications) can dispatch through: it takes the two
pointsets, an algorithm name and an execution backend, runs the join and
returns the ordinary :class:`~repro.core.pairs.JoinReport` — so
accounting, evaluation and resemblance tooling work identically whether
the join ran on the paper's R-tree algorithms, the main-memory
comparators, or the vectorized array engine.

Algorithms and their backends:

================== ========== ==========================================
algorithm          backend    implementation
================== ========== ==========================================
``inj``            ``rtree``  :func:`repro.core.inj.inj`
``bij``            ``rtree``  :func:`repro.core.bij.bij`
``obj``            ``rtree``  :func:`repro.core.bij.bij` (symmetric)
``brute``          ``memory`` :func:`repro.core.brute.brute_force_rcj`
``gabriel``        ``memory`` :func:`repro.core.gabriel.gabriel_rcj`
``array``          ``memory`` :func:`array_rcj` (vectorized kernels)
``array-parallel`` ``memory`` :func:`array_parallel_rcj`
                              (sharded worker pool, :mod:`repro.parallel`)
``auto``           (planned)  cost-based choice among ``array-parallel``,
                              ``array`` and ``obj``
================== ========== ==========================================

``backend="auto"`` (the default) infers the backend from the algorithm;
passing an explicit backend that the algorithm cannot run on raises
``ValueError`` rather than silently substituting an implementation.

``algorithm="auto"`` (equivalently ``engine="auto"``) consults the
cost-based planner (:mod:`repro.parallel.costmodel`): dataset sizes, a
density sample and the memory budget pick the engine and worker count,
and the decision — an
:class:`~repro.parallel.costmodel.ExecutionPlan` — is attached to the
returned report as ``report.plan`` (the CLI's ``--explain``).
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.core.bij import bij
from repro.core.brute import brute_candidate_count, brute_force_rcj
from repro.core.gabriel import gabriel_rcj
from repro.core.inj import inj
from repro.core.pairs import JoinReport, RCJPair
from repro.engine.arrays import PointArray
from repro.engine.kernels import rcj_pair_indices
from repro.geometry.point import Point
from repro.storage.stats import CostModel

#: Every algorithm :func:`run_join` can dispatch.
ALGORITHM_NAMES = (
    "inj",
    "bij",
    "obj",
    "brute",
    "gabriel",
    "array",
    "array-parallel",
    "auto",
)

#: Backend implied by each algorithm.
_ALGORITHM_BACKEND = {
    "inj": "rtree",
    "bij": "rtree",
    "obj": "rtree",
    "brute": "memory",
    "gabriel": "memory",
    "array": "memory",
    "array-parallel": "memory",
}

#: ``engine=`` values accepted as an execution-strategy override of
#: ``algorithm`` (``"pointwise"`` keeps the algorithm as given).
ENGINE_NAMES = ("pointwise", "array", "array-parallel", "auto")


def array_rcj(
    points_p: Sequence[Point],
    points_q: Sequence[Point],
    exclude_same_oid: bool = False,
    k0: int = 16,
) -> tuple[list[RCJPair], int]:
    """Compute the RCJ with the vectorized array engine.

    Converts both pointsets to :class:`PointArray`, runs the batch
    kernels, and materialises result pairs over the *original*
    :class:`Point` objects (identity is preserved, not reconstructed).

    Returns ``(pairs, candidate_count)``.
    """
    parr = PointArray.from_points(points_p)
    qarr = PointArray.from_points(points_q)
    p_idx, q_idx, candidate_count = rcj_pair_indices(
        parr, qarr, k0=k0, exclude_same_oid=exclude_same_oid
    )
    points_p = list(points_p)
    points_q = list(points_q)
    pairs = [
        RCJPair(points_p[pi], points_q[qi])
        for pi, qi in zip(p_idx.tolist(), q_idx.tolist())
    ]
    return pairs, candidate_count


def array_parallel_rcj(
    points_p: Sequence[Point],
    points_q: Sequence[Point],
    exclude_same_oid: bool = False,
    k0: int = 16,
    workers: int | None = None,
    min_shard: int | None = None,
) -> tuple[list[RCJPair], int]:
    """Compute the RCJ with the sharded multi-process engine.

    Same contract as :func:`array_rcj` — identical pair sets, original
    :class:`Point` identity preserved — with the probe pipeline fanned
    over a worker pool (:func:`repro.parallel.parallel_rcj_pair_indices`).
    ``workers=None`` uses all cores; small inputs fall back to the
    serial kernels in-process.

    Returns ``(pairs, candidate_count)``.
    """
    # Imported lazily: repro.parallel builds on the engine's kernels.
    from repro.parallel.pool import parallel_rcj_pair_indices

    parr = PointArray.from_points(points_p)
    qarr = PointArray.from_points(points_q)
    kwargs = {} if min_shard is None else {"min_shard": min_shard}
    p_idx, q_idx, candidate_count = parallel_rcj_pair_indices(
        parr,
        qarr,
        workers=workers,
        k0=k0,
        exclude_same_oid=exclude_same_oid,
        **kwargs,
    )
    points_p = list(points_p)
    points_q = list(points_q)
    pairs = [
        RCJPair(points_p[pi], points_q[qi])
        for pi, qi in zip(p_idx.tolist(), q_idx.tolist())
    ]
    return pairs, candidate_count


def run_join(
    points_p: Sequence[Point],
    points_q: Sequence[Point],
    algorithm: str = "obj",
    backend: str = "auto",
    *,
    engine: str | None = None,
    workers: int | None = None,
    buffer_budget_bytes: int | None = None,
    exclude_same_oid: bool = False,
    buffer_fraction: float | None = None,
    cost_model: CostModel | None = None,
    workload=None,
    **algorithm_kwargs,
) -> JoinReport:
    """Run one RCJ algorithm end to end and return its report.

    Parameters
    ----------
    points_p, points_q:
        The inner and outer datasets (``points_q`` drives the probe
        loop of the R-tree algorithms, matching
        :func:`repro.ring_constrained_join`).
    algorithm:
        One of :data:`ALGORITHM_NAMES` (case-insensitive).
        ``"auto"`` defers the choice to the cost-based planner.
    backend:
        ``"auto"`` (infer), ``"rtree"`` (simulated-disk R-trees with
        full cost accounting) or ``"memory"`` (main-memory engines; the
        report carries measured CPU time but no I/O model).
    engine:
        Execution-strategy override of ``algorithm``: ``"array"``,
        ``"array-parallel"``, ``"auto"`` (cost-based planning) or
        ``"pointwise"`` (keep ``algorithm`` as given).  Mirrors the
        CLI's ``--engine`` flag.
    workers:
        Worker-process budget for the parallel engine and the planner
        (``None`` = all cores; ignored by serial engines).
    buffer_budget_bytes:
        Memory budget consulted by ``"auto"`` planning (default
        :func:`repro.parallel.costmodel.memory_budget_bytes`).
    exclude_same_oid:
        Self-join mode — a point never pairs with itself.
    buffer_fraction:
        LRU buffer sizing for the R-tree backend (paper default 1 %).
    cost_model:
        I/O and CPU charging model for the R-tree backend.
    workload:
        Optional prebuilt :class:`repro.bench.runner.Workload` to reuse
        existing indexes (R-tree backend only); its counters are reset.
    algorithm_kwargs:
        Passed through to the underlying algorithm (e.g. ``verify``,
        ``search_order`` for INJ, ``k0`` for the array engine).
    """
    name = algorithm.lower()
    if engine is not None:
        if engine not in ENGINE_NAMES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {ENGINE_NAMES}"
            )
        if engine != "pointwise":
            name = engine

    plan = None
    if name == "auto":
        if backend != "auto":
            raise ValueError(
                "engine='auto' plans its own backend; "
                f"cannot force backend={backend!r}"
            )
        # Imported lazily: repro.parallel builds on the engine package.
        from repro.parallel.costmodel import choose_plan

        plan = choose_plan(
            points_p,
            points_q,
            workers=workers,
            budget_bytes=buffer_budget_bytes,
        )
        name = plan.engine
        workers = plan.workers
        if name == "obj":
            # Array-engine tuning hints are meaningless on the planned
            # R-tree path; under auto they are hints, not commands, so
            # they are dropped rather than crashing the fallback.
            for hint in ("k0", "min_shard"):
                algorithm_kwargs.pop(hint, None)

    if name not in _ALGORITHM_BACKEND:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; expected one of {ALGORITHM_NAMES}"
        )
    implied = _ALGORITHM_BACKEND[name]
    if backend == "auto":
        backend = implied
    if backend != implied:
        raise ValueError(
            f"algorithm {name!r} runs on the {implied!r} backend, not {backend!r}"
        )

    if backend == "rtree":
        # Imported lazily: repro.bench.runner dispatches back into this
        # planner for the array engine.
        from repro.bench.runner import DEFAULT_BUFFER_FRACTION, build_workload

        if workload is None:
            workload = build_workload(
                points_q,
                points_p,
                buffer_fraction=(
                    DEFAULT_BUFFER_FRACTION
                    if buffer_fraction is None
                    else buffer_fraction
                ),
            )
        else:
            workload.reset()
        common = dict(
            exclude_same_oid=exclude_same_oid,
            cost_model=cost_model,
            **algorithm_kwargs,
        )
        if name == "inj":
            report = inj(workload.tree_q, workload.tree_p, **common)
        elif name == "bij":
            report = bij(
                workload.tree_q, workload.tree_p, symmetric=False, **common
            )
        else:
            report = bij(
                workload.tree_q, workload.tree_p, symmetric=True, **common
            )
        report.plan = plan
        return report

    # -- main-memory backends ------------------------------------------
    report = JoinReport(name.upper())
    report.plan = plan
    t0 = time.perf_counter()
    if name == "brute":
        report.pairs = brute_force_rcj(
            points_p, points_q, exclude_same_oid=exclude_same_oid
        )
        report.candidate_count = brute_candidate_count(
            len(points_p), len(points_q)
        )
    elif name == "gabriel":
        report.pairs = gabriel_rcj(
            points_p, points_q, exclude_same_oid=exclude_same_oid
        )
        report.candidate_count = len(report.pairs)
    elif name == "array-parallel":
        report.pairs, report.candidate_count = array_parallel_rcj(
            points_p,
            points_q,
            exclude_same_oid=exclude_same_oid,
            workers=workers,
            **algorithm_kwargs,
        )
    else:  # array
        report.pairs, report.candidate_count = array_rcj(
            points_p,
            points_q,
            exclude_same_oid=exclude_same_oid,
            **algorithm_kwargs,
        )
    report.cpu_seconds = time.perf_counter() - t0
    return report
