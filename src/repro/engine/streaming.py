"""Columnar streaming layer: ordered browsing and dynamic RCJ over
:class:`~repro.engine.arrays.PointArray`.

The paper's two headline applications beyond the one-shot join are
*ordered browsing* of RCJ results (top-k by ring diameter) and
*decision support over changing data* (insertions and deletions).  This
module gives both an array-engine execution path so they dispatch
through the unified planner like the bulk join does:

:func:`stream_pairs_by_diameter`
    A lazy generator of **verified** RCJ pairs in ascending
    ring-diameter order.  Candidates are enumerated in blocked radius
    bands — one KD-tree ball query per probe block, with a *resume
    cursor* on the squared pair distance so each band picks up exactly
    where the previous one stopped — then Ψ−-pruned against each
    probe's nearest neighbours and batch-verified against the union
    KD-tree (:func:`~repro.engine.kernels.verify_rings_batch`).  All
    pairs of a band are sorted before emission and every pair with a
    smaller distance lives in the current or an earlier band, so the
    output order is globally correct without materializing the join.
    When a band would enumerate more candidates than the full
    vectorized join costs, the stream falls back to the full pipeline
    (Ψ−-prune, cone-cover certificates, Delaunay backstop and all) and
    emits the sorted tail — enumeration by radius is a small-k tool,
    and the fallback caps its worst case near one bulk join.

:class:`DynamicArrayRCJ`
    The columnar twin of :class:`repro.core.dynamic.DynamicRCJ`: the
    same insert/delete contract (the shared
    :class:`~repro.core.dynamic.DynamicBackend` protocol), with
    kill-sets computed by one vectorized evaluation of the exact ring
    predicate over endpoint columns (:class:`_RingColumns`, the
    columnar twin of the pair-circle grid), insertion partners from the
    batch candidate kernels, and all verification through
    :func:`~repro.engine.kernels.verify_rings_batch`.

Exactness
---------
Both paths keep the engine's contract: *filter conservative, verify
exact*.  The streamed candidates are a superset of the true pairs per
band (a ball query can only over-enumerate), Ψ− pruning evaluates the
oracle's own blocker predicate, and every emitted pair passed the exact
batch ring verification against the full union — so the stream's k-pair
prefix equals the first k entries of the sorted bulk-join result, and
the dynamic backend's state equals the from-scratch join after every
update.  Ordering uses the *squared* pair distance ``dx*dx + dy*dy``
(the same IEEE expression the R-tree distance-join heap orders by), so
the two top-k routes agree bit-for-bit about which pair is smaller;
ties are broken canonically by ``(p.oid, q.oid)``.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.core.dynamic import Side
from repro.core.pairs import RCJPair
from repro.engine.arrays import PointArray
from repro.engine.kernels import (
    halfplane_prune_pairs,
    knn_candidate_blocks,
    rcj_pair_indices,
    stage_timer,
    verify_rings_batch,
)
from repro.geometry.point import Point
from repro.geometry.polygon import box_polygon, clip_halfplane
from repro.geometry.rect import Rect
from repro.obs.trace import add_counter, set_attr

#: Probe points per ball-query block of the band enumerator.
_STREAM_Q_BLOCK = 8192

#: Ψ− pruners per candidate in the streamed bands (the probe's nearest
#: ``P`` neighbours).
_STREAM_PRUNERS = 8

#: Growth factor of the expanding radius.
_RADIUS_GROWTH = 2.0

#: When the pairs enumerated by the next band would exceed this many
#: beyond what previous bands already covered, enumeration-by-radius
#: has lost to the full vectorized join: fall back to it for the tail.
_FALLBACK_BAND_PAIRS = 262_144

#: Relative inflation of the ball-query radius; band membership is
#: decided by the exact squared-distance cursor, the query only has to
#: never *miss* a band member to rounding.
_BAND_INFLATION = 1e-9


def pair_order_key(pair: RCJPair) -> tuple[float, int, int]:
    """The canonical ascending-diameter sort key of a result pair.

    ``dx*dx + dy*dy`` is the exact expression both the R-tree
    distance-join heap and the streamed bands order by (squared
    distance is monotone in diameter, with no square root to round),
    and ``(p.oid, q.oid)`` breaks exact ties deterministically.  Every
    top-k route sorts by this one key, which is what makes their
    prefixes comparable byte for byte.
    """
    dx = pair.p.x - pair.q.x
    dy = pair.p.y - pair.q.y
    return (dx * dx + dy * dy, pair.p.oid, pair.q.oid)


def sort_pairs_by_diameter(pairs: list[RCJPair]) -> list[RCJPair]:
    """Result pairs in canonical ascending-diameter order."""
    return sorted(pairs, key=pair_order_key)


# ----------------------------------------------------------------------
# streamed ordered enumeration (top-k)
# ----------------------------------------------------------------------

def _flatten_ball_lists(lists, count: int) -> tuple[np.ndarray, np.ndarray]:
    """CSR-flatten ``query_ball_point`` output: ``(flat, counts)``."""
    counts = np.fromiter((len(lst) for lst in lists), np.int64, count=count)
    total = int(counts.sum())
    flat = np.empty(total, dtype=np.int64)
    pos = 0
    for lst in lists:
        n = len(lst)
        if n:
            flat[pos : pos + n] = lst
            pos += n
    return flat, counts


def stream_pairs_by_diameter(
    parr: PointArray,
    qarr: PointArray,
    k_hint: int = 1,
    exclude_same_oid: bool = False,
    stage_seconds: dict | None = None,
    counters: dict | None = None,
):
    """Yield verified ``(d_sq, p_index, q_index)`` in ascending order.

    ``k_hint`` sizes the first radius band (the distance within which at
    least ``min(k_hint, |Q|)`` candidate pairs are guaranteed); the
    stream itself is unbounded — consume as much of it as needed and
    drop it.  ``counters`` (when given) accumulates ``"candidates"``,
    the number of pairs that entered batch verification, and
    ``"bands"`` / ``"fallback"`` describing how the enumeration went.
    """
    n_p, n_q = len(parr), len(qarr)
    if n_p == 0 or n_q == 0:
        return
    if counters is None:
        counters = {}

    with stage_timer(stage_seconds, "candidate"):
        tree_p = cKDTree(parr.coords())
        tree_q = cKDTree(qarr.coords())
        # First band: the min(k, |Q|)-th smallest 1-NN distance — at
        # least that many candidate pairs land inside it.
        d1, _ = tree_p.query(qarr.coords(), k=1)
        take = min(max(k_hint, 1), n_q) - 1
        r = float(np.partition(d1, take)[take])
    scale = 1.0
    for arr in (parr.x, parr.y, qarr.x, qarr.y):
        if len(arr):
            scale = max(scale, float(np.abs(arr).max()))
    if r <= 0.0:
        r = 1e-9 * scale  # duplicate-riddled probes: start tiny, grow
    # No pair is farther apart than the union bounding-box diagonal.
    span_x = max(float(parr.x.max()), float(qarr.x.max())) - min(
        float(parr.x.min()), float(qarr.x.min())
    )
    span_y = max(float(parr.y.max()), float(qarr.y.max())) - min(
        float(parr.y.min()), float(qarr.y.min())
    )
    diag = float(np.hypot(span_x, span_y)) * (1.0 + 1e-9) + 1e-9 * scale

    with stage_timer(stage_seconds, "verify"):
        ux = np.concatenate((parr.x, qarr.x))
        uy = np.concatenate((parr.y, qarr.y))
        union_tree = cKDTree(np.column_stack((ux, uy)))

    cursor_sq = -np.inf  # resume cursor: pairs at or below it are done
    pairs_done = 0  # |pairs| (KD metric) inside the cursor radius
    while True:
        r = min(r, diag)
        with stage_timer(stage_seconds, "candidate"):
            within = int(tree_p.count_neighbors(tree_q, r))
        if within - pairs_done > _FALLBACK_BAND_PAIRS:
            # The band is denser than a whole vectorized join: run the
            # full pipeline once and emit the not-yet-streamed tail.
            counters["fallback"] = True
            set_attr(fallback=True)
            # (the kernel itself counts "candidates" on the trace)
            p_idx, q_idx, cand = rcj_pair_indices(
                parr,
                qarr,
                exclude_same_oid=exclude_same_oid,
                stage_seconds=stage_seconds,
            )
            counters["candidates"] = counters.get("candidates", 0) + cand
            dx = parr.x[p_idx] - qarr.x[q_idx]
            dy = parr.y[p_idx] - qarr.y[q_idx]
            d_sq = dx * dx + dy * dy
            fresh = d_sq > cursor_sq
            p_idx, q_idx, d_sq = p_idx[fresh], q_idx[fresh], d_sq[fresh]
            order = np.lexsort((qarr.oid[q_idx], parr.oid[p_idx], d_sq))
            for j in order:
                yield float(d_sq[j]), int(p_idx[j]), int(q_idx[j])
            return

        counters["bands"] = counters.get("bands", 0) + 1
        add_counter("bands")
        r_sq = r * r
        band_p: list[np.ndarray] = []
        band_q: list[np.ndarray] = []
        band_d: list[np.ndarray] = []
        with stage_timer(stage_seconds, "candidate"):
            r_query = r * (1.0 + _BAND_INFLATION)
            for bstart in range(0, n_q, _STREAM_Q_BLOCK):
                bend = min(bstart + _STREAM_Q_BLOCK, n_q)
                lists = tree_p.query_ball_point(
                    np.column_stack(
                        (qarr.x[bstart:bend], qarr.y[bstart:bend])
                    ),
                    r_query,
                    return_sorted=False,
                )
                flat, cnt = _flatten_ball_lists(lists, bend - bstart)
                if not flat.size:
                    continue
                rows = np.repeat(
                    np.arange(bstart, bend, dtype=np.int64), cnt
                )
                dx = parr.x[flat] - qarr.x[rows]
                dy = parr.y[flat] - qarr.y[rows]
                d_sq = dx * dx + dy * dy
                # The resume cursor: strictly new, within this band.
                mask = (d_sq > cursor_sq) & (d_sq <= r_sq)
                if exclude_same_oid:
                    mask &= parr.oid[flat] != qarr.oid[rows]
                band_p.append(flat[mask])
                band_q.append(rows[mask])
                band_d.append(d_sq[mask])

        if band_p:
            p_idx = np.concatenate(band_p)
            q_idx = np.concatenate(band_q)
            d_sq = np.concatenate(band_d)
        else:
            p_idx = np.empty(0, np.int64)
            q_idx = np.empty(0, np.int64)
            d_sq = np.empty(0, np.float64)

        if p_idx.size:
            with stage_timer(stage_seconds, "prune"):
                # Ψ− against each probe's nearest P neighbours — the
                # oracle's own blocker predicate, so a pruned pair is
                # certainly dead; survivors go to exact verification.
                k_pr = min(_STREAM_PRUNERS, n_p)
                probes = np.unique(q_idx)
                nd, ni = tree_p.query(
                    np.column_stack((qarr.x[probes], qarr.y[probes])),
                    k=k_pr,
                )
                if k_pr == 1:
                    ni = ni[:, None]
                pos = np.searchsorted(probes, q_idx)
                pruned = halfplane_prune_pairs(
                    parr.x[p_idx],
                    parr.y[p_idx],
                    parr.x[ni[pos]],
                    parr.y[ni[pos]],
                    qarr.x[q_idx],
                    qarr.y[q_idx],
                )
                keep = ~pruned
                p_idx, q_idx, d_sq = p_idx[keep], q_idx[keep], d_sq[keep]

        if p_idx.size:
            counters["candidates"] = counters.get("candidates", 0) + int(
                p_idx.size
            )
            add_counter("candidates", int(p_idx.size))
            with stage_timer(stage_seconds, "verify"):
                alive = verify_rings_batch(
                    parr.x[p_idx],
                    parr.y[p_idx],
                    qarr.x[q_idx],
                    qarr.y[q_idx],
                    union_tree,
                    ux,
                    uy,
                )
            n_alive = int(alive.sum())
            add_counter("verified", n_alive)
            add_counter("pruned", int(p_idx.size) - n_alive)
            p_idx, q_idx, d_sq = p_idx[alive], q_idx[alive], d_sq[alive]
            order = np.lexsort((qarr.oid[q_idx], parr.oid[p_idx], d_sq))
            for j in order:
                yield float(d_sq[j]), int(p_idx[j]), int(q_idx[j])

        if r >= diag:
            return  # every pair enumerated
        cursor_sq = r_sq
        pairs_done = within
        r *= _RADIUS_GROWTH


def topk_array(
    points_p,
    points_q,
    k: int,
    exclude_same_oid: bool = False,
    stage_seconds: dict | None = None,
) -> tuple[list[RCJPair], int]:
    """The ``k`` smallest-diameter RCJ pairs via the streamed engine.

    Same contract as :func:`repro.core.topk.top_k_rcj` — at most ``k``
    pairs, ascending diameter, original :class:`Point` identity
    preserved — computed by :func:`stream_pairs_by_diameter`.

    Returns ``(pairs, candidate_count)``.
    """
    if k <= 0:
        return [], 0
    points_p = list(points_p)
    points_q = list(points_q)
    parr = PointArray.from_points(points_p)
    qarr = PointArray.from_points(points_q)
    counters: dict = {}
    out: list[RCJPair] = []
    stream = stream_pairs_by_diameter(
        parr,
        qarr,
        k_hint=k,
        exclude_same_oid=exclude_same_oid,
        stage_seconds=stage_seconds,
        counters=counters,
    )
    for _d_sq, pi, qi in stream:
        out.append(RCJPair(points_p[pi], points_q[qi]))
        if len(out) == k:
            stream.close()  # stop enumerating: no band past the k-th
            break
    return out, int(counters.get("candidates", 0))


# ----------------------------------------------------------------------
# dynamic maintenance, columnar backend
# ----------------------------------------------------------------------

class _SideColumns:
    """One growable side of the dynamic join, columns plus objects.

    Deletions swap-remove so the columns stay dense; the compacted
    :class:`PointArray` and its KD-tree are cached and rebuilt lazily
    after mutations.
    """

    def __init__(self, points):
        self._xs: list[float] = []
        self._ys: list[float] = []
        self._points: list[Point] = []
        self._row_of: dict[int, int] = {}
        self._arr: PointArray | None = None
        self._tree: cKDTree | None = None
        for point in points:
            self.insert(point)

    def __len__(self) -> int:
        return len(self._points)

    def insert(self, point: Point) -> None:
        if point.oid in self._row_of:
            raise ValueError(f"duplicate oid {point.oid} on one side")
        self._row_of[point.oid] = len(self._points)
        self._xs.append(point.x)
        self._ys.append(point.y)
        self._points.append(point)
        self._arr = self._tree = None

    def pop(self, oid: int) -> Point | None:
        row = self._row_of.pop(oid, None)
        if row is None:
            return None
        victim = self._points[row]
        last = len(self._points) - 1
        if row != last:
            mover = self._points[last]
            self._xs[row] = self._xs[last]
            self._ys[row] = self._ys[last]
            self._points[row] = mover
            self._row_of[mover.oid] = row
        del self._xs[last], self._ys[last], self._points[last]
        self._arr = self._tree = None
        return victim

    def point(self, row: int) -> Point:
        return self._points[row]

    def array(self) -> PointArray:
        if self._arr is None:
            n = len(self._points)
            self._arr = PointArray(
                np.fromiter(self._xs, np.float64, count=n),
                np.fromiter(self._ys, np.float64, count=n),
                np.fromiter(
                    (p.oid for p in self._points), np.int64, count=n
                ),
            )
        return self._arr

    def tree(self) -> cKDTree | None:
        if not self._points:
            return None
        if self._tree is None:
            self._tree = cKDTree(self.array().coords())
        return self._tree


class _RingColumns:
    """Columnar twin of the pair-circle grid: endpoint columns of every
    live ring, answering "which rings strictly contain ``(x, y)``" with
    one vectorized evaluation of the **exact** dot predicate
    ``(x - px)(x - qx) + (y - py)(y - qy) < 0`` — term for term the
    IEEE expression of :meth:`repro.geometry.ring.Ring.contains_point`,
    so a containment decision here is the decision the object grid's
    confirm step would have made.  Where the grid buckets circle
    bounding boxes and rechecks a candidate superset per cell, the twin
    scans all live rings in one numpy pass — no superset, no recheck,
    and column compaction (swap-remove) keeps the scan dense.
    """

    def __init__(self):
        self._px: list[float] = []
        self._py: list[float] = []
        self._qx: list[float] = []
        self._qy: list[float] = []
        self._keys: list[tuple[int, int]] = []
        self._slot_of: dict[tuple[int, int], int] = {}
        self._cols: tuple[np.ndarray, ...] | None = None

    def __len__(self) -> int:
        return len(self._keys)

    def add(self, key: tuple[int, int], pair: RCJPair) -> None:
        self._slot_of[key] = len(self._keys)
        self._px.append(pair.p.x)
        self._py.append(pair.p.y)
        self._qx.append(pair.q.x)
        self._qy.append(pair.q.y)
        self._keys.append(key)
        self._cols = None

    def remove(self, key: tuple[int, int]) -> None:
        slot = self._slot_of.pop(key, None)
        if slot is None:
            return
        last = len(self._keys) - 1
        if slot != last:
            mover = self._keys[last]
            for col in (self._px, self._py, self._qx, self._qy):
                col[slot] = col[last]
            self._keys[slot] = mover
            self._slot_of[mover] = slot
        del (
            self._px[last],
            self._py[last],
            self._qx[last],
            self._qy[last],
            self._keys[last],
        )
        self._cols = None

    def _columns(self) -> tuple[np.ndarray, ...]:
        if self._cols is None:
            n = len(self._keys)
            self._cols = tuple(
                np.fromiter(col, np.float64, count=n)
                for col in (self._px, self._py, self._qx, self._qy)
            )
        return self._cols

    def keys_containing(self, x: float, y: float) -> list[tuple[int, int]]:
        """Keys of live rings strictly containing ``(x, y)``."""
        if not self._keys:
            return []
        px, py, qx, qy = self._columns()
        t = (x - px) * (x - qx) + (y - py) * (y - qy)
        return [self._keys[i] for i in np.nonzero(t < 0.0)[0]]

    def keys_involving(
        self, oid: int, side: Side
    ) -> list[tuple[int, int]]:
        """Keys of live rings with ``oid`` as their ``side`` endpoint."""
        slot = 0 if side == "P" else 1
        return [key for key in self._keys if key[slot] == oid]


class DynamicArrayRCJ:
    """The RCJ result maintained under updates, columnar backend.

    Implements the same contract as
    :class:`repro.core.dynamic.DynamicRCJ` (the
    :class:`~repro.core.dynamic.DynamicBackend` protocol) and produces
    the exact same pair set after every update, but answers each update
    with batched kernel work over resident columns instead of pointwise
    R-tree traversals:

    - insertion kill-sets come from one vectorized ring-containment
      scan (:class:`_RingColumns`);
    - insertion partners come from the engine's candidate kernels
      (:func:`~repro.engine.kernels.knn_candidate_blocks` with the new
      point as the sole probe);
    - deletion's freed-pair candidates come from the same
      Voronoi-horizon argument as the object backend — stream union
      neighbours in ascending distance (batched KD queries with a
      doubling window) while clipping the departed point's cell; once
      the next neighbour is beyond twice the farthest cell vertex, no
      Delaunay neighbour remains — crossed and filtered vectorized;
    - every candidate batch is settled by
      :func:`~repro.engine.kernels.verify_rings_batch` against the live
      union, the engine's exact predicate.

    Parameters mirror :class:`~repro.core.dynamic.DynamicRCJ`
    (``bounds`` seeds the deletion clip box; points outside remain
    legal).  ``oid`` values must be unique within each side.
    """

    def __init__(
        self,
        points_p=(),
        points_q=(),
        bounds: Rect | None = None,
    ):
        self.bounds = bounds if bounds is not None else Rect(0, 0, 10000, 10000)
        self._p = _SideColumns(points_p)
        self._q = _SideColumns(points_q)
        self._pairs: dict[tuple[int, int], RCJPair] = {}
        self._rings = _RingColumns()
        if len(self._p) and len(self._q):
            parr, qarr = self._p.array(), self._q.array()
            p_idx, q_idx, _ = rcj_pair_indices(parr, qarr)
            for pi, qi in zip(p_idx.tolist(), q_idx.tolist()):
                self._store(RCJPair(self._p.point(pi), self._q.point(qi)))

    # ------------------------------------------------------------------
    # result access (DynamicBackend)
    # ------------------------------------------------------------------
    @property
    def pairs(self) -> list[RCJPair]:
        """The current RCJ result (unordered)."""
        return list(self._pairs.values())

    def pair_keys(self) -> set[tuple[int, int]]:
        """Identity set of the current result."""
        return set(self._pairs)

    def __len__(self) -> int:
        return len(self._pairs)

    # ------------------------------------------------------------------
    # updates (DynamicBackend)
    # ------------------------------------------------------------------
    def insert(self, point: Point, side: Side) -> None:
        """Add ``point`` to dataset ``side`` and repair the result."""
        own, other = self._sides(side)
        own.insert(point)
        # (i) Kill every pair whose ring strictly contains the point:
        # one vectorized exact-predicate scan over the ring columns.
        for key in self._rings.keys_containing(point.x, point.y):
            self._drop(key)
        # (ii) New pairs all involve the new point; partners come from
        # the batch candidate kernels with the point as the sole probe
        # (a superset of the true partners — blockers drawn from the
        # partner side only), verified exactly against the live union.
        if not len(other):
            return
        other_arr = other.array()
        probe = PointArray(
            np.array([point.x]), np.array([point.y]), np.array([point.oid])
        )
        _q_idx, partner_idx = knn_candidate_blocks(
            other_arr, probe, tree_p=other.tree()
        )
        if not partner_idx.size:
            return
        zx = np.full(partner_idx.size, point.x)
        zy = np.full(partner_idx.size, point.y)
        ox = other_arr.x[partner_idx]
        oy = other_arr.y[partner_idx]
        if side == "P":
            px, py, qx, qy = zx, zy, ox, oy
        else:
            px, py, qx, qy = ox, oy, zx, zy
        union_tree, ux, uy = self._union()
        alive = verify_rings_batch(px, py, qx, qy, union_tree, ux, uy)
        for row in partner_idx[alive].tolist():
            partner = other.point(row)
            pair = (
                RCJPair(point, partner)
                if side == "P"
                else RCJPair(partner, point)
            )
            self._store(pair)

    def delete(self, point: Point, side: Side) -> bool:
        """Remove ``point`` from dataset ``side`` and repair the result.

        Returns False (and changes nothing) when the point is absent.
        """
        own, _other = self._sides(side)
        victim = own.pop(point.oid)
        if victim is None:
            return False
        # (i) Pairs involving the departed point die.
        for key in self._rings.keys_involving(point.oid, side):
            self._drop(key)
        if not len(self._p) or not len(self._q):
            return True
        # (ii) Pairs freed by the departure: both endpoints are Delaunay
        # neighbours of the departed point in the remaining union.  One
        # union tree serves both the horizon stream and verification.
        union = self._union()
        neighborhood = self._neighborhood(victim, union)
        if neighborhood is None:
            # A coincident twin remains: every ring that contained the
            # departed point still contains the twin.
            return True
        near_p = [z for z, z_side in neighborhood if z_side == "P"]
        near_q = [z for z, z_side in neighborhood if z_side == "Q"]
        if not near_p or not near_q:
            return True
        px = np.fromiter((z.x for z in near_p), np.float64, count=len(near_p))
        py = np.fromiter((z.y for z in near_p), np.float64, count=len(near_p))
        qx = np.fromiter((z.x for z in near_q), np.float64, count=len(near_q))
        qy = np.fromiter((z.y for z in near_q), np.float64, count=len(near_q))
        # Cross the two neighbour sets and keep only rings the departed
        # point blocked — the exact dot predicate, vectorized.
        n_pn, n_qn = len(near_p), len(near_q)
        pi = np.repeat(np.arange(n_pn), n_qn)
        qi = np.tile(np.arange(n_qn), n_pn)
        cx, cy = px[pi], py[pi]
        dx, dy = qx[qi], qy[qi]
        blocked = (victim.x - cx) * (victim.x - dx) + (victim.y - cy) * (
            victim.y - dy
        ) < 0.0
        fresh = np.fromiter(
            (
                (near_p[a].oid, near_q[b].oid) not in self._pairs
                for a, b in zip(pi.tolist(), qi.tolist())
            ),
            bool,
            count=len(pi),
        )
        keep = blocked & fresh
        pi, qi = pi[keep], qi[keep]
        if not pi.size:
            return True
        union_tree, ux, uy = union
        alive = verify_rings_batch(
            px[pi], py[pi], qx[qi], qy[qi], union_tree, ux, uy
        )
        for a, b in zip(pi[alive].tolist(), qi[alive].tolist()):
            self._store(RCJPair(near_p[a], near_q[b]))
        return True

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _sides(self, side: Side) -> tuple[_SideColumns, _SideColumns]:
        if side == "P":
            return self._p, self._q
        if side == "Q":
            return self._q, self._p
        raise ValueError(f"side must be 'P' or 'Q', got {side!r}")

    def _store(self, pair: RCJPair) -> None:
        key = pair.key()
        if key in self._pairs:
            return
        self._pairs[key] = pair
        self._rings.add(key, pair)

    def _drop(self, key: tuple[int, int]) -> None:
        if self._pairs.pop(key, None) is not None:
            self._rings.remove(key)

    def _union(self) -> tuple[cKDTree, np.ndarray, np.ndarray]:
        parr, qarr = self._p.array(), self._q.array()
        ux = np.concatenate((parr.x, qarr.x))
        uy = np.concatenate((parr.y, qarr.y))
        return cKDTree(np.column_stack((ux, uy))), ux, uy

    def _neighborhood(
        self, x: Point, union: tuple[cKDTree, np.ndarray, np.ndarray]
    ) -> list[tuple[Point, Side]] | None:
        """Candidate endpoints for pairs freed by deleting ``x``.

        The object backend's Voronoi-horizon stream
        (:meth:`repro.core.dynamic.DynamicRCJ._neighborhood`) over the
        columnar union (``union`` is the caller's already-built
        :meth:`_union` triple): neighbours arrive in ascending distance
        from batched KD-tree queries with a doubling window instead of
        the merged R-tree heaps.  Returns None when a remaining point
        coincides with ``x``.
        """
        n_p = len(self._p)
        union_tree, ux, uy = union
        n_union = len(ux)

        span = [
            self.bounds.xmin,
            self.bounds.ymin,
            self.bounds.xmax,
            self.bounds.ymax,
        ]
        span[0] = min(span[0], float(ux.min()), x.x)
        span[1] = min(span[1], float(uy.min()), x.y)
        span[2] = max(span[2], float(ux.max()), x.x)
        span[3] = max(span[3], float(uy.max()), x.y)
        margin = max(span[2] - span[0], span[3] - span[1], 1.0)
        cell = box_polygon(
            span[0] - margin, span[1] - margin, span[2] + margin, span[3] + margin
        )

        def max_vertex_dist() -> float:
            return max(
                ((vx - x.x) ** 2 + (vy - x.y) ** 2) ** 0.5 for vx, vy in cell
            )

        horizon = 2.0 * max_vertex_dist()
        out: list[tuple[Point, Side]] = []
        done = 0
        k = 32
        while True:
            kk = min(k, n_union)
            dist, idx = union_tree.query([x.x, x.y], k=kk)
            dist = np.atleast_1d(dist)
            idx = np.atleast_1d(idx)
            for d, row in zip(dist[done:].tolist(), idx[done:].tolist()):
                if d > horizon:
                    return out
                z_side: Side = "P" if row < n_p else "Q"
                z = (
                    self._p.point(row)
                    if row < n_p
                    else self._q.point(row - n_p)
                )
                if z.x == x.x and z.y == x.y:
                    return None
                out.append((z, z_side))
                clipped = clip_halfplane(
                    cell,
                    (x.x + z.x) / 2.0,
                    (x.y + z.y) / 2.0,
                    z.x - x.x,
                    z.y - x.y,
                )
                if clipped:
                    cell = clipped
                    horizon = 2.0 * max_vertex_dist()
                # else: the cell collapsed numerically — keep the
                # previous (larger) horizon and keep streaming.
            if kk == n_union:
                return out
            done = kk
            k *= 2

    def __repr__(self) -> str:
        return (
            f"DynamicArrayRCJ(|P|={len(self._p)}, |Q|={len(self._q)}, "
            f"pairs={len(self._pairs)})"
        )
