"""Columnar streaming layer: ordered browsing and dynamic RCJ over
:class:`~repro.engine.arrays.PointArray`.

The paper's two headline applications beyond the one-shot join are
*ordered browsing* of RCJ results (top-k by ring diameter) and
*decision support over changing data* (insertions and deletions).  This
module gives both an array-engine execution path so they dispatch
through the unified planner like the bulk join does:

:func:`stream_pairs_by_diameter`
    A lazy generator of **verified** RCJ pairs in ascending
    ring-diameter order.  Candidates are enumerated in blocked radius
    bands — one KD-tree ball query per probe block, with a *resume
    cursor* on the squared pair distance so each band picks up exactly
    where the previous one stopped — then Ψ−-pruned against each
    probe's nearest neighbours and batch-verified against the union
    KD-tree (:func:`~repro.engine.kernels.verify_rings_batch`).  All
    pairs of a band are sorted before emission and every pair with a
    smaller distance lives in the current or an earlier band, so the
    output order is globally correct without materializing the join.
    When a band would enumerate more candidates than the full
    vectorized join costs, the stream falls back to the full pipeline
    (Ψ−-prune, cone-cover certificates, Delaunay backstop and all) and
    emits the sorted tail — enumeration by radius is a small-k tool,
    and the fallback caps its worst case near one bulk join.

:class:`DynamicArrayRCJ`
    The columnar twin of :class:`repro.core.dynamic.DynamicRCJ`: the
    same insert/delete contract (the shared
    :class:`~repro.core.dynamic.DynamicBackend` protocol), with
    kill-sets computed by one vectorized evaluation of the exact ring
    predicate over endpoint columns (:class:`_RingColumns`, the
    columnar twin of the pair-circle grid), insertion partners from the
    batch candidate kernels, and all verification through
    :func:`~repro.engine.kernels.verify_rings_batch`.  Its
    ``apply_batch`` absorbs a whole update batch with *amortized*
    maintenance: deletes become lazy tombstones (the stale KD-trees
    stay up, dead rows masked out of candidate blocks), inserts land in
    a small per-side buffer probed exactly, and the one compaction +
    KD-tree rebuild per side is deferred until a tombstone-fraction or
    buffer-size threshold trips (``REPRO_DYN_TOMBSTONE_FRAC`` /
    ``REPRO_DYN_BUFFER_CAP``) — at most once per batch, usually far
    less than once per batch.

Exactness
---------
Both paths keep the engine's contract: *filter conservative, verify
exact*.  The streamed candidates are a superset of the true pairs per
band (a ball query can only over-enumerate), Ψ− pruning evaluates the
oracle's own blocker predicate, and every emitted pair passed the exact
batch ring verification against the full union — so the stream's k-pair
prefix equals the first k entries of the sorted bulk-join result, and
the dynamic backend's state equals the from-scratch join after every
update.  Ordering uses the *squared* pair distance ``dx*dx + dy*dy``
(the same IEEE expression the R-tree distance-join heap orders by), so
the two top-k routes agree bit-for-bit about which pair is smaller;
ties are broken canonically by ``(p.oid, q.oid)``.
"""

from __future__ import annotations

import heapq
import os
import time

import numpy as np
from scipy.spatial import cKDTree

from repro.core.dynamic import Side, validate_batch
from repro.core.pairs import RCJPair
from repro.engine.arrays import PointArray
from repro.engine.kernels import (
    halfplane_prune_pairs,
    knn_candidate_blocks,
    rcj_pair_indices,
    stage_timer,
    verify_rings_batch,
)
from repro.geometry.point import Point
from repro.geometry.polygon import box_polygon, clip_halfplane
from repro.geometry.rect import Rect
from repro.obs.trace import add_counter, set_attr, trace as obs_trace

#: Probe points per ball-query block of the band enumerator.
_STREAM_Q_BLOCK = 8192

#: Ψ− pruners per candidate in the streamed bands (the probe's nearest
#: ``P`` neighbours).
_STREAM_PRUNERS = 8

#: Growth factor of the expanding radius.
_RADIUS_GROWTH = 2.0

#: When the pairs enumerated by the next band would exceed this many
#: beyond what previous bands already covered, enumeration-by-radius
#: has lost to the full vectorized join: fall back to it for the tail.
_FALLBACK_BAND_PAIRS = 262_144

#: Relative inflation of the ball-query radius; band membership is
#: decided by the exact squared-distance cursor, the query only has to
#: never *miss* a band member to rounding.
_BAND_INFLATION = 1e-9


def pair_order_key(pair: RCJPair) -> tuple[float, int, int]:
    """The canonical ascending-diameter sort key of a result pair.

    ``dx*dx + dy*dy`` is the exact expression both the R-tree
    distance-join heap and the streamed bands order by (squared
    distance is monotone in diameter, with no square root to round),
    and ``(p.oid, q.oid)`` breaks exact ties deterministically.  Every
    top-k route sorts by this one key, which is what makes their
    prefixes comparable byte for byte.
    """
    dx = pair.p.x - pair.q.x
    dy = pair.p.y - pair.q.y
    return (dx * dx + dy * dy, pair.p.oid, pair.q.oid)


def sort_pairs_by_diameter(pairs: list[RCJPair]) -> list[RCJPair]:
    """Result pairs in canonical ascending-diameter order."""
    return sorted(pairs, key=pair_order_key)


# ----------------------------------------------------------------------
# streamed ordered enumeration (top-k)
# ----------------------------------------------------------------------

def _flatten_ball_lists(lists, count: int) -> tuple[np.ndarray, np.ndarray]:
    """CSR-flatten ``query_ball_point`` output: ``(flat, counts)``."""
    counts = np.fromiter((len(lst) for lst in lists), np.int64, count=count)
    total = int(counts.sum())
    flat = np.empty(total, dtype=np.int64)
    pos = 0
    for lst in lists:
        n = len(lst)
        if n:
            flat[pos : pos + n] = lst
            pos += n
    return flat, counts


def stream_pairs_by_diameter(
    parr: PointArray,
    qarr: PointArray,
    k_hint: int = 1,
    exclude_same_oid: bool = False,
    stage_seconds: dict | None = None,
    counters: dict | None = None,
):
    """Yield verified ``(d_sq, p_index, q_index)`` in ascending order.

    ``k_hint`` sizes the first radius band (the distance within which at
    least ``min(k_hint, |Q|)`` candidate pairs are guaranteed); the
    stream itself is unbounded — consume as much of it as needed and
    drop it.  ``counters`` (when given) accumulates ``"candidates"``,
    the number of pairs that entered batch verification, and
    ``"bands"`` / ``"fallback"`` describing how the enumeration went.
    """
    n_p, n_q = len(parr), len(qarr)
    if n_p == 0 or n_q == 0:
        return
    if counters is None:
        counters = {}

    with stage_timer(stage_seconds, "candidate"):
        tree_p = cKDTree(parr.coords())
        tree_q = cKDTree(qarr.coords())
        # First band: the min(k, |Q|)-th smallest 1-NN distance — at
        # least that many candidate pairs land inside it.
        d1, _ = tree_p.query(qarr.coords(), k=1)
        take = min(max(k_hint, 1), n_q) - 1
        r = float(np.partition(d1, take)[take])
    scale = 1.0
    for arr in (parr.x, parr.y, qarr.x, qarr.y):
        if len(arr):
            scale = max(scale, float(np.abs(arr).max()))
    if r <= 0.0:
        r = 1e-9 * scale  # duplicate-riddled probes: start tiny, grow
    # No pair is farther apart than the union bounding-box diagonal.
    span_x = max(float(parr.x.max()), float(qarr.x.max())) - min(
        float(parr.x.min()), float(qarr.x.min())
    )
    span_y = max(float(parr.y.max()), float(qarr.y.max())) - min(
        float(parr.y.min()), float(qarr.y.min())
    )
    diag = float(np.hypot(span_x, span_y)) * (1.0 + 1e-9) + 1e-9 * scale

    with stage_timer(stage_seconds, "verify"):
        ux = np.concatenate((parr.x, qarr.x))
        uy = np.concatenate((parr.y, qarr.y))
        union_tree = cKDTree(np.column_stack((ux, uy)))

    cursor_sq = -np.inf  # resume cursor: pairs at or below it are done
    pairs_done = 0  # |pairs| (KD metric) inside the cursor radius
    while True:
        r = min(r, diag)
        with stage_timer(stage_seconds, "candidate"):
            within = int(tree_p.count_neighbors(tree_q, r))
        if within - pairs_done > _FALLBACK_BAND_PAIRS:
            # The band is denser than a whole vectorized join: run the
            # full pipeline once and emit the not-yet-streamed tail.
            counters["fallback"] = True
            set_attr(fallback=True)
            # (the kernel itself counts "candidates" on the trace)
            p_idx, q_idx, cand = rcj_pair_indices(
                parr,
                qarr,
                exclude_same_oid=exclude_same_oid,
                stage_seconds=stage_seconds,
            )
            counters["candidates"] = counters.get("candidates", 0) + cand
            dx = parr.x[p_idx] - qarr.x[q_idx]
            dy = parr.y[p_idx] - qarr.y[q_idx]
            d_sq = dx * dx + dy * dy
            fresh = d_sq > cursor_sq
            p_idx, q_idx, d_sq = p_idx[fresh], q_idx[fresh], d_sq[fresh]
            order = np.lexsort((qarr.oid[q_idx], parr.oid[p_idx], d_sq))
            for j in order:
                yield float(d_sq[j]), int(p_idx[j]), int(q_idx[j])
            return

        counters["bands"] = counters.get("bands", 0) + 1
        add_counter("bands")
        r_sq = r * r
        band_p: list[np.ndarray] = []
        band_q: list[np.ndarray] = []
        band_d: list[np.ndarray] = []
        with stage_timer(stage_seconds, "candidate"):
            r_query = r * (1.0 + _BAND_INFLATION)
            for bstart in range(0, n_q, _STREAM_Q_BLOCK):
                bend = min(bstart + _STREAM_Q_BLOCK, n_q)
                lists = tree_p.query_ball_point(
                    np.column_stack(
                        (qarr.x[bstart:bend], qarr.y[bstart:bend])
                    ),
                    r_query,
                    return_sorted=False,
                )
                flat, cnt = _flatten_ball_lists(lists, bend - bstart)
                if not flat.size:
                    continue
                rows = np.repeat(
                    np.arange(bstart, bend, dtype=np.int64), cnt
                )
                dx = parr.x[flat] - qarr.x[rows]
                dy = parr.y[flat] - qarr.y[rows]
                d_sq = dx * dx + dy * dy
                # The resume cursor: strictly new, within this band.
                mask = (d_sq > cursor_sq) & (d_sq <= r_sq)
                if exclude_same_oid:
                    mask &= parr.oid[flat] != qarr.oid[rows]
                band_p.append(flat[mask])
                band_q.append(rows[mask])
                band_d.append(d_sq[mask])

        if band_p:
            p_idx = np.concatenate(band_p)
            q_idx = np.concatenate(band_q)
            d_sq = np.concatenate(band_d)
        else:
            p_idx = np.empty(0, np.int64)
            q_idx = np.empty(0, np.int64)
            d_sq = np.empty(0, np.float64)

        if p_idx.size:
            with stage_timer(stage_seconds, "prune"):
                # Ψ− against each probe's nearest P neighbours — the
                # oracle's own blocker predicate, so a pruned pair is
                # certainly dead; survivors go to exact verification.
                k_pr = min(_STREAM_PRUNERS, n_p)
                probes = np.unique(q_idx)
                nd, ni = tree_p.query(
                    np.column_stack((qarr.x[probes], qarr.y[probes])),
                    k=k_pr,
                )
                if k_pr == 1:
                    ni = ni[:, None]
                pos = np.searchsorted(probes, q_idx)
                pruned = halfplane_prune_pairs(
                    parr.x[p_idx],
                    parr.y[p_idx],
                    parr.x[ni[pos]],
                    parr.y[ni[pos]],
                    qarr.x[q_idx],
                    qarr.y[q_idx],
                )
                keep = ~pruned
                p_idx, q_idx, d_sq = p_idx[keep], q_idx[keep], d_sq[keep]

        if p_idx.size:
            counters["candidates"] = counters.get("candidates", 0) + int(
                p_idx.size
            )
            add_counter("candidates", int(p_idx.size))
            with stage_timer(stage_seconds, "verify"):
                alive = verify_rings_batch(
                    parr.x[p_idx],
                    parr.y[p_idx],
                    qarr.x[q_idx],
                    qarr.y[q_idx],
                    union_tree,
                    ux,
                    uy,
                )
            n_alive = int(alive.sum())
            add_counter("verified", n_alive)
            add_counter("pruned", int(p_idx.size) - n_alive)
            p_idx, q_idx, d_sq = p_idx[alive], q_idx[alive], d_sq[alive]
            order = np.lexsort((qarr.oid[q_idx], parr.oid[p_idx], d_sq))
            for j in order:
                yield float(d_sq[j]), int(p_idx[j]), int(q_idx[j])

        if r >= diag:
            return  # every pair enumerated
        cursor_sq = r_sq
        pairs_done = within
        r *= _RADIUS_GROWTH


def topk_array(
    points_p,
    points_q,
    k: int,
    exclude_same_oid: bool = False,
    stage_seconds: dict | None = None,
) -> tuple[list[RCJPair], int]:
    """The ``k`` smallest-diameter RCJ pairs via the streamed engine.

    Same contract as :func:`repro.core.topk.top_k_rcj` — at most ``k``
    pairs, ascending diameter, original :class:`Point` identity
    preserved — computed by :func:`stream_pairs_by_diameter`.

    Returns ``(pairs, candidate_count)``.
    """
    if k <= 0:
        return [], 0
    points_p = list(points_p)
    points_q = list(points_q)
    parr = PointArray.from_points(points_p)
    qarr = PointArray.from_points(points_q)
    counters: dict = {}
    out: list[RCJPair] = []
    stream = stream_pairs_by_diameter(
        parr,
        qarr,
        k_hint=k,
        exclude_same_oid=exclude_same_oid,
        stage_seconds=stage_seconds,
        counters=counters,
    )
    for _d_sq, pi, qi in stream:
        out.append(RCJPair(points_p[pi], points_q[qi]))
        if len(out) == k:
            stream.close()  # stop enumerating: no band past the k-th
            break
    return out, int(counters.get("candidates", 0))


# ----------------------------------------------------------------------
# dynamic maintenance, columnar backend
# ----------------------------------------------------------------------

#: Env knob: fraction of tombstoned rows in a side's main columns
#: beyond which ``apply_batch`` compacts (strict: rebuild only when
#: ``dead > frac * main_rows``).
TOMBSTONE_FRAC_ENV = "REPRO_DYN_TOMBSTONE_FRAC"

#: Default tombstone-fraction threshold.
DEFAULT_TOMBSTONE_FRAC = 0.25

#: Env knob: rows a side's insert buffer may hold before the batch
#: merges it into the main columns (strict: rebuild when
#: ``buffered > cap``).
BUFFER_CAP_ENV = "REPRO_DYN_BUFFER_CAP"

#: Default insert-buffer row cap.
DEFAULT_BUFFER_CAP = 1024


def _tombstone_frac() -> float:
    try:
        return float(
            os.environ.get(TOMBSTONE_FRAC_ENV, DEFAULT_TOMBSTONE_FRAC)
        )
    except ValueError:
        return DEFAULT_TOMBSTONE_FRAC


def _buffer_cap() -> int:
    try:
        return int(os.environ.get(BUFFER_CAP_ENV, DEFAULT_BUFFER_CAP))
    except ValueError:
        return DEFAULT_BUFFER_CAP


def _voronoi_neighborhood(
    x: Point,
    stream,
    span: list[float],
    stop_on_coincident: bool = True,
) -> list[tuple[Point, Side]] | None:
    """Clip ``x``'s Voronoi cell against an ascending-distance stream.

    ``stream`` yields ``(distance, point, side)`` in ascending distance
    over some pointset; ``span`` is a bounding box covering the domain,
    the data and ``x`` (any superset is safe — it only enlarges the
    starting horizon).  Streaming stops once the next point is beyond
    twice the farthest cell vertex: no remaining point can be a
    Delaunay neighbour of ``x``, because the empty-circle centre
    witnessing adjacency lies inside the cell.  The returned
    ``(point, side)`` list is therefore a superset of ``x``'s Delaunay
    neighbours in the streamed set.

    A streamed point coinciding with ``x`` imposes no halfplane.  With
    ``stop_on_coincident`` (deletion semantics) it aborts the whole
    neighbourhood — a coincident twin survives, so every ring that
    contained ``x`` still contains the twin and nothing is freed.
    Otherwise (insertion probes) the coincident point is *emitted*: a
    zero-radius ring with it is a legal degenerate pair.

    Only points whose bisector actually reaches the current cell are
    emitted.  The cell is a superset of ``x``'s final Voronoi region at
    every step, so a bisector that leaves the whole cell strictly on
    ``x``'s side can never share an edge (or vertex) with it — such a
    point is provably not a Delaunay neighbour and its half-plane clip
    would be a no-op.  Without this filter a probe near the hull (whose
    cell is unbounded and stays box-sized) emits *every* point inside
    the horizon — the entire union in the worst case.
    """
    margin = max(span[2] - span[0], span[3] - span[1], 1.0)
    cell = box_polygon(
        span[0] - margin, span[1] - margin, span[2] + margin, span[3] + margin
    )
    # Touch slack: treat a bisector missing the cell by less than this
    # distance as touching, covering the accumulated float error of the
    # clipped cell vertices (scaled to the coordinate magnitude).
    slack = 1e-9 * max(
        abs(span[0]), abs(span[1]), abs(span[2]), abs(span[3]), 1.0
    )

    def max_vertex_dist() -> float:
        return max(
            ((vx - x.x) ** 2 + (vy - x.y) ** 2) ** 0.5 for vx, vy in cell
        )

    horizon = 2.0 * max_vertex_dist()
    out: list[tuple[Point, Side]] = []
    for d, z, z_side in stream:
        if d > horizon:
            break
        if z.x == x.x and z.y == x.y:
            if stop_on_coincident:
                return None
            out.append((z, z_side))
            continue
        nx = z.x - x.x
        ny = z.y - x.y
        mx = (x.x + z.x) / 2.0
        my = (x.y + z.y) / 2.0
        # (v - m) . n has units length * |n| = length * d: divide the
        # distance slack through by comparing against -slack * d.
        smax = max((vx - mx) * nx + (vy - my) * ny for vx, vy in cell)
        if smax < -slack * d:
            continue
        out.append((z, z_side))
        clipped = clip_halfplane(cell, mx, my, nx, ny)
        if clipped:
            cell = clipped
            horizon = 2.0 * max_vertex_dist()
        # else: the cell collapsed numerically — keep the previous
        # (larger) horizon and keep streaming; conservative.
    return out


class _SideColumns:
    """One growable side of the dynamic join, columns plus objects.

    Two mutation tiers share the storage.  *Eager* ops (``insert`` /
    ``pop`` — the per-event oracle path) keep the columns dense:
    deletions swap-remove, and the :class:`PointArray` / KD-tree caches
    are invalidated per mutation and rebuilt lazily, exactly the
    pre-batch behaviour.  *Lazy* ops (``tombstone`` /
    ``buffer_insert`` — the ``apply_batch`` path) never touch the
    cached main array or tree: a delete only marks its row dead (the
    row stays in the columns *and* in the stale tree, masked out of
    candidate blocks via ``alive_main``), and an insert appends past
    ``_main_n`` into a side buffer the batch path probes exactly.
    ``flush`` merges the buffer and drops dead rows in one pass — the
    single compaction + rebuild a batch may pay.  Eager ops flush
    first, so interleaving the two tiers stays correct.
    """

    def __init__(self, points):
        self._xs: list[float] = []
        self._ys: list[float] = []
        self._points: list[Point] = []
        self._row_of: dict[int, int] = {}
        self._dead: set[int] = set()
        self._dead_main = 0  # tombstoned rows below _main_n
        self._main_n = 0  # rows [0, _main_n) are covered by _arr/_tree
        self._arr: PointArray | None = None
        self._tree: cKDTree | None = None
        self._alive: np.ndarray | None = None
        for point in points:
            self.insert(point)

    def __len__(self) -> int:
        return len(self._row_of)

    def has(self, oid: int) -> bool:
        return oid in self._row_of

    # ------------------------------------------------------------------
    # eager tier (per-event path; dense columns)
    # ------------------------------------------------------------------
    def insert(self, point: Point) -> None:
        self.flush()
        if point.oid in self._row_of:
            raise ValueError(f"duplicate oid {point.oid} on one side")
        self._row_of[point.oid] = len(self._points)
        self._xs.append(point.x)
        self._ys.append(point.y)
        self._points.append(point)
        self._main_n = len(self._points)
        self._arr = self._tree = self._alive = None

    def pop(self, oid: int) -> Point | None:
        self.flush()
        row = self._row_of.pop(oid, None)
        if row is None:
            return None
        victim = self._points[row]
        last = len(self._points) - 1
        if row != last:
            mover = self._points[last]
            self._xs[row] = self._xs[last]
            self._ys[row] = self._ys[last]
            self._points[row] = mover
            self._row_of[mover.oid] = row
        del self._xs[last], self._ys[last], self._points[last]
        self._main_n = len(self._points)
        self._arr = self._tree = self._alive = None
        return victim

    def array(self) -> PointArray:
        """The dense compacted array (flushes any lazy state)."""
        self.flush()
        return self._main_array()

    def tree(self) -> cKDTree | None:
        """KD-tree over the dense array (flushes any lazy state)."""
        self.flush()
        return self._main_tree()

    # ------------------------------------------------------------------
    # lazy tier (apply_batch path; tombstones + insert buffer)
    # ------------------------------------------------------------------
    def tombstone(self, oid: int) -> Point | None:
        """Mark ``oid``'s row dead without disturbing the main caches."""
        row = self._row_of.pop(oid, None)
        if row is None:
            return None
        self._dead.add(row)
        if row < self._main_n:
            self._dead_main += 1
            if self._alive is not None:
                self._alive[row] = False
        return self._points[row]

    def buffer_insert(self, point: Point) -> None:
        """Append past the main rows; the stale tree stays valid."""
        if point.oid in self._row_of:
            raise ValueError(f"duplicate oid {point.oid} on one side")
        self._row_of[point.oid] = len(self._points)
        self._xs.append(point.x)
        self._ys.append(point.y)
        self._points.append(point)

    def main_array(self) -> PointArray | None:
        """Stale main columns (dead rows included), or None if empty."""
        return self._main_array() if self._main_n else None

    def main_tree(self) -> cKDTree | None:
        """Stale main KD-tree (dead rows included), or None if empty."""
        return self._main_tree()

    def alive_main(self) -> np.ndarray:
        """Boolean liveness mask over the main rows."""
        if self._alive is None:
            mask = np.ones(self._main_n, dtype=bool)
            for row in self._dead:
                if row < self._main_n:
                    mask[row] = False
            self._alive = mask
        return self._alive

    def buffer_points(self) -> list[Point]:
        """Live buffered inserts (rows past ``_main_n``)."""
        return [
            self._points[row]
            for row in range(self._main_n, len(self._points))
            if row not in self._dead
        ]

    @property
    def main_count(self) -> int:
        return self._main_n

    @property
    def tombstones(self) -> int:
        return self._dead_main

    @property
    def buffered(self) -> int:
        return len(self._points) - self._main_n

    def needs_compaction(self, frac: float, cap: int) -> bool:
        """Whether the lazy state crossed a rebuild threshold (strict
        comparisons: sitting exactly *at* a threshold defers)."""
        return (
            self._dead_main > frac * self._main_n or self.buffered > cap
        )

    def flush(self) -> bool:
        """Compact: drop dead rows, merge the buffer, invalidate the
        caches.  Returns True when anything actually changed (the
        batch path's rebuild counter)."""
        if not self._dead and self._main_n == len(self._points):
            return False
        if self._dead:
            keep = [
                row
                for row in range(len(self._points))
                if row not in self._dead
            ]
            self._xs = [self._xs[row] for row in keep]
            self._ys = [self._ys[row] for row in keep]
            self._points = [self._points[row] for row in keep]
            self._row_of = {
                p.oid: row for row, p in enumerate(self._points)
            }
            self._dead.clear()
        self._dead_main = 0
        self._main_n = len(self._points)
        self._arr = self._tree = self._alive = None
        return True

    # ------------------------------------------------------------------
    # shared internals
    # ------------------------------------------------------------------
    def point(self, row: int) -> Point:
        return self._points[row]

    def _main_array(self) -> PointArray:
        if self._arr is None:
            n = self._main_n
            self._arr = PointArray(
                np.fromiter(self._xs, np.float64, count=n),
                np.fromiter(self._ys, np.float64, count=n),
                np.fromiter(
                    (p.oid for p in self._points[:n]), np.int64, count=n
                ),
            )
        return self._arr

    def _main_tree(self) -> cKDTree | None:
        if self._main_n == 0:
            return None
        if self._tree is None:
            self._tree = cKDTree(self._main_array().coords())
        return self._tree


class _RingColumns:
    """Columnar twin of the pair-circle grid: endpoint columns of every
    live ring, answering "which rings strictly contain ``(x, y)``" with
    one vectorized evaluation of the **exact** dot predicate
    ``(x - px)(x - qx) + (y - py)(y - qy) < 0`` — term for term the
    IEEE expression of :meth:`repro.geometry.ring.Ring.contains_point`,
    so a containment decision here is the decision the object grid's
    confirm step would have made.  Where the grid buckets circle
    bounding boxes and rechecks a candidate superset per cell, the twin
    scans all live rings in one numpy pass — no superset, no recheck,
    and column compaction (swap-remove) keeps the scan dense.
    """

    def __init__(self):
        self._px: list[float] = []
        self._py: list[float] = []
        self._qx: list[float] = []
        self._qy: list[float] = []
        self._keys: list[tuple[int, int]] = []
        self._slot_of: dict[tuple[int, int], int] = {}
        self._cols: tuple[np.ndarray, ...] | None = None

    def __len__(self) -> int:
        return len(self._keys)

    def add(self, key: tuple[int, int], pair: RCJPair) -> None:
        self._slot_of[key] = len(self._keys)
        self._px.append(pair.p.x)
        self._py.append(pair.p.y)
        self._qx.append(pair.q.x)
        self._qy.append(pair.q.y)
        self._keys.append(key)
        self._cols = None

    def remove(self, key: tuple[int, int]) -> None:
        slot = self._slot_of.pop(key, None)
        if slot is None:
            return
        last = len(self._keys) - 1
        if slot != last:
            mover = self._keys[last]
            for col in (self._px, self._py, self._qx, self._qy):
                col[slot] = col[last]
            self._keys[slot] = mover
            self._slot_of[mover] = slot
        del (
            self._px[last],
            self._py[last],
            self._qx[last],
            self._qy[last],
            self._keys[last],
        )
        self._cols = None

    def _columns(self) -> tuple[np.ndarray, ...]:
        if self._cols is None:
            n = len(self._keys)
            self._cols = tuple(
                np.fromiter(col, np.float64, count=n)
                for col in (self._px, self._py, self._qx, self._qy)
            )
        return self._cols

    def keys_containing(self, x: float, y: float) -> list[tuple[int, int]]:
        """Keys of live rings strictly containing ``(x, y)``."""
        if not self._keys:
            return []
        px, py, qx, qy = self._columns()
        t = (x - px) * (x - qx) + (y - py) * (y - qy)
        return [self._keys[i] for i in np.nonzero(t < 0.0)[0]]

    def keys_involving(
        self, oid: int, side: Side
    ) -> list[tuple[int, int]]:
        """Keys of live rings with ``oid`` as their ``side`` endpoint."""
        slot = 0 if side == "P" else 1
        return [key for key in self._keys if key[slot] == oid]

    def keys_involving_any(
        self, oids, side: Side
    ) -> list[tuple[int, int]]:
        """Keys of live rings whose ``side`` endpoint is in ``oids`` —
        one pass over the columns for a whole batch of deletions."""
        if not oids:
            return []
        wanted = set(oids)
        slot = 0 if side == "P" else 1
        return [key for key in self._keys if key[slot] in wanted]

    def keys_containing_any(
        self, xs: np.ndarray, ys: np.ndarray
    ) -> list[tuple[int, int]]:
        """Keys of live rings strictly containing *any* of the probe
        points — the batch kill-scan, chunked so the broadcast stays
        within a bounded temporary."""
        if not self._keys or not len(xs):
            return []
        px, py, qx, qy = self._columns()
        n = len(self._keys)
        hit = np.zeros(n, dtype=bool)
        chunk = max(1, (1 << 22) // n)
        for start in range(0, len(xs), chunk):
            cx = xs[start : start + chunk, None]
            cy = ys[start : start + chunk, None]
            t = (cx - px) * (cx - qx) + (cy - py) * (cy - qy)
            hit |= (t < 0.0).any(axis=0)
        return [self._keys[i] for i in np.nonzero(hit)[0]]


class DynamicArrayRCJ:
    """The RCJ result maintained under updates, columnar backend.

    Implements the same contract as
    :class:`repro.core.dynamic.DynamicRCJ` (the
    :class:`~repro.core.dynamic.DynamicBackend` protocol) and produces
    the exact same pair set after every update, but answers each update
    with batched kernel work over resident columns instead of pointwise
    R-tree traversals:

    - insertion kill-sets come from one vectorized ring-containment
      scan (:class:`_RingColumns`);
    - insertion partners come from the engine's candidate kernels
      (:func:`~repro.engine.kernels.knn_candidate_blocks` with the new
      point as the sole probe);
    - deletion's freed-pair candidates come from the same
      Voronoi-horizon argument as the object backend — stream union
      neighbours in ascending distance (batched KD queries with a
      doubling window) while clipping the departed point's cell; once
      the next neighbour is beyond twice the farthest cell vertex, no
      Delaunay neighbour remains — crossed and filtered vectorized;
    - every candidate batch is settled by
      :func:`~repro.engine.kernels.verify_rings_batch` against the live
      union, the engine's exact predicate.

    Parameters mirror :class:`~repro.core.dynamic.DynamicRCJ`
    (``bounds`` seeds the deletion clip box; points outside remain
    legal).  ``oid`` values must be unique within each side.
    """

    def __init__(
        self,
        points_p=(),
        points_q=(),
        bounds: Rect | None = None,
    ):
        self.bounds = bounds if bounds is not None else Rect(0, 0, 10000, 10000)
        self._p = _SideColumns(points_p)
        self._q = _SideColumns(points_q)
        self._pairs: dict[tuple[int, int], RCJPair] = {}
        self._rings = _RingColumns()
        #: Lifetime maintenance accounting of the batch path.
        self.stats = {"batches": 0, "events": 0, "rebuilds": 0}
        #: Set by :func:`repro.engine.planner.make_dynamic` on planned
        #: (``backend="auto"``) instances: batches then feed the
        #: calibration observation log.
        self.record_calibration = False
        #: Root span of the last ``apply_batch`` (None when tracing is
        #: off) — the CLI's ``--trace`` sink reads it after each batch.
        self.last_batch_trace = None
        #: Per-stage wall seconds of the last ``apply_batch``.
        self.last_batch_stages: dict[str, float] = {}
        if len(self._p) and len(self._q):
            parr, qarr = self._p.array(), self._q.array()
            p_idx, q_idx, _ = rcj_pair_indices(parr, qarr)
            for pi, qi in zip(p_idx.tolist(), q_idx.tolist()):
                self._store(RCJPair(self._p.point(pi), self._q.point(qi)))

    # ------------------------------------------------------------------
    # result access (DynamicBackend)
    # ------------------------------------------------------------------
    @property
    def pairs(self) -> list[RCJPair]:
        """The current RCJ result (unordered)."""
        return list(self._pairs.values())

    def pair_keys(self) -> set[tuple[int, int]]:
        """Identity set of the current result."""
        return set(self._pairs)

    def __len__(self) -> int:
        return len(self._pairs)

    # ------------------------------------------------------------------
    # updates (DynamicBackend)
    # ------------------------------------------------------------------
    def insert(self, point: Point, side: Side) -> None:
        """Add ``point`` to dataset ``side`` and repair the result."""
        own, other = self._sides(side)
        with obs_trace("dynamic-insert", backend="array", side=side):
            own.insert(point)
            # (i) Kill every pair whose ring strictly contains the
            # point: one vectorized exact-predicate scan over the ring
            # columns.
            killed = self._rings.keys_containing(point.x, point.y)
            for key in killed:
                self._drop(key)
            add_counter("killed", len(killed))
            # (ii) New pairs all involve the new point; partners come
            # from the batch candidate kernels with the point as the
            # sole probe (a superset of the true partners — blockers
            # drawn from the partner side only), verified exactly
            # against the live union.
            if not len(other):
                return
            other_arr = other.array()
            probe = PointArray(
                np.array([point.x]), np.array([point.y]), np.array([point.oid])
            )
            _q_idx, partner_idx = knn_candidate_blocks(
                other_arr, probe, tree_p=other.tree()
            )
            if not partner_idx.size:
                return
            zx = np.full(partner_idx.size, point.x)
            zy = np.full(partner_idx.size, point.y)
            ox = other_arr.x[partner_idx]
            oy = other_arr.y[partner_idx]
            if side == "P":
                px, py, qx, qy = zx, zy, ox, oy
            else:
                px, py, qx, qy = ox, oy, zx, zy
            union_tree, ux, uy = self._union()
            alive = verify_rings_batch(px, py, qx, qy, union_tree, ux, uy)
            for row in partner_idx[alive].tolist():
                partner = other.point(row)
                pair = (
                    RCJPair(point, partner)
                    if side == "P"
                    else RCJPair(partner, point)
                )
                self._store(pair)
            add_counter("added", int(alive.sum()))

    def delete(self, point: Point, side: Side) -> bool:
        """Remove ``point`` from dataset ``side`` and repair the result.

        Raises a named ``KeyError`` (and changes nothing) when no point
        with that oid lives on ``side``; returns True on success.
        """
        own, _other = self._sides(side)
        if not own.has(point.oid):
            raise KeyError(
                f"no point with oid {point.oid} on side {side!r}"
            )
        with obs_trace("dynamic-delete", backend="array", side=side):
            victim = own.pop(point.oid)
            # (i) Pairs involving the departed point die.
            killed = self._rings.keys_involving(point.oid, side)
            for key in killed:
                self._drop(key)
            add_counter("killed", len(killed))
            if not len(self._p) or not len(self._q):
                return True
            # (ii) Pairs freed by the departure: both endpoints are
            # Delaunay neighbours of the departed point in the remaining
            # union.  One union tree serves both the horizon stream and
            # verification.
            union = self._union()
            neighborhood = self._neighborhood(victim, union)
            if neighborhood is None:
                # A coincident twin remains: every ring that contained
                # the departed point still contains the twin.
                return True
            near_p = [z for z, z_side in neighborhood if z_side == "P"]
            near_q = [z for z, z_side in neighborhood if z_side == "Q"]
            if not near_p or not near_q:
                return True
            px = np.fromiter(
                (z.x for z in near_p), np.float64, count=len(near_p)
            )
            py = np.fromiter(
                (z.y for z in near_p), np.float64, count=len(near_p)
            )
            qx = np.fromiter(
                (z.x for z in near_q), np.float64, count=len(near_q)
            )
            qy = np.fromiter(
                (z.y for z in near_q), np.float64, count=len(near_q)
            )
            # Cross the two neighbour sets and keep only rings the
            # departed point blocked — the exact dot predicate,
            # vectorized.
            n_pn, n_qn = len(near_p), len(near_q)
            pi = np.repeat(np.arange(n_pn), n_qn)
            qi = np.tile(np.arange(n_qn), n_pn)
            cx, cy = px[pi], py[pi]
            dx, dy = qx[qi], qy[qi]
            blocked = (victim.x - cx) * (victim.x - dx) + (
                victim.y - cy
            ) * (victim.y - dy) < 0.0
            fresh = np.fromiter(
                (
                    (near_p[a].oid, near_q[b].oid) not in self._pairs
                    for a, b in zip(pi.tolist(), qi.tolist())
                ),
                bool,
                count=len(pi),
            )
            keep = blocked & fresh
            pi, qi = pi[keep], qi[keep]
            if not pi.size:
                return True
            union_tree, ux, uy = union
            alive = verify_rings_batch(
                px[pi], py[pi], qx[qi], qy[qi], union_tree, ux, uy
            )
            for a, b in zip(pi[alive].tolist(), qi[alive].tolist()):
                self._store(RCJPair(near_p[a], near_q[b]))
            add_counter("freed", int(alive.sum()))
        return True

    # ------------------------------------------------------------------
    # batched updates (DynamicBackend)
    # ------------------------------------------------------------------
    def apply_batch(self, inserts=(), deletes=()) -> None:
        """Absorb one update batch with amortized maintenance.

        ``inserts`` / ``deletes`` are sequences of ``(point, side)``;
        deletes apply before inserts, so deleting and re-inserting one
        oid in a batch is a "move".  After validation
        (:func:`~repro.core.dynamic.validate_batch` — atomic, nothing
        mutates on a malformed batch) the whole batch is absorbed with
        *no* per-event column compaction or KD-tree rebuild:

        - deletes become lazy tombstones — the stale per-side KD-trees
          stay up, dead rows masked out of candidate blocks
          (``blocker_alive`` in the verify kernel);
        - inserts land in small per-side buffers probed exactly;
        - freed-pair candidates come from each victim's Voronoi
          neighbourhood over the *final* union view (for a ring freed by
          a deletion, both endpoints are Delaunay neighbours of the
          departed point in ``final ∪ {victim}`` — the witness circles
          lie inside the ring, empty of the final union), filtered by
          the exact "ring strictly contained the victim" predicate;
        - new-pair candidates come from each inserted point's Voronoi
          neighbourhood (opposite side);
        - one exact verification pass over the composite view (stale
          trees with liveness masks + buffers, identical IEEE predicate
          term order) settles all candidates — byte-identical survivors
          to the per-event oracle;
        - at most one compaction + KD-tree rebuild per side runs at the
          end, and only past a tombstone-fraction or buffer-size
          threshold (``REPRO_DYN_TOMBSTONE_FRAC`` /
          ``REPRO_DYN_BUFFER_CAP``).
        """
        inserts = [(point, side) for point, side in inserts]
        deletes = [(point, side) for point, side in deletes]
        validate_batch(
            inserts,
            deletes,
            lambda side, oid: self._sides(side)[0].has(oid),
        )
        t0 = time.perf_counter()
        stages: dict[str, float] = {}
        with obs_trace(
            "dynamic-batch",
            backend="array",
            n_inserts=len(inserts),
            n_deletes=len(deletes),
        ) as root:
            self._apply_batch_inner(inserts, deletes, stages)
            if root is not None:
                root.add("pairs", len(self._pairs))
                root.set(
                    tombstones=self._p.tombstones + self._q.tombstones,
                    buffered=self._p.buffered + self._q.buffered,
                )
        self.stats["batches"] += 1
        self.stats["events"] += len(inserts) + len(deletes)
        self.last_batch_trace = root
        self.last_batch_stages = stages
        self._record_batch(
            len(inserts) + len(deletes), time.perf_counter() - t0, stages
        )

    def _apply_batch_inner(self, inserts, deletes, stages) -> None:
        # -- kill stage: tombstone victims, drop their pairs, buffer
        # the inserts, and kill pre-batch pairs an insert landed in.
        victims: list[tuple[Point, Side]] = []
        with stage_timer(stages, "kill"):
            dead_oids: dict[Side, list[int]] = {"P": [], "Q": []}
            for point, side in deletes:
                own, _other = self._sides(side)
                victims.append((own.tombstone(point.oid), side))
                dead_oids[side].append(point.oid)
            kill_set = 0
            for side in ("P", "Q"):
                keys = self._rings.keys_involving_any(dead_oids[side], side)
                kill_set += len(keys)
                for key in keys:
                    self._drop(key)
            for point, side in inserts:
                self._sides(side)[0].buffer_insert(point)
            if inserts:
                ix = np.fromiter(
                    (p.x for p, _ in inserts), np.float64, count=len(inserts)
                )
                iy = np.fromiter(
                    (p.y for p, _ in inserts), np.float64, count=len(inserts)
                )
                keys = self._rings.keys_containing_any(ix, iy)
                kill_set += len(keys)
                for key in keys:
                    self._drop(key)
            add_counter("killed", kill_set)
        # -- probe stage: freed-pair candidates per victim, new-pair
        # candidates per insert, all over one final-union view.
        if len(self._p) and len(self._q):
            sources = self._union_sources()
            candidates: dict[tuple[int, int], RCJPair] = {}
            with stage_timer(stages, "probe"):
                for victim, side in victims:
                    self._probe_victim(victim, sources, candidates)
                for point, side in inserts:
                    self._probe_insert(point, side, sources, candidates)
            add_counter("candidates", len(candidates))
            # -- verify stage: one exact pass settles every candidate.
            if candidates:
                with stage_timer(stages, "verify"):
                    pairs = list(candidates.values())
                    m = len(pairs)
                    px = np.fromiter(
                        (pr.p.x for pr in pairs), np.float64, count=m
                    )
                    py = np.fromiter(
                        (pr.p.y for pr in pairs), np.float64, count=m
                    )
                    qx = np.fromiter(
                        (pr.q.x for pr in pairs), np.float64, count=m
                    )
                    qy = np.fromiter(
                        (pr.q.y for pr in pairs), np.float64, count=m
                    )
                    alive = self._verify_sources(px, py, qx, qy, sources)
                    for j in np.nonzero(alive)[0].tolist():
                        self._store(pairs[j])
                    add_counter("added", int(alive.sum()))
        # -- rebuild stage: at most one compaction + rebuild per side.
        with stage_timer(stages, "rebuild"):
            self._maybe_compact()

    def _probe_victim(self, victim: Point, sources, candidates) -> None:
        """Freed-pair candidates of one deleted point over the final
        union view: cross the P/Q split of its Voronoi neighbourhood,
        keep rings it strictly blocked."""
        neighborhood = self._batch_neighborhood(
            victim, sources, stop_on_coincident=True
        )
        if neighborhood is None:
            # A coincident live point remains: every ring that contained
            # the victim still contains that point — nothing is freed.
            return
        near_p = [z for z, z_side in neighborhood if z_side == "P"]
        near_q = [z for z, z_side in neighborhood if z_side == "Q"]
        if not near_p or not near_q:
            return
        px = np.fromiter((z.x for z in near_p), np.float64, count=len(near_p))
        py = np.fromiter((z.y for z in near_p), np.float64, count=len(near_p))
        qx = np.fromiter((z.x for z in near_q), np.float64, count=len(near_q))
        qy = np.fromiter((z.y for z in near_q), np.float64, count=len(near_q))
        n_pn, n_qn = len(near_p), len(near_q)
        pi = np.repeat(np.arange(n_pn), n_qn)
        qi = np.tile(np.arange(n_qn), n_pn)
        blocked = (victim.x - px[pi]) * (victim.x - qx[qi]) + (
            victim.y - py[pi]
        ) * (victim.y - qy[qi]) < 0.0
        for a, b in zip(pi[blocked].tolist(), qi[blocked].tolist()):
            key = (near_p[a].oid, near_q[b].oid)
            if key in self._pairs or key in candidates:
                continue
            candidates[key] = RCJPair(near_p[a], near_q[b])

    def _probe_insert(
        self, point: Point, side: Side, sources, candidates
    ) -> None:
        """New-pair candidates of one inserted point: its opposite-side
        Voronoi neighbours over the final union view (a verified pair's
        ring is empty of the final union, so its endpoints are Delaunay
        neighbours there — the neighbourhood is a superset)."""
        neighborhood = self._batch_neighborhood(
            point,
            sources,
            stop_on_coincident=False,
            exclude=(side, point.oid),
        )
        other_side: Side = "Q" if side == "P" else "P"
        for z, z_side in neighborhood:
            if z_side != other_side:
                continue
            pair = RCJPair(point, z) if side == "P" else RCJPair(z, point)
            key = pair.key()
            if key in self._pairs or key in candidates:
                continue
            candidates[key] = pair

    def _union_sources(self) -> list[tuple]:
        """The composite final-union view the batch path probes and
        verifies against: per side, the stale main tree with its
        liveness mask, plus the exact insert buffer."""
        sources: list[tuple] = []
        for side, cols in (("P", self._p), ("Q", self._q)):
            tree = cols.main_tree()
            if tree is not None:
                sources.append(
                    (
                        "tree",
                        side,
                        cols,
                        tree,
                        cols.main_array(),
                        cols.alive_main(),
                    )
                )
            buf = cols.buffer_points()
            if buf:
                bx = np.fromiter(
                    (p.x for p in buf), np.float64, count=len(buf)
                )
                by = np.fromiter(
                    (p.y for p in buf), np.float64, count=len(buf)
                )
                sources.append(("buffer", side, cols, buf, bx, by))
        return sources

    def _verify_sources(self, px, py, qx, qy, sources) -> np.ndarray:
        """Exact ring verification against the composite union view.

        Conjunction over sources: main tiers go through the batch verify
        kernel with their liveness mask, buffers through a chunked
        broadcast of the same IEEE predicate term order — together
        exactly one verification against the full live union."""
        alive = np.ones(len(px), dtype=bool)
        for src in sources:
            if not alive.any():
                break
            if src[0] == "tree":
                _tag, _side, _cols, tree, arr, mask = src
                if not mask.any():
                    continue
                blocker = None if mask.all() else mask
                alive &= verify_rings_batch(
                    px, py, qx, qy, tree, arr.x, arr.y,
                    blocker_alive=blocker,
                )
            else:
                _tag, _side, _cols, _buf, bx, by = src
                m = len(px)
                chunk = max(1, (1 << 22) // max(1, len(bx)))
                for s in range(0, m, chunk):
                    e = min(s + chunk, m)
                    t = (bx - px[s:e, None]) * (bx - qx[s:e, None]) + (
                        by - py[s:e, None]
                    ) * (by - qy[s:e, None])
                    alive[s:e] &= ~(t < 0.0).any(axis=1)
        return alive

    def _batch_neighborhood(
        self,
        x: Point,
        sources,
        stop_on_coincident: bool,
        exclude: tuple[Side, int] | None = None,
    ) -> list[tuple[Point, Side]] | None:
        """Voronoi neighbourhood of ``x`` over the composite view —
        ascending-distance streams from each source, heap-merged into
        the shared clip loop.  ``exclude`` drops one ``(side, oid)``
        (an inserted point probing for its own partners)."""
        span = [
            self.bounds.xmin,
            self.bounds.ymin,
            self.bounds.xmax,
            self.bounds.ymax,
        ]
        for src in sources:
            if src[0] == "tree":
                arr = src[4]
                if len(arr.x):
                    # Dead rows inflate the box — a larger clip box only
                    # enlarges the starting horizon; conservative.
                    span[0] = min(span[0], float(arr.x.min()))
                    span[1] = min(span[1], float(arr.y.min()))
                    span[2] = max(span[2], float(arr.x.max()))
                    span[3] = max(span[3], float(arr.y.max()))
            else:
                bx, by = src[4], src[5]
                span[0] = min(span[0], float(bx.min()))
                span[1] = min(span[1], float(by.min()))
                span[2] = max(span[2], float(bx.max()))
                span[3] = max(span[3], float(by.max()))
        span[0] = min(span[0], x.x)
        span[1] = min(span[1], x.y)
        span[2] = max(span[2], x.x)
        span[3] = max(span[3], x.y)
        streams = [
            self._tree_stream(x, src, exclude)
            if src[0] == "tree"
            else self._buffer_stream(x, src, exclude)
            for src in sources
        ]
        merged = heapq.merge(*streams, key=lambda t: t[0])
        return _voronoi_neighborhood(
            x, merged, span, stop_on_coincident=stop_on_coincident
        )

    @staticmethod
    def _tree_stream(x: Point, src, exclude):
        """Live main-tier points in ascending distance from ``x``
        (doubling-k KD queries over the stale tree, dead rows skipped)."""
        _tag, side, cols, tree, _arr, mask = src
        n_main = cols.main_count
        done = 0
        k = 32
        while True:
            kk = min(k, n_main)
            dist, idx = tree.query([x.x, x.y], k=kk)
            dist = np.atleast_1d(dist)
            idx = np.atleast_1d(idx)
            for d, row in zip(dist[done:].tolist(), idx[done:].tolist()):
                if not mask[row]:
                    continue
                z = cols.point(row)
                if (
                    exclude is not None
                    and side == exclude[0]
                    and z.oid == exclude[1]
                ):
                    continue
                yield float(d), z, side
            if kk == n_main:
                return
            done = kk
            k *= 2

    @staticmethod
    def _buffer_stream(x: Point, src, exclude):
        """Buffered inserts in ascending distance from ``x``."""
        _tag, side, _cols, buf, bx, by = src
        d = np.hypot(bx - x.x, by - x.y)
        for j in np.argsort(d, kind="stable").tolist():
            z = buf[j]
            if (
                exclude is not None
                and side == exclude[0]
                and z.oid == exclude[1]
            ):
                continue
            yield float(d[j]), z, side

    def _maybe_compact(self) -> int:
        """Flush a side's lazy state when it crossed a threshold — the
        at-most-one compaction + KD-tree rebuild per side per batch."""
        frac = _tombstone_frac()
        cap = _buffer_cap()
        rebuilds = 0
        for cols in (self._p, self._q):
            if cols.needs_compaction(frac, cap) and cols.flush():
                cols.tree()  # rebuild now so the cost lands in "rebuild"
                rebuilds += 1
        self.stats["rebuilds"] += rebuilds
        add_counter("rebuilds", rebuilds)
        return rebuilds

    def maintenance_stats(self) -> dict:
        """Lifetime batch accounting plus the current lazy state."""
        return {
            **self.stats,
            "tombstones": self._p.tombstones + self._q.tombstones,
            "buffered": self._p.buffered + self._q.buffered,
        }

    def _record_batch(self, batch_size, seconds, stages) -> None:
        """Feed one batch to the calibration log (planned instances
        only; exception-fenced like every calibration hook)."""
        if not getattr(self, "record_calibration", False):
            return
        try:
            from repro.calibration.observations import record_observation
            from repro.parallel.costmodel import estimate_bytes

            n_p, n_q = len(self._p), len(self._q)
            record_observation(
                kind="dynamic",
                engine="array",
                workers=1,
                n_p=n_p,
                n_q=n_q,
                density_factor=1.0,
                est_candidates=batch_size,
                est_bytes=estimate_bytes(n_p, n_q, 1, 0),
                stage_seconds=dict(stages) or None,
                total_seconds=seconds,
            )
        except Exception:
            pass

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _sides(self, side: Side) -> tuple[_SideColumns, _SideColumns]:
        if side == "P":
            return self._p, self._q
        if side == "Q":
            return self._q, self._p
        raise ValueError(f"side must be 'P' or 'Q', got {side!r}")

    def _store(self, pair: RCJPair) -> None:
        key = pair.key()
        if key in self._pairs:
            return
        self._pairs[key] = pair
        self._rings.add(key, pair)

    def _drop(self, key: tuple[int, int]) -> None:
        if self._pairs.pop(key, None) is not None:
            self._rings.remove(key)

    def _union(self) -> tuple[cKDTree, np.ndarray, np.ndarray]:
        parr, qarr = self._p.array(), self._q.array()
        ux = np.concatenate((parr.x, qarr.x))
        uy = np.concatenate((parr.y, qarr.y))
        return cKDTree(np.column_stack((ux, uy))), ux, uy

    def _neighborhood(
        self, x: Point, union: tuple[cKDTree, np.ndarray, np.ndarray]
    ) -> list[tuple[Point, Side]] | None:
        """Candidate endpoints for pairs freed by deleting ``x``.

        The object backend's Voronoi-horizon stream
        (:meth:`repro.core.dynamic.DynamicRCJ._neighborhood`) over the
        columnar union (``union`` is the caller's already-built
        :meth:`_union` triple): neighbours arrive in ascending distance
        from batched KD-tree queries with a doubling window instead of
        the merged R-tree heaps.  Returns None when a remaining point
        coincides with ``x``.
        """
        n_p = len(self._p)
        union_tree, ux, uy = union
        n_union = len(ux)

        span = [
            self.bounds.xmin,
            self.bounds.ymin,
            self.bounds.xmax,
            self.bounds.ymax,
        ]
        span[0] = min(span[0], float(ux.min()), x.x)
        span[1] = min(span[1], float(uy.min()), x.y)
        span[2] = max(span[2], float(ux.max()), x.x)
        span[3] = max(span[3], float(uy.max()), x.y)

        def stream():
            done = 0
            k = 32
            while True:
                kk = min(k, n_union)
                dist, idx = union_tree.query([x.x, x.y], k=kk)
                dist = np.atleast_1d(dist)
                idx = np.atleast_1d(idx)
                for d, row in zip(
                    dist[done:].tolist(), idx[done:].tolist()
                ):
                    z_side: Side = "P" if row < n_p else "Q"
                    z = (
                        self._p.point(row)
                        if row < n_p
                        else self._q.point(row - n_p)
                    )
                    yield float(d), z, z_side
                if kk == n_union:
                    return
                done = kk
                k *= 2

        return _voronoi_neighborhood(x, stream(), span)

    def __repr__(self) -> str:
        return (
            f"DynamicArrayRCJ(|P|={len(self._p)}, |Q|={len(self._q)}, "
            f"pairs={len(self._pairs)})"
        )
