"""Composable columnar operator stages: the engine's join algebra.

The batch kernels of :mod:`repro.engine.kernels` run the RCJ as one
monolithic call.  This module factors the same execution substrate —
KD-tree candidate generation, blocked exact filters, Ψ− pruning, batch
verification — into *operator stages* that consume and produce columnar
candidate blocks, so a join family is a declared
``Pipeline(source, stages, sink)`` rather than a bespoke traversal:

========================= ============================================
operator                  role
========================= ============================================
:class:`RangeSource`      candidates within a radius (ε-join)
:class:`KnnSource`        tie-canonical k-NN candidates (kNN-join)
:class:`BandSource`       expanding-radius bands in ascending distance
                          (k-closest-pairs / streamed RCJ; the PR 5
                          resume-cursor enumeration as a source stage)
:class:`CellOverlapSource` Voronoi-cell bbox overlaps (common
                          influence join)
:class:`DistanceFilter`   exact ``d² <= ε²`` cut over a block
:class:`SameOidFilter`    self-join identity filter
:class:`PsiPruneFilter`   blocked Ψ− half-plane pruning
:class:`VerifyRings`      batch ring-emptiness verification
:class:`PolygonIntersectVerify` exact convex-SAT verification (CIJ)
:class:`CollectAll`       sink: all pairs, canonical ``(p.oid, q.oid)``
:class:`TakeSmallest`     sink: ``k`` smallest distances, early stop
========================= ============================================

Exactness contract (inherited from the kernels): sources over-enumerate
but never miss — every ball query and escalation carries a margin
dominating its floating-point error — while filters and verifiers
evaluate the *same IEEE expressions* as the pointwise oracles
(``dx*dx + dy*dy`` distances, the ``(s-p)·(s-q)`` ring predicate, the
closed-bbox/SAT cell test).  A pipeline's pair set is therefore
identical to its oracle's; the cross-family equivalence suite pins
this.

Blocks flow lazily: a source yields bounded
:class:`CandidateBlock`\\ s, every stage transforms one block at a
time, and sinks may stop the source early (``TakeSmallest`` closes the
band enumeration after the ``k``-th completed band).  Each stage's wall
time accumulates under its name in ``JoinContext.stage_seconds`` — the
per-stage measurement record the planner attaches to
:attr:`~repro.core.pairs.JoinReport.stage_seconds`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np
from scipy.spatial import cKDTree

from repro.engine.arrays import PointArray
from repro.engine.kernels import (
    halfplane_prune_pairs,
    stage_timer,
    verify_rings_batch,
)
from repro.obs.trace import add_counter

#: Probe points per ball-query / KNN block.
_PROBE_BLOCK = 8192

#: Relative inflation of every conservative ball-query radius: the
#: query must never *miss* a boundary member to rounding; the exact
#: filter downstream keeps the final say.
_QUERY_INFLATION = 1e-9

#: Ψ− pruners per candidate (probe's nearest inner-side neighbours).
_PRUNERS = 8

#: Pairs a single expanding band may enumerate before the band is
#: halved (memory bound of the band enumeration).
_MAX_BAND_PAIRS = 262_144

#: Growth factor of the expanding band radius.
_BAND_GROWTH = 2.0

#: Bisection steps when shrinking an over-full band; a band of
#: exactly-tied distances cannot be split, so the shrink is best-effort
#: and an over-full band is processed whole rather than dropped.
_MAX_BAND_SHRINKS = 24


def _coord_scale(*arrays: np.ndarray) -> float:
    """Magnitude scale of the input coordinates (>= 1), the basis of
    every absolute inflation margin."""
    scale = 1.0
    for arr in arrays:
        if len(arr):
            scale = max(scale, float(np.abs(arr).max()))
    return scale


def _flatten_ball_lists(lists, count: int) -> tuple[np.ndarray, np.ndarray]:
    """CSR-flatten ``query_ball_point`` output into ``(flat, counts)``."""
    counts = np.fromiter((len(lst) for lst in lists), np.int64, count=count)
    total = int(counts.sum())
    flat = np.empty(total, dtype=np.int64)
    pos = 0
    for lst in lists:
        n = len(lst)
        if n:
            flat[pos : pos + n] = lst
            pos += n
    return flat, counts


@dataclass
class CandidateBlock:
    """One columnar batch of candidate pairs flowing through a pipeline.

    ``p_idx`` / ``q_idx`` are aligned row indices into the context's
    ``parr`` / ``qarr``.  ``d_sq`` (optional) carries the exact squared
    pair distances ``dx*dx + dy*dy`` when a stage has computed them.
    ``complete_to`` (optional, sources that enumerate in ascending
    distance) asserts that *every* pair with ``d_sq <= complete_to``
    has been emitted in this or an earlier block — the completeness
    certificate :class:`TakeSmallest` needs to stop early.
    """

    p_idx: np.ndarray
    q_idx: np.ndarray
    d_sq: np.ndarray | None = None
    complete_to: float | None = None

    def __len__(self) -> int:
        return len(self.p_idx)

    @staticmethod
    def empty() -> "CandidateBlock":
        return CandidateBlock(
            np.empty(0, np.int64), np.empty(0, np.int64),
            np.empty(0, np.float64),
        )


class JoinContext:
    """Shared execution state of one pipeline run.

    Holds the two columnar pointsets, lazily built (and cached) query
    structures, the per-stage wall-time accumulator and the candidate
    counters.  For the common-influence pipeline it also carries the
    object-level pointsets (Voronoi construction is geometric, not
    columnar) and the computed cells.
    """

    def __init__(
        self,
        parr: PointArray,
        qarr: PointArray,
        stage_seconds: dict | None = None,
        counters: dict | None = None,
        points_p: Sequence | None = None,
        points_q: Sequence | None = None,
    ):
        self.parr = parr
        self.qarr = qarr
        self.stage_seconds = {} if stage_seconds is None else stage_seconds
        self.counters = {} if counters is None else counters
        self._points_p = list(points_p) if points_p is not None else None
        self._points_q = list(points_q) if points_q is not None else None
        self._tree_p: cKDTree | None = None
        self._tree_q: cKDTree | None = None
        self._union: tuple[cKDTree, np.ndarray, np.ndarray] | None = None
        self.extra: dict = {}

    # -- lazy query structures (built inside the requesting stage's
    # timer, so construction cost lands on the stage that needed it) --
    def tree_p(self) -> cKDTree:
        if self._tree_p is None:
            self._tree_p = cKDTree(self.parr.coords())
        return self._tree_p

    def tree_q(self) -> cKDTree:
        if self._tree_q is None:
            self._tree_q = cKDTree(self.qarr.coords())
        return self._tree_q

    def set_tree_p(self, tree: cKDTree) -> None:
        """Adopt a prebuilt KD-tree over ``parr`` (parallel workers
        build it once per process)."""
        self._tree_p = tree

    def set_tree_q(self, tree: cKDTree) -> None:
        """Adopt a prebuilt KD-tree over ``qarr``."""
        self._tree_q = tree

    def union(self) -> tuple[cKDTree, np.ndarray, np.ndarray]:
        """``(union_tree, ux, uy)`` over both pointsets (verification)."""
        if self._union is None:
            ux = np.concatenate((self.parr.x, self.qarr.x))
            uy = np.concatenate((self.parr.y, self.qarr.y))
            self._union = (cKDTree(np.column_stack((ux, uy))), ux, uy)
        return self._union

    def points_p(self) -> list:
        if self._points_p is None:
            self._points_p = self.parr.to_points()
        return self._points_p

    def points_q(self) -> list:
        if self._points_q is None:
            self._points_q = self.qarr.to_points()
        return self._points_q


# ----------------------------------------------------------------------
# operator base classes
# ----------------------------------------------------------------------

class Operator:
    """Base of every pipeline operator; ``name`` keys the stage timer."""

    name = "op"

    def describe(self) -> str:
        """One token for the pipeline's ``--explain`` rendering."""
        return self.name


class Source(Operator):
    """Produces candidate blocks from the context's pointsets."""

    def blocks(self, ctx: JoinContext) -> Iterator[CandidateBlock]:
        raise NotImplementedError


class Stage(Operator):
    """Transforms one candidate block (filter, prune, verify)."""

    def apply(self, ctx: JoinContext, block: CandidateBlock) -> CandidateBlock:
        raise NotImplementedError


class Sink(Operator):
    """Accumulates blocks into the pipeline result.  Stateful:
    construct a fresh pipeline (hence a fresh sink) per run."""

    name = "collect"

    def collect(self, ctx: JoinContext, block: CandidateBlock) -> None:
        raise NotImplementedError

    def done(self) -> bool:
        """True once the sink needs no further blocks (early stop)."""
        return False

    def finish(self, ctx: JoinContext) -> CandidateBlock:
        raise NotImplementedError


# ----------------------------------------------------------------------
# sources
# ----------------------------------------------------------------------

class RangeSource(Source):
    """All pairs within (a conservatively inflated) ``eps`` — the
    ε-join candidate generator.

    One sparse fixed-radius tree-vs-tree query per probe batch: each
    block builds a small KD-tree over its ``qarr`` probe rows and joins
    it against the tree over ``parr`` with
    ``cKDTree.sparse_distance_matrix`` (all-C enumeration — measurably
    faster than per-probe ball queries plus Python-level flattening).
    Over-enumerates by the query inflation only; the exact cut is
    :class:`DistanceFilter`'s job.  ``probes`` restricts the probe rows
    (the parallel shards' seam).
    """

    name = "range"

    def __init__(self, eps: float, probes: np.ndarray | None = None):
        if eps < 0:
            raise ValueError(f"negative epsilon {eps}")
        self.eps = float(eps)
        self.probes = probes

    def describe(self) -> str:
        return f"range(eps={self.eps:g})"

    def blocks(self, ctx: JoinContext) -> Iterator[CandidateBlock]:
        n_p, n_q = len(ctx.parr), len(ctx.qarr)
        if n_p == 0 or n_q == 0:
            return
        with stage_timer(ctx.stage_seconds, self.name):
            tree_p = ctx.tree_p()
            scale = _coord_scale(ctx.parr.x, ctx.parr.y, ctx.qarr.x, ctx.qarr.y)
            r_query = self.eps * (1.0 + _QUERY_INFLATION) + 1e-12 * scale
            probes = (
                np.arange(n_q, dtype=np.int64)
                if self.probes is None
                else np.asarray(self.probes, dtype=np.int64)
            )
        for bstart in range(0, probes.size, _PROBE_BLOCK):
            with stage_timer(ctx.stage_seconds, self.name):
                rows = probes[bstart : bstart + _PROBE_BLOCK]
                probe_tree = cKDTree(
                    np.column_stack((ctx.qarr.x[rows], ctx.qarr.y[rows]))
                )
                entries = probe_tree.sparse_distance_matrix(
                    tree_p, r_query, output_type="ndarray"
                )
                if not entries.size:
                    continue
                q_idx = rows[entries["i"].astype(np.int64)]
                p_idx = entries["j"].astype(np.int64)
                block = CandidateBlock(p_idx, q_idx)
            yield block


class KnnSource(Source):
    """Tie-canonical ``k``-nearest-neighbour candidates — the kNN-join
    candidate generator.

    Probes ``parr`` rows against the KD-tree over ``qarr`` (the join's
    asymmetry: neighbours come from ``Q``).  Per probe the ``k``
    winners are ranked by exact squared distance with ties broken by
    ascending ``q.oid`` — :func:`repro.joins.knn.canonical_knn`'s rule,
    evaluated blockwise.  A ``k+1``-wide KD window decides the cut;
    probes whose window boundary ties (within a rounding-dominating
    margin) escalate to an exact ball query, so the canonical cut never
    depends on KD-tree traversal order.
    """

    name = "knn"

    def __init__(self, k: int, probes: np.ndarray | None = None):
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        self.k = int(k)
        self.probes = probes

    def describe(self) -> str:
        return f"knn(k={self.k})"

    def blocks(self, ctx: JoinContext) -> Iterator[CandidateBlock]:
        n_p, n_q = len(ctx.parr), len(ctx.qarr)
        if n_p == 0 or n_q == 0:
            return
        k = min(self.k, n_q)
        with stage_timer(ctx.stage_seconds, self.name):
            tree_q = ctx.tree_q()
            scale = _coord_scale(ctx.parr.x, ctx.parr.y, ctx.qarr.x, ctx.qarr.y)
            abs_margin = (1e-9 * scale) ** 2
            probes = (
                np.arange(n_p, dtype=np.int64)
                if self.probes is None
                else np.asarray(self.probes, dtype=np.int64)
            )
        for bstart in range(0, probes.size, _PROBE_BLOCK):
            with stage_timer(ctx.stage_seconds, self.name):
                rows = probes[bstart : bstart + _PROBE_BLOCK]
                block = self._block(ctx, tree_q, rows, k, n_q, abs_margin)
            yield block

    def _block(
        self,
        ctx: JoinContext,
        tree_q: cKDTree,
        rows: np.ndarray,
        k: int,
        n_q: int,
        abs_margin: float,
    ) -> CandidateBlock:
        px = ctx.parr.x[rows]
        py = ctx.parr.y[rows]
        window = min(k + 1, n_q)
        dist, nidx = tree_q.query(np.column_stack((px, py)), k=window)
        if window == 1:
            dist, nidx = dist[:, None], nidx[:, None]
        # Exact squared distances and canonical (d_sq, oid) row order.
        dx = ctx.qarr.x[nidx] - px[:, None]
        dy = ctx.qarr.y[nidx] - py[:, None]
        d_sq = dx * dx + dy * dy
        noid = ctx.qarr.oid[nidx]
        order = np.lexsort((noid, d_sq), axis=-1)
        d_sorted = np.take_along_axis(d_sq, order, axis=-1)
        idx_sorted = np.take_along_axis(nidx, order, axis=-1)

        if window > k:
            # Boundary ties (or rounding collisions with points outside
            # the window) escalate to an exact ball query.
            cut = d_sorted[:, k - 1]
            escalate = d_sorted[:, k] <= cut * (1.0 + _QUERY_INFLATION) + abs_margin
        else:
            escalate = np.zeros(rows.size, dtype=bool)

        out_p: list[np.ndarray] = []
        out_q: list[np.ndarray] = []
        out_d: list[np.ndarray] = []
        plain = ~escalate
        if plain.any():
            take = min(k, window)
            out_p.append(np.repeat(rows[plain], take))
            out_q.append(idx_sorted[plain, :take].ravel().astype(np.int64))
            out_d.append(d_sorted[plain, :take].ravel())
        for row in np.nonzero(escalate)[0]:
            cut = float(d_sorted[row, k - 1])
            r = float(np.sqrt(cut)) * (1.0 + _QUERY_INFLATION) + 1e-9 * float(
                np.sqrt(abs_margin) if abs_margin > 0 else 0.0
            ) + 1e-12
            near = np.asarray(
                tree_q.query_ball_point(
                    [float(px[row]), float(py[row])], r, return_sorted=False
                ),
                dtype=np.int64,
            )
            ddx = ctx.qarr.x[near] - px[row]
            ddy = ctx.qarr.y[near] - py[row]
            dd = ddx * ddx + ddy * ddy
            keep = dd <= cut  # the exact canonical cutoff
            near, dd = near[keep], dd[keep]
            sel = np.lexsort((ctx.qarr.oid[near], dd))[:k]
            out_p.append(np.full(sel.size, rows[row], dtype=np.int64))
            out_q.append(near[sel])
            out_d.append(dd[sel])
        if not out_p:
            return CandidateBlock.empty()
        return CandidateBlock(
            np.concatenate(out_p), np.concatenate(out_q), np.concatenate(out_d)
        )


class BandSource(Source):
    """Expanding-radius candidate bands in ascending pair distance —
    the PR 5 resume-cursor enumeration as a pipeline source.

    Each yielded block carries the band's pairs (exact ``d_sq``) and a
    ``complete_to`` certificate equal to the band's squared outer
    radius: every pair at or below it has been emitted.  Band
    membership is decided by the exact squared-distance cursor, so
    bands are disjoint and exhaustive regardless of query rounding.
    A band predicted to exceed :data:`_MAX_BAND_PAIRS` is bisected
    toward the cursor (best effort — a run of exactly tied distances
    cannot be split and is processed whole), which bounds memory
    without a fallback join.
    """

    name = "band"

    def __init__(self, k_hint: int = 1, exclude_same_oid: bool = False):
        self.k_hint = max(int(k_hint), 1)
        self.exclude_same_oid = exclude_same_oid

    def describe(self) -> str:
        return f"band(k_hint={self.k_hint})"

    def blocks(self, ctx: JoinContext) -> Iterator[CandidateBlock]:
        parr, qarr = ctx.parr, ctx.qarr
        n_p, n_q = len(parr), len(qarr)
        if n_p == 0 or n_q == 0:
            return
        with stage_timer(ctx.stage_seconds, self.name):
            tree_p = ctx.tree_p()
            tree_q = ctx.tree_q()
            # First band: the min(k_hint, |Q|)-th smallest 1-NN distance
            # — at least that many candidate pairs land inside it.
            d1, _ = tree_p.query(qarr.coords(), k=1)
            take = min(self.k_hint, n_q) - 1
            r = float(np.partition(d1, take)[take])
            scale = _coord_scale(parr.x, parr.y, qarr.x, qarr.y)
            if r <= 0.0:
                r = 1e-9 * scale
            span_x = max(float(parr.x.max()), float(qarr.x.max())) - min(
                float(parr.x.min()), float(qarr.x.min())
            )
            span_y = max(float(parr.y.max()), float(qarr.y.max())) - min(
                float(parr.y.min()), float(qarr.y.min())
            )
            diag = float(np.hypot(span_x, span_y)) * (1.0 + _QUERY_INFLATION)
            diag += 1e-9 * scale

        cursor_sq = -np.inf
        pairs_done = 0
        while True:
            with stage_timer(ctx.stage_seconds, self.name):
                r = min(r, diag)
                within = int(tree_p.count_neighbors(tree_q, r))
                r_lo = float(np.sqrt(max(cursor_sq, 0.0)))
                shrinks = 0
                while (
                    within - pairs_done > _MAX_BAND_PAIRS
                    and shrinks < _MAX_BAND_SHRINKS
                    and r > r_lo * (1.0 + 1e-12) + 1e-300
                ):
                    r = r_lo + (r - r_lo) * 0.5
                    within = int(tree_p.count_neighbors(tree_q, r))
                    shrinks += 1
                block = self._enumerate_band(ctx, tree_p, r, cursor_sq)
            yield block
            if r >= diag:
                return
            cursor_sq = r * r
            pairs_done = within
            r *= _BAND_GROWTH

    def _enumerate_band(
        self, ctx: JoinContext, tree_p: cKDTree, r: float, cursor_sq: float
    ) -> CandidateBlock:
        parr, qarr = ctx.parr, ctx.qarr
        n_q = len(qarr)
        r_sq = r * r
        r_query = r * (1.0 + _QUERY_INFLATION)
        band_p: list[np.ndarray] = []
        band_q: list[np.ndarray] = []
        band_d: list[np.ndarray] = []
        for bstart in range(0, n_q, _PROBE_BLOCK):
            bend = min(bstart + _PROBE_BLOCK, n_q)
            lists = tree_p.query_ball_point(
                np.column_stack((qarr.x[bstart:bend], qarr.y[bstart:bend])),
                r_query,
                return_sorted=False,
            )
            flat, counts = _flatten_ball_lists(lists, bend - bstart)
            if not flat.size:
                continue
            rows = np.repeat(np.arange(bstart, bend, dtype=np.int64), counts)
            dx = parr.x[flat] - qarr.x[rows]
            dy = parr.y[flat] - qarr.y[rows]
            d_sq = dx * dx + dy * dy
            mask = (d_sq > cursor_sq) & (d_sq <= r_sq)
            if self.exclude_same_oid:
                mask &= parr.oid[flat] != qarr.oid[rows]
            band_p.append(flat[mask])
            band_q.append(rows[mask])
            band_d.append(d_sq[mask])
        if not band_p:
            return CandidateBlock(
                np.empty(0, np.int64), np.empty(0, np.int64),
                np.empty(0, np.float64), complete_to=r_sq,
            )
        return CandidateBlock(
            np.concatenate(band_p),
            np.concatenate(band_q),
            np.concatenate(band_d),
            complete_to=r_sq,
        )


class CellOverlapSource(Source):
    """Voronoi-cell bounding-box overlaps — the common-influence-join
    candidate generator.

    Builds both clipped Voronoi diagrams (the geometric step, reusing
    :func:`repro.joins.common_influence.voronoi_cells` so cell shapes
    are bit-identical to the oracle's), then finds candidate cell pairs
    vectorized: a KD-tree over ``Q``-cell bbox centres queried with a
    conservatively inflated radius, cut down by the exact closed
    interval-overlap test on the stored bbox edges.  Overlapping
    polygons always have overlapping closed bboxes, so the candidate
    set is a superset of the true result; the exact SAT decision is
    :class:`PolygonIntersectVerify`'s.  Cells land in
    ``ctx.extra["cells_p"/"cells_q"]`` for that verifier.
    """

    name = "cells"

    def __init__(self, bounds=None):
        self.bounds = bounds

    def describe(self) -> str:
        return "cell-overlap"

    def blocks(self, ctx: JoinContext) -> Iterator[CandidateBlock]:
        from repro.joins.common_influence import cij_bounds, voronoi_cells

        points_p = ctx.points_p()
        points_q = ctx.points_q()
        if not points_p or not points_q:
            return
        with stage_timer(ctx.stage_seconds, self.name):
            bounds = (
                cij_bounds(points_p, points_q)
                if self.bounds is None
                else self.bounds
            )
            cells_p = voronoi_cells(points_p, bounds)
            cells_q = voronoi_cells(points_q, bounds)
            ctx.extra["cells_p"] = cells_p
            ctx.extra["cells_q"] = cells_q

            boxes_p, idx_p = _cell_boxes(cells_p)
            boxes_q, idx_q = _cell_boxes(cells_q)
            if not idx_p.size or not idx_q.size:
                return
            # KD-tree over Q-cell bbox centres; the query radius bounds
            # the centre distance of any overlapping bbox pair.
            cxq = 0.5 * (boxes_q[:, 0] + boxes_q[:, 2])
            cyq = 0.5 * (boxes_q[:, 1] + boxes_q[:, 3])
            hxq = 0.5 * (boxes_q[:, 2] - boxes_q[:, 0])
            hyq = 0.5 * (boxes_q[:, 3] - boxes_q[:, 1])
            tree = cKDTree(np.column_stack((cxq, cyq)))
            hxq_max = float(hxq.max())
            hyq_max = float(hyq.max())
            cxp = 0.5 * (boxes_p[:, 0] + boxes_p[:, 2])
            cyp = 0.5 * (boxes_p[:, 1] + boxes_p[:, 3])
            hxp = 0.5 * (boxes_p[:, 2] - boxes_p[:, 0])
            hyp = 0.5 * (boxes_p[:, 3] - boxes_p[:, 1])
            scale = _coord_scale(
                np.abs(boxes_p).ravel(), np.abs(boxes_q).ravel()
            )
            radii = np.hypot(hxp + hxq_max, hyp + hyq_max)
            radii = radii * (1.0 + _QUERY_INFLATION) + 1e-9 * scale

        for bstart in range(0, idx_p.size, _PROBE_BLOCK):
            with stage_timer(ctx.stage_seconds, self.name):
                bend = min(bstart + _PROBE_BLOCK, idx_p.size)
                rows = np.arange(bstart, bend)
                lists = tree.query_ball_point(
                    np.column_stack((cxp[rows], cyp[rows])),
                    radii[rows],
                    return_sorted=False,
                )
                flat, counts = _flatten_ball_lists(lists, rows.size)
                if not flat.size:
                    continue
                prow = np.repeat(rows, counts)
                # Exact closed bbox overlap on the stored edges.
                keep = (
                    (boxes_p[prow, 0] <= boxes_q[flat, 2])
                    & (boxes_q[flat, 0] <= boxes_p[prow, 2])
                    & (boxes_p[prow, 1] <= boxes_q[flat, 3])
                    & (boxes_q[flat, 1] <= boxes_p[prow, 3])
                )
                prow, flat = prow[keep], flat[keep]
                if not prow.size:
                    continue
                block = CandidateBlock(idx_p[prow], idx_q[flat])
            yield block


def _cell_boxes(cells) -> tuple[np.ndarray, np.ndarray]:
    """``(boxes, index)``: bbox rows of the non-empty cells plus their
    original point indices."""
    from repro.geometry.polygon import polygon_bbox

    idx = [i for i, cell in enumerate(cells) if cell]
    if not idx:
        return np.empty((0, 4)), np.empty(0, np.int64)
    boxes = np.array([polygon_bbox(cells[i]) for i in idx], dtype=np.float64)
    return boxes, np.array(idx, dtype=np.int64)


# ----------------------------------------------------------------------
# filter / verify stages
# ----------------------------------------------------------------------

class DistanceFilter(Stage):
    """The exact ε cut: keep ``dx*dx + dy*dy <= eps*eps`` — term for
    term the R-tree ε-join oracle's leaf predicate — and record the
    distances on the block."""

    name = "distance"

    def __init__(self, eps: float):
        self.eps = float(eps)

    def describe(self) -> str:
        return f"distance(d<=eps)"

    def apply(self, ctx: JoinContext, block: CandidateBlock) -> CandidateBlock:
        dx = ctx.parr.x[block.p_idx] - ctx.qarr.x[block.q_idx]
        dy = ctx.parr.y[block.p_idx] - ctx.qarr.y[block.q_idx]
        d_sq = dx * dx + dy * dy
        keep = d_sq <= self.eps * self.eps
        return CandidateBlock(
            block.p_idx[keep], block.q_idx[keep], d_sq[keep],
            complete_to=block.complete_to,
        )


class SameOidFilter(Stage):
    """Self-join identity filter: drop rows pairing an oid with itself."""

    name = "self-filter"

    def apply(self, ctx: JoinContext, block: CandidateBlock) -> CandidateBlock:
        keep = ctx.parr.oid[block.p_idx] != ctx.qarr.oid[block.q_idx]
        return CandidateBlock(
            block.p_idx[keep],
            block.q_idx[keep],
            None if block.d_sq is None else block.d_sq[keep],
            complete_to=block.complete_to,
        )


class PsiPruneFilter(Stage):
    """Blocked Ψ− half-plane pruning against each probe's nearest
    inner-side neighbours — the oracle's own blocker predicate
    (:func:`repro.engine.kernels.halfplane_prune_pairs`), so a pruned
    pair is certainly dead and survivors go on to exact verification."""

    name = "prune"

    def apply(self, ctx: JoinContext, block: CandidateBlock) -> CandidateBlock:
        if not len(block):
            return block
        parr, qarr = ctx.parr, ctx.qarr
        k_pr = min(_PRUNERS, len(parr))
        probes = np.unique(block.q_idx)
        nd, ni = ctx.tree_p().query(
            np.column_stack((qarr.x[probes], qarr.y[probes])), k=k_pr
        )
        if k_pr == 1:
            ni = ni[:, None]
        pos = np.searchsorted(probes, block.q_idx)
        pruned = halfplane_prune_pairs(
            parr.x[block.p_idx],
            parr.y[block.p_idx],
            parr.x[ni[pos]],
            parr.y[ni[pos]],
            qarr.x[block.q_idx],
            qarr.y[block.q_idx],
        )
        keep = ~pruned
        return CandidateBlock(
            block.p_idx[keep],
            block.q_idx[keep],
            None if block.d_sq is None else block.d_sq[keep],
            complete_to=block.complete_to,
        )


class VerifyRings(Stage):
    """Batch ring-emptiness verification against the union pointset —
    :func:`repro.engine.kernels.verify_rings_batch`, the engine's exact
    final predicate."""

    name = "verify"

    def apply(self, ctx: JoinContext, block: CandidateBlock) -> CandidateBlock:
        if not len(block):
            return block
        union_tree, ux, uy = ctx.union()
        alive = verify_rings_batch(
            ctx.parr.x[block.p_idx],
            ctx.parr.y[block.p_idx],
            ctx.qarr.x[block.q_idx],
            ctx.qarr.y[block.q_idx],
            union_tree,
            ux,
            uy,
        )
        return CandidateBlock(
            block.p_idx[alive],
            block.q_idx[alive],
            None if block.d_sq is None else block.d_sq[alive],
            complete_to=block.complete_to,
        )


class PolygonIntersectVerify(Stage):
    """Exact convex-SAT verification of candidate cell pairs — the same
    :func:`repro.geometry.polygon.convex_polygons_intersect` call the
    pointwise CIJ oracle makes, over the cells the source stashed in
    ``ctx.extra``."""

    name = "verify"

    def describe(self) -> str:
        return "sat-verify"

    def apply(self, ctx: JoinContext, block: CandidateBlock) -> CandidateBlock:
        if not len(block):
            return block
        from repro.geometry.polygon import convex_polygons_intersect

        cells_p = ctx.extra["cells_p"]
        cells_q = ctx.extra["cells_q"]
        keep = np.fromiter(
            (
                convex_polygons_intersect(cells_p[pi], cells_q[qi])
                for pi, qi in zip(block.p_idx.tolist(), block.q_idx.tolist())
            ),
            bool,
            count=len(block),
        )
        return CandidateBlock(
            block.p_idx[keep], block.q_idx[keep], None, block.complete_to
        )


# ----------------------------------------------------------------------
# sinks
# ----------------------------------------------------------------------

class CollectAll(Sink):
    """Accumulate every surviving pair; finish in canonical
    ``(p.oid, q.oid)`` order.  Sources emit disjoint blocks (per-probe
    partitions or cursor-disjoint bands), so no deduplication is
    needed."""

    def __init__(self):
        self._p: list[np.ndarray] = []
        self._q: list[np.ndarray] = []
        self._d: list[np.ndarray] = []
        self._has_d = True

    def collect(self, ctx: JoinContext, block: CandidateBlock) -> None:
        self._p.append(block.p_idx)
        self._q.append(block.q_idx)
        if block.d_sq is None:
            self._has_d = False
        else:
            self._d.append(block.d_sq)

    def finish(self, ctx: JoinContext) -> CandidateBlock:
        with stage_timer(ctx.stage_seconds, self.name):
            if not self._p:
                return CandidateBlock.empty()
            p_idx = np.concatenate(self._p)
            q_idx = np.concatenate(self._q)
            d_sq = np.concatenate(self._d) if self._has_d and self._d else None
            order = np.lexsort(
                (ctx.qarr.oid[q_idx], ctx.parr.oid[p_idx])
            )
            return CandidateBlock(
                p_idx[order],
                q_idx[order],
                None if d_sq is None else d_sq[order],
            )


class TakeSmallest(Sink):
    """The ``k`` smallest-distance pairs, ascending, ties canonical.

    Requires blocks with ``d_sq`` and a ``complete_to`` certificate
    (i.e. a :class:`BandSource` upstream).  Stops the source as soon as
    ``k`` pairs are complete — every uncollected pair is certified
    farther than the band edge, hence farther than all ``k`` winners —
    and finishes sorted by ``(d_sq, p.oid, q.oid)``, the canonical
    ascending-diameter order shared with
    :func:`repro.engine.streaming.pair_order_key`.
    """

    def __init__(self, k: int):
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        self.k = int(k)
        self._p: list[np.ndarray] = []
        self._q: list[np.ndarray] = []
        self._d: list[np.ndarray] = []
        self._complete = 0

    def describe(self) -> str:
        return f"take-smallest(k={self.k})"

    def collect(self, ctx: JoinContext, block: CandidateBlock) -> None:
        if block.d_sq is None or block.complete_to is None:
            raise ValueError(
                "TakeSmallest needs d_sq blocks with a completeness"
                " certificate (a BandSource upstream)"
            )
        self._p.append(block.p_idx)
        self._q.append(block.q_idx)
        self._d.append(block.d_sq)
        # Every collected pair has d_sq <= the band edge, so after a
        # completed band the running total counts exactly the pairs at
        # or below complete_to.
        self._complete += len(block)

    def done(self) -> bool:
        return self._complete >= self.k

    def finish(self, ctx: JoinContext) -> CandidateBlock:
        with stage_timer(ctx.stage_seconds, self.name):
            if not self._p:
                return CandidateBlock.empty()
            p_idx = np.concatenate(self._p)
            q_idx = np.concatenate(self._q)
            d_sq = np.concatenate(self._d)
            order = np.lexsort(
                (ctx.qarr.oid[q_idx], ctx.parr.oid[p_idx], d_sq)
            )[: self.k]
            return CandidateBlock(p_idx[order], q_idx[order], d_sq[order])


# ----------------------------------------------------------------------
# the pipeline driver
# ----------------------------------------------------------------------

class Pipeline:
    """A declared join: one source, filter/verify stages, one sink.

    ``run`` drives source blocks through the stages one at a time
    (bounded memory, no barrier between blocks), feeds the sink, and
    honours the sink's early stop.  ``ctx.counters["candidates"]``
    accumulates the pairs the source emitted (the family's
    ``candidate_count`` accounting figure).  Sinks hold state: build a
    fresh ``Pipeline`` per run.
    """

    def __init__(
        self, source: Source, stages: Sequence[Stage] = (), sink: Sink | None = None
    ):
        self.source = source
        self.stages = tuple(stages)
        self.sink = sink if sink is not None else CollectAll()

    def describe(self) -> str:
        """The declared operator chain, e.g.
        ``range(eps=50) -> distance(d<=eps) -> collect``."""
        ops = (self.source, *self.stages, self.sink)
        return " -> ".join(op.describe() for op in ops)

    def run(self, ctx: JoinContext) -> CandidateBlock:
        source_blocks = self.source.blocks(ctx)
        try:
            for block in source_blocks:
                ctx.counters["candidates"] = ctx.counters.get(
                    "candidates", 0
                ) + len(block)
                add_counter("candidates", len(block))
                for stage in self.stages:
                    if not len(block):
                        break
                    n_in = len(block)
                    with stage_timer(ctx.stage_seconds, stage.name):
                        block = stage.apply(ctx, block)
                    add_counter("pruned", n_in - len(block))
                self.sink.collect(ctx, block)
                if self.sink.done():
                    break
        finally:
            close = getattr(source_blocks, "close", None)
            if close is not None:
                close()
        result = self.sink.finish(ctx)
        add_counter("verified", len(result))
        return result
