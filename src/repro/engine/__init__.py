"""Vectorized batch execution engine for the RCJ.

The engine subsystem is the columnar counterpart of the object-at-a-time
algorithms in :mod:`repro.core`:

- :mod:`repro.engine.arrays` — :class:`PointArray`, a numpy columnar
  representation of a pointset with converters to and from
  :class:`~repro.geometry.point.Point` lists;
- :mod:`repro.engine.kernels` — the vectorized batch kernels of the RCJ
  hot path (KD-tree candidate generation, blocked Ψ−half-plane pruning,
  batch ring-emptiness verification);
- :mod:`repro.engine.planner` — :func:`run_join`, the unified planner
  entry point dispatching across every join implementation (``inj``,
  ``bij``, ``obj``, ``brute``, ``gabriel`` and the vectorized
  ``array`` engine) and returning the ordinary
  :class:`~repro.core.pairs.JoinReport`; :func:`run_topk` (ordered
  browsing, ``run_join(mode="topk")``) and :func:`make_dynamic` (the
  shared dynamic-backend factory) ride the same planner;
- :mod:`repro.engine.streaming` — the columnar streaming layer:
  :func:`stream_pairs_by_diameter` (lazy ascending-diameter
  enumeration behind top-k) and :class:`DynamicArrayRCJ` (incremental
  maintenance with batched kernels);
- :mod:`repro.engine.operators` — the composable operator algebra the
  kernels factor into: columnar candidate sources, filter/verify
  stages and sinks, chained by :class:`~repro.engine.operators.Pipeline`
  with per-stage wall-time measurement;
- :mod:`repro.engine.families` — the paper's other join families
  (ε-join, kNN-join, k-closest-pairs, common influence) declared as
  such pipelines, behind :func:`run_family_join` (and
  ``run_join(family=...)``), with the pointwise implementations in
  :mod:`repro.joins` kept as reference oracles.

The ``array`` engine produces results identical to the pointwise
algorithms (the kernels evaluate the exact same IEEE dot-product
predicates), so all accounting, evaluation and resemblance tooling keeps
working unchanged on its reports.
"""

from repro.engine.arrays import PointArray
from repro.engine.families import (
    FAMILY_NAMES,
    build_family_pipeline,
    explain_family,
    run_family_join,
)
from repro.engine.operators import JoinContext, Pipeline
from repro.engine.planner import (
    ALGORITHM_NAMES,
    ENGINE_NAMES,
    TOPK_ENGINE_NAMES,
    array_parallel_rcj,
    array_rcj,
    make_dynamic,
    run_join,
    run_topk,
)
from repro.engine.streaming import (
    DynamicArrayRCJ,
    sort_pairs_by_diameter,
    stream_pairs_by_diameter,
)

__all__ = [
    "ALGORITHM_NAMES",
    "ENGINE_NAMES",
    "FAMILY_NAMES",
    "TOPK_ENGINE_NAMES",
    "DynamicArrayRCJ",
    "JoinContext",
    "Pipeline",
    "PointArray",
    "array_parallel_rcj",
    "array_rcj",
    "build_family_pipeline",
    "explain_family",
    "make_dynamic",
    "run_family_join",
    "run_join",
    "run_topk",
    "sort_pairs_by_diameter",
    "stream_pairs_by_diameter",
]
