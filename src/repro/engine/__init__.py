"""Vectorized batch execution engine for the RCJ.

The engine subsystem is the columnar counterpart of the object-at-a-time
algorithms in :mod:`repro.core`:

- :mod:`repro.engine.arrays` — :class:`PointArray`, a numpy columnar
  representation of a pointset with converters to and from
  :class:`~repro.geometry.point.Point` lists;
- :mod:`repro.engine.kernels` — the vectorized batch kernels of the RCJ
  hot path (KD-tree candidate generation, blocked Ψ−half-plane pruning,
  batch ring-emptiness verification);
- :mod:`repro.engine.planner` — :func:`run_join`, the unified planner
  entry point dispatching across every join implementation (``inj``,
  ``bij``, ``obj``, ``brute``, ``gabriel`` and the vectorized
  ``array`` engine) and returning the ordinary
  :class:`~repro.core.pairs.JoinReport`.

The ``array`` engine produces results identical to the pointwise
algorithms (the kernels evaluate the exact same IEEE dot-product
predicates), so all accounting, evaluation and resemblance tooling keeps
working unchanged on its reports.
"""

from repro.engine.arrays import PointArray
from repro.engine.planner import (
    ALGORITHM_NAMES,
    ENGINE_NAMES,
    array_parallel_rcj,
    array_rcj,
    run_join,
)

__all__ = [
    "ALGORITHM_NAMES",
    "ENGINE_NAMES",
    "PointArray",
    "array_parallel_rcj",
    "array_rcj",
    "run_join",
]
