"""Join families as declared pipelines over the columnar engine.

The paper compares the RCJ against the other pointset joins of its
Table 1 — the ε-join, the kNN-join, k-closest-pairs and the common
influence join (Figures 10–12).  Their reference implementations in
:mod:`repro.joins` are pointwise object code; this module re-expresses
each family as a short :class:`~repro.engine.operators.Pipeline` over
the engine's operator stages, so every family inherits vectorization,
Hilbert-sharded parallel execution (where its probe loop shards),
streaming enumeration and cost-based engine choice from the same
substrate the RCJ runs on:

=========== ========================================================
family      pipeline
=========== ========================================================
``epsilon`` ``range(eps) -> distance(d<=eps) -> collect``
``knn``     ``knn(k) -> collect``
``kcp``     ``band(k) -> take-smallest(k)`` (the PR 5
            expanding-radius cursor as a source; stops at the first
            completed band holding ``k`` pairs)
``cij``     ``cell-overlap -> sat-verify -> collect``
``rcj``     ``band(k) -> prune -> verify -> take-smallest(k)``
            (the streamed top-k RCJ, composed from the same stages —
            the bulk RCJ keeps its dedicated kernels behind
            :func:`repro.engine.planner.run_join`)
=========== ========================================================

Every pipeline's pair set is identical to its pointwise oracle's
(:mod:`repro.joins.epsilon`, :mod:`repro.joins.knn`,
:mod:`repro.joins.closest_pairs`, :mod:`repro.joins.common_influence`)
— the cross-family equivalence suite pins this — and every run records
measured per-stage wall times on ``JoinReport.stage_seconds``.

:func:`run_family_join` is the execution entry point;
:func:`repro.engine.planner.run_join` dispatches to it for
``family != "rcj"`` so callers keep one front door.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.core.pairs import JoinReport, RCJPair
from repro.engine.arrays import PointArray
from repro.engine.operators import (
    BandSource,
    CellOverlapSource,
    CollectAll,
    DistanceFilter,
    JoinContext,
    KnnSource,
    Pipeline,
    PolygonIntersectVerify,
    PsiPruneFilter,
    RangeSource,
    TakeSmallest,
    VerifyRings,
)
from repro.geometry.point import Point
from repro.obs.trace import trace as obs_trace

#: The join families :func:`run_family_join` dispatches.
FAMILY_NAMES = ("rcj", "epsilon", "knn", "kcp", "cij")

#: ``engine=`` values a family join accepts (mirrors the planner's).
FAMILY_ENGINE_NAMES = ("pointwise", "array", "array-parallel", "auto")

#: Families whose probe loop shards across processes.  k-closest-pairs
#: streams globally ordered bands (no probe-disjoint decomposition) and
#: the CIJ's cost is dominated by the serial geometric step, so both
#: coerce ``array-parallel`` to ``array``.
SHARDABLE_FAMILIES = ("epsilon", "knn")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


def _check_family_params(
    family: str, eps: float | None, k: int | None
) -> None:
    _require(
        family in FAMILY_NAMES,
        f"unknown join family {family!r}; expected one of {FAMILY_NAMES}",
    )
    if family == "epsilon":
        _require(eps is not None, "family='epsilon' requires eps")
        _require(eps >= 0, f"negative epsilon {eps}")
    elif family in ("knn", "kcp"):
        _require(k is not None, f"family={family!r} requires k")
    elif family == "cij":
        _require(eps is None and k is None, "family='cij' takes no parameter")


def build_family_pipeline(
    family: str,
    *,
    eps: float | None = None,
    k: int | None = None,
    bounds=None,
    probes=None,
    exclude_same_oid: bool = False,
) -> Pipeline:
    """The declared operator pipeline of one join family.

    ``probes`` restricts the probe rows of the shardable sources (the
    parallel workers' seam); ``bounds`` overrides the CIJ clipping
    region.  ``family="rcj"`` composes the *streamed top-k* RCJ from
    the generic stages — the demonstration that the RCJ's kernels
    factor into the same algebra the other families are declared in.
    """
    _check_family_params(family, eps, k)
    if family == "epsilon":
        return Pipeline(
            RangeSource(eps, probes=probes),
            [DistanceFilter(eps)],
            CollectAll(),
        )
    if family == "knn":
        return Pipeline(KnnSource(k, probes=probes), [], CollectAll())
    if family == "kcp":
        return Pipeline(
            BandSource(k_hint=k, exclude_same_oid=exclude_same_oid),
            [],
            TakeSmallest(k),
        )
    if family == "rcj":
        _require(k is not None, "the streamed RCJ pipeline requires k")
        return Pipeline(
            BandSource(k_hint=k, exclude_same_oid=exclude_same_oid),
            [PsiPruneFilter(), VerifyRings()],
            TakeSmallest(k),
        )
    return Pipeline(
        CellOverlapSource(bounds), [PolygonIntersectVerify()], CollectAll()
    )


def describe_family_pipeline(
    family: str,
    *,
    eps: float | None = None,
    k: int | None = None,
) -> str:
    """The pipeline's operator chain as a string, without running it."""
    if family == "rcj":
        # The bulk RCJ runs the dedicated kernels, not a declared
        # pipeline; describe what actually executes.
        return "candidate(knn-window) -> prune -> verify -> collect"
    if family in ("knn", "kcp") and k is None:
        k = 1
    return build_family_pipeline(family, eps=eps, k=k).describe()


def _canonical_pairs(pairs: list[tuple[Point, Point]]) -> list[RCJPair]:
    """Wrap oracle output pairs in canonical ``(p.oid, q.oid)`` order."""
    return [
        RCJPair(p, q)
        for p, q in sorted(pairs, key=lambda t: (t[0].oid, t[1].oid))
    ]


def _pointwise_family(
    points_p: Sequence[Point],
    points_q: Sequence[Point],
    family: str,
    eps: float | None,
    k: int | None,
    bounds,
    report: JoinReport,
) -> None:
    """Run the reference oracle of one family into ``report``."""
    from repro.rtree.bulk import bulk_load

    if family == "epsilon":
        if not points_p or not points_q:
            report.pairs = []
            return
        tree_p = bulk_load(points_p, name="FP")
        tree_q = bulk_load(points_q, name="FQ")
        from repro.joins.epsilon import epsilon_join

        report.pairs = _canonical_pairs(epsilon_join(tree_p, tree_q, eps))
        report.node_accesses = tree_p.node_accesses + tree_q.node_accesses
    elif family == "knn":
        if not points_p or not points_q or k <= 0:
            report.pairs = []
            return
        tree_q = bulk_load(points_q, name="FQ")
        from repro.joins.knn import knn_join

        report.pairs = _canonical_pairs(knn_join(points_p, tree_q, k))
        report.node_accesses = tree_q.node_accesses
    elif family == "kcp":
        if not points_p or not points_q or k <= 0:
            report.pairs = []
            return
        tree_p = bulk_load(points_p, name="FP")
        tree_q = bulk_load(points_q, name="FQ")
        from repro.joins.closest_pairs import k_closest_pairs

        report.pairs = [
            RCJPair(p, q) for _d, p, q in k_closest_pairs(tree_p, tree_q, k)
        ]
        report.node_accesses = tree_p.node_accesses + tree_q.node_accesses
    else:  # cij
        from repro.joins.common_influence import common_influence_join

        report.pairs = _canonical_pairs(
            common_influence_join(points_p, points_q, bounds=bounds)
        )
    report.candidate_count = len(report.pairs)


def run_family_join(
    points_p: Sequence[Point],
    points_q: Sequence[Point],
    family: str,
    *,
    engine: str | None = None,
    eps: float | None = None,
    k: int | None = None,
    bounds=None,
    workers: int | None = None,
    buffer_budget_bytes: int | None = None,
    min_shard: int | None = None,
) -> JoinReport:
    """Run one join family end to end and return its report.

    Parameters
    ----------
    points_p, points_q:
        The two pointsets (``points_p`` is the neighbour side of the
        kNN join: pairs are ``<p, q among p's k NNs in Q>``... see each
        family's oracle for its orientation).
    family:
        One of :data:`FAMILY_NAMES` (``"rcj"`` delegates to the bulk
        RCJ planner, :func:`repro.engine.planner.run_join`).
    engine:
        ``"pointwise"`` (the reference oracle), ``"array"`` (the serial
        pipeline), ``"array-parallel"`` (sharded pool, shardable
        families only — others coerce to ``"array"``) or ``"auto"``
        (default: :func:`repro.parallel.costmodel.choose_family_plan`,
        whose decision rides on ``report.plan``).
    eps, k:
        The family parameter (ε radius / result bound).
    bounds:
        CIJ clipping region override (default: the shared
        :func:`repro.joins.common_influence.cij_bounds`).
    workers, buffer_budget_bytes:
        Planner/parallel-engine budgets, as in ``run_join``.
    min_shard:
        Shard-granularity override for the parallel engine (tests force
        real pools on small data with it).
    """
    _check_family_params(family, eps, k)
    if engine is None:
        engine = "auto"
    if engine not in FAMILY_ENGINE_NAMES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {FAMILY_ENGINE_NAMES}"
        )

    if family == "rcj":
        from repro.engine.planner import run_join

        # engine="pointwise" keeps run_join's default algorithm (the
        # paper's OBJ on the R-tree backend) — the RCJ reference oracle.
        return run_join(
            points_p,
            points_q,
            engine=engine,
            workers=workers,
            buffer_budget_bytes=buffer_budget_bytes,
        )

    plan = None
    if engine == "auto":
        from repro.parallel.costmodel import choose_family_plan

        plan = choose_family_plan(
            family,
            points_p,
            points_q,
            eps=eps,
            k=k,
            workers=workers,
            budget_bytes=buffer_budget_bytes,
        )
        engine = plan.engine
        workers = plan.workers
    if engine == "array-parallel" and family not in SHARDABLE_FAMILIES:
        engine = "array"

    report = JoinReport(f"{family.upper()}-{engine.upper()}")
    report.plan = plan
    stages: dict = {}
    exec_info: dict = {}
    t0 = time.perf_counter()

    if engine == "pointwise":
        with obs_trace(
            "family-join",
            family=family,
            engine="pointwise",
            n_p=len(points_p),
            n_q=len(points_q),
        ) as root:
            _pointwise_family(
                points_p, points_q, family, eps, k, bounds, report
            )
        report.cpu_seconds = time.perf_counter() - t0
        report.workers_used = 1
        if root is not None:
            root.add("node-accesses", report.node_accesses)
            root.add("pairs", len(report.pairs))
        report.trace = root
        from repro.engine.planner import _record_observation

        _record_observation(plan, report, "family", family=family)
        return report

    points_p = list(points_p)
    points_q = list(points_q)
    if family in ("knn", "kcp") and k <= 0:
        report.pairs = []
        report.cpu_seconds = time.perf_counter() - t0
        return report

    parr = PointArray.from_points(points_p)
    qarr = PointArray.from_points(points_q)
    with obs_trace(
        "family-join",
        family=family,
        engine=engine,
        n_p=len(points_p),
        n_q=len(points_q),
    ) as root:
        if engine == "array-parallel":
            from repro.parallel.pool import parallel_family_pair_indices

            kwargs = {} if min_shard is None else {"min_shard": min_shard}
            p_idx, q_idx, stages, candidates = parallel_family_pair_indices(
                family,
                parr,
                qarr,
                eps=eps,
                k=k,
                workers=workers,
                exec_info=exec_info,
                **kwargs,
            )
        else:
            pipeline = build_family_pipeline(
                family, eps=eps, k=k, bounds=bounds
            )
            ctx = JoinContext(
                parr,
                qarr,
                stage_seconds=stages,
                points_p=points_p,
                points_q=points_q,
            )
            result = pipeline.run(ctx)
            p_idx, q_idx = result.p_idx, result.q_idx
            candidates = int(ctx.counters.get("candidates", 0))

    report.pairs = [
        RCJPair(points_p[pi], points_q[qi])
        for pi, qi in zip(p_idx.tolist(), q_idx.tolist())
    ]
    report.candidate_count = candidates
    report.cpu_seconds = time.perf_counter() - t0
    report.workers_used = exec_info.get("workers", 1)
    if root is not None:
        root.set(workers=report.workers_used)
        root.add("pairs", len(report.pairs))
    from repro.engine.planner import _attach_measurements, _record_observation

    _attach_measurements(report, stages, root)
    _record_observation(plan, report, "family", family=family)
    return report


def explain_family(
    points_p: Sequence[Point],
    points_q: Sequence[Point],
    family: str,
    *,
    eps: float | None = None,
    k: int | None = None,
    workers: int | None = None,
    budget_bytes: int | None = None,
) -> str:
    """Explain block for one family join: the chosen plan plus the
    declared pipeline with its per-stage estimates (the CLI's
    ``join --family ... --explain``)."""
    _check_family_params(family, eps, k)
    if family == "rcj":
        from repro.parallel.costmodel import choose_plan

        plan = choose_plan(
            points_p, points_q, workers=workers, budget_bytes=budget_bytes
        )
    else:
        from repro.parallel.costmodel import choose_family_plan

        plan = choose_family_plan(
            family,
            points_p,
            points_q,
            eps=eps,
            k=k,
            workers=workers,
            budget_bytes=budget_bytes,
        )
    lines = [plan.describe()]
    lines.append(
        "pipeline: " + describe_family_pipeline(family, eps=eps, k=k)
    )
    n_p, n_q = len(points_p), len(points_q)
    probe = n_p if family == "knn" else n_q
    lines.append(
        f"  source:  ~{probe} probes -> ~{plan.est_candidates} candidate"
        " pairs"
    )
    if family == "epsilon":
        lines.append(
            "  filter:  exact d<=eps cut over each candidate block"
        )
    elif family == "cij":
        lines.append(
            "  verify:  convex SAT per overlapping cell-bbox pair"
        )
    elif family == "kcp":
        lines.append(
            f"  sink:    stop at the first completed band holding"
            f" {k} pairs"
        )
    return "\n".join(lines)
