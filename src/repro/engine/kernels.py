"""Vectorized batch kernels for the RCJ hot path.

The pointwise algorithms (:mod:`repro.core.inj`, :mod:`repro.core.bij`)
process one probe point — or one leaf — at a time through Python
objects.  The kernels here process *blocks* of probe points through
numpy arrays:

- :func:`knn_candidate_blocks` — candidate generation: every probe
  point's nearest ``P`` neighbours come from one :class:`cKDTree` batch
  query, the paper's Ψ− half-plane pruning (Lemmas 1/3/5) is evaluated
  over whole candidate blocks by :func:`halfplane_prune_window`, and an
  angular-coverage certificate (:func:`cone_cover`) decides, per probe,
  whether any point beyond the KNN window could still join.  Probes
  without a certificate escalate: first to a wider window, finally to a
  direction-filtered scan whose survivors are pruned with the exact
  half-plane predicate.
- :func:`verify_rings_batch` — batch ring-emptiness verification: the
  per-circle loop of :mod:`repro.core.verification` is replaced by one
  KD-tree ball query over all candidate midpoints plus one vectorized
  evaluation of the exact dot predicate.

Exactness
---------
The engine is *filter conservative, verify exact*.  Filtering (window
pruning, coverage certificates, the Delaunay backstop) may only ever
discard a pair when a blocker provably exists under the oracle's own
predicate — every shortcut carries a margin dominating its
floating-point error, and anything uncertain is kept as a candidate.
The final batch verification then evaluates the *same IEEE form* as the
brute-force oracle (:mod:`repro.core.brute`) and the object-level
geometry (:mod:`repro.geometry.ring`): differences first, two products,
one sum, strict comparison against zero — bit-for-bit the oracle's
test.  Together the two halves make the array engine return result sets
identical to the pointwise algorithms; the cross-algorithm equivalence
suite pins this.

The main inference that is *not* a direct predicate evaluation is the
KNN stopping certificate.  Take a probe ``q`` whose window radius (the
distance of its ``k``-th ``P``-neighbour) is ``d_k``, and a window
neighbour ``i`` at distance ``r_i``.  For any point ``x`` beyond the
window at angle ``t`` from ``q``'s direction to ``i``::

    |qx| cos(t) > r_i   =>   (x - i) . (i - q) > 0,

i.e. ``i`` lies strictly inside the ring of ``<x, q>`` and the pair is
dead (Lemma 1) — so ``i`` *covers* the open cone of half-angle
``arccos(r_i / (0.95 d_k))`` around its own direction.  When the cones
of the window neighbours cover the full circle of directions, no point
beyond the window can join ``q`` and the search stops.  The ``0.95``
safety factor leaves a ≥ 5 % relative margin on the blocker predicate,
orders of magnitude above IEEE evaluation error, so the oracle's own
exact test is guaranteed to agree with every pair the certificate
discards.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import Delaunay, QhullError, cKDTree

from repro.core.gabriel import recover_cocircular_pairs, recoverable_radius_bound
from repro.engine.arrays import PointArray
from repro.obs.trace import add_counter, stage_timer  # noqa: F401  (re-export)

#: Neighbour window of the first candidate-generation stage.
DEFAULT_K0 = 16

#: Safety factor of the coverage certificate: a neighbour's cone is
#: computed from ``r_i / 0.95`` instead of ``r_i``, giving every
#: certificate-based discard a >= 5% relative margin over the exact
#: blocker predicate.
_COVER_SAFETY = 0.95

#: Probe points processed per KNN batch.
_Q_BLOCK = 4096

#: Probe points processed per widened second-stage batch (larger window,
#: so the pairwise pruning block is bigger per probe).
_WIDE_BLOCK = 1024

#: Window width of the widened second stage.
_WIDE_K = 64

#: Pruners used per probe by the full-scan stage.
_SCAN_PRUNERS = 32

#: Above this much full-scan work (escalated probes x |P|), stage 3
#: switches from the per-probe scan to the Delaunay candidate path.
_SCAN_WORK_LIMIT = 4_000_000

#: Relative inflation of verification ball queries; dominates the
#: rounding of midpoint/radius while the exact dot predicate keeps the
#: final say (same convention as :func:`repro.core.gabriel.gabriel_rcj`).
_BALL_INFLATION = 1e-7


# NOTE: ``stage_timer`` now lives in :mod:`repro.obs.trace` (it
# dual-writes each measurement into the accumulator dict and, when a
# trace is active, a ``kind="stage"`` span) and is re-exported from
# this module for its long-standing importers.


def halfplane_prune_window(
    qx: np.ndarray, qy: np.ndarray, nx: np.ndarray, ny: np.ndarray
) -> np.ndarray:
    """Blocked Ψ− pruning inside each probe's neighbour window.

    Parameters
    ----------
    qx, qy:
        Probe coordinates, shape ``(B,)``.
    nx, ny:
        Window neighbour coordinates, shape ``(B, k)``.

    Returns
    -------
    Boolean ``(B, k)`` mask: entry ``[b, j]`` is True when some other
    window point ``i`` lies strictly inside the ring of
    ``<n[b, j], q[b]>``: ``(n_j - n_i) . (n_i - q) > 0``, rewritten over
    probe-centred offsets ``A = n - q`` as ``A_i . A_j - |A_i|²`` so the
    whole window evaluates as one batched matmul.  The comparison
    carries a margin dominating the rewrite's floating-point error, so
    the mask is *conservative*: a pair the oracle would keep is never
    pruned, while boundary ties are kept for the exact batch
    verification to settle.  A pruner coincident with ``q`` or with the
    candidate contributes exactly zero and never prunes (degenerate
    Ψ−), and the diagonal ``i == j`` is harmless for the same reason.
    """
    ax = nx - qx[:, None]
    ay = ny - qy[:, None]
    a = np.stack((ax, ay), axis=-1)  # (B, k, 2)
    g = a @ a.transpose(0, 2, 1)  # G[b, i, j] = A_i . A_j
    norms = np.einsum("bii->bi", g)  # |A_i|²
    t = g - norms[:, :, None]  # T[b, i, j] = (n_j - n_i) . (n_i - q)
    # All |A| are bounded by the window radius, so 1e-12 of the largest
    # |A_i|² dominates the ~1e-15 relative rewrite error with three
    # orders of magnitude to spare.
    margin = 1e-12 * norms.max(axis=1)
    return np.any(t > margin[:, None, None], axis=1)


def halfplane_prune_pairs(
    cx: np.ndarray,
    cy: np.ndarray,
    px: np.ndarray,
    py: np.ndarray,
    qx: np.ndarray,
    qy: np.ndarray,
) -> np.ndarray:
    """Ψ− pruning of loose candidates against per-row pruner blocks.

    Row ``m`` asks: does any pruner ``p[m, i]`` lie strictly inside the
    ring of ``<c[m], q[m]>``?  Shapes: ``cx, cy, qx, qy`` are ``(M,)``,
    ``px, py`` are ``(M, k)``.  Returns a boolean ``(M,)`` prune mask.
    The dot form ``(c - p_i) . (p_i - q)`` is evaluated differences
    first — term-for-term the IEEE negation of the oracle's blocker
    test, so the mask can never disagree with it.
    """
    t = (cx[:, None] - px) * (px - qx[:, None]) + (cy[:, None] - py) * (
        py - qy[:, None]
    )
    return np.any(t > 0.0, axis=1)


def cover_arcs(
    qx: np.ndarray,
    qy: np.ndarray,
    nx: np.ndarray,
    ny: np.ndarray,
    ndist: np.ndarray,
    r_floor: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-probe covered direction arcs of the stopping certificate.

    Each window neighbour at distance ``r_i > 0`` covers the cone of
    directions within ``arccos(max(r_i, r_floor) / (0.95 d_k))`` of its
    own direction (see the module docstring) — and since the blocking
    inequality only strengthens with distance, the arc certifies *every*
    point beyond the window radius in those directions, not just the
    nearest.  A coincident neighbour has a degenerate Ψ− region and
    covers nothing.  ``r_floor`` (a tiny length on the dataset's
    coordinate scale) keeps the certificate's absolute margin above IEEE
    noise for near-coincident neighbours.

    Returns ``(start_sorted, end_cummax, any_valid)``: the arcs sorted
    by start angle with a running maximum over end angles (the standard
    circular-coverage scan structure), plus a ``(B,)`` mask of rows
    owning at least one non-degenerate arc.  A direction ``t`` is
    certified covered when some arc with ``start <= t`` has running end
    ``>= t`` (checked at ``t`` and ``t ± 2π`` for wrap-around).
    """
    b, k = nx.shape
    d_k = ndist[:, -1]
    dx = nx - qx[:, None]
    dy = ny - qy[:, None]
    phi = np.arctan2(dy, dx)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.maximum(ndist, r_floor) / (_COVER_SAFETY * d_k[:, None])
    width = np.arccos(np.clip(ratio, 0.0, 1.0))
    valid = (ndist > 0.0) & (width > 0.0) & np.isfinite(width)
    any_valid = valid.any(axis=1)

    # Replace non-covering entries by a copy of the row's first covering
    # cone: harmless to the union, and it keeps the row-wise sorted
    # chain check free of sentinel gaps.
    first = np.argmax(valid, axis=1)
    rows = np.arange(b)
    start = phi - width
    end = phi + width
    start = np.where(valid, start, start[rows, first][:, None])
    end = np.where(valid, end, end[rows, first][:, None])

    order = np.argsort(start, axis=1)
    start_sorted = np.take_along_axis(start, order, axis=1)
    end_cummax = np.maximum.accumulate(
        np.take_along_axis(end, order, axis=1), axis=1
    )
    return start_sorted, end_cummax, any_valid


def cone_cover(
    qx: np.ndarray,
    qy: np.ndarray,
    nx: np.ndarray,
    ny: np.ndarray,
    ndist: np.ndarray,
    r_floor: float,
) -> np.ndarray:
    """The angular-coverage stopping certificate, per probe.

    Returns a boolean ``(B,)`` array: True when the union of the
    neighbour cones (:func:`cover_arcs`) covers the full circle of
    directions, i.e. no point beyond the window can form a pair with
    the probe.
    """
    start_sorted, end_cummax, any_valid = cover_arcs(
        qx, qy, nx, ny, ndist, r_floor
    )
    no_gap = np.all(end_cummax[:, :-1] >= start_sorted[:, 1:], axis=1)
    wraps = end_cummax[:, -1] >= start_sorted[:, 0] + 2.0 * np.pi
    return any_valid & no_gap & wraps


def _arcs_contain(
    start_sorted: np.ndarray, end_cummax: np.ndarray, theta: np.ndarray
) -> np.ndarray:
    """Membership of directions in one probe's covered arc union.

    ``start_sorted``/``end_cummax`` are a single row of
    :func:`cover_arcs`; ``theta`` is a ``(M,)`` array of directions in
    ``[-π, π]``.  Checks the direction and its ``± 2π`` images against
    the sorted arc structure by binary search.
    """
    covered = np.zeros(theta.shape, dtype=bool)
    for shift in (0.0, 2.0 * np.pi, -2.0 * np.pi):
        t = theta + shift
        j = np.searchsorted(start_sorted, t, side="right") - 1
        inside = j >= 0
        covered |= inside & (end_cummax[np.maximum(j, 0)] >= t)
    return covered


def _emit_window(
    qx: np.ndarray,
    qy: np.ndarray,
    ndist: np.ndarray,
    nidx: np.ndarray,
    parr: PointArray,
    probes: np.ndarray,
    r_floor: float,
    out_q: list[np.ndarray],
    out_p: list[np.ndarray],
    stage_seconds: dict | None = None,
) -> np.ndarray:
    """Prune one window batch, emit its candidates, return uncovered probes."""
    nx = parr.x[nidx]
    ny = parr.y[nidx]
    with stage_timer(stage_seconds, "prune"):
        pruned = halfplane_prune_window(qx, qy, nx, ny)
    rows, cols = np.nonzero(~pruned)
    out_q.append(probes[rows])
    out_p.append(nidx[rows, cols].astype(np.int64))
    if nidx.shape[1] >= len(parr):
        return probes[:0]  # the window is all of P; nothing lies beyond
    with stage_timer(stage_seconds, "prune"):
        covered = cone_cover(qx, qy, nx, ny, ndist, r_floor)
    return probes[~covered]


def _query_window(
    tree_p: cKDTree, qx: np.ndarray, qy: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    ndist, nidx = tree_p.query(np.column_stack((qx, qy)), k=k)
    if k == 1:
        ndist = ndist[:, None]
        nidx = nidx[:, None]
    return ndist, nidx


def knn_candidate_blocks(
    parr: PointArray,
    qarr: PointArray,
    k0: int = DEFAULT_K0,
    tree_p: cKDTree | None = None,
    stage_seconds: dict | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Candidate generation: ``(q_index, p_index)`` candidate pair arrays.

    The returned pair set is a superset of every true RCJ pair ``<p, q>``
    with ``p`` from ``parr`` and ``q`` from ``qarr`` (blockers drawn
    from ``parr`` only; final ring verification against the full union
    is :func:`verify_rings_batch`'s job).  Duplicates are already
    removed.

    Three stages, each handling only the probes the previous one could
    not certify: a ``k0``-neighbour window for every probe, a widened
    ``_WIDE_K`` window for probes whose cones left a gap (typical for
    probes near the fringe of ``P``), and a full direction-filtered
    scan for the rest (hull probes, heavily degenerate inputs).

    Parameters
    ----------
    parr, qarr:
        The inner (candidate) and outer (probe) pointsets.
    k0:
        First-stage neighbour window width (clamped to ``len(parr)``).
    tree_p:
        Optional prebuilt KD-tree over ``parr``'s coordinates.
    stage_seconds:
        Optional accumulator for measured ``candidate``/``prune`` wall
        times (see :func:`stage_timer`).
    """
    n_p, n_q = len(parr), len(qarr)
    if n_p == 0 or n_q == 0:
        return (np.empty(0, np.int64), np.empty(0, np.int64))
    if tree_p is None:
        with stage_timer(stage_seconds, "candidate"):
            tree_p = cKDTree(parr.coords())

    scale = 1.0
    for arr in (parr.x, parr.y, qarr.x, qarr.y):
        if len(arr):
            scale = max(scale, float(np.abs(arr).max()))
    r_floor = 1e-12 * scale

    out_q: list[np.ndarray] = []
    out_p: list[np.ndarray] = []

    # -- stage 1: k0 window for every probe ----------------------------
    k1 = min(k0, n_p)
    open_probes: list[np.ndarray] = []
    for bstart in range(0, n_q, _Q_BLOCK):
        probes = np.arange(bstart, min(bstart + _Q_BLOCK, n_q), dtype=np.int64)
        qx, qy = qarr.x[probes], qarr.y[probes]
        with stage_timer(stage_seconds, "candidate"):
            ndist, nidx = _query_window(tree_p, qx, qy, k1)
        open_probes.append(
            _emit_window(
                qx, qy, ndist, nidx, parr, probes, r_floor, out_q, out_p,
                stage_seconds,
            )
        )
    uncovered = np.concatenate(open_probes)

    # -- stage 2: widened window for uncovered probes ------------------
    k2 = min(_WIDE_K, n_p)
    if uncovered.size and k2 > k1:
        open_probes = []
        for bstart in range(0, uncovered.size, _WIDE_BLOCK):
            probes = uncovered[bstart : bstart + _WIDE_BLOCK]
            qx, qy = qarr.x[probes], qarr.y[probes]
            with stage_timer(stage_seconds, "candidate"):
                ndist, nidx = _query_window(tree_p, qx, qy, k2)
            open_probes.append(
                _emit_window(
                    qx, qy, ndist, nidx, parr, probes, r_floor, out_q, out_p,
                    stage_seconds,
                )
            )
        uncovered = np.concatenate(open_probes)

    # -- stage 3: the remainder (hull probes, degenerate inputs) -------
    # Charged wholesale to "candidate": the escalation stages interleave
    # their own pruning with enumeration too finely to split honestly.
    if uncovered.size and k2 < n_p:
        with stage_timer(stage_seconds, "candidate"):
            emitted = None
            if uncovered.size * n_p > _SCAN_WORK_LIMIT:
                emitted = _delaunay_candidates(parr, qarr, uncovered)
            if emitted is not None:
                out_q.append(emitted[0])
                out_p.append(emitted[1])
            else:
                _scan_candidates(
                    parr, qarr, uncovered, tree_p, k2, r_floor, out_q, out_p
                )

    q_idx = np.concatenate(out_q)
    p_idx = np.concatenate(out_p)
    # Union of the window and escalation sources, deduplicated.
    key = q_idx * np.int64(n_p) + p_idx
    _, first = np.unique(key, return_index=True)
    return q_idx[first], p_idx[first]


def _scan_candidates(
    parr: PointArray,
    qarr: PointArray,
    probes: np.ndarray,
    tree_p: cKDTree,
    k: int,
    r_floor: float,
    out_q: list[np.ndarray],
    out_p: list[np.ndarray],
) -> None:
    """Direction-filtered full scan for probes without a coverage
    certificate.

    Per probe: every ``P`` point beyond the window whose direction falls
    in a covered arc is certified blocked; the uncovered residue is
    pruned with the exact half-plane predicate against the probe's
    nearest neighbours, and survivors are emitted as candidates.
    """
    px_all, py_all = parr.x, parr.y
    k_pr = min(_SCAN_PRUNERS, len(parr))
    ndist, nidx = _query_window(tree_p, qarr.x[probes], qarr.y[probes], k)
    starts, ends, any_valid = cover_arcs(
        qarr.x[probes],
        qarr.y[probes],
        px_all[nidx],
        py_all[nidx],
        ndist,
        r_floor,
    )
    for row, probe in enumerate(probes):
        qx = qarr.x[probe]
        qy = qarr.y[probe]
        dx = px_all - qx
        dy = py_all - qy
        d2 = dx * dx + dy * dy
        # Slightly deflated window radius: over-including points that
        # tie with (or round against) the k-th neighbour is safe —
        # duplicates are unioned away by the caller.
        far = np.nonzero(d2 >= ndist[row, -1] ** 2 * (1.0 - 1e-9))[0]
        if far.size == 0:
            continue
        if any_valid[row]:
            # Rows without a single valid cone carry only zero-width
            # placeholder arcs, which certify nothing: skip the arc
            # filter and let the exact half-plane test see every point.
            theta = np.arctan2(dy[far], dx[far])
            far = far[~_arcs_contain(starts[row], ends[row], theta)]
        if far.size == 0:
            continue
        loose_pruned = halfplane_prune_pairs(
            px_all[far],
            py_all[far],
            np.broadcast_to(px_all[nidx[row, :k_pr]], (far.size, k_pr)),
            np.broadcast_to(py_all[nidx[row, :k_pr]], (far.size, k_pr)),
            np.full(far.size, qx),
            np.full(far.size, qy),
        )
        keep = far[~loose_pruned]
        out_q.append(np.full(keep.size, probe, dtype=np.int64))
        out_p.append(keep.astype(np.int64))


def _cross_emit(
    a_sites: np.ndarray,
    b_sites: np.ndarray,
    p_flat: np.ndarray,
    p_off: np.ndarray,
    q_flat: np.ndarray,
    q_off: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Expand site pairs into all (P member, Q member) index pairs.

    ``p_flat``/``q_flat`` hold member indices grouped by site (CSR
    layout with offset arrays ``p_off``/``q_off``).  For every site pair
    ``(a, b)`` the full cross product of ``a``'s P members with ``b``'s
    Q members is emitted, fully vectorized.
    """
    na = p_off[a_sites + 1] - p_off[a_sites]
    nb = q_off[b_sites + 1] - q_off[b_sites]
    sizes = na * nb
    keep = sizes > 0
    a_sites, b_sites = a_sites[keep], b_sites[keep]
    na, nb, sizes = na[keep], nb[keep], sizes[keep]
    total = int(sizes.sum())
    if total == 0:
        return np.empty(0, np.int64), np.empty(0, np.int64)
    edge = np.repeat(np.arange(sizes.size), sizes)
    offsets = np.concatenate(([0], np.cumsum(sizes)))
    local = np.arange(total) - offsets[edge]
    p_idx = p_flat[p_off[a_sites[edge]] + local // nb[edge]]
    q_idx = q_flat[q_off[b_sites[edge]] + local % nb[edge]]
    return p_idx, q_idx


def _delaunay_candidates(
    parr: PointArray, qarr: PointArray, probes: np.ndarray
) -> tuple[np.ndarray, np.ndarray] | None:
    """Candidate superset for escalated probes via a Delaunay backstop.

    A true pair's ring is empty over the full union, hence empty over
    the sub-union of ``P`` and the escalated probes — so the pair is a
    Gabriel edge of that site set and (up to cocircular degeneracies,
    recovered from equal-circumcircle clusters exactly as
    :func:`repro.core.gabriel.gabriel_rcj` does) a Delaunay edge of it.
    Coincident P/Q sites, whose radius-zero ring is trivially empty, are
    emitted directly.  The returned ``(q_index, p_index)`` arrays are a
    superset of the escalated probes' true pairs; false candidates are
    eliminated by the exact batch verification.

    Returns ``None`` when the triangulation is unavailable (fewer than
    four distinct sites, collinear inputs, Qhull failure) — the caller
    falls back to the exact scan.
    """
    n_p = len(parr)
    coords = np.concatenate(
        (
            np.column_stack((parr.x, parr.y)),
            np.column_stack((qarr.x[probes], qarr.y[probes])),
        )
    )
    sites, inv = np.unique(coords, axis=0, return_inverse=True)
    inv = inv.ravel()
    n_sites = len(sites)
    if n_sites < 4:
        return None
    try:
        tri = Delaunay(sites)
    except QhullError:
        return None

    simp = tri.simplices
    edges = np.concatenate(
        (simp[:, (0, 1)], simp[:, (0, 2)], simp[:, (1, 2)])
    ).astype(np.int64)
    edges.sort(axis=1)
    edges = np.unique(edges, axis=0)

    extra = _cocircular_site_pairs(sites, tri)
    if len(extra):
        edges = np.unique(np.concatenate((edges, extra)), axis=0)

    # CSR membership: which P rows / probe rows live at each site.
    member_site = inv  # site of every input row (P rows then probe rows)
    p_order = np.argsort(member_site[:n_p], kind="stable")
    p_flat = p_order.astype(np.int64)
    p_off = np.zeros(n_sites + 1, dtype=np.int64)
    np.cumsum(np.bincount(member_site[:n_p], minlength=n_sites), out=p_off[1:])
    q_order = np.argsort(member_site[n_p:], kind="stable")
    q_flat = probes[q_order].astype(np.int64)
    q_off = np.zeros(n_sites + 1, dtype=np.int64)
    np.cumsum(np.bincount(member_site[n_p:], minlength=n_sites), out=q_off[1:])

    out_p: list[np.ndarray] = []
    out_q: list[np.ndarray] = []
    for a, b in (
        (edges[:, 0], edges[:, 1]),
        (edges[:, 1], edges[:, 0]),
        # Coincident P/Q sites: the degenerate self-"edge".
        (np.arange(n_sites, dtype=np.int64),) * 2,
    ):
        pi, qi = _cross_emit(a, b, p_flat, p_off, q_flat, q_off)
        out_p.append(pi)
        out_q.append(qi)
    return np.concatenate(out_q), np.concatenate(out_p)


def _cocircular_site_pairs(sites: np.ndarray, tri: Delaunay) -> np.ndarray:
    """Extra site pairs hidden inside cocircular Delaunay faces.

    Vectorized version of
    :func:`repro.core.gabriel._cocircular_cluster_pairs`: when four or
    more sites lie on one empty circle, the triangulation keeps only
    some of their pairwise diametral edges, so each such cluster must be
    recovered from triangle circumcircles.  A cocircular face is carved
    into two or more *adjacent* simplices sharing one circumcircle, so
    all circumcircles are computed in one vectorized pass and only
    simplices whose circumcircle coincides with a neighbour's (a loose
    tolerance — false flags are filtered by the exact on-circle test,
    and false candidate pairs by verification) are probed with a ball
    query and per-cluster Python.  On general-position data nothing is
    flagged and the whole pass is three comparisons per simplex.
    """
    simplices = tri.simplices
    pa = sites[simplices[:, 0]]
    pb = sites[simplices[:, 1]]
    pc = sites[simplices[:, 2]]
    d = 2.0 * (
        pa[:, 0] * (pb[:, 1] - pc[:, 1])
        + pb[:, 0] * (pc[:, 1] - pa[:, 1])
        + pc[:, 0] * (pa[:, 1] - pb[:, 1])
    )
    with np.errstate(divide="ignore", invalid="ignore"):
        sq_a = pa[:, 0] ** 2 + pa[:, 1] ** 2
        sq_b = pb[:, 0] ** 2 + pb[:, 1] ** 2
        sq_c = pc[:, 0] ** 2 + pc[:, 1] ** 2
        ux = (
            sq_a * (pb[:, 1] - pc[:, 1])
            + sq_b * (pc[:, 1] - pa[:, 1])
            + sq_c * (pa[:, 1] - pb[:, 1])
        ) / d
        uy = (
            sq_a * (pc[:, 0] - pb[:, 0])
            + sq_b * (pa[:, 0] - pc[:, 0])
            + sq_c * (pb[:, 0] - pa[:, 0])
        ) / d
    radius = np.hypot(pa[:, 0] - ux, pa[:, 1] - uy)
    kdtree = cKDTree(sites)
    finite = (
        (d != 0.0)
        & np.isfinite(ux)
        & np.isfinite(uy)
        & (radius <= recoverable_radius_bound(kdtree))
    )

    # Flag simplices sharing a circumcircle with a Delaunay neighbour.
    flag_tol = 1e-6 * (radius + 1.0)
    flagged = np.zeros(len(simplices), dtype=bool)
    neighbors = tri.neighbors
    for slot in range(3):
        j = neighbors[:, slot]
        j_safe = np.maximum(j, 0)
        close = (
            (j >= 0)
            & finite
            & finite[j_safe]
            & (np.abs(ux - ux[j_safe]) <= flag_tol)
            & (np.abs(uy - uy[j_safe]) <= flag_tol)
            & (np.abs(radius - radius[j_safe]) <= flag_tol)
        )
        flagged |= close
    probe = np.nonzero(flagged)[0]
    if probe.size == 0:
        return np.empty((0, 2), dtype=np.int64)

    extra = recover_cocircular_pairs(
        sites, kdtree, ux[probe], uy[probe], radius[probe]
    )
    if not extra:
        return np.empty((0, 2), dtype=np.int64)
    return np.array(sorted(extra), dtype=np.int64)


def verify_rings_batch(
    px: np.ndarray,
    py: np.ndarray,
    qx: np.ndarray,
    qy: np.ndarray,
    union_tree: cKDTree,
    ux: np.ndarray,
    uy: np.ndarray,
    blocker_alive: np.ndarray | None = None,
) -> np.ndarray:
    """Batch ring-emptiness verification of candidate pairs.

    For each candidate ``<p, q>`` (coordinate arrays of shape ``(M,)``)
    the ring — the circle with diameter ``pq`` — must contain no point
    of the union dataset (``union_tree`` over coordinates ``ux, uy``)
    strictly inside.  Blocker candidates come from one batched KD-tree
    ball query around the midpoints (radius inflated so no true blocker
    can round out); each is confirmed with the exact oracle predicate
    ``(s - p) . (s - q) < 0``, under which the endpoints themselves (and
    coincident duplicates) evaluate to exactly zero and never block.

    ``blocker_alive`` (a boolean ``(len(ux),)`` mask, when given) drops
    dead tree rows before the predicate — the seam that lets the dynamic
    backend verify against a *stale* KD-tree carrying tombstoned points
    without rebuilding it: a dead row can never block, and survivors are
    exactly those of a compacted tree because every live blocker applies
    the identical IEEE predicate.

    Returns the boolean ``(M,)`` survivor mask.
    """
    m = len(px)
    alive = np.ones(m, dtype=bool)
    if m == 0:
        return alive
    mx = 0.5 * (px + qx)
    my = 0.5 * (py + qy)
    r = 0.5 * np.hypot(px - qx, py - qy)
    # The absolute inflation term scales with the midpoint magnitude:
    # midpoint rounding is ~ulp(|m|), so a fixed absolute term would be
    # outrun at large coordinates with tiny rings.
    radii = r * (1.0 + _BALL_INFLATION) + 1e-12 * (
        np.abs(mx) + np.abs(my) + 1.0
    )
    neighbor_lists = union_tree.query_ball_point(
        np.column_stack((mx, my)), radii, return_sorted=False
    )
    counts = np.fromiter(
        (len(lst) for lst in neighbor_lists), dtype=np.int64, count=m
    )
    total = int(counts.sum())
    if total == 0:
        return alive
    flat = np.empty(total, dtype=np.int64)
    pos = 0
    for lst in neighbor_lists:
        n = len(lst)
        if n:
            flat[pos : pos + n] = lst
            pos += n
    rows = np.repeat(np.arange(m), counts)
    if blocker_alive is not None:
        keep = blocker_alive[flat]
        flat = flat[keep]
        rows = rows[keep]
        if not flat.size:
            return alive
    sx = ux[flat]
    sy = uy[flat]
    t = (sx - px[rows]) * (sx - qx[rows]) + (sy - py[rows]) * (sy - qy[rows])
    alive[rows[t < 0.0]] = False
    return alive


def canonical_pair_order(p_idx: np.ndarray, q_idx: np.ndarray) -> np.ndarray:
    """Sort permutation of the canonical result-pair order.

    The canonical order of an index pair set is ascending ``q_index``
    with ties broken by ascending ``p_index``.  Both the serial pipeline
    and the sharded parallel engine (:mod:`repro.parallel`) emit their
    results in this order, which is what makes parallel output
    byte-identical across worker counts: shard boundaries change which
    worker finds a pair, never where the pair sorts.
    """
    return np.lexsort((p_idx, q_idx))


def rcj_pair_indices(
    parr: PointArray,
    qarr: PointArray,
    k0: int = DEFAULT_K0,
    exclude_same_oid: bool = False,
    stage_seconds: dict | None = None,
) -> tuple[np.ndarray, np.ndarray, int]:
    """The full vectorized RCJ pipeline over columnar inputs.

    Returns ``(p_index, q_index, candidate_count)``: aligned index
    arrays of the result pairs into ``parr``/``qarr`` in canonical
    order (:func:`canonical_pair_order`), plus the number of candidate
    pairs that entered verification (the engine's ``candidate_count``
    accounting figure).
    """
    if len(parr) == 0 or len(qarr) == 0:
        return (np.empty(0, np.int64), np.empty(0, np.int64), 0)

    q_idx, p_idx = knn_candidate_blocks(
        parr, qarr, k0=k0, stage_seconds=stage_seconds
    )
    if exclude_same_oid:
        keep = parr.oid[p_idx] != qarr.oid[q_idx]
        q_idx, p_idx = q_idx[keep], p_idx[keep]
    candidate_count = int(len(q_idx))
    add_counter("candidates", candidate_count)
    if candidate_count == 0:
        return (p_idx, q_idx, 0)

    with stage_timer(stage_seconds, "verify"):
        ux = np.concatenate((parr.x, qarr.x))
        uy = np.concatenate((parr.y, qarr.y))
        union_tree = cKDTree(np.column_stack((ux, uy)))
        alive = verify_rings_batch(
            parr.x[p_idx],
            parr.y[p_idx],
            qarr.x[q_idx],
            qarr.y[q_idx],
            union_tree,
            ux,
            uy,
        )
    p_idx, q_idx = p_idx[alive], q_idx[alive]
    add_counter("verified", int(len(p_idx)))
    add_counter("pruned", candidate_count - int(len(p_idx)))
    # The dedup above already left the pairs keyed by (q, p); the
    # explicit canonical sort makes the ordering a contract rather than
    # an accident of np.unique.
    order = canonical_pair_order(p_idx, q_idx)
    return (p_idx[order], q_idx[order], candidate_count)
