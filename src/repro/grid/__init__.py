"""Uniform-grid point index.

A simple equi-width bucket grid over the data MBR.  It backs the
metric-generalised RCJ (whose pruning geometry is not Euclidean, so the
R-tree half-plane lemmas do not apply) and serves as an independent
comparator for R-tree range queries in tests.
"""

from repro.grid.index import GridIndex

__all__ = ["GridIndex"]
