"""Equi-width grid index over a planar pointset."""

from __future__ import annotations

import math
from typing import Callable, Iterator, Sequence

from repro.geometry.point import Point
from repro.geometry.rect import Rect


class GridIndex:
    """A uniform bucket grid.

    Parameters
    ----------
    points:
        The indexed dataset (non-empty).
    cells_per_axis:
        Number of buckets along each axis; the default scales with
        ``sqrt(n)`` so buckets hold a few points each on uniform data.
    """

    def __init__(self, points: Sequence[Point], cells_per_axis: int | None = None):
        if not points:
            raise ValueError("cannot index an empty pointset")
        self.points = list(points)
        self.bounds = Rect.from_points(self.points)
        n = len(self.points)
        if cells_per_axis is None:
            cells_per_axis = max(1, int(math.sqrt(n / 2.0)))
        if cells_per_axis < 1:
            raise ValueError(f"cells_per_axis must be positive, got {cells_per_axis}")
        self.cells_per_axis = cells_per_axis
        width = max(self.bounds.width(), 1e-12)
        height = max(self.bounds.height(), 1e-12)
        self._cell_w = width / cells_per_axis
        self._cell_h = height / cells_per_axis
        self._buckets: dict[tuple[int, int], list[Point]] = {}
        for p in self.points:
            self._buckets.setdefault(self._cell_of(p.x, p.y), []).append(p)

    def _cell_of(self, x: float, y: float) -> tuple[int, int]:
        ix = int((x - self.bounds.xmin) / self._cell_w)
        iy = int((y - self.bounds.ymin) / self._cell_h)
        last = self.cells_per_axis - 1
        return (min(max(ix, 0), last), min(max(iy, 0), last))

    def _cells_overlapping(self, rect: Rect) -> Iterator[tuple[int, int]]:
        ix0, iy0 = self._cell_of(rect.xmin, rect.ymin)
        ix1, iy1 = self._cell_of(rect.xmax, rect.ymax)
        for ix in range(ix0, ix1 + 1):
            for iy in range(iy0, iy1 + 1):
                yield (ix, iy)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def points_in_rect(self, rect: Rect) -> list[Point]:
        """All indexed points inside the closed rectangle."""
        out: list[Point] = []
        for cell in self._cells_overlapping(rect):
            bucket = self._buckets.get(cell)
            if bucket:
                out.extend(
                    p for p in bucket if rect.contains_point(p.x, p.y)
                )
        return out

    def any_point_where(
        self, rect: Rect, predicate: Callable[[Point], bool]
    ) -> bool:
        """True when some point inside ``rect`` satisfies ``predicate``.

        Used for metric-ball emptiness checks: ``rect`` is the ball's
        bounding rectangle and ``predicate`` the strict ball containment.
        Points outside ``rect`` never count, even when they share a
        bucket with the queried region.
        """
        for cell in self._cells_overlapping(rect):
            bucket = self._buckets.get(cell)
            if bucket and any(
                rect.contains_point(p.x, p.y) and predicate(p) for p in bucket
            ):
                return True
        return False

    def __len__(self) -> int:
        return len(self.points)

    def __repr__(self) -> str:
        return (
            f"GridIndex(n={len(self.points)}, cells={self.cells_per_axis}x"
            f"{self.cells_per_axis})"
        )
