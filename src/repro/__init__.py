"""repro — Ring-constrained Join (RCJ).

A from-scratch reproduction of *"Ring-constrained Join: Deriving Fair
Middleman Locations from Pointsets via a Geometric Constraint"* (Yiu,
Karras, Mamoulis; EDBT 2008): the RCJ operator, the paper's R-tree
algorithms (INJ, BIJ, OBJ) on a simulated disk/buffer substrate, the
baseline spatial joins it compares against (including the common
influence join of its ref [19]), the evaluation harness that
regenerates every table and figure of the paper, and the paper's
future-work extensions — metric and road-network RCJ, analytical
cost/result-size models, and incremental RCJ maintenance under
updates (:class:`DynamicRCJ`).

Quickstart::

    from repro import ring_constrained_join, uniform

    restaurants = uniform(500, seed=1)
    complexes = uniform(400, seed=2, start_oid=500)
    pairs = ring_constrained_join(restaurants, complexes)
    for pair in pairs[:5]:
        print(pair.p.oid, pair.q.oid, pair.center, pair.radius)
"""

from __future__ import annotations

from typing import Literal, Sequence

from repro.core.bij import bij
from repro.core.brute import brute_force_rcj
from repro.core.gabriel import gabriel_rcj
from repro.core.inj import inj
from repro.engine import (
    DynamicArrayRCJ,
    PointArray,
    array_parallel_rcj,
    array_rcj,
    make_dynamic,
    run_join,
    run_topk,
)
from repro.core.metric_rcj import metric_rcj
from repro.core.obj import obj
from repro.core.pairs import JoinReport, RCJPair
from repro.core.selfjoin import self_rcj
from repro.core.dynamic import DynamicBackend, DynamicRCJ
from repro.core.topk import incremental_rcj, top_k_rcj
from repro.datasets.real import join_combination, locales, populated_places, schools
from repro.datasets.synthetic import gaussian_clusters, uniform
from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.joins.common_influence import common_influence_join
from repro.kdtree import build_kdtree
from repro.queries import (
    aggregate_nearest,
    bichromatic_reverse_nearest,
    reverse_nearest,
    skyline,
)
from repro.rtree.bulk import bulk_load, hilbert_bulk_load
from repro.rtree.tree import RTree
from repro.storage.persist import load_tree, save_tree
from repro.bench.runner import Workload, build_workload, run_algorithm

__version__ = "1.1.0"

Method = Literal[
    "obj", "bij", "inj", "gabriel", "brute", "array", "array-parallel", "auto"
]


def ring_constrained_join(
    points_p: Sequence[Point],
    points_q: Sequence[Point],
    method: Method = "obj",
    buffer_fraction: float = 0.01,
    workers: int | None = None,
) -> list[RCJPair]:
    """Compute the ring-constrained join of two pointsets.

    The one-call public API: dispatches through the unified join
    planner (:func:`repro.engine.run_join`) and returns the result
    pairs, each carrying its fair middleman location (``pair.center``)
    and fairness radius (``pair.radius``).

    Parameters
    ----------
    points_p, points_q:
        The two datasets; ``oid`` values identify points in the result.
    method:
        ``"obj"`` (paper's best; default), ``"bij"``, ``"inj"``,
        ``"gabriel"`` (main-memory Delaunay-based), ``"brute"``
        (quadratic oracle), ``"array"`` (vectorized batch engine),
        ``"array-parallel"`` (sharded worker pool over all cores) or
        ``"auto"`` (cost-based planner picks among the above).
    buffer_fraction:
        LRU buffer size as a fraction of the summed index sizes (R-tree
        methods only).
    workers:
        Worker budget for ``"array-parallel"`` / ``"auto"`` (``None`` =
        all cores).

    Returns
    -------
    The RCJ result pairs (order unspecified).
    """
    return run_join(
        points_p,
        points_q,
        algorithm=method,
        buffer_fraction=buffer_fraction,
        workers=workers,
    ).pairs


__all__ = [
    "Circle",
    "DynamicArrayRCJ",
    "DynamicBackend",
    "DynamicRCJ",
    "JoinReport",
    "Point",
    "PointArray",
    "RCJPair",
    "RTree",
    "Rect",
    "Workload",
    "array_parallel_rcj",
    "array_rcj",
    "bij",
    "brute_force_rcj",
    "build_workload",
    "bulk_load",
    "gabriel_rcj",
    "gaussian_clusters",
    "incremental_rcj",
    "inj",
    "join_combination",
    "locales",
    "make_dynamic",
    "metric_rcj",
    "obj",
    "populated_places",
    "ring_constrained_join",
    "run_algorithm",
    "run_join",
    "run_topk",
    "schools",
    "self_rcj",
    "top_k_rcj",
    "uniform",
]
