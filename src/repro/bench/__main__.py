"""``python -m repro.bench`` — the benchmark runner's CLI entry.

Delegates to :func:`repro.bench.runner.main`; invoking the package (not
the already-imported ``runner`` submodule) keeps runpy from re-executing
a loaded module.
"""

import sys

from repro.bench.runner import main

sys.exit(main())
