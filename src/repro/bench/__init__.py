"""Benchmark-harness support: workload building and algorithm running."""

from repro.bench.runner import (
    ALGORITHMS,
    ENGINE_ROWS,
    BenchScale,
    Workload,
    build_workload,
    run_algorithm,
    run_all_algorithms,
    smoke,
)

__all__ = [
    "ALGORITHMS",
    "ENGINE_ROWS",
    "BenchScale",
    "Workload",
    "build_workload",
    "run_algorithm",
    "run_all_algorithms",
    "smoke",
]
