"""Benchmark-harness support: workload building and algorithm running."""

from repro.bench.runner import (
    ALGORITHMS,
    BenchScale,
    Workload,
    build_workload,
    run_algorithm,
    run_all_algorithms,
)

__all__ = [
    "ALGORITHMS",
    "BenchScale",
    "Workload",
    "build_workload",
    "run_algorithm",
    "run_all_algorithms",
]
