"""Workload construction and algorithm execution for the benches.

A :class:`Workload` bundles the two datasets, their bulk-loaded R-trees
and the shared LRU buffer (sized as a fraction of the summed tree sizes,
paper default 1 %).  :func:`run_algorithm` executes one of the paper's
algorithms with fresh counters so each measurement is independent.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.bij import bij
from repro.core.inj import inj
from repro.core.pairs import JoinReport
from repro.geometry.point import Point
from repro.rtree.bulk import bulk_load
from repro.rtree.tree import RTree
from repro.storage.buffer import BufferManager, buffer_for_trees
from repro.storage.disk import DEFAULT_PAGE_SIZE

#: Paper default: buffer = 1 % of the sum of both tree sizes.
DEFAULT_BUFFER_FRACTION = 0.01

#: The paper's three R-tree algorithms, by report label.
ALGORITHMS: dict[str, Callable[[RTree, RTree], JoinReport]] = {
    "INJ": lambda tq, tp, **kw: inj(tq, tp, **kw),
    "BIJ": lambda tq, tp, **kw: bij(tq, tp, symmetric=False, **kw),
    "OBJ": lambda tq, tp, **kw: bij(tq, tp, symmetric=True, **kw),
}


@dataclass
class BenchScale:
    """Scale knobs shared by all benches.

    ``REPRO_SCALE`` divides the paper's dataset cardinalities (default
    64, which keeps the full bench suite under ~10 minutes on a laptop;
    lower values increase fidelity); ``REPRO_BENCH_N`` overrides the
    base synthetic size directly.
    """

    scale: int = field(
        default_factory=lambda: int(os.environ.get("REPRO_SCALE", "64"))
    )

    def synthetic_n(self, paper_n: int) -> int:
        """Scale a paper cardinality, honouring ``REPRO_BENCH_N``."""
        override = os.environ.get("REPRO_BENCH_N")
        if override:
            return int(override)
        return max(64, paper_n // self.scale)


@dataclass
class Workload:
    """Two indexed datasets plus their shared buffer."""

    points_q: list[Point]
    points_p: list[Point]
    tree_q: RTree
    tree_p: RTree
    buffer: BufferManager

    def reset(self) -> None:
        """Clear buffer contents and all counters before a measurement."""
        self.buffer.clear()
        self.buffer.stats.reset()
        self.tree_q.reset_stats()
        self.tree_p.reset_stats()

    def set_buffer_fraction(self, fraction: float) -> None:
        """Resize the shared buffer to ``fraction`` of total tree size."""
        total_pages = self.tree_q.disk.num_pages + self.tree_p.disk.num_pages
        self.buffer.resize(max(1, int(total_pages * fraction)))


def build_workload(
    points_q: Sequence[Point],
    points_p: Sequence[Point],
    buffer_fraction: float = DEFAULT_BUFFER_FRACTION,
    page_size: int = DEFAULT_PAGE_SIZE,
) -> Workload:
    """Index both datasets (STR bulk load) behind one shared buffer."""
    tree_q = bulk_load(list(points_q), page_size=page_size, name="TQ")
    tree_p = bulk_load(list(points_p), page_size=page_size, name="TP")
    buffer = buffer_for_trees([tree_q, tree_p], buffer_fraction)
    tree_q.attach_buffer(buffer)
    tree_p.attach_buffer(buffer)
    return Workload(list(points_q), list(points_p), tree_q, tree_p, buffer)


def run_algorithm(workload: Workload, name: str, **kwargs) -> JoinReport:
    """Run one algorithm with fresh counters.

    ``INJ``/``BIJ``/``OBJ`` execute over the workload's R-trees;
    ``ARRAY`` dispatches the workload's pointsets through the
    vectorized engine (:mod:`repro.engine`) — its report carries no
    I/O-model figures but the same result pairs.
    """
    if name == "ARRAY":
        # Imported lazily: the planner itself builds Workloads through
        # this module for the R-tree backend.
        from repro.engine.planner import run_join

        workload.reset()
        return run_join(
            workload.points_p, workload.points_q, algorithm="array", **kwargs
        )
    try:
        algo = ALGORITHMS[name]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {name!r}; expected one of "
            f"{sorted(ALGORITHMS) + ['ARRAY']}"
        ) from None
    workload.reset()
    return algo(workload.tree_q, workload.tree_p, **kwargs)


def run_all_algorithms(workload: Workload, **kwargs) -> dict[str, JoinReport]:
    """Run INJ, BIJ and OBJ on the same workload."""
    return {name: run_algorithm(workload, name, **kwargs) for name in ALGORITHMS}
