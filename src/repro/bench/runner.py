"""Workload construction and algorithm execution for the benches.

A :class:`Workload` bundles the two datasets, their bulk-loaded R-trees
and the shared LRU buffer (sized as a fraction of the summed tree sizes,
paper default 1 %).  :func:`run_algorithm` executes one of the paper's
algorithms with fresh counters so each measurement is independent.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.bij import bij
from repro.core.inj import inj
from repro.core.pairs import JoinReport
from repro.geometry.point import Point
from repro.rtree.bulk import bulk_load
from repro.rtree.tree import RTree
from repro.storage.buffer import BufferManager, buffer_for_trees
from repro.storage.disk import DEFAULT_PAGE_SIZE

#: Paper default: buffer = 1 % of the sum of both tree sizes.
DEFAULT_BUFFER_FRACTION = 0.01

#: The paper's three R-tree algorithms, by report label.
ALGORITHMS: dict[str, Callable[[RTree, RTree], JoinReport]] = {
    "INJ": lambda tq, tp, **kw: inj(tq, tp, **kw),
    "BIJ": lambda tq, tp, **kw: bij(tq, tp, symmetric=False, **kw),
    "OBJ": lambda tq, tp, **kw: bij(tq, tp, symmetric=True, **kw),
}


@dataclass
class BenchScale:
    """Scale knobs shared by all benches.

    ``REPRO_SCALE`` divides the paper's dataset cardinalities (default
    64, which keeps the full bench suite under ~10 minutes on a laptop;
    lower values increase fidelity); ``REPRO_BENCH_N`` overrides the
    base synthetic size directly.
    """

    scale: int = field(
        default_factory=lambda: int(os.environ.get("REPRO_SCALE", "64"))
    )

    def synthetic_n(self, paper_n: int) -> int:
        """Scale a paper cardinality, honouring ``REPRO_BENCH_N``."""
        override = os.environ.get("REPRO_BENCH_N")
        if override:
            return int(override)
        return max(64, paper_n // self.scale)


@dataclass
class Workload:
    """Two indexed datasets plus their shared buffer."""

    points_q: list[Point]
    points_p: list[Point]
    tree_q: RTree
    tree_p: RTree
    buffer: BufferManager

    def reset(self) -> None:
        """Clear buffer contents and all counters before a measurement."""
        self.buffer.clear()
        self.buffer.stats.reset()
        self.tree_q.reset_stats()
        self.tree_p.reset_stats()

    def set_buffer_fraction(self, fraction: float) -> None:
        """Resize the shared buffer to ``fraction`` of total tree size."""
        total_pages = self.tree_q.disk.num_pages + self.tree_p.disk.num_pages
        self.buffer.resize(max(1, int(total_pages * fraction)))


def build_workload(
    points_q: Sequence[Point],
    points_p: Sequence[Point],
    buffer_fraction: float = DEFAULT_BUFFER_FRACTION,
    page_size: int = DEFAULT_PAGE_SIZE,
) -> Workload:
    """Index both datasets (STR bulk load) behind one shared buffer."""
    tree_q = bulk_load(list(points_q), page_size=page_size, name="TQ")
    tree_p = bulk_load(list(points_p), page_size=page_size, name="TP")
    buffer = buffer_for_trees([tree_q, tree_p], buffer_fraction)
    tree_q.attach_buffer(buffer)
    tree_p.attach_buffer(buffer)
    return Workload(list(points_q), list(points_p), tree_q, tree_p, buffer)


#: Engine rows dispatched through the unified planner rather than the
#: R-tree ALGORITHMS table: bench label -> run_join algorithm name.
ENGINE_ROWS = {
    "ARRAY": "array",
    "PARALLEL": "array-parallel",
    "AUTO": "auto",
}

#: Ordered-browsing rows (pass ``k=``): bench label -> run_topk engine.
TOPK_ROWS = {
    "TOPK-ARRAY": "array",
    "TOPK-OBJ": "obj",
    "TOPK-AUTO": "auto",
}


def run_algorithm(workload: Workload, name: str, **kwargs) -> JoinReport:
    """Run one algorithm with fresh counters.

    ``INJ``/``BIJ``/``OBJ`` execute over the workload's R-trees;
    ``ARRAY`` (vectorized engine), ``PARALLEL`` (sharded worker pool;
    pass ``workers=``) and ``AUTO`` (cost-based planner) dispatch the
    workload's pointsets through :func:`repro.engine.run_join` — their
    reports carry no I/O-model figures but the same result pairs.
    ``TOPK-ARRAY``/``TOPK-OBJ``/``TOPK-AUTO`` (pass ``k=``) dispatch
    through :func:`repro.engine.run_topk`; the OBJ route runs over the
    workload's own trees and buffer.
    """
    if name in TOPK_ROWS:
        from repro.engine.planner import run_topk

        workload.reset()
        return run_topk(
            workload.points_p,
            workload.points_q,
            engine=TOPK_ROWS[name],
            workload=workload,
            **kwargs,
        )
    if name in ENGINE_ROWS:
        # Imported lazily: the planner itself builds Workloads through
        # this module for the R-tree backend.
        from repro.engine.planner import run_join

        workload.reset()
        # The workload rides along so an AUTO plan that lands on the
        # R-tree backend measures against the bench's own trees and
        # buffer instead of silently rebuilding them; memory engines
        # ignore it.
        return run_join(
            workload.points_p,
            workload.points_q,
            algorithm=ENGINE_ROWS[name],
            workload=workload,
            **kwargs,
        )
    try:
        algo = ALGORITHMS[name]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {name!r}; expected one of "
            f"{sorted(ALGORITHMS) + sorted(ENGINE_ROWS) + sorted(TOPK_ROWS)}"
        ) from None
    workload.reset()
    return algo(workload.tree_q, workload.tree_p, **kwargs)


def run_all_algorithms(workload: Workload, **kwargs) -> dict[str, JoinReport]:
    """Run INJ, BIJ and OBJ on the same workload."""
    return {name: run_algorithm(workload, name, **kwargs) for name in ALGORITHMS}


# ----------------------------------------------------------------------
# smoke entry point (CI canary)
# ----------------------------------------------------------------------

def smoke(
    n: int = 4000,
    workers: int = 2,
    topk: bool = False,
    families: bool = False,
) -> int:
    """Cross-engine smoke run: OBJ vs ARRAY vs PARALLEL vs AUTO.

    A bounded-size canary for CI: builds one uniform workload, runs the
    R-tree reference and every planner-dispatched engine (the parallel
    row through a real worker pool), and fails on any pair-set
    divergence.  Catches parallel-path regressions and pool deadlocks
    (CI wraps the invocation in a timeout) in well under a minute.

    ``topk=True`` additionally runs the ordered-browsing canary: every
    ``run_topk`` engine's first-k prefix must equal the canonically
    sorted full join, key for key.

    ``families=True`` additionally runs the join-family canary: every
    family pipeline (ε / kNN / kcp / CIJ) against its pointwise oracle,
    the shardable ones through a real worker pool as well.

    Returns a process exit code (0 = all engines agree).
    """
    from repro.datasets.fixtures import uniform_pair
    from repro.parallel.shards import DEFAULT_MIN_SHARD

    points_p, points_q = uniform_pair(n, n + n // 4, seed=11)
    workload = build_workload(points_q, points_p)
    # A shard floor below |Q|/workers forces a real multi-shard pool
    # even at smoke sizes.
    min_shard = max(64, min(DEFAULT_MIN_SHARD, len(points_q) // (2 * workers)))
    reports = {
        "OBJ": run_algorithm(workload, "OBJ"),
        "ARRAY": run_algorithm(workload, "ARRAY"),
        "PARALLEL": run_algorithm(
            workload, "PARALLEL", workers=workers, min_shard=min_shard
        ),
        "AUTO": run_algorithm(workload, "AUTO", workers=workers),
    }
    reference = reports["OBJ"].pair_keys()
    failed = False
    for name, report in reports.items():
        agree = report.pair_keys() == reference
        failed |= not agree
        plan = getattr(report, "plan", None)
        chosen = f" -> {plan.engine}x{plan.workers}" if plan else ""
        print(
            f"{name:>8}{chosen}: {report.result_count} pairs, "
            f"{report.cpu_seconds:.3f}s wall "
            f"[{'ok' if agree else 'DIVERGED'}]"
        )
    if topk:
        failed |= _smoke_topk(workload, reports["ARRAY"], k=50)
    if families:
        failed |= _smoke_families(points_p, points_q, workers, min_shard)
    print(f"smoke: |P|={n} |Q|={n + n // 4} workers={workers} "
          f"{'FAILED' if failed else 'passed'}")
    return 1 if failed else 0


def _smoke_topk(workload: Workload, full: JoinReport, k: int) -> bool:
    """Top-k canary: each engine's prefix vs the sorted full join.

    Returns True on divergence (the caller's failure flag convention).
    """
    from repro.engine.streaming import pair_order_key, sort_pairs_by_diameter

    want = [
        pair_order_key(p) for p in sort_pairs_by_diameter(full.pairs)[:k]
    ]
    failed = False
    for name in TOPK_ROWS:
        report = run_algorithm(workload, name, k=k)
        got = [pair_order_key(p) for p in report.pairs]
        agree = got == want
        failed |= not agree
        plan = getattr(report, "plan", None)
        chosen = f" -> {plan.engine}" if plan else ""
        print(
            f"{name:>10}{chosen}: k={k}, {report.result_count} pairs, "
            f"{report.cpu_seconds:.3f}s wall "
            f"[{'ok' if agree else 'DIVERGED'}]"
        )
    return failed


def _smoke_families(
    points_p: list[Point],
    points_q: list[Point],
    workers: int,
    min_shard: int,
) -> bool:
    """Join-family canary: each pipeline vs its pointwise oracle.

    Runs every family of :data:`repro.engine.families.FAMILY_NAMES`
    (except the RCJ itself, which the main smoke rows cover) on the
    smoke workload: the serial pipeline always, plus a real worker pool
    for the shardable families.  kcp compares the exact canonical order
    (ties included); the set-valued families compare key sets.  Returns
    True on divergence (the caller's failure flag convention).
    """
    from repro.engine.families import SHARDABLE_FAMILIES, run_family_join

    # CIJ's serial geometric step dominates at smoke scale; cap its
    # input so the canary stays fast while still covering the pipeline.
    cij_p, cij_q = points_p[:600], points_q[:600]
    cases = [
        ("epsilon", {"eps": 25.0}, points_p, points_q),
        ("knn", {"k": 4}, points_p, points_q),
        ("kcp", {"k": 100}, points_p, points_q),
        ("cij", {}, cij_p, cij_q),
    ]
    failed = False
    for family, params, fam_p, fam_q in cases:
        oracle = run_family_join(
            fam_p, fam_q, family, engine="pointwise", **params
        )
        runs = {"array": run_family_join(
            fam_p, fam_q, family, engine="array", **params
        )}
        if family in SHARDABLE_FAMILIES:
            runs["array-parallel"] = run_family_join(
                fam_p,
                fam_q,
                family,
                engine="array-parallel",
                workers=workers,
                min_shard=min_shard,
                **params,
            )
        want = [pair.key() for pair in oracle.pairs]
        for engine, report in runs.items():
            got = [pair.key() for pair in report.pairs]
            agree = got == want
            failed |= not agree
            print(
                f"{family:>8}/{engine}: {report.result_count} pairs, "
                f"{report.cpu_seconds:.3f}s wall "
                f"(oracle {oracle.cpu_seconds:.3f}s) "
                f"[{'ok' if agree else 'DIVERGED'}]"
            )
    return failed


def smoke_calibration(n: int = 1200) -> int:
    """Calibration-loop canary: sweep → refit → calibrated planning.

    Runs the bounded seed sweep, refits a profile for this host,
    persists it, and checks that the planner's next ``auto`` decision
    is made *from that profile* (predicted seconds attached, the
    calibrated-comparison reason present) and that the predicted
    ranking of serial vs parallel agrees with what the sweep measured.
    Requires a writable ``REPRO_CALIBRATION_DIR`` (CI points it at a
    workspace-local directory).
    """
    from repro.calibration import load_observations
    from repro.calibration.profile import save_profile
    from repro.calibration.refit import refit_profile
    from repro.calibration.sweep import run_calibration_sweep
    from repro.datasets.fixtures import uniform_pair
    from repro.parallel.costmodel import choose_plan

    recorded = run_calibration_sweep(n, rounds=1, echo=print)
    profile = refit_profile()
    path = save_profile(profile)
    print(f"calibration smoke: {recorded} observations -> {path}")

    points_p, points_q = uniform_pair(n, n + n // 4, seed=7)
    plan = choose_plan(points_p, points_q, workers=2)
    failed = False
    if plan.predicted_seconds is None:
        print("calibration smoke: plan carries no predicted seconds [FAILED]")
        failed = True
    if not any("calibrated" in reason for reason in plan.reasons):
        print("calibration smoke: plan reasons lack the calibrated "
              "comparison [FAILED]")
        failed = True

    # The calibrated pick must agree with the sweep's own measurements:
    # mean measured seconds per bulk-join engine, serial vs parallel.
    walls: dict[str, list[float]] = {}
    for obs in load_observations():
        if obs.get("workload") == "join":
            walls.setdefault(obs["engine"], []).append(
                float(obs["total_seconds"])
            )
    if walls:
        fastest = min(walls, key=lambda e: sum(walls[e]) / len(walls[e]))
        agree = plan.engine == fastest
        failed |= not agree
        print(
            f"calibration smoke: planner picked {plan.engine}, sweep "
            f"measured {fastest} fastest [{'ok' if agree else 'FAILED'}]"
        )
    print(f"calibration smoke: {'FAILED' if failed else 'passed'}")
    return 1 if failed else 0


def main(argv: Sequence[str] | None = None) -> int:
    """``python -m repro.bench.runner`` — currently the smoke canary."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.bench.runner",
        description="benchmark workload runner (CI smoke entry point)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the cross-engine smoke canary and exit",
    )
    parser.add_argument(
        "--calibration",
        action="store_true",
        help="run the calibration-loop canary (sweep, refit, "
        "profile-aware planning) and exit",
    )
    parser.add_argument(
        "--topk",
        action="store_true",
        help="also run the ordered-browsing (top-k) canary",
    )
    parser.add_argument(
        "--families",
        action="store_true",
        help="also run the join-family (eps/knn/kcp/cij) canary",
    )
    parser.add_argument("--n", type=int, default=4000,
                        help="smoke |P| (|Q| is 1.25x)")
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args(argv)
    if args.calibration:
        return smoke_calibration(n=min(args.n, 1200))
    if args.smoke:
        return smoke(
            n=args.n,
            workers=args.workers,
            topk=args.topk,
            families=args.families,
        )
    parser.error("nothing to do: pass --smoke or --calibration")
    return 2  # pragma: no cover


if __name__ == "__main__":
    import sys

    sys.exit(main())
