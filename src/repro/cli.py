"""Command-line interface.

Usage (installed as ``python -m repro``)::

    python -m repro generate --kind uniform -n 1000 --seed 1 -o p.txt
    python -m repro generate --kind gaussian -n 1000 -w 8 --seed 2 -o q.txt
    python -m repro join p.txt q.txt --method obj -o pairs.txt
    python -m repro join p.txt q.txt --engine array -o pairs.txt
    python -m repro selfjoin p.txt -o postboxes.txt
    python -m repro topk p.txt q.txt -k 10
    python -m repro resemblance p.txt q.txt --join eps --param 50

Pointset files are plain text (``oid x y`` per line, see
:mod:`repro.datasets.io`); the join output has one
``p_oid q_oid center_x center_y radius`` line per result pair.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro import ring_constrained_join
from repro.core.selfjoin import self_rcj
from repro.datasets.io import load_points, save_points
from repro.datasets.synthetic import gaussian_clusters, uniform


def _write_pairs(pairs, out) -> None:
    for pair in pairs:
        cx, cy = pair.center
        out.write(
            f"{pair.p.oid} {pair.q.oid} {cx!r} {cy!r} {pair.radius!r}\n"
        )


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "uniform":
        points = uniform(args.n, seed=args.seed, start_oid=args.start_oid)
    else:
        points = gaussian_clusters(
            args.n, w=args.clusters, seed=args.seed, start_oid=args.start_oid
        )
    save_points(points, args.output)
    print(f"wrote {len(points)} points to {args.output}")
    return 0


def _method_for(args: argparse.Namespace) -> str:
    """The effective algorithm: ``--engine array`` overrides ``--method``."""
    return "array" if args.engine == "array" else args.method


def _cmd_join(args: argparse.Namespace) -> int:
    points_p = load_points(args.pointset_p)
    points_q = load_points(args.pointset_q)
    method = _method_for(args)
    pairs = ring_constrained_join(points_p, points_q, method=method)
    if args.output:
        with open(args.output, "w") as f:
            _write_pairs(pairs, f)
    else:
        _write_pairs(pairs, sys.stdout)
    print(
        f"RCJ({args.pointset_p} x {args.pointset_q}) via {method}: "
        f"{len(pairs)} pairs",
        file=sys.stderr,
    )
    return 0


def _cmd_selfjoin(args: argparse.Namespace) -> int:
    points = load_points(args.pointset)
    method = _method_for(args)
    pairs = self_rcj(points, algorithm=method)
    if args.output:
        with open(args.output, "w") as f:
            _write_pairs(pairs, f)
    else:
        _write_pairs(pairs, sys.stdout)
    print(
        f"self-RCJ({args.pointset}) via {method}: {len(pairs)} pairs",
        file=sys.stderr,
    )
    return 0


def _cmd_topk(args: argparse.Namespace) -> int:
    from repro.core.topk import top_k_rcj
    from repro.rtree.bulk import bulk_load

    points_p = load_points(args.pointset_p)
    points_q = load_points(args.pointset_q)
    tree_p = bulk_load(points_p, name="TP")
    tree_q = bulk_load(points_q, name="TQ")
    pairs = top_k_rcj(tree_p, tree_q, args.k)
    if args.output:
        with open(args.output, "w") as f:
            _write_pairs(pairs, f)
    else:
        _write_pairs(pairs, sys.stdout)
    print(
        f"top-{args.k} RCJ pairs by ring diameter: {len(pairs)} reported",
        file=sys.stderr,
    )
    return 0


def _cmd_resemblance(args: argparse.Namespace) -> int:
    from repro.core.gabriel import gabriel_rcj
    from repro.evaluation.resemblance import precision_recall
    from repro.joins.closest_pairs import k_closest_pairs
    from repro.joins.common_influence import common_influence_join
    from repro.joins.epsilon import epsilon_join_arrays
    from repro.joins.knn import knn_join
    from repro.rtree.bulk import bulk_load

    points_p = load_points(args.pointset_p)
    points_q = load_points(args.pointset_q)
    rcj_keys = {r.key() for r in gabriel_rcj(points_p, points_q)}

    if args.join in ("eps", "kcp", "knn") and args.param is None:
        print(f"--param is required for {args.join}", file=sys.stderr)
        return 2
    if args.join == "eps":
        other = epsilon_join_arrays(points_p, points_q, float(args.param))
    elif args.join == "kcp":
        tree_p = bulk_load(points_p, name="TP")
        tree_q = bulk_load(points_q, name="TQ")
        other = {
            (p.oid, q.oid)
            for _d, p, q in k_closest_pairs(tree_p, tree_q, int(args.param))
        }
    elif args.join == "knn":
        tree_q = bulk_load(points_q, name="TQ")
        other = {
            (p.oid, q.oid) for p, q in knn_join(points_p, tree_q, int(args.param))
        }
    else:  # cij — parameterless, like RCJ itself
        other = {
            (p.oid, q.oid)
            for p, q in common_influence_join(points_p, points_q)
        }

    prec, rec = precision_recall(other, rcj_keys)
    print(
        f"{args.join} vs RCJ: |RCJ|={len(rcj_keys)} |{args.join}|={len(other)} "
        f"precision={prec:.1f}% recall={rec:.1f}%"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Ring-constrained join over planar pointsets (EDBT 2008 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic pointset file")
    gen.add_argument("--kind", choices=("uniform", "gaussian"), default="uniform")
    gen.add_argument("-n", type=int, required=True, help="number of points")
    gen.add_argument("-w", "--clusters", type=int, default=10,
                     help="cluster count (gaussian only)")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--start-oid", type=int, default=0)
    gen.add_argument("-o", "--output", required=True)
    gen.set_defaults(func=_cmd_generate)

    join = sub.add_parser("join", help="ring-constrained join of two pointset files")
    join.add_argument("pointset_p")
    join.add_argument("pointset_q")
    join.add_argument(
        "--method",
        choices=("obj", "bij", "inj", "gabriel", "brute"),
        default="obj",
    )
    join.add_argument(
        "--engine",
        choices=("pointwise", "array"),
        default="pointwise",
        help="execution engine: the pointwise algorithm selected by "
        "--method, or the vectorized batch engine (overrides --method)",
    )
    join.add_argument("-o", "--output", default=None)
    join.set_defaults(func=_cmd_join)

    selfjoin = sub.add_parser("selfjoin", help="self-RCJ of one pointset file")
    selfjoin.add_argument("pointset")
    selfjoin.add_argument(
        "--method",
        choices=("obj", "bij", "inj", "gabriel", "brute"),
        default="obj",
    )
    selfjoin.add_argument(
        "--engine",
        choices=("pointwise", "array"),
        default="pointwise",
        help="execution engine: the pointwise algorithm selected by "
        "--method, or the vectorized batch engine (overrides --method)",
    )
    selfjoin.add_argument("-o", "--output", default=None)
    selfjoin.set_defaults(func=_cmd_selfjoin)

    topk = sub.add_parser(
        "topk", help="smallest-diameter RCJ pairs (tourist recommendation)"
    )
    topk.add_argument("pointset_p")
    topk.add_argument("pointset_q")
    topk.add_argument("-k", type=int, required=True)
    topk.add_argument("-o", "--output", default=None)
    topk.set_defaults(func=_cmd_topk)

    res = sub.add_parser(
        "resemblance",
        help="precision/recall of another spatial join w.r.t. RCJ",
    )
    res.add_argument("pointset_p")
    res.add_argument("pointset_q")
    res.add_argument("--join", choices=("eps", "kcp", "knn", "cij"), required=True)
    res.add_argument(
        "--param",
        default=None,
        help="join parameter: eps distance, or k (cij takes none)",
    )
    res.set_defaults(func=_cmd_resemblance)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
