"""Command-line interface.

Usage (installed as ``python -m repro``)::

    python -m repro generate --kind uniform -n 1000 --seed 1 -o p.txt
    python -m repro generate --kind gaussian -n 1000 -w 8 --seed 2 -o q.txt
    python -m repro join p.txt q.txt --method obj -o pairs.txt
    python -m repro join p.txt q.txt --engine array -o pairs.txt
    python -m repro join p.txt q.txt --engine auto --workers 4 --explain
    python -m repro join p.txt q.txt --mode topk --top-k 10
    python -m repro join p.txt q.txt --family epsilon --param 50 --explain
    python -m repro join p.txt q.txt --family knn --param 4 --engine array
    python -m repro selfjoin p.txt -o postboxes.txt
    python -m repro topk p.txt q.txt -k 10 --engine array
    python -m repro join p.txt q.txt --engine auto --trace run.trace.jsonl
    python -m repro trace show run.trace.jsonl
    python -m repro trace export run.trace.jsonl -o run.perfetto.json
    python -m repro resemblance p.txt q.txt --join eps --param 50
    python -m repro stream --objects 2000 --ticks 100 --batch 64 --verify
    python -m repro stream --smoke
    python -m repro calibrate --n 4000 --rounds 2
    python -m repro calibrate --smoke

Pointset files are plain text (``oid x y`` per line, see
:mod:`repro.datasets.io`); the join output has one
``p_oid q_oid center_x center_y radius`` line per result pair.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.selfjoin import self_rcj
from repro.datasets.io import load_points, save_points
from repro.datasets.synthetic import gaussian_clusters, uniform
from repro.engine import ENGINE_NAMES, run_join


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {text!r}"
        )
    return value


def _write_pairs(pairs, out) -> None:
    for pair in pairs:
        cx, cy = pair.center
        out.write(
            f"{pair.p.oid} {pair.q.oid} {cx!r} {cy!r} {pair.radius!r}\n"
        )


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "uniform":
        points = uniform(args.n, seed=args.seed, start_oid=args.start_oid)
    else:
        points = gaussian_clusters(
            args.n, w=args.clusters, seed=args.seed, start_oid=args.start_oid
        )
    save_points(points, args.output)
    print(f"wrote {len(points)} points to {args.output}")
    return 0


def _method_for(args: argparse.Namespace) -> str:
    """The effective algorithm: a non-pointwise ``--engine`` overrides
    ``--method``."""
    engine = args.engine or "pointwise"
    return args.method if engine == "pointwise" else engine


def _explain_hypothetical(points_p, points_q, args) -> None:
    """Print what ``--engine auto`` *would* have picked.

    Used only for non-auto engine choices, where no plan runs; an auto
    run prints ``report.plan`` — the plan that actually executed —
    instead of planning a second time.
    """
    from repro.parallel.costmodel import choose_plan

    plan = choose_plan(points_p, points_q, workers=args.workers)
    print(plan.describe(), file=sys.stderr)


def _emit_trace_diagnostics(report, args: argparse.Namespace) -> None:
    """Write the run's trace sink and/or render its tree.

    Everything goes to stderr (or the ``--trace`` file): stdout is
    reserved for the machine-parseable pair lines, so piping them stays
    safe whatever diagnostics are enabled.
    """
    root = getattr(report, "trace", None)
    trace_path = getattr(args, "trace", None)
    if root is None:
        if trace_path:
            print(
                "no trace captured (tracing disabled via REPRO_TRACE?)",
                file=sys.stderr,
            )
        return
    if trace_path:
        from repro.obs.export import write_jsonl

        n = write_jsonl(root, trace_path)
        print(f"trace: {n} spans appended to {trace_path}", file=sys.stderr)
    if args.explain:
        from repro.obs.export import render_tree

        print(render_tree(root), file=sys.stderr)


def _family_param(args: argparse.Namespace) -> tuple[float | None, int | None]:
    """``(eps, k)`` parsed from ``--param`` for the selected family."""
    if args.family == "epsilon":
        if args.param is None:
            raise SystemExit("--family epsilon requires --param EPS")
        return float(args.param), None
    if args.family in ("knn", "kcp"):
        if args.param is None:
            raise SystemExit(f"--family {args.family} requires --param K")
        return None, int(args.param)
    if args.param is not None:
        raise SystemExit(f"--family {args.family} takes no --param")
    return None, None


def _cmd_family_join(args: argparse.Namespace) -> int:
    """A non-RCJ family join: pipeline dispatch through the planner."""
    from repro.engine import explain_family

    points_p = load_points(args.pointset_p)
    points_q = load_points(args.pointset_q)
    eps, k = _family_param(args)
    # Families default to cost-based planning; an explicit --engine
    # (including 'pointwise', the reference oracle) pins the path.
    engine = args.engine or "auto"
    if args.explain:
        print(
            explain_family(
                points_p,
                points_q,
                args.family,
                eps=eps,
                k=k,
                workers=args.workers,
            ),
            file=sys.stderr,
        )
    report = run_join(
        points_p,
        points_q,
        family=args.family,
        engine=engine,
        eps=eps,
        k=k,
        workers=args.workers,
    )
    _emit_trace_diagnostics(report, args)
    pairs = report.pairs
    if args.output:
        with open(args.output, "w") as f:
            _write_pairs(pairs, f)
    else:
        _write_pairs(pairs, sys.stdout)
    print(
        f"{args.family}({args.pointset_p} x {args.pointset_q}) via "
        f"{report.algorithm.lower()}: {len(pairs)} pairs",
        file=sys.stderr,
    )
    return 0


def _cmd_join(args: argparse.Namespace) -> int:
    if args.family != "rcj":
        if args.mode == "topk" or args.top_k is not None:
            print(
                "--mode topk applies to --family rcj only "
                "(use --family kcp for ordered closest pairs)",
                file=sys.stderr,
            )
            return 2
        return _cmd_family_join(args)
    if args.param is not None:
        print("--param applies to non-rcj families only", file=sys.stderr)
        return 2
    points_p = load_points(args.pointset_p)
    points_q = load_points(args.pointset_q)
    method = _method_for(args)
    mode = args.mode if args.top_k is None else "topk"
    if mode == "topk":
        if args.top_k is None:
            print("--mode topk requires --top-k K", file=sys.stderr)
            return 2
        # The pointwise top-k algorithm is the R-tree incremental
        # distance join, whatever --method says about the bulk join.
        engine = method if method in ("array", "array-parallel", "auto") else "obj"
        report = run_join(
            points_p,
            points_q,
            algorithm=engine,
            mode="topk",
            k=args.top_k,
            workers=args.workers,
        )
    else:
        if args.explain and method != "auto":
            _explain_hypothetical(points_p, points_q, args)
        report = run_join(
            points_p, points_q, algorithm=method, workers=args.workers
        )
    if args.explain and report.plan is not None:
        print(report.plan.describe(), file=sys.stderr)
    _emit_trace_diagnostics(report, args)
    pairs = report.pairs
    if args.output:
        with open(args.output, "w") as f:
            _write_pairs(pairs, f)
    else:
        _write_pairs(pairs, sys.stdout)
    ran = report.algorithm.lower()
    what = f"top-{args.top_k} RCJ" if mode == "topk" else "RCJ"
    print(
        f"{what}({args.pointset_p} x {args.pointset_q}) via {ran}: "
        f"{len(pairs)} pairs",
        file=sys.stderr,
    )
    return 0


def _cmd_selfjoin(args: argparse.Namespace) -> int:
    points = load_points(args.pointset)
    method = _method_for(args)
    if args.explain:
        # The selfjoin helper returns deduplicated pairs, not a report,
        # so the plan is always computed here — for "auto" it is the
        # exact plan the run will use (the planner is deterministic and
        # self_rcj forwards the same workers value).
        _explain_hypothetical(points, points, args)
    pairs = self_rcj(points, algorithm=method, workers=args.workers)
    if args.output:
        with open(args.output, "w") as f:
            _write_pairs(pairs, f)
    else:
        _write_pairs(pairs, sys.stdout)
    print(
        f"self-RCJ({args.pointset}) via {method}: {len(pairs)} pairs",
        file=sys.stderr,
    )
    return 0


def _cmd_topk(args: argparse.Namespace) -> int:
    from repro.engine import run_topk

    points_p = load_points(args.pointset_p)
    points_q = load_points(args.pointset_q)
    report = run_topk(
        points_p, points_q, args.k, engine=args.engine, workers=args.workers
    )
    if args.explain and report.plan is not None:
        print(report.plan.describe(), file=sys.stderr)
    _emit_trace_diagnostics(report, args)
    pairs = report.pairs
    if args.output:
        with open(args.output, "w") as f:
            _write_pairs(pairs, f)
    else:
        _write_pairs(pairs, sys.stdout)
    print(
        f"top-{args.k} RCJ pairs by ring diameter via "
        f"{report.algorithm.lower()}: {len(pairs)} reported",
        file=sys.stderr,
    )
    return 0


def _cmd_resemblance(args: argparse.Namespace) -> int:
    from repro.core.gabriel import gabriel_rcj
    from repro.evaluation.resemblance import precision_recall
    from repro.joins.closest_pairs import k_closest_pairs
    from repro.joins.common_influence import common_influence_join
    from repro.joins.epsilon import epsilon_join_arrays
    from repro.joins.knn import knn_join
    from repro.rtree.bulk import bulk_load

    points_p = load_points(args.pointset_p)
    points_q = load_points(args.pointset_q)
    rcj_keys = {r.key() for r in gabriel_rcj(points_p, points_q)}

    if args.join in ("eps", "kcp", "knn") and args.param is None:
        print(f"--param is required for {args.join}", file=sys.stderr)
        return 2
    if args.join == "eps":
        other = epsilon_join_arrays(points_p, points_q, float(args.param))
    elif args.join == "kcp":
        tree_p = bulk_load(points_p, name="TP")
        tree_q = bulk_load(points_q, name="TQ")
        other = {
            (p.oid, q.oid)
            for _d, p, q in k_closest_pairs(tree_p, tree_q, int(args.param))
        }
    elif args.join == "knn":
        tree_q = bulk_load(points_q, name="TQ")
        other = {
            (p.oid, q.oid) for p, q in knn_join(points_p, tree_q, int(args.param))
        }
    else:  # cij — parameterless, like RCJ itself
        other = {
            (p.oid, q.oid)
            for p, q in common_influence_join(points_p, points_q)
        }

    prec, rec = precision_recall(other, rcj_keys)
    print(
        f"{args.join} vs RCJ: |RCJ|={len(rcj_keys)} |{args.join}|={len(other)} "
        f"precision={prec:.1f}% recall={rec:.1f}%"
    )
    return 0


def _cmd_trace_show(args: argparse.Namespace) -> int:
    """Render the trace trees recorded in a JSONL trace file."""
    from repro.obs.export import read_jsonl, render_tree

    roots = read_jsonl(args.trace_file)
    if not roots:
        print(f"no trace records in {args.trace_file}", file=sys.stderr)
        return 1
    for i, root in enumerate(roots):
        if len(roots) > 1:
            print(f"run {i}:")
        print(render_tree(root, max_depth=args.depth))
    return 0


def _cmd_trace_export(args: argparse.Namespace) -> int:
    """Export one recorded run as Chrome trace-event / Perfetto JSON."""
    import json

    from repro.obs.export import read_jsonl, to_chrome, validate_chrome

    roots = read_jsonl(args.trace_file)
    if not roots:
        print(f"no trace records in {args.trace_file}", file=sys.stderr)
        return 1
    try:
        root = roots[args.run]
    except IndexError:
        print(
            f"run {args.run} out of range ({len(roots)} recorded)",
            file=sys.stderr,
        )
        return 1
    doc = to_chrome(root)
    validate_chrome(doc)
    with open(args.output, "w") as f:
        json.dump(doc, f)
    print(
        f"wrote {len(doc['traceEvents'])} events to {args.output} "
        "(load at ui.perfetto.dev or chrome://tracing)",
        file=sys.stderr,
    )
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    """Run the moving-objects stream against a dynamic RCJ backend.

    Builds a seeded :class:`repro.workloads.moving.FleetSimulator`,
    routes the initial populations through the planner
    (:func:`repro.engine.planner.make_dynamic`) and feeds the coalesced
    update batches to ``apply_batch``, reporting sustained updates/sec.
    ``--verify`` recomputes the join from scratch at the end and fails
    (exit 1) unless the maintained pair set is identical.  Stdout gets
    one machine-parseable summary line; everything else goes to stderr.
    """
    import time as _time

    from repro.engine.planner import make_dynamic
    from repro.workloads.moving import FleetSimulator

    objects, depots = args.objects, args.depots
    ticks, batch = args.ticks, args.batch
    verify = args.verify
    if args.smoke:
        objects = min(objects, 300)
        depots = min(depots, 300)
        ticks = min(ticks, 12)
        batch = min(batch, 32)
        verify = True

    if args.explain:
        from repro.parallel.costmodel import choose_dynamic_backend

        backend, reason = choose_dynamic_backend(objects, depots, batch)
        print(f"plan: backend={backend}: {reason}", file=sys.stderr)

    sim = FleetSimulator(
        fleet=objects, depots=depots, seed=args.seed
    )
    points_p, points_q = sim.initial_points()
    dyn = make_dynamic(
        points_p, points_q, backend=args.backend, batch_size=batch
    )
    backend_name = type(dyn).__name__

    trace_spans = 0
    events = 0
    batches = 0
    t0 = _time.perf_counter()
    for update in sim.batch_stream(batch, ticks):
        dyn.apply_batch(update.inserts, update.deletes)
        events += update.events
        batches += 1
        root = getattr(dyn, "last_batch_trace", None)
        if args.trace and root is not None:
            from repro.obs.export import write_jsonl

            trace_spans += write_jsonl(root, args.trace)
    wall = _time.perf_counter() - t0
    rate = events / wall if wall > 0 else float("inf")

    verified = None
    if verify:
        from repro.engine import run_join

        cur_p, cur_q = sim.current_points()
        scratch = run_join(cur_p, cur_q, engine="array")
        verified = {p.key() for p in scratch.pairs} == dyn.pair_keys()
    if args.trace:
        print(
            f"trace: {trace_spans} spans appended to {args.trace}",
            file=sys.stderr,
        )
    stats = getattr(dyn, "maintenance_stats", None)
    if stats is not None:
        print(f"maintenance: {stats()}", file=sys.stderr)
    print(
        f"stream backend={backend_name} objects={objects} depots={depots} "
        f"ticks={ticks} batch={batch} batches={batches} events={events} "
        f"seconds={wall:.3f} updates_per_sec={rate:.0f} "
        f"pairs={len(dyn)} verified="
        + ("skipped" if verified is None else str(verified).lower())
    )
    if verified is False:
        print(
            "maintained result diverged from the from-scratch join",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    """Fit the planner's cost model from measured runs on this host.

    Runs the bounded forced-engine seed sweep
    (:func:`repro.calibration.sweep.run_calibration_sweep`), refits the
    per-host profile from every recorded observation, persists it, and
    prints the fitted constants.  After this, ``--engine auto`` plans
    by predicted seconds instead of static thresholds.
    """
    from repro.calibration import (
        calibration_dir,
        calibration_enabled,
        observations_path,
    )
    from repro.calibration.observations import reset_calibration
    from repro.calibration.profile import save_profile
    from repro.calibration.refit import refit_profile
    from repro.calibration.sweep import run_calibration_sweep

    if not calibration_enabled():
        print(
            "calibration is disabled (REPRO_CALIBRATION=0); unset it "
            "to record observations and fit a profile",
            file=sys.stderr,
        )
        return 1
    if args.reset:
        removed = reset_calibration()
        for path in removed:
            print(f"removed {path}", file=sys.stderr)
    if not args.refit_only:
        n = args.n
        rounds = args.rounds
        if args.smoke:
            n, rounds = min(n, 1200), 1
        recorded = run_calibration_sweep(
            n,
            rounds=rounds,
            max_workers=args.workers,
            echo=lambda line: print(f"  {line}", file=sys.stderr),
        )
        print(
            f"sweep recorded {recorded} observations in "
            f"{observations_path()}",
            file=sys.stderr,
        )
    try:
        profile = refit_profile()
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    path = save_profile(profile)
    print(profile.describe())
    print(f"profile saved to {path}", file=sys.stderr)
    print(
        f"calibration store: {calibration_dir()} "
        "(override with REPRO_CALIBRATION_DIR)",
        file=sys.stderr,
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Ring-constrained join over planar pointsets (EDBT 2008 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic pointset file")
    gen.add_argument("--kind", choices=("uniform", "gaussian"), default="uniform")
    gen.add_argument("-n", type=int, required=True, help="number of points")
    gen.add_argument("-w", "--clusters", type=int, default=10,
                     help="cluster count (gaussian only)")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--start-oid", type=int, default=0)
    gen.add_argument("-o", "--output", required=True)
    gen.set_defaults(func=_cmd_generate)

    def add_engine_args(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument(
            "--method",
            choices=("obj", "bij", "inj", "gabriel", "brute"),
            default="obj",
        )
        cmd.add_argument(
            "--engine",
            choices=ENGINE_NAMES,
            default=None,
            help="execution engine: the pointwise algorithm selected by "
            "--method, the vectorized batch engine, the sharded "
            "multi-process engine, or cost-based auto-selection "
            "(everything but 'pointwise' overrides --method; default: "
            "pointwise for RCJ, auto for --family joins)",
        )
        cmd.add_argument(
            "--workers",
            type=_positive_int,
            default=None,
            metavar="N",
            help="worker processes for array-parallel/auto "
            "(default: all cores)",
        )
        cmd.add_argument(
            "--explain",
            action="store_true",
            help="print the cost-based planner's decision and estimates "
            "to stderr before running",
        )
        cmd.add_argument("-o", "--output", default=None)

    join = sub.add_parser(
        "join",
        help="spatial join of two pointset files "
        "(RCJ by default; --family selects the other paper joins)",
    )
    join.add_argument("pointset_p")
    join.add_argument("pointset_q")
    add_engine_args(join)
    join.add_argument(
        "--family",
        choices=("rcj", "epsilon", "knn", "kcp", "cij"),
        default="rcj",
        help="join family: ring-constrained (default), epsilon-distance, "
        "k-nearest-neighbour, k-closest-pairs, or common influence — "
        "non-rcj families run as engine pipelines via the planner",
    )
    join.add_argument(
        "--param",
        default=None,
        help="family parameter: eps distance (epsilon) or k (knn/kcp); "
        "rcj and cij take none",
    )
    join.add_argument(
        "--mode",
        choices=("join", "topk"),
        default="join",
        help="full join (default) or the --top-k smallest-diameter "
        "pairs in ascending order",
    )
    join.add_argument(
        "--top-k",
        type=_positive_int,
        default=None,
        metavar="K",
        help="result bound for --mode topk (giving it implies the mode)",
    )
    join.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="append this run's span tree to a JSONL trace file "
        "(inspect with 'repro trace show/export')",
    )
    join.set_defaults(func=_cmd_join)

    selfjoin = sub.add_parser("selfjoin", help="self-RCJ of one pointset file")
    selfjoin.add_argument("pointset")
    add_engine_args(selfjoin)
    selfjoin.set_defaults(func=_cmd_selfjoin)

    topk = sub.add_parser(
        "topk", help="smallest-diameter RCJ pairs (tourist recommendation)"
    )
    topk.add_argument("pointset_p")
    topk.add_argument("pointset_q")
    topk.add_argument("-k", type=int, required=True)
    topk.add_argument(
        "--engine",
        choices=("auto", "array", "obj", "pointwise"),
        default="auto",
        help="streamed array enumeration, the R-tree incremental "
        "distance join, or cost-based auto-selection (default)",
    )
    topk.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        metavar="N",
        help="worker budget forwarded to the planner",
    )
    topk.add_argument(
        "--explain",
        action="store_true",
        help="print the top-k planner's decision to stderr",
    )
    topk.add_argument("-o", "--output", default=None)
    topk.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="append this run's span tree to a JSONL trace file",
    )
    topk.set_defaults(func=_cmd_topk)

    tr = sub.add_parser(
        "trace",
        help="inspect or export trace files recorded with --trace",
    )
    trsub = tr.add_subparsers(dest="trace_command", required=True)
    tshow = trsub.add_parser(
        "show", help="render the recorded span trees as text"
    )
    tshow.add_argument("trace_file")
    tshow.add_argument(
        "--depth",
        type=_positive_int,
        default=None,
        help="limit the rendered tree depth",
    )
    tshow.set_defaults(func=_cmd_trace_show)
    texp = trsub.add_parser(
        "export",
        help="export one run as Chrome trace-event / Perfetto JSON",
    )
    texp.add_argument("trace_file")
    texp.add_argument("-o", "--output", required=True)
    texp.add_argument(
        "--run",
        type=int,
        default=-1,
        help="which recorded run to export (default: the last)",
    )
    texp.set_defaults(func=_cmd_trace_export)

    res = sub.add_parser(
        "resemblance",
        help="precision/recall of another spatial join w.r.t. RCJ",
    )
    res.add_argument("pointset_p")
    res.add_argument("pointset_q")
    res.add_argument("--join", choices=("eps", "kcp", "knn", "cij"), required=True)
    res.add_argument(
        "--param",
        default=None,
        help="join parameter: eps distance, or k (cij takes none)",
    )
    res.set_defaults(func=_cmd_resemblance)

    stream = sub.add_parser(
        "stream",
        help="sustained moving-objects stream against a dynamic RCJ "
        "backend (fleet telemetry, batched incremental maintenance)",
    )
    stream.add_argument(
        "--objects",
        type=_positive_int,
        default=1000,
        help="fleet size, side P (default 1000)",
    )
    stream.add_argument(
        "--depots",
        type=_positive_int,
        default=1000,
        help="depot count, side Q (default 1000)",
    )
    stream.add_argument(
        "--ticks",
        type=_positive_int,
        default=50,
        help="simulation ticks to stream (default 50)",
    )
    stream.add_argument(
        "--batch",
        type=_positive_int,
        default=64,
        help="raw events per update batch (default 64)",
    )
    stream.add_argument(
        "--backend",
        choices=("auto", "array", "obj"),
        default="auto",
        help="dynamic backend: planner choice (default), columnar, "
        "or R*-tree",
    )
    stream.add_argument("--seed", type=int, default=42)
    stream.add_argument(
        "--smoke",
        action="store_true",
        help="bounded CI mode: caps sizes/ticks/batch and forces "
        "--verify",
    )
    stream.add_argument(
        "--verify",
        action="store_true",
        help="recompute the join from scratch at the end and fail "
        "unless the maintained result is identical",
    )
    stream.add_argument(
        "--explain",
        action="store_true",
        help="print the dynamic-backend planner's decision to stderr",
    )
    stream.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="append each batch's span tree to a JSONL trace file "
        "(inspect with 'repro trace show/export')",
    )
    stream.set_defaults(func=_cmd_stream)

    cal = sub.add_parser(
        "calibrate",
        help="fit the planner's cost model from measured runs on this host",
    )
    cal.add_argument(
        "--n",
        type=_positive_int,
        default=4000,
        help="largest sweep dataset size (default 4000)",
    )
    cal.add_argument(
        "--rounds",
        type=_positive_int,
        default=2,
        help="sweep repetitions with distinct seeds (default 2)",
    )
    cal.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        metavar="N",
        help="cap on the pool sizes measured (default: up to all cores)",
    )
    cal.add_argument(
        "--smoke",
        action="store_true",
        help="bounded CI mode: one small round (caps --n at 1200)",
    )
    cal.add_argument(
        "--reset",
        action="store_true",
        help="delete recorded observations and profiles first",
    )
    cal.add_argument(
        "--refit-only",
        action="store_true",
        help="skip the sweep; refit from already-recorded observations",
    )
    cal.set_defaults(func=_cmd_calibrate)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
