"""Plane-sweep rectangle intersection (Brinkhoff, Kriegel & Seeger).

Finds all intersecting pairs between two collections of axis-aligned
rectangles in ``O((n + m) log(n + m) + k)``-ish time: both collections
are sorted once by their lower x edge, then a synchronised scan marches
the sweep line left to right; at each step the rectangle with the
smaller lower edge is paired against the *active* x-overlapping
rectangles of the other collection by a forward scan, with the final
y-overlap test deciding intersection.

Intersection is closed-boundary (touching rectangles intersect),
matching :meth:`repro.geometry.rect.Rect.intersects`.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence, TypeVar

from repro.geometry.rect import Rect

A = TypeVar("A")
B = TypeVar("B")


def sweep_rect_pairs(
    left: Sequence[A],
    right: Sequence[B],
    left_rect: Callable[[A], Rect] | None = None,
    right_rect: Callable[[B], Rect] | None = None,
) -> Iterator[tuple[A, B]]:
    """Yield every pair ``(a, b)`` whose rectangles intersect.

    Parameters
    ----------
    left, right:
        The two collections.  Items may be :class:`Rect` themselves or
        arbitrary objects with rectangle accessors.
    left_rect, right_rect:
        Accessors mapping an item to its :class:`Rect`; identity by
        default.

    Yields
    ------
    Pairs in sweep order (ascending lower x edge of the pair's later
    member); each intersecting pair exactly once.
    """
    lrect = left_rect if left_rect is not None else lambda a: a
    rrect = right_rect if right_rect is not None else lambda b: b

    ls = sorted(((lrect(a), a) for a in left), key=lambda t: t[0].xmin)
    rs = sorted(((rrect(b), b) for b in right), key=lambda t: t[0].xmin)

    i = j = 0
    while i < len(ls) and j < len(rs):
        lr, la = ls[i]
        rr, rb = rs[j]
        if lr.xmin <= rr.xmin:
            # Pair `la` against active right rectangles.
            for k in range(j, len(rs)):
                other_rect, other = rs[k]
                if other_rect.xmin > lr.xmax:
                    break
                if (
                    other_rect.ymin <= lr.ymax
                    and lr.ymin <= other_rect.ymax
                ):
                    yield la, other
            i += 1
        else:
            for k in range(i, len(ls)):
                other_rect, other = ls[k]
                if other_rect.xmin > rr.xmax:
                    break
                if (
                    other_rect.ymin <= rr.ymax
                    and rr.ymin <= other_rect.ymax
                ):
                    yield other, rb
            j += 1


def sweep_point_rect_pairs(
    points: Sequence[A],
    rects: Sequence[B],
    point_xy: Callable[[A], tuple[float, float]],
    rect_of: Callable[[B], Rect],
) -> Iterator[tuple[A, B]]:
    """Yield every ``(point, rect)`` pair where the rect contains the
    point (closed boundaries).

    The batch analogue of repeated point-in-rectangle tests, used to
    probe many candidate circles' bounding boxes against the points of
    one R-tree leaf in a single pass.
    """
    ps = sorted(((point_xy(p), p) for p in points), key=lambda t: t[0][0])
    rs = sorted(((rect_of(r), r) for r in rects), key=lambda t: t[0].xmin)

    j = 0
    for (x, y), p in ps:
        # Retire rectangles wholly to the left of the sweep line.  They
        # can never contain this or any later point.
        while j < len(rs) and rs[j][0].xmax < x:
            j += 1
        for k in range(j, len(rs)):
            rect, r = rs[k]
            if rect.xmin > x:
                break
            if rect.ymin <= y <= rect.ymax and rect.xmax >= x:
                yield p, r
