"""Plane-sweep computational-geometry kernels.

The paper invokes plane-sweep twice: Brinkhoff et al.'s rectangle-join
sweep accelerates the Verify step ("plane-sweep is an efficient method
for detecting the intersection between two groups of rectangles"), and
the same kernel drives the node-level pairing of the ε-distance join
baseline.

- :mod:`repro.sweep.intersect` — the sweep proper: all intersecting
  pairs between two rectangle collections, plus a batch
  point-in-rectangle variant.
"""

from repro.sweep.intersect import (
    sweep_point_rect_pairs,
    sweep_rect_pairs,
)

__all__ = ["sweep_rect_pairs", "sweep_point_rect_pairs"]
