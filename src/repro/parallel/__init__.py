"""Sharded parallel execution subsystem for the RCJ.

The vectorized array engine (:mod:`repro.engine`) made the join fast on
one core; this package makes it use all of them, and picks the right
engine automatically:

- :mod:`repro.parallel.shards` — Hilbert-order spatial shards of the
  probe set (deterministic, spatially coherent ranges);
- :mod:`repro.parallel.sharedmem` — one shared-memory block carrying
  the join columns to every worker, exception-safe cleanup included;
- :mod:`repro.parallel.pool` — the persistent worker pool running the
  per-shard candidate → prune → verify pipeline and the canonical
  merge (:func:`parallel_rcj_pair_indices`);
- :mod:`repro.parallel.costmodel` — the cost-based planner behind
  ``run_join(..., engine="auto")``: chooses ``array-parallel`` /
  ``array`` / ``obj`` from dataset sizes, a density sample and the
  memory budget, and explains itself (:class:`ExecutionPlan`).

The parallel engine's pair output is byte-identical to the serial
engines for every worker count — the cross-engine equivalence suite
pins it.
"""

from repro.parallel.costmodel import (
    ExecutionPlan,
    choose_plan,
    memory_budget_bytes,
    sample_density_factor,
)
from repro.parallel.pool import default_workers, parallel_rcj_pair_indices
from repro.parallel.shards import ShardPlan, hilbert_shard_keys, plan_shards
from repro.parallel.sharedmem import SharedArrays

__all__ = [
    "ExecutionPlan",
    "SharedArrays",
    "ShardPlan",
    "choose_plan",
    "default_workers",
    "hilbert_shard_keys",
    "memory_budget_bytes",
    "parallel_rcj_pair_indices",
    "plan_shards",
    "sample_density_factor",
]
