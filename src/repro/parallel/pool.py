"""The sharded worker pool: fan the RCJ pipeline over processes.

Execution shape
---------------
The parent serializes both join columns (and the shard permutation)
into one shared-memory block (:mod:`repro.parallel.sharedmem`), then
starts a **persistent** pool: each worker attaches the block and builds
its read-only query structures — the ``P`` KD-tree and the union
verification KD-tree — exactly once in its initializer, after which
every shard task is just two integers (a range of the Hilbert-ordered
probe permutation, :mod:`repro.parallel.shards`).  A worker runs the
full per-shard pipeline from :mod:`repro.engine.kernels` — candidate
generation, Ψ− pruning, cone-cover certificates, batch ring
verification — and ships back only the surviving pair indices.

Shards outnumber workers (:data:`SHARDS_PER_WORKER`) so a dense patch
of the plane cannot serialize the join behind one straggler.

Determinism
-----------
Shard probe sets are disjoint, the kernels are exact (every shard
returns precisely its probes' true pairs), and the merged result is
re-ordered by the canonical pair order
(:func:`repro.engine.kernels.canonical_pair_order`) — so the output is
byte-identical for every worker count, every shard granularity and
every task completion order.  ``candidate_count`` is summed over shards
deterministically, but (like the serial engine's) its value reflects
how the escalation heuristics partitioned the work, so it may differ
*between* worker counts while pairs never do.

Cleanup
-------
The shared block is unlinked in a ``finally`` even when the pool dies
mid-join (worker crash, interrupt), so failed runs cannot leak
``/dev/shm`` segments.  Workers only close their mappings.  All worker
entry points are module-level functions: the pool works under both
``fork`` (Linux default) and ``spawn`` (macOS/Windows) start methods.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass

import numpy as np
from scipy.spatial import cKDTree

from repro.engine.arrays import PointArray
from repro.engine.kernels import (
    DEFAULT_K0,
    canonical_pair_order,
    knn_candidate_blocks,
    rcj_pair_indices,
    stage_timer,
    verify_rings_batch,
)
from repro.obs.trace import add_counter, span, trace
from repro.obs.trace import reset as _reset_trace
from repro.parallel.sharedmem import SharedArrays, Spec
from repro.parallel.shards import DEFAULT_MIN_SHARD, plan_shards

#: Shards per worker: enough slack for load balancing across uneven
#: spatial density without drowning in per-task fixed costs.
SHARDS_PER_WORKER = 4

def serial_fallback_threshold(min_shard: int) -> int:
    """Probe count below which the join runs in-process: fewer than two
    useful shards means pool startup costs more than it can save.  The
    threshold scales with the ``min_shard`` override so tests can
    exercise real pools on small datasets."""
    return 2 * min_shard


#: The in-process fallback threshold at the default shard granularity —
#: the figure the cost-based planner must agree with
#: (:mod:`repro.parallel.costmodel` imports it).
MIN_PARALLEL_PROBES = serial_fallback_threshold(DEFAULT_MIN_SHARD)


def default_workers() -> int:
    """Worker count used when the caller does not pin one."""
    return max(1, os.cpu_count() or 1)


@dataclass
class _WorkerState:
    """Per-process structures built once in the pool initializer."""

    shared: SharedArrays
    parr: PointArray
    qarr: PointArray
    order: np.ndarray
    tree_p: cKDTree
    union_tree: cKDTree
    ux: np.ndarray
    uy: np.ndarray
    k0: int
    exclude_same_oid: bool


_STATE: _WorkerState | None = None


def _init_worker(spec: Spec, k0: int, exclude_same_oid: bool) -> None:
    """Pool initializer: attach shared columns, build query structures."""
    global _STATE
    _reset_trace()  # fork copies the coordinator's active-trace stack
    shared = SharedArrays.attach(spec)
    parr = PointArray._wrap(shared["px"], shared["py"], shared["poid"])
    qarr = PointArray._wrap(shared["qx"], shared["qy"], shared["qoid"])
    tree_p = cKDTree(np.column_stack((parr.x, parr.y)))
    ux = np.concatenate((parr.x, qarr.x))
    uy = np.concatenate((parr.y, qarr.y))
    union_tree = cKDTree(np.column_stack((ux, uy)))
    _STATE = _WorkerState(
        shared,
        parr,
        qarr,
        shared["order"],
        tree_p,
        union_tree,
        ux,
        uy,
        k0,
        exclude_same_oid,
    )


def _run_shard(
    lo: int, hi: int, traced: bool = False
) -> tuple[np.ndarray, np.ndarray, dict, int, dict | None]:
    """One shard: candidates → prune → verify for probes
    ``order[lo:hi]``.  Returns ``(p_idx, q_idx, stage_seconds,
    candidate_count, span_tree)`` — per-stage wall times measured in
    the worker so the parent can sum them across shards onto the
    report (planned parallel runs feed the cost-model calibration like
    serial ones).  With ``traced`` the shard roots its own trace and
    ships the serialized span tree home for the coordinator to
    re-parent (:meth:`repro.obs.trace.Span.adopt`)."""
    st = _STATE
    assert st is not None, "worker used before initialization"
    probes = st.order[lo:hi]
    empty = np.empty(0, dtype=np.int64)
    if probes.size == 0:  # zero-point shard: nothing to do
        return empty, empty, {}, 0, None
    stages: dict = {}
    with trace("shard", lo=lo, hi=hi) if traced else nullcontext(None) as root:
        qsub = PointArray(
            st.qarr.x[probes], st.qarr.y[probes], st.qarr.oid[probes]
        )
        q_local, p_idx = knn_candidate_blocks(
            st.parr, qsub, k0=st.k0, tree_p=st.tree_p, stage_seconds=stages
        )
        q_idx = probes[q_local]
        if st.exclude_same_oid:
            keep = st.parr.oid[p_idx] != st.qarr.oid[q_idx]
            p_idx, q_idx = p_idx[keep], q_idx[keep]
        candidate_count = int(len(q_idx))
        add_counter("candidates", candidate_count)
        if candidate_count:
            with stage_timer(stages, "verify"):
                alive = verify_rings_batch(
                    st.parr.x[p_idx],
                    st.parr.y[p_idx],
                    st.qarr.x[q_idx],
                    st.qarr.y[q_idx],
                    st.union_tree,
                    st.ux,
                    st.uy,
                )
            p_idx, q_idx = p_idx[alive], q_idx[alive]
        add_counter("verified", int(len(p_idx)))
        add_counter("pruned", candidate_count - int(len(p_idx)))
    # root.seconds is final only once the trace context has closed.
    tree = root.to_dict() if root is not None else None
    return p_idx, q_idx, stages, candidate_count, tree


def _make_executor(
    workers: int, spec: Spec, k0: int, exclude_same_oid: bool
) -> ProcessPoolExecutor:
    """Pool construction seam (monkeypatched by the crash-safety
    tests)."""
    return ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_worker,
        initargs=(spec, k0, exclude_same_oid),
    )


@dataclass
class _FamilyWorkerState:
    """Per-process structures of a family-join pool."""

    shared: SharedArrays
    parr: PointArray
    qarr: PointArray
    order: np.ndarray
    family: str
    eps: float | None
    k: int | None
    tree: cKDTree


_FAMILY_STATE: _FamilyWorkerState | None = None


def _init_family_worker(
    spec: Spec, family: str, eps: float | None, k: int | None
) -> None:
    """Family-pool initializer: attach shared columns, prebuild the
    probe tree the family's source queries (once per process, not per
    shard)."""
    global _FAMILY_STATE
    _reset_trace()  # fork copies the coordinator's active-trace stack
    shared = SharedArrays.attach(spec)
    parr = PointArray._wrap(shared["px"], shared["py"], shared["poid"])
    qarr = PointArray._wrap(shared["qx"], shared["qy"], shared["qoid"])
    # The ε-join probes Q against the tree over P; the kNN join the
    # other way around.
    if family == "epsilon":
        tree = cKDTree(np.column_stack((parr.x, parr.y)))
    else:  # knn
        tree = cKDTree(np.column_stack((qarr.x, qarr.y)))
    _FAMILY_STATE = _FamilyWorkerState(
        shared, parr, qarr, shared["order"], family, eps, k, tree
    )


def _run_family_shard(
    lo: int, hi: int, traced: bool = False
) -> tuple[np.ndarray, np.ndarray, dict, int, dict | None]:
    """One family shard: the declared pipeline over probes
    ``order[lo:hi]``.  Returns ``(p_idx, q_idx, stage_seconds,
    candidate_count, span_tree)`` (see :func:`_run_shard` for the
    span-tree transport)."""
    from repro.engine.families import build_family_pipeline
    from repro.engine.operators import JoinContext

    st = _FAMILY_STATE
    assert st is not None, "worker used before initialization"
    probes = st.order[lo:hi]
    empty = np.empty(0, dtype=np.int64)
    if probes.size == 0:
        return empty, empty, {}, 0, None
    with trace("shard", lo=lo, hi=hi) if traced else nullcontext(None) as root:
        pipeline = build_family_pipeline(
            st.family, eps=st.eps, k=st.k, probes=probes
        )
        ctx = JoinContext(st.parr, st.qarr)
        if st.family == "epsilon":
            ctx.set_tree_p(st.tree)
        else:
            ctx.set_tree_q(st.tree)
        block = pipeline.run(ctx)
    tree = root.to_dict() if root is not None else None
    return (
        block.p_idx,
        block.q_idx,
        ctx.stage_seconds,
        int(ctx.counters.get("candidates", 0)),
        tree,
    )


def parallel_family_pair_indices(
    family: str,
    parr: PointArray,
    qarr: PointArray,
    *,
    eps: float | None = None,
    k: int | None = None,
    workers: int | None = None,
    min_shard: int = DEFAULT_MIN_SHARD,
    exec_info: dict | None = None,
) -> tuple[np.ndarray, np.ndarray, dict, int]:
    """Shard one shardable join family over the worker pool.

    The ε-join shards its ``Q`` probe loop, the kNN join its ``P``
    probe loop (each probe's result depends only on the full opposite
    pointset, which every worker holds via shared memory), both along
    the Hilbert order of :func:`repro.parallel.shards.plan_shards`.
    Workers run the *same* pipeline stages as the serial engine with a
    ``probes`` restriction, so shard unions are exact; the merge
    re-sorts into the canonical ``(p.oid, q.oid)`` order of
    :class:`repro.engine.operators.CollectAll`, making output identical
    across worker counts.  Returns ``(p_idx, q_idx, stage_seconds,
    candidate_count)`` with per-stage times summed over shards.

    ``exec_info`` (when given) receives how the run actually executed:
    ``workers`` (effective — 1 on the serial fallback), ``shards``,
    ``pooled`` and, on the pool path, ``bytes_shipped``.
    """
    from repro.engine.families import SHARDABLE_FAMILIES, build_family_pipeline
    from repro.engine.operators import JoinContext

    if family not in SHARDABLE_FAMILIES:
        raise ValueError(
            f"family {family!r} does not shard; expected one of "
            f"{SHARDABLE_FAMILIES}"
        )
    if workers is None:
        workers = default_workers()
    if workers < 1:
        raise ValueError(f"workers must be positive, got {workers}")

    def serial() -> tuple[np.ndarray, np.ndarray, dict, int]:
        if exec_info is not None:
            exec_info.update(workers=1, shards=1, pooled=False)
        pipeline = build_family_pipeline(family, eps=eps, k=k)
        ctx = JoinContext(parr, qarr)
        block = pipeline.run(ctx)
        return (
            block.p_idx,
            block.q_idx,
            ctx.stage_seconds,
            int(ctx.counters.get("candidates", 0)),
        )

    probe_x, probe_y = (
        (qarr.x, qarr.y) if family == "epsilon" else (parr.x, parr.y)
    )
    n_probe = len(probe_x)
    if len(parr) == 0 or len(qarr) == 0:
        if exec_info is not None:
            exec_info.update(workers=1, shards=0, pooled=False)
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, {}, 0
    if workers == 1 or n_probe < serial_fallback_threshold(min_shard):
        return serial()
    plan = plan_shards(
        probe_x, probe_y, workers * SHARDS_PER_WORKER, min_shard=min_shard
    )
    if len(plan) <= 1:
        return serial()

    shared = SharedArrays.create(
        {
            "px": parr.x,
            "py": parr.y,
            "poid": parr.oid,
            "qx": qarr.x,
            "qy": qarr.y,
            "qoid": qarr.oid,
            "order": plan.order,
        }
    )
    bytes_shipped = shared.nbytes
    try:
        workers = min(workers, len(plan))
        with span("pool", workers=workers, shards=len(plan)) as psp:
            traced = psp is not None
            if traced:
                psp.add("bytes-shipped", bytes_shipped)
            with span("pool-startup"):
                pool = ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=_init_family_worker,
                    initargs=(shared.spec(), family, eps, k),
                )
            with pool:
                futures = [
                    pool.submit(_run_family_shard, lo, hi, traced)
                    for lo, hi in plan.ranges()
                ]
                parts = [f.result() for f in futures]
            if traced:
                for part in parts:
                    if part[4] is not None:
                        psp.adopt(part[4])
    finally:
        shared.destroy()
    if exec_info is not None:
        exec_info.update(
            workers=workers,
            shards=len(plan),
            pooled=True,
            bytes_shipped=bytes_shipped,
        )

    p_idx = np.concatenate([p for p, _q, _s, _c, _t in parts])
    q_idx = np.concatenate([q for _p, q, _s, _c, _t in parts])
    stages: dict = {}
    for _p, _q, shard_stages, _c, _t in parts:
        for key, seconds in shard_stages.items():
            stages[key] = stages.get(key, 0.0) + seconds
    candidate_count = sum(c for _p, _q, _s, c, _t in parts)
    merged = np.lexsort((qarr.oid[q_idx], parr.oid[p_idx]))
    return p_idx[merged], q_idx[merged], stages, candidate_count


def parallel_rcj_pair_indices(
    parr: PointArray,
    qarr: PointArray,
    workers: int | None = None,
    k0: int = DEFAULT_K0,
    exclude_same_oid: bool = False,
    min_shard: int = DEFAULT_MIN_SHARD,
    stage_seconds: dict | None = None,
    exec_info: dict | None = None,
) -> tuple[np.ndarray, np.ndarray, int]:
    """The sharded parallel counterpart of
    :func:`repro.engine.kernels.rcj_pair_indices`.

    Returns ``(p_index, q_index, candidate_count)`` in canonical pair
    order; the index arrays are byte-identical to the serial engine's
    for every worker count.

    Parameters
    ----------
    workers:
        Process count; defaults to the machine's CPU count.  ``1``
        (or a probe set too small to amortize a pool) runs the serial
        kernels in-process.
    min_shard:
        Smallest useful shard, forwarded to the shard planner (tests
        lower it to force multi-shard plans on small datasets).
    stage_seconds:
        Optional accumulator for per-stage wall times.  On the pool
        path each stage is the **sum over shards** of worker-measured
        time (aggregate CPU seconds, which can exceed wall time); the
        serial fallbacks forward it to the kernels unchanged.
    exec_info:
        Optional dict receiving how the run actually executed:
        ``workers`` (effective — 1 on every serial fallback),
        ``shards``, ``pooled`` and, on the pool path,
        ``bytes_shipped`` (the shared-memory block size).  The planner
        records these so calibration never learns from phantom pools.
    """
    if workers is None:
        workers = default_workers()
    if workers < 1:
        raise ValueError(f"workers must be positive, got {workers}")

    def serial() -> tuple[np.ndarray, np.ndarray, int]:
        if exec_info is not None:
            exec_info.update(workers=1, shards=1, pooled=False)
        return rcj_pair_indices(
            parr,
            qarr,
            k0=k0,
            exclude_same_oid=exclude_same_oid,
            stage_seconds=stage_seconds,
        )

    n_p, n_q = len(parr), len(qarr)
    if n_p == 0 or n_q == 0:
        if exec_info is not None:
            exec_info.update(workers=1, shards=0, pooled=False)
        return (np.empty(0, np.int64), np.empty(0, np.int64), 0)
    if workers == 1 or n_q < serial_fallback_threshold(min_shard):
        return serial()
    plan = plan_shards(
        qarr.x, qarr.y, workers * SHARDS_PER_WORKER, min_shard=min_shard
    )
    if len(plan) <= 1:
        return serial()

    shared = SharedArrays.create(
        {
            "px": parr.x,
            "py": parr.y,
            "poid": parr.oid,
            "qx": qarr.x,
            "qy": qarr.y,
            "qoid": qarr.oid,
            "order": plan.order,
        }
    )
    bytes_shipped = shared.nbytes
    try:
        workers = min(workers, len(plan))
        with span("pool", workers=workers, shards=len(plan)) as psp:
            traced = psp is not None
            if traced:
                psp.add("bytes-shipped", bytes_shipped)
            with span("pool-startup"):
                pool = _make_executor(
                    workers, shared.spec(), k0, exclude_same_oid
                )
            with pool:
                futures = [
                    pool.submit(_run_shard, lo, hi, traced)
                    for lo, hi in plan.ranges()
                ]
                parts = [f.result() for f in futures]
            if traced:
                for part in parts:
                    if part[4] is not None:
                        psp.adopt(part[4])
    finally:
        shared.destroy()
    if exec_info is not None:
        exec_info.update(
            workers=workers,
            shards=len(plan),
            pooled=True,
            bytes_shipped=bytes_shipped,
        )

    p_idx = np.concatenate([p for p, _q, _s, _c, _t in parts])
    q_idx = np.concatenate([q for _p, q, _s, _c, _t in parts])
    if stage_seconds is not None:
        for _p, _q, shard_stages, _c, _t in parts:
            for key, seconds in shard_stages.items():
                stage_seconds[key] = stage_seconds.get(key, 0.0) + seconds
    candidate_count = sum(c for _p, _q, _s, c, _t in parts)
    merged = canonical_pair_order(p_idx, q_idx)
    return p_idx[merged], q_idx[merged], candidate_count
