"""Shared-memory column transport for the parallel engine.

A :class:`SharedArrays` packs a named set of numpy arrays into **one**
``multiprocessing.shared_memory`` block so worker processes can map the
join's columns (:class:`~repro.engine.arrays.PointArray` components,
the shard permutation) without copying them per worker or pushing
megabytes through the task pickle stream.

Lifecycle discipline — the part that keeps ``/dev/shm`` clean:

- the *owner* (the process that called :meth:`create`) is the only one
  allowed to unlink; :meth:`destroy` is idempotent and swallows
  already-gone errors, so ``finally``-cleanup after a crashed pool can
  never raise over the original exception;
- *attachers* (workers) map the block read-only by :meth:`attach` from
  the picklable :meth:`spec` and only ever :meth:`close` their view;
- both sides work under ``fork`` and ``spawn`` start methods: the spec
  carries the block name plus per-array (offset, dtype, shape) layout,
  nothing process-specific.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np

#: Byte alignment of each array inside the block (numpy requires only
#: itemsize alignment; 16 keeps every float64/int64 view aligned and is
#: future-proof for wider dtypes).
_ALIGN = 16

#: Picklable layout description: (block name, [(key, offset, dtype str,
#: shape), ...]).
Spec = tuple[str, list[tuple[str, int, str, tuple[int, ...]]]]


def _aligned(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


class SharedArrays:
    """A named set of numpy arrays backed by one shared-memory block."""

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        views: dict[str, np.ndarray],
        layout: list[tuple[str, int, str, tuple[int, ...]]],
        owner: bool,
    ):
        self._shm = shm
        self._views = views
        self._layout = layout
        self._owner = owner
        self._released = False
        self._unlinked = not owner

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, arrays: dict[str, np.ndarray]) -> "SharedArrays":
        """Copy ``arrays`` into a fresh shared block (this process owns
        it and must eventually :meth:`destroy` it)."""
        layout: list[tuple[str, int, str, tuple[int, ...]]] = []
        offset = 0
        prepared: dict[str, np.ndarray] = {}
        for key, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            prepared[key] = arr
            layout.append((key, offset, arr.dtype.str, arr.shape))
            offset = _aligned(offset + arr.nbytes)
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        views: dict[str, np.ndarray] = {}
        try:
            for (key, off, dtype, shape), arr in zip(layout, prepared.values()):
                view = np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=off)
                view[...] = arr
                views[key] = view
        except BaseException:
            shm.close()
            shm.unlink()
            raise
        return cls(shm, views, layout, owner=True)

    @classmethod
    def attach(cls, spec: Spec) -> "SharedArrays":
        """Map an existing block (read-only views) from its spec."""
        name, layout = spec
        shm = shared_memory.SharedMemory(name=name)
        views: dict[str, np.ndarray] = {}
        for key, off, dtype, shape in layout:
            view = np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=off)
            view.setflags(write=False)
            views[key] = view
        return cls(shm, views, layout, owner=False)

    def spec(self) -> Spec:
        """The picklable layout handed to worker initializers."""
        return (self._shm.name, list(self._layout))

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def __getitem__(self, key: str) -> np.ndarray:
        return self._views[key]

    def keys(self):
        return self._views.keys()

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def nbytes(self) -> int:
        return self._shm.size

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop this process's mapping (leaves the block alive for
        others).  Idempotent."""
        if self._released:
            return
        self._released = True
        # Views hold buffer references into shm.buf; they must go first
        # or SharedMemory.close() raises BufferError on the exported
        # memoryview.
        self._views = {}
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - stray external view
            pass

    def destroy(self) -> None:
        """Close and — when this process owns the block — unlink it.

        Safe to call from ``finally`` blocks and repeatedly: a block
        already unlinked (e.g. by a concurrent cleanup after a crashed
        run) is not an error.
        """
        self.close()
        if not self._unlinked:
            self._unlinked = True
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "SharedArrays":
        return self

    def __exit__(self, *exc_info) -> None:
        self.destroy() if self._owner else self.close()

    def __repr__(self) -> str:
        role = "owner" if self._owner else "view"
        return (
            f"SharedArrays({self.name!r}, {sorted(self._views)}, {role}, "
            f"{self.nbytes} bytes)"
        )
