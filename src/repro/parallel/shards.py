"""Spatial shard planning for the parallel engine.

The probe set ``Q`` is the embarrassingly parallel axis of the array
engine: every probe's candidate generation and verification reads the
shared ``P``/union structures but writes only its own pairs.  The shard
layer turns ``Q`` into contiguous ranges of a **Hilbert-ordered**
permutation (:mod:`repro.geometry.hilbert`), so each shard is a
spatially coherent patch of the plane rather than an arbitrary slice of
input order — its KD-tree probes touch neighbouring leaves, its
escalated probes cluster, and per-shard work tracks area rather than
input shuffling.

A :class:`ShardPlan` is deterministic: same probes and shard count, same
permutation and boundaries, on every run and platform.  Pair output
therefore cannot depend on scheduling — workers may finish in any
order, the merge step reorders canonically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.hilbert import HilbertMapper
from repro.geometry.rect import Rect

#: Hilbert curve order of the shard sort.  2^12 cells per side resolves
#: shard boundaries far below any useful shard granularity while keeping
#: the key transform to 12 vectorized passes.
SHARD_CURVE_ORDER = 12

#: Probes below which an extra shard is not worth its fixed overhead
#: (sub-array construction, task pickling, result merge).
DEFAULT_MIN_SHARD = 1024


def hilbert_shard_keys(
    x: np.ndarray, y: np.ndarray, order: int = SHARD_CURVE_ORDER
) -> np.ndarray:
    """Hilbert keys of coordinate arrays over their own bounding box.

    A thin wrapper over :meth:`HilbertMapper.keys_batch` — one home for
    the clamped-cell convention, including the collapse of degenerate
    extents (all probes on one vertical/horizontal line, or one
    location) to cell 0.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size == 0:
        return np.empty(0, dtype=np.int64)
    bounds = Rect(
        float(x.min()), float(y.min()), float(x.max()), float(y.max())
    )
    return HilbertMapper(bounds, order).keys_batch(x, y)


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic partition of the probe set into spatial ranges.

    Attributes
    ----------
    order:
        Probe-index permutation, sorted by Hilbert key (ties broken by
        probe index — the sort is stable).
    bounds:
        ``n_shards + 1`` offsets into ``order``; shard ``i`` is
        ``order[bounds[i]:bounds[i + 1]]``.
    """

    order: np.ndarray
    bounds: np.ndarray

    def __len__(self) -> int:
        return len(self.bounds) - 1

    def ranges(self) -> list[tuple[int, int]]:
        """The ``(lo, hi)`` offset pairs of all shards."""
        return [
            (int(self.bounds[i]), int(self.bounds[i + 1]))
            for i in range(len(self))
        ]

    def shard(self, i: int) -> np.ndarray:
        """The probe indices of shard ``i``."""
        return self.order[self.bounds[i] : self.bounds[i + 1]]


def plan_shards(
    x: np.ndarray,
    y: np.ndarray,
    n_shards: int,
    min_shard: int = DEFAULT_MIN_SHARD,
) -> ShardPlan:
    """Partition probes at coordinates ``(x, y)`` into spatial shards.

    ``n_shards`` is a request: it is clamped so that no shard falls
    below ``min_shard`` probes (tiny shards cost more in fixed overhead
    than their work is worth) and never exceeds the probe count, so a
    plan contains no empty shard.  Zero probes produce a zero-shard
    plan, which callers must treat as "nothing to do" rather than
    handing it to a pool.
    """
    n = len(x)
    if n == 0:
        return ShardPlan(
            np.empty(0, dtype=np.int64), np.zeros(1, dtype=np.int64)
        )
    if n_shards < 1:
        raise ValueError(f"need at least one shard, got {n_shards}")
    n_shards = max(1, min(n_shards, n // max(min_shard, 1), n))
    keys = hilbert_shard_keys(x, y)
    order = np.argsort(keys, kind="stable").astype(np.int64)
    bounds = np.linspace(0, n, n_shards + 1).astype(np.int64)
    return ShardPlan(order, bounds)
