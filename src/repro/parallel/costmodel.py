"""Cost-based execution planning for :func:`repro.engine.run_join`.

``engine="auto"`` asks the planner to pick the execution strategy the
way a database optimizer would — from data statistics and a resource
budget, not from a caller-supplied flag:

- ``array-parallel`` — the sharded multi-process engine
  (:mod:`repro.parallel.pool`), when the estimated probe volume is
  large enough to amortize pool startup and more than one core is
  available;
- ``array`` — the serial vectorized engine, when the join is too small
  for process fan-out but fits in memory;
- ``obj`` — the paper's best R-tree algorithm over the simulated
  disk/buffer stack, when the estimated in-memory working set exceeds
  the memory budget (the EMBANKS-style regime: stream through a
  bounded buffer rather than materialize columns and KD-trees).

Estimates are first-order by design (this is plan *selection*, not
performance prediction): dataset sizes are exact, the candidate volume
is extrapolated from a deterministic KD-tree **density sample** (local
point density at sampled probe locations relative to a uniform spread —
clustered data escalates more and verifies bigger ball queries), and
memory is a per-structure byte model.  Every decision is recorded in
:attr:`ExecutionPlan.reasons`, surfaced by ``--explain`` on the CLI.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

import numpy as np

# The planner's serial floor IS the pool's in-process fallback
# threshold — one source of truth, so the two layers cannot drift.
from repro.parallel.pool import MIN_PARALLEL_PROBES, default_workers

#: Default in-memory working-set budget when neither the caller nor the
#: ``REPRO_MEMORY_BUDGET_MB`` environment variable says otherwise.
DEFAULT_BUDGET_BYTES = 1 << 30

#: Estimated candidate volume below which a process pool costs more
#: than it saves.
MIN_PARALLEL_CANDIDATES = 64_000

#: P points retained for the density-sample KD-tree.
_SAMPLE_P = 2048

#: Q probes sampled against it.
_SAMPLE_Q = 256

#: Neighbours per sampled probe.
_SAMPLE_K = 8

#: Clamp on the density factor's influence over the candidate estimate:
#: beyond ~4x the escalation stages saturate (windows widen, the
#: Delaunay backstop takes over).
_DENSITY_CLAMP = 4.0


def memory_budget_bytes() -> int:
    """The configured working-set budget (``REPRO_MEMORY_BUDGET_MB``
    overrides the 1 GiB default).

    The override is validated, not trusted: a zero/negative budget
    would silently route every join onto the slow obj/pointwise paths,
    and a typo would surface as a bare ``float()`` traceback nowhere
    near the variable that caused it.
    """
    override = os.environ.get("REPRO_MEMORY_BUDGET_MB")
    if override is None or not override.strip():
        return DEFAULT_BUDGET_BYTES
    try:
        megabytes = float(override)
    except ValueError:
        raise ValueError(
            f"REPRO_MEMORY_BUDGET_MB must be a number of MiB, "
            f"got {override!r}"
        ) from None
    if not np.isfinite(megabytes) or not megabytes > 0.0:
        raise ValueError(
            f"REPRO_MEMORY_BUDGET_MB must be a positive, finite number "
            f"of MiB, got {override!r} (a non-positive budget would "
            f"silently force every join onto the slow disk-backed path)"
        )
    return int(megabytes * (1 << 20))


def _sampled_coords(points, cap: int) -> tuple[int, np.ndarray, np.ndarray]:
    """``(n, xs, ys)`` with at most ``cap`` evenly strided samples.

    Accepts a :class:`~repro.engine.arrays.PointArray` (column
    attributes) or any sequence of objects with ``.x``/``.y``.
    """
    n = len(points)
    if n == 0:
        return 0, np.empty(0), np.empty(0)
    idx = np.unique(np.linspace(0, n - 1, min(cap, n)).astype(np.int64))
    if hasattr(points, "x"):  # PointArray: sample the columns directly
        return n, np.asarray(points.x)[idx], np.asarray(points.y)[idx]
    xs = np.fromiter((points[i].x for i in idx), np.float64, count=len(idx))
    ys = np.fromiter((points[i].y for i in idx), np.float64, count=len(idx))
    return n, xs, ys


def sample_density_factor(points_p, points_q) -> float:
    """Mean local ``P`` density at sampled ``Q`` probes, relative to a
    uniform spread of the same sample over its bounding box.

    ``1.0`` means the probes see uniform-like spacing; values above it
    mean probes sit in denser-than-uniform regions (clustered data),
    which inflates candidate windows, escalation rates and verification
    ball volumes.  Deterministic: samples are evenly strided, never
    random.
    """
    from scipy.spatial import cKDTree

    n_p, px, py = _sampled_coords(points_p, _SAMPLE_P)
    n_q, qx, qy = _sampled_coords(points_q, _SAMPLE_Q)
    if n_p == 0 or n_q == 0 or len(px) < 2:
        return 1.0
    area = (float(px.max()) - float(px.min())) * (
        float(py.max()) - float(py.min())
    )
    if not (area > 0.0 and np.isfinite(area)):
        return 1.0  # degenerate extent: no areal density to compare
    k = min(_SAMPLE_K, len(px))
    dist, _ = cKDTree(np.column_stack((px, py))).query(
        np.column_stack((qx, qy)), k=k
    )
    r_k = float(np.mean(dist if k == 1 else dist[:, -1]))
    # Uniform expectation of the k-th NN distance at density n/area.
    r_uniform = float(np.sqrt(k * area / (np.pi * len(px))))
    if r_k <= 0.0:  # duplicate-riddled probes: maximally dense
        return _DENSITY_CLAMP
    factor = (r_uniform / r_k) ** 2
    return float(np.clip(factor, 1.0 / _DENSITY_CLAMP, _DENSITY_CLAMP))


def estimate_candidates(
    n_p: int, n_q: int, density_factor: float, k0: int = 16
) -> int:
    """First-order candidate volume: one neighbour window per probe,
    scaled by how much denser than uniform the probes' surroundings
    are."""
    per_probe = min(k0, n_p) * min(max(density_factor, 1.0), _DENSITY_CLAMP)
    return int(n_q * per_probe)


def estimate_bytes(
    n_p: int, n_q: int, workers: int, est_candidates: int
) -> int:
    """Working-set model of the array engines.

    Shared columns (three 8-byte columns per side), per-worker KD-trees
    (~48 bytes/point for the tree over ``P`` plus the union tree and
    its coordinate copies), and the candidate index/verification
    buffers (three 8-byte arrays).  First-order, like every figure in
    this module.
    """
    columns = 24 * (n_p + n_q)
    per_worker = 48 * n_p + 64 * (n_p + n_q)
    return columns + max(workers, 1) * per_worker + 24 * est_candidates


def estimate_topk_candidates(
    k: int, density_factor: float, n_p: int, n_q: int
) -> int:
    """First-order candidate volume of a top-``k`` radius-band stream:
    bands overscan the requested results, denser-than-uniform probes
    enumerate proportionally more (shared by the kcp family plan, the
    top-k plan and the calibration sweep)."""
    return int(
        min(
            max(k, 1) * max(density_factor, 1.0) * _TOPK_OVERSCAN,
            float(n_p) * float(n_q),
        )
    )


# ----------------------------------------------------------------------
# calibrated (profile-aware) selection
# ----------------------------------------------------------------------

def _calibration_profile():
    """The fitted per-host profile, or None (missing, corrupt, or the
    calibration loop is disabled).  Failures never break planning."""
    try:
        from repro.calibration.profile import cached_profile

        return cached_profile()
    except Exception:
        return None


def _calibrated_choice(
    profile,
    workload: str,
    *,
    n_p: int,
    n_q: int,
    probe_volume: int,
    density: float,
    est_cand: int,
    serial_mem: int,
    budget: int,
    requested: int,
    reasons: list[str],
):
    """Pick the fastest *predicted* engine under a fitted profile.

    Compares the serial vectorized plan against the sharded pool at
    every worker count the profile has actually observed (capped by the
    caller's worker budget, the pool's own serial-fallback floor and
    the memory budget).  Returns the winning :class:`ExecutionPlan` —
    with the loaded constants and per-plan predictions quoted in its
    reasons — or ``None`` when the profile holds no serial model for
    this workload, in which case the caller falls back to the static
    thresholds.

    Deliberately *not* consulted: the memory-budget overflow decision
    (obj/pointwise fallback is a resource constraint, not a timing
    bet) and the ``workers == 1`` fast path (serial is the only viable
    plan; predicting it changes nothing).
    """
    serial_pred = profile.predict_seconds(workload, "array", 1, est_cand)
    if serial_pred is None:
        return None
    candidates = [("array", 1, serial_pred, serial_mem)]
    # The pool runs in-process below MIN_PARALLEL_PROBES, so a parallel
    # "plan" there would execute serially anyway — honesty demands the
    # plan say so.
    if requested > 1 and probe_volume >= MIN_PARALLEL_PROBES:
        for workers in profile.parallel_worker_counts(workload):
            if workers > requested:
                continue
            est_mem = estimate_bytes(n_p, n_q, workers, est_cand)
            if est_mem > budget:
                continue
            pred = profile.predict_seconds(
                workload, "array-parallel", workers, est_cand
            )
            if pred is not None:
                candidates.append(
                    ("array-parallel", workers, pred, est_mem)
                )
    engine, workers, predicted, est_mem = min(
        candidates, key=lambda c: (c[2], c[1])
    )
    reasons = list(reasons)
    reasons.append(
        f"calibrated profile {profile.host.get('key', '?')} "
        f"({profile.n_observations} obs): "
        + profile.constants_line(workload)
    )
    reasons.append(
        "predicted "
        + ", ".join(
            f"{eng}" + (f"@{w}" if eng != "array" else "") + f"={sec:.3f}s"
            for eng, w, sec, _m in candidates
        )
        + f" -> {engine} is fastest"
    )
    return ExecutionPlan(
        engine, workers, n_p, n_q, density, est_cand, est_mem, budget,
        tuple(reasons), predicted_seconds=predicted,
    )


@dataclass(frozen=True)
class ExecutionPlan:
    """The planner's decision plus everything it was based on."""

    engine: str  #: ``"array-parallel"`` | ``"array"`` | ``"obj"``
    workers: int  #: processes the engine will use (1 for serial plans)
    n_p: int
    n_q: int
    density_factor: float
    est_candidates: int
    est_bytes: int
    budget_bytes: int
    reasons: tuple[str, ...]
    #: Measured per-stage wall seconds of the execution this plan drove
    #: (``(("candidate", s), ("prune", s), ("verify", s))``), attached
    #: after the run via :meth:`with_measured`.  ``None`` until the join
    #: has actually executed.  Keeping the measurement next to the
    #: estimates is what makes the plan a calibration record: a fleet of
    #: archived plans relates ``est_candidates``/``est_bytes`` to real
    #: stage times, from which the model's first-order constants can be
    #: refit.
    measured: tuple[tuple[str, float], ...] | None = None
    #: Predicted wall seconds of the chosen plan under the loaded
    #: calibration profile (:mod:`repro.calibration`); ``None`` for
    #: decisions made by the static thresholds (no profile fitted, or
    #: no model for this decision) — which also keeps profile-less
    #: plans byte-identical to the uncalibrated planner's.
    predicted_seconds: float | None = None

    def with_measured(
        self, stage_seconds: dict[str, float]
    ) -> "ExecutionPlan":
        """A copy of this plan carrying measured per-stage wall times."""
        return replace(self, measured=tuple(sorted(stage_seconds.items())))

    @property
    def measured_seconds(self) -> dict[str, float]:
        """Measured per-stage wall times as a dict (empty before run)."""
        return dict(self.measured or ())

    def describe(self) -> str:
        """Human-readable explain block (the CLI's ``--explain``)."""
        lines = [
            f"plan: engine={self.engine} workers={self.workers}",
            f"  |P| = {self.n_p}, |Q| = {self.n_q}",
            f"  density factor   {self.density_factor:.2f}"
            " (local probe density vs uniform)",
            f"  est. candidates  {self.est_candidates}",
            f"  est. working set {self.est_bytes / (1 << 20):.1f} MiB"
            f" (budget {self.budget_bytes / (1 << 20):.1f} MiB)",
        ]
        if self.predicted_seconds is not None:
            lines.append(
                f"  predicted        {self.predicted_seconds:.3f}s"
                " (calibrated cost model)"
            )
        lines.extend(f"  - {reason}" for reason in self.reasons)
        if self.measured:
            stages = " ".join(f"{k}={v:.3f}s" for k, v in self.measured)
            lines.append(f"  measured: {stages}")
        return "\n".join(lines)


def choose_plan(
    points_p,
    points_q,
    workers: int | None = None,
    budget_bytes: int | None = None,
    k0: int = 16,
) -> ExecutionPlan:
    """Pick the execution engine for one join from data statistics.

    Parameters
    ----------
    points_p, points_q:
        The join inputs — :class:`~repro.engine.arrays.PointArray` or
        point sequences; only sizes and a strided coordinate sample are
        read.
    workers:
        The caller's worker budget; ``None`` means "up to the machine's
        cores".  A value of 1 forbids the parallel plan.
    budget_bytes:
        In-memory working-set budget; exceeding it selects the
        disk/buffer R-tree plan.  Defaults to
        :func:`memory_budget_bytes`.
    """
    n_p, n_q = len(points_p), len(points_q)
    budget = memory_budget_bytes() if budget_bytes is None else budget_bytes
    requested = default_workers() if workers is None else workers
    if requested < 1:
        raise ValueError(f"workers must be positive, got {workers}")
    reasons: list[str] = []

    if n_p == 0 or n_q == 0:
        return ExecutionPlan(
            "array", 1, n_p, n_q, 1.0, 0, 0, budget,
            ("empty input: nothing to plan",),
        )

    density = sample_density_factor(points_p, points_q)
    est_cand = estimate_candidates(n_p, n_q, density, k0=k0)
    serial_mem = estimate_bytes(n_p, n_q, 1, est_cand)

    if serial_mem > budget:
        reasons.append(
            f"estimated working set {serial_mem} B exceeds the "
            f"{budget} B budget even single-process: stream through "
            "the R-tree/LRU-buffer backend"
        )
        return ExecutionPlan(
            "obj", 1, n_p, n_q, density, est_cand, serial_mem, budget,
            tuple(reasons),
        )

    if requested == 1:
        reasons.append("one worker requested: serial vectorized engine")
        return ExecutionPlan(
            "array", 1, n_p, n_q, density, est_cand, serial_mem, budget,
            tuple(reasons),
        )

    profile = _calibration_profile()
    if profile is not None:
        calibrated = _calibrated_choice(
            profile,
            "join",
            n_p=n_p,
            n_q=n_q,
            probe_volume=n_q,
            density=density,
            est_cand=est_cand,
            serial_mem=serial_mem,
            budget=budget,
            requested=requested,
            reasons=reasons,
        )
        if calibrated is not None:
            return calibrated

    if n_q < MIN_PARALLEL_PROBES or est_cand < MIN_PARALLEL_CANDIDATES:
        reasons.append(
            f"probe volume too small to amortize a process pool "
            f"(|Q| = {n_q}, est. candidates {est_cand})"
        )
        return ExecutionPlan(
            "array", 1, n_p, n_q, density, est_cand, serial_mem, budget,
            tuple(reasons),
        )

    # Scale workers to the work: no point holding 16 processes on a
    # join whose candidate volume keeps two busy.
    by_work = max(2, est_cand // MIN_PARALLEL_CANDIDATES)
    chosen = min(requested, by_work)
    reasons.append(
        f"candidate volume supports {by_work} workers; "
        f"using {chosen} of {requested} requested"
    )
    # Per-worker structures cost memory: shed workers (never below 2)
    # until the working set fits the budget rather than abandoning
    # parallelism outright.
    while chosen > 2 and estimate_bytes(n_p, n_q, chosen, est_cand) > budget:
        chosen -= 1
    est_mem = estimate_bytes(n_p, n_q, chosen, est_cand)
    if est_mem > budget:
        reasons.append(
            f"even a 2-worker working set ({est_mem} B) exceeds the "
            f"{budget} B budget; serial fits"
        )
        return ExecutionPlan(
            "array", 1, n_p, n_q, density, est_cand, serial_mem, budget,
            tuple(reasons),
        )
    if chosen < min(requested, by_work):
        reasons.append(
            f"shed workers to {chosen} to fit the {budget} B memory budget"
        )
    return ExecutionPlan(
        "array-parallel", chosen, n_p, n_q, density, est_cand, est_mem,
        budget, tuple(reasons),
    )


# ----------------------------------------------------------------------
# join-family planning
# ----------------------------------------------------------------------

def _epsilon_candidates(
    points_p, points_q, n_p: int, n_q: int, eps: float, density: float
) -> int:
    """First-order ε-join candidate volume: per probe, the expected
    ``P`` population of an ε-disc at the sampled density."""
    _n, px, py = _sampled_coords(points_p, _SAMPLE_P)
    if len(px) < 2:
        return n_q * min(n_p, 1)
    area = (float(px.max()) - float(px.min())) * (
        float(py.max()) - float(py.min())
    )
    if not (area > 0.0 and np.isfinite(area)):
        return n_p * n_q  # degenerate extent: assume everything matches
    per_probe = n_p * np.pi * eps * eps / area * max(density, 1.0)
    return int(n_q * min(max(per_probe, 1.0), float(n_p)))


#: Families :func:`choose_family_plan` knows how to plan (the RCJ
#: itself is planned by :func:`choose_plan`).
PLANNED_FAMILY_NAMES = ("epsilon", "knn", "kcp", "cij")


def _check_family_plan_params(
    family: str, eps: float | None, k: int | None
) -> None:
    """Reject unknown families and missing parameters up front.

    Without this, ``family="epsilon", eps=None`` died deep in the
    estimator with a bare ``TypeError`` and an unknown family name
    silently fell into the CIJ branch and returned a bogus plan.
    """
    if family not in PLANNED_FAMILY_NAMES:
        raise ValueError(
            f"unknown join family {family!r}; expected one of "
            f"{PLANNED_FAMILY_NAMES}"
        )
    if family == "epsilon" and eps is None:
        raise ValueError(
            "family='epsilon' requires eps (the distance threshold)"
        )
    if family in ("knn", "kcp") and k is None:
        raise ValueError(f"family={family!r} requires k (the result bound)")


def estimate_family_candidates(
    family: str,
    points_p,
    points_q,
    *,
    eps: float | None = None,
    k: int | None = None,
    density: float | None = None,
) -> tuple[int, int]:
    """``(est_candidates, probe_volume)`` of one family request —
    the family-specific candidate-volume model shared by
    :func:`choose_family_plan` and the calibration sweep."""
    _check_family_plan_params(family, eps, k)
    n_p, n_q = len(points_p), len(points_q)
    if density is None:
        density = sample_density_factor(points_p, points_q)
    if family == "epsilon":
        return (
            _epsilon_candidates(
                points_p, points_q, n_p, n_q, float(eps), density
            ),
            n_q,
        )
    if family == "knn":
        return n_p * min(int(k), n_q), n_p
    if family == "kcp":
        return estimate_topk_candidates(int(k), density, n_p, n_q), n_q
    # cij: one cell per point, Delaunay-linear overlap volume.
    return 4 * (n_p + n_q), n_q


def choose_family_plan(
    family: str,
    points_p,
    points_q,
    eps: float | None = None,
    k: int | None = None,
    workers: int | None = None,
    budget_bytes: int | None = None,
) -> ExecutionPlan:
    """Pick the execution engine for one join-family request.

    Same decision structure as :func:`choose_plan`, parameterized by
    the family's candidate-volume model: ``eps``-disc population per
    probe (ε-join), ``k`` per probe (kNN), band overscan
    (k-closest-pairs), near-linear cell counts (CIJ).  A working set
    beyond the memory budget selects the ``pointwise`` oracle (the
    object-code path streams through Python instead of materializing
    columns); k-closest-pairs and the CIJ never plan ``array-parallel``
    (no probe-disjoint decomposition / serial geometric step).

    Raises ``ValueError`` for an unknown family name or a family whose
    parameter (``eps`` / ``k``) is missing, before any estimation runs.
    """
    _check_family_plan_params(family, eps, k)
    n_p, n_q = len(points_p), len(points_q)
    budget = memory_budget_bytes() if budget_bytes is None else budget_bytes
    requested = default_workers() if workers is None else workers
    if requested < 1:
        raise ValueError(f"workers must be positive, got {workers}")
    reasons: list[str] = []

    if n_p == 0 or n_q == 0 or (family in ("knn", "kcp") and k <= 0):
        return ExecutionPlan(
            "array", 1, n_p, n_q, 1.0, 0, 0, budget,
            ("empty request: nothing to plan",),
        )

    density = sample_density_factor(points_p, points_q)
    est_cand, probe_volume = estimate_family_candidates(
        family, points_p, points_q, eps=eps, k=k, density=density
    )

    serial_mem = estimate_bytes(n_p, n_q, 1, est_cand)
    if serial_mem > budget:
        reasons.append(
            f"estimated working set {serial_mem} B exceeds the "
            f"{budget} B budget: run the pointwise reference path"
        )
        return ExecutionPlan(
            "pointwise", 1, n_p, n_q, density, est_cand, serial_mem,
            budget, tuple(reasons),
        )

    if family in ("kcp", "cij"):
        reasons.append(
            "band streaming is globally ordered"
            if family == "kcp"
            else "the Voronoi construction is a serial geometric step"
        )
        reasons.append("serial vectorized pipeline")
        return ExecutionPlan(
            "array", 1, n_p, n_q, density, est_cand, serial_mem, budget,
            tuple(reasons),
        )

    if requested == 1:
        reasons.append("one worker requested: serial vectorized pipeline")
        return ExecutionPlan(
            "array", 1, n_p, n_q, density, est_cand, serial_mem, budget,
            tuple(reasons),
        )

    profile = _calibration_profile()
    if profile is not None:
        calibrated = _calibrated_choice(
            profile,
            f"family:{family}",
            n_p=n_p,
            n_q=n_q,
            probe_volume=probe_volume,
            density=density,
            est_cand=est_cand,
            serial_mem=serial_mem,
            budget=budget,
            requested=requested,
            reasons=reasons,
        )
        if calibrated is not None:
            return calibrated

    if probe_volume < MIN_PARALLEL_PROBES or est_cand < MIN_PARALLEL_CANDIDATES:
        reasons.append(
            f"probe volume too small to amortize a process pool "
            f"({probe_volume} probes, est. candidates {est_cand})"
        )
        return ExecutionPlan(
            "array", 1, n_p, n_q, density, est_cand, serial_mem, budget,
            tuple(reasons),
        )

    by_work = max(2, est_cand // MIN_PARALLEL_CANDIDATES)
    chosen = min(requested, by_work)
    reasons.append(
        f"candidate volume supports {by_work} workers; "
        f"using {chosen} of {requested} requested"
    )
    while chosen > 2 and estimate_bytes(n_p, n_q, chosen, est_cand) > budget:
        chosen -= 1
    est_mem = estimate_bytes(n_p, n_q, chosen, est_cand)
    if est_mem > budget:
        reasons.append(
            f"even a 2-worker working set ({est_mem} B) exceeds the "
            f"{budget} B budget; serial fits"
        )
        return ExecutionPlan(
            "array", 1, n_p, n_q, density, est_cand, serial_mem, budget,
            tuple(reasons),
        )
    if chosen < min(requested, by_work):
        reasons.append(
            f"shed workers to {chosen} to fit the {budget} B memory budget"
        )
    return ExecutionPlan(
        "array-parallel", chosen, n_p, n_q, density, est_cand, est_mem,
        budget, tuple(reasons),
    )


# ----------------------------------------------------------------------
# ordered browsing (top-k) planning
# ----------------------------------------------------------------------

#: Above this ``k`` the lazy R-tree route loses its point: per-pair
#: Python verification descends from the roots once per result, while
#: the streamed array engine amortizes whole radius bands per batch.
TOPK_OBJ_MAX_K = 64

#: Above this many total points, building (or even walking) the object
#: R-trees costs more Python time than the whole streamed-array run.
TOPK_OBJ_MAX_POINTS = 5_000

#: How many candidate pairs a radius band is expected to enumerate per
#: requested result on uniform-like data (bands overshoot ``k`` so the
#: sorted emission is contiguous).
_TOPK_OVERSCAN = 4


def choose_topk_plan(
    points_p,
    points_q,
    k: int,
    workers: int | None = None,
    budget_bytes: int | None = None,
    trees_prebuilt: bool = False,
) -> ExecutionPlan:
    """Pick the execution route for one top-k (ordered) RCJ request.

    Chooses between the streamed-array enumeration
    (:mod:`repro.engine.streaming`) and the R-tree incremental distance
    join (:func:`repro.core.topk.top_k_rcj`) from ``k``, the dataset
    sizes and the density sample:

    - tiny ``k`` over small (or already-indexed) datasets favours the
      lazy R-tree heap — it touches work proportional to the answer's
      neighbourhood and nothing else;
    - everything larger favours the streamed array engine, whose
      KD-tree/column setup is linear but whose per-band work is
      vectorized;
    - a working set beyond the memory budget forces the R-tree route
      regardless (the stream materializes columns and a union KD-tree).

    ``trees_prebuilt`` widens the R-tree regime: when the caller already
    holds bulk-loaded indexes (a bench workload, a dynamic deployment),
    the object route starts with its main cost already paid.
    """
    n_p, n_q = len(points_p), len(points_q)
    budget = memory_budget_bytes() if budget_bytes is None else budget_bytes
    if n_p == 0 or n_q == 0 or k <= 0:
        return ExecutionPlan(
            "array", 1, n_p, n_q, 1.0, 0, 0, budget,
            ("empty request: nothing to plan",),
        )
    density = sample_density_factor(points_p, points_q)
    est_cand = estimate_topk_candidates(k, density, n_p, n_q)
    est_mem = estimate_bytes(n_p, n_q, 1, est_cand)
    reasons: list[str] = []
    if est_mem > budget:
        reasons.append(
            f"estimated working set {est_mem} B exceeds the {budget} B "
            "budget: enumerate lazily through the R-tree heap"
        )
        return ExecutionPlan(
            "obj", 1, n_p, n_q, density, est_cand, est_mem, budget,
            tuple(reasons),
        )

    profile = _calibration_profile()
    if profile is not None:
        array_pred = profile.predict_seconds("topk", "array", 1, est_cand)
        obj_pred = profile.predict_seconds("topk", "obj", 1, est_cand)
        if array_pred is not None and obj_pred is not None:
            engine = "array" if array_pred <= obj_pred else "obj"
            reasons.append(
                f"calibrated profile {profile.host.get('key', '?')} "
                f"({profile.n_observations} obs): "
                + profile.constants_line("topk")
            )
            reasons.append(
                f"predicted array={array_pred:.3f}s, obj={obj_pred:.3f}s"
                f" -> {engine} is fastest"
            )
            return ExecutionPlan(
                engine, 1, n_p, n_q, density, est_cand, est_mem, budget,
                tuple(reasons),
                predicted_seconds=min(array_pred, obj_pred),
            )

    small_data = trees_prebuilt or (n_p + n_q) <= TOPK_OBJ_MAX_POINTS
    if k <= TOPK_OBJ_MAX_K and small_data:
        reasons.append(
            f"k={k} <= {TOPK_OBJ_MAX_K} over "
            + (
                "prebuilt indexes"
                if trees_prebuilt
                else f"{n_p + n_q} points"
            )
            + ": the incremental R-tree heap reads only the answer's"
            " neighbourhood"
        )
        return ExecutionPlan(
            "obj", 1, n_p, n_q, density, est_cand, est_mem, budget,
            tuple(reasons),
        )
    reasons.append(
        f"k={k}, |P|+|Q|={n_p + n_q}: streamed radius bands amortize"
        " candidate generation and verification over whole batches"
    )
    return ExecutionPlan(
        "array", 1, n_p, n_q, density, est_cand, est_mem, budget,
        tuple(reasons),
    )


# ----------------------------------------------------------------------
# dynamic (incremental-maintenance) backend planning
# ----------------------------------------------------------------------

def choose_dynamic_backend(
    n_p: int,
    n_q: int,
    batch_size: int = 1,
    budget_bytes: int | None = None,
) -> tuple[str, str]:
    """``(backend, reason)`` for a dynamic RCJ deployment.

    The columnar backend (:class:`repro.engine.streaming.DynamicArrayRCJ`)
    answers each update with batched kernel work but keeps the whole
    pointset (columns plus KD-trees) resident; when that working set
    exceeds the memory budget the R*-tree backend
    (:class:`repro.core.dynamic.DynamicRCJ`) — whose structure *is* the
    disk-resident index — is the honest choice, regardless of timing.

    Within the budget the choice is a timing bet, and a fitted
    calibration profile settles it when it has per-batch models for
    *both* dynamic backends (``kind="dynamic"`` observations, recorded
    by planned instances): predicted seconds per batch of
    ``batch_size`` events, fastest wins.  Without a profile the static
    answer stands — the columnar backend, whose amortized ``apply_batch``
    is the measured fast path everywhere we have run it.
    """
    budget = memory_budget_bytes() if budget_bytes is None else budget_bytes
    resident = estimate_bytes(n_p, n_q, 1, 0)
    if resident > budget:
        return (
            "obj",
            f"resident columns + KD-trees ({resident} B) exceed the "
            f"{budget} B budget: keep the R*-tree structure on disk",
        )
    batch = max(batch_size, 1)
    profile = _calibration_profile()
    if profile is not None:
        array_pred = profile.predict_seconds("dynamic", "array", 1, batch)
        obj_pred = profile.predict_seconds("dynamic", "obj", 1, batch)
        if array_pred is not None and obj_pred is not None:
            backend = "array" if array_pred <= obj_pred else "obj"
            return (
                backend,
                f"calibrated profile {profile.host.get('key', '?')} "
                f"({profile.n_observations} obs): predicted per batch of "
                f"{batch} events array={array_pred:.4f}s, "
                f"obj={obj_pred:.4f}s -> {backend} is fastest",
            )
    return (
        "array",
        f"working set {resident} B fits the {budget} B budget: batched"
        " columnar kernels answer each update",
    )
