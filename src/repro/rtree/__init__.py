"""Disk-resident R*-tree substrate.

The paper's algorithms operate on datasets "indexed by a disk-based
R-tree"; experiments use R*-trees with 1 KiB pages.  This package
implements that index from scratch:

- :mod:`repro.rtree.node` — page-level node layout and (de)serialisation;
- :mod:`repro.rtree.split` — the R* split (choose axis by margin, then
  distribution by overlap);
- :mod:`repro.rtree.tree` — the tree proper: R* insertion with forced
  reinsert, range search, depth-first traversal;
- :mod:`repro.rtree.bulk` — STR and Hilbert-packed bulk loading;
- :mod:`repro.rtree.validate` — structural invariant checker;
- :mod:`repro.rtree.inn` — the incremental nearest-neighbour iterator of
  Hjaltason & Samet used by the Filter step and the kNN join.
"""

from repro.rtree.bulk import bulk_load, hilbert_bulk_load
from repro.rtree.inn import incremental_nearest, nearest_neighbors
from repro.rtree.node import Branch, Node
from repro.rtree.tree import RTree
from repro.rtree.validate import InvariantViolation, TreeSummary, check_invariants

__all__ = [
    "Branch",
    "Node",
    "RTree",
    "bulk_load",
    "hilbert_bulk_load",
    "InvariantViolation",
    "TreeSummary",
    "check_invariants",
    "incremental_nearest",
    "nearest_neighbors",
]
