"""Incremental nearest-neighbour search (Hjaltason & Samet, TODS 1999).

``incremental_nearest`` is a generator that reports the indexed points
in strictly non-decreasing distance from the query location, expanding
R-tree nodes lazily from a min-heap keyed by MINDIST.  It backs the kNN
join baseline and serves as the spatial-ranking skeleton the paper's
Filter step specialises with the Ψ− pruning rules.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Iterator

from repro.geometry.point import Point
from repro.rtree.tree import RTree


def incremental_nearest(tree: RTree, x: float, y: float) -> Iterator[tuple[float, Point]]:
    """Yield ``(distance, point)`` in ascending distance from ``(x, y)``.

    The generator is lazy: consuming ``k`` results expands only the
    nodes needed to certify the first ``k`` neighbours.
    """
    if tree.root_pid is None:
        return
    counter = itertools.count()
    # Heap items: (dist_sq, tiebreak, is_point, payload).
    heap: list[tuple[float, int, bool, object]] = [
        (0.0, next(counter), False, tree.root_pid)
    ]
    while heap:
        dist_sq, _tie, is_point, payload = heapq.heappop(heap)
        if is_point:
            yield math.sqrt(dist_sq), payload  # type: ignore[misc]
            continue
        node = tree.read_node(payload)  # type: ignore[arg-type]
        if node.is_leaf:
            for p in node.entries:
                dx, dy = p.x - x, p.y - y
                heapq.heappush(
                    heap, (dx * dx + dy * dy, next(counter), True, p)
                )
        else:
            for b in node.entries:
                heapq.heappush(
                    heap,
                    (b.rect.mindist_sq(x, y), next(counter), False, b.child),
                )


def nearest_neighbors(tree: RTree, x: float, y: float, k: int) -> list[Point]:
    """The ``k`` nearest indexed points to ``(x, y)`` (fewer if the tree
    is smaller than ``k``)."""
    if k <= 0:
        return []
    out: list[Point] = []
    for _dist, p in incremental_nearest(tree, x, y):
        out.append(p)
        if len(out) == k:
            break
    return out
