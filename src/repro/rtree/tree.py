"""The disk-resident R*-tree.

Supports R* insertion (choose-subtree with overlap minimisation at the
leaf level, forced reinsert, R* split), range search, depth-first leaf
traversal, and node reads through an optional shared
:class:`~repro.storage.buffer.BufferManager` so that page faults are
accounted exactly as in the paper's experiments.
"""

from __future__ import annotations

from typing import Iterator

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.rtree.node import (
    Branch,
    Node,
    branch_capacity,
    entry_rect,
    leaf_capacity,
)
from repro.rtree.split import rstar_split
from repro.storage.buffer import BufferManager
from repro.storage.disk import DEFAULT_PAGE_SIZE, DiskManager

#: Fraction of entries removed by a forced reinsert (R* recommends 30 %).
REINSERT_FRACTION = 0.3

#: Minimum node fill as a fraction of capacity (R* recommends 40 %).
MIN_FILL_FRACTION = 0.4


class RTree:
    """An R*-tree over 2D points, stored in fixed-size disk pages.

    Parameters
    ----------
    disk:
        Page store; a fresh in-memory :class:`DiskManager` by default.
    buffer:
        Optional LRU buffer shared with other trees.  When present all
        node reads go through it and are charged to its fault counters.
    name:
        Label used in reports (e.g. ``"TP"``, ``"TQ"``).
    """

    def __init__(
        self,
        disk: DiskManager | None = None,
        buffer: BufferManager | None = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        name: str = "T",
    ):
        self.disk = disk if disk is not None else DiskManager(page_size)
        self.buffer = buffer
        self.name = name
        self.leaf_capacity = leaf_capacity(self.disk.page_size)
        self.branch_capacity = branch_capacity(self.disk.page_size)
        if self.leaf_capacity < 2 or self.branch_capacity < 2:
            raise ValueError(
                f"page size {self.disk.page_size} too small for an R-tree node"
            )
        self.root_pid: int | None = None
        self.height = 0  # number of levels; 0 for an empty tree
        self.count = 0  # number of indexed points
        self.node_accesses = 0  # logical node reads (CPU-cost proxy)

    # ------------------------------------------------------------------
    # node I/O
    # ------------------------------------------------------------------
    def read_node(self, pid: int) -> Node:
        """Fetch and deserialise a node, through the buffer if attached."""
        self.node_accesses += 1
        if self.buffer is not None:
            data = self.buffer.get_page(self.disk, pid)
        else:
            data = self.disk.read_page(pid)
        return Node.from_bytes(data)

    def write_node(self, pid: int, node: Node) -> None:
        """Serialise and store a node, invalidating any cached copy."""
        self.disk.write_page(pid, node.to_bytes(self.disk.page_size))
        if self.buffer is not None:
            self.buffer.invalidate(self.disk, pid)

    def attach_buffer(self, buffer: BufferManager | None) -> None:
        """Route subsequent reads through ``buffer`` (or detach)."""
        self.buffer = buffer

    def reset_stats(self) -> None:
        """Zero the logical node-access counter."""
        self.node_accesses = 0

    def _capacity(self, node: Node) -> int:
        return self.leaf_capacity if node.is_leaf else self.branch_capacity

    def _min_fill(self, node: Node) -> int:
        return max(2, int(self._capacity(node) * MIN_FILL_FRACTION))

    # ------------------------------------------------------------------
    # insertion (R*)
    # ------------------------------------------------------------------
    def insert(self, point: Point) -> None:
        """Insert one point using the R* algorithm with forced reinsert."""
        if self.root_pid is None:
            pid = self.disk.allocate()
            self.write_node(pid, Node(0, [point]))
            self.root_pid = pid
            self.height = 1
            self.count = 1
            return
        # Levels that already performed a forced reinsert during this
        # insertion; guarantees termination (R* reinserts once per level).
        self._reinserted_levels: set[int] = set()
        pending: list[tuple[Point | Branch, int]] = [(point, 0)]
        while pending:
            entry, level = pending.pop()
            self._insert_entry(entry, level, pending)
        self.count += 1

    def _insert_entry(
        self,
        entry: Point | Branch,
        target_level: int,
        pending: list[tuple[Point | Branch, int]],
    ) -> None:
        """Insert ``entry`` at ``target_level``, splitting the root if needed."""
        assert self.root_pid is not None
        result = self._insert_rec(self.root_pid, entry, target_level, pending)
        _mbr, sibling = result
        if sibling is not None:
            old_root = Branch(_mbr, self.root_pid)
            new_pid = self.disk.allocate()
            root = Node(self.height, [old_root, sibling])
            self.write_node(new_pid, root)
            self.root_pid = new_pid
            self.height += 1

    def _insert_rec(
        self,
        pid: int,
        entry: Point | Branch,
        target_level: int,
        pending: list[tuple[Point | Branch, int]],
    ) -> tuple[Rect, Branch | None]:
        """Recursive insert; returns the node's new MBR and an optional
        new sibling branch produced by a split."""
        node = self.read_node(pid)
        if node.level == target_level:
            node.entries.append(entry)
        else:
            idx = self._choose_subtree(node, entry_rect(entry))
            child = node.entries[idx]
            child_mbr, sibling = self._insert_rec(
                child.child, entry, target_level, pending
            )
            node.entries[idx] = Branch(child_mbr, child.child)
            if sibling is not None:
                node.entries.append(sibling)

        if len(node.entries) > self._capacity(node):
            return self._handle_overflow(pid, node, pending)
        self.write_node(pid, node)
        return node.mbr(), None

    def _choose_subtree(self, node: Node, rect: Rect) -> int:
        """R* ChooseSubtree: overlap enlargement above leaves, area
        enlargement elsewhere."""
        entries = node.entries
        if node.level == 1:
            # Children are leaves: minimise overlap enlargement.
            best_idx = 0
            best_key: tuple[float, float, float] | None = None
            for i, branch in enumerate(entries):
                enlarged = branch.rect.union(rect)
                overlap_delta = 0.0
                for j, other in enumerate(entries):
                    if j == i:
                        continue
                    overlap_delta += enlarged.intersection_area(
                        other.rect
                    ) - branch.rect.intersection_area(other.rect)
                key = (
                    overlap_delta,
                    branch.rect.enlargement(rect),
                    branch.rect.area(),
                )
                if best_key is None or key < best_key:
                    best_key = key
                    best_idx = i
            return best_idx
        best_idx = 0
        best_key2: tuple[float, float] | None = None
        for i, branch in enumerate(entries):
            key2 = (branch.rect.enlargement(rect), branch.rect.area())
            if best_key2 is None or key2 < best_key2:
                best_key2 = key2
                best_idx = i
        return best_idx

    def _handle_overflow(
        self,
        pid: int,
        node: Node,
        pending: list[tuple[Point | Branch, int]],
    ) -> tuple[Rect, Branch | None]:
        """Forced reinsert on first overflow per level, split otherwise."""
        is_root = pid == self.root_pid
        if not is_root and node.level not in self._reinserted_levels:
            self._reinserted_levels.add(node.level)
            keep, reinsert = self._pick_reinsert(node)
            node.entries = keep
            self.write_node(pid, node)
            for e in reinsert:
                pending.append((e, node.level))
            return node.mbr(), None

        min_fill = self._min_fill(node)
        group_a, group_b = rstar_split(node.entries, min_fill)
        node.entries = group_a
        self.write_node(pid, node)
        new_pid = self.disk.allocate()
        new_node = Node(node.level, group_b)
        self.write_node(new_pid, new_node)
        return node.mbr(), Branch(new_node.mbr(), new_pid)

    def _pick_reinsert(self, node: Node) -> tuple[list, list]:
        """Select the REINSERT_FRACTION entries farthest from the node
        centre ("close reinsert": re-inserted nearest-first)."""
        cx, cy = node.mbr().center()

        def center_dist_sq(e: Point | Branch) -> float:
            ex, ey = entry_rect(e).center()
            dx, dy = ex - cx, ey - cy
            return dx * dx + dy * dy

        ordered = sorted(node.entries, key=center_dist_sq)
        n_reinsert = max(1, int(len(node.entries) * REINSERT_FRACTION))
        keep = ordered[: len(ordered) - n_reinsert]
        # Reinsert closest-first (list is popped from the end).
        reinsert = list(reversed(ordered[len(ordered) - n_reinsert :]))
        return keep, reinsert

    # ------------------------------------------------------------------
    # deletion (Guttman condense-tree with R*-style reinsertion)
    # ------------------------------------------------------------------
    def delete(self, point: Point) -> bool:
        """Remove ``point`` (matched by coordinates *and* oid).

        Follows the classic condense-tree protocol: the point is removed
        from its leaf; nodes that fall under the minimum fill are
        dissolved and their entries re-inserted at their original level;
        the root is collapsed while it has a single child.

        Returns
        -------
        True when the point was found and removed, False otherwise.
        """
        if self.root_pid is None:
            return False
        orphans: list[tuple[Point | Branch, int]] = []
        found, _mbr, removed = self._delete_rec(self.root_pid, point, orphans)
        if not found:
            return False
        self.count -= 1

        if removed:
            # The root leaf itself emptied out.
            self.root_pid = None
            self.height = 0
        else:
            root = self.read_node(self.root_pid)
            while not root.is_leaf and len(root.entries) == 1:
                self.root_pid = root.entries[0].child
                self.height -= 1
                root = self.read_node(self.root_pid)
            if root.is_leaf and not root.entries:
                self.root_pid = None
                self.height = 0

        # Re-insert dissolved entries, highest level first so subtrees
        # land before the points that might join them.
        for entry, level in sorted(orphans, key=lambda t: -t[1]):
            self._reinsert_orphan(entry, level)
        return True

    def update(self, old: Point, new: Point) -> bool:
        """Move a point: delete ``old`` and insert ``new``.

        Returns False (and inserts nothing) when ``old`` is absent.
        """
        if not self.delete(old):
            return False
        self.insert(new)
        return True

    def _delete_rec(
        self,
        pid: int,
        point: Point,
        orphans: list[tuple[Point | Branch, int]],
    ) -> tuple[bool, Rect | None, bool]:
        """Recursive delete.

        Returns ``(found, new_mbr, removed)``: whether the point was
        found below ``pid``, the node's recomputed MBR (None when the
        node was dissolved), and whether the node was dissolved.
        """
        node = self.read_node(pid)
        if node.is_leaf:
            for i, p in enumerate(node.entries):
                if p.oid == point.oid and p.same_location(point):
                    del node.entries[i]
                    break
            else:
                return False, None, False
            return self._shrink_or_write(pid, node, orphans)

        for i, branch in enumerate(node.entries):
            if not branch.rect.contains_point(point.x, point.y):
                continue
            found, child_mbr, child_removed = self._delete_rec(
                branch.child, point, orphans
            )
            if not found:
                continue
            if child_removed:
                del node.entries[i]
            else:
                assert child_mbr is not None
                node.entries[i] = Branch(child_mbr, branch.child)
            shrunk = self._shrink_or_write(pid, node, orphans)
            return True, shrunk[1], shrunk[2]
        return False, None, False

    def _shrink_or_write(
        self,
        pid: int,
        node: Node,
        orphans: list[tuple[Point | Branch, int]],
    ) -> tuple[bool, Rect | None, bool]:
        """Dissolve an underfull non-root node into orphans, or persist it."""
        is_root = pid == self.root_pid
        if not is_root and len(node.entries) < self._min_fill(node):
            for e in node.entries:
                orphans.append((e, node.level))
            return True, None, True
        self.write_node(pid, node)
        mbr = node.mbr() if node.entries else None
        return True, mbr, False

    def _reinsert_orphan(self, entry: Point | Branch, level: int) -> None:
        """Re-insert a dissolved entry at its original level.

        Points go through the normal R* insertion.  A subtree entry
        whose level no longer exists (the tree shrank below it) is
        demoted: its points are re-inserted individually.
        """
        if isinstance(entry, Branch):
            target_level = level  # entry lives *in* a node at `level`
            if self.root_pid is None or target_level >= self.height:
                for p in self._collect_points(entry.child):
                    self._reinsert_orphan(p, 0)
                return
            self._reinserted_levels = set()
            pending: list[tuple[Point | Branch, int]] = [(entry, target_level)]
            while pending:
                e, lvl = pending.pop()
                self._insert_entry(e, lvl, pending)
            return
        if self.root_pid is None:
            pid = self.disk.allocate()
            self.write_node(pid, Node(0, [entry]))
            self.root_pid = pid
            self.height = 1
            return
        self._reinserted_levels = set()
        pending = [(entry, 0)]
        while pending:
            e, lvl = pending.pop()
            self._insert_entry(e, lvl, pending)

    def _collect_points(self, pid: int) -> list[Point]:
        """All points in the subtree rooted at page ``pid``."""
        out: list[Point] = []
        stack = [pid]
        while stack:
            node = self.read_node(stack.pop())
            if node.is_leaf:
                out.extend(node.entries)
            else:
                stack.extend(b.child for b in node.entries)
        return out

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def range_search(self, rect: Rect) -> list[Point]:
        """All points inside the closed query rectangle."""
        results: list[Point] = []
        if self.root_pid is None:
            return results
        stack = [self.root_pid]
        while stack:
            node = self.read_node(stack.pop())
            if node.is_leaf:
                results.extend(
                    p for p in node.entries if rect.contains_point(p.x, p.y)
                )
            else:
                stack.extend(
                    b.child for b in node.entries if b.rect.intersects(rect)
                )
        return results

    def mbr(self) -> Rect:
        """Bounding rectangle of the whole dataset."""
        if self.root_pid is None:
            raise ValueError("empty tree has no MBR")
        return self.read_node(self.root_pid).mbr()

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def leaves(self) -> Iterator[Node]:
        """Depth-first iteration over leaf nodes (paper's Algorithm 5
        search order: adjacent leaves are spatially close, giving buffer
        locality)."""
        if self.root_pid is None:
            return
        stack = [self.root_pid]
        while stack:
            node = self.read_node(stack.pop())
            if node.is_leaf:
                yield node
            else:
                # Reverse so children are visited in stored order.
                stack.extend(b.child for b in reversed(node.entries))

    def leaf_pids(self) -> list[int]:
        """Page ids of all leaves in depth-first order."""
        pids: list[int] = []
        if self.root_pid is None:
            return pids
        stack = [(self.root_pid, self.height - 1)]
        while stack:
            pid, level = stack.pop()
            if level == 0:
                pids.append(pid)
                continue
            node = self.read_node(pid)
            stack.extend((b.child, level - 1) for b in reversed(node.entries))
        return pids

    def all_points(self) -> list[Point]:
        """Every indexed point, in depth-first leaf order."""
        out: list[Point] = []
        for leaf in self.leaves():
            out.extend(leaf.entries)
        return out

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (
            f"RTree(name={self.name!r}, count={self.count}, height={self.height}, "
            f"pages={self.disk.num_pages})"
        )
