"""Structural invariant checker for disk-resident R-trees.

Used by tests (bulk loading, insertion, deletion) and available to users
as a debugging aid.  :func:`check_invariants` walks the whole tree and
raises :class:`InvariantViolation` on the first problem; it returns a
small summary so callers can make additional assertions (node counts,
fill factors).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rtree.node import Node, entries_mbr
from repro.rtree.tree import RTree


class InvariantViolation(AssertionError):
    """An R-tree structural invariant does not hold."""


@dataclass
class TreeSummary:
    """What :func:`check_invariants` observed while walking the tree."""

    height: int = 0
    node_count: int = 0
    leaf_count: int = 0
    point_count: int = 0
    min_leaf_fill: int = 0
    entry_counts: list[int] = field(default_factory=list)

    @property
    def average_fill(self) -> float:
        """Mean number of entries per node."""
        if not self.entry_counts:
            return 0.0
        return sum(self.entry_counts) / len(self.entry_counts)


def check_invariants(tree: RTree, check_min_fill: bool = False) -> TreeSummary:
    """Verify the structural invariants of ``tree``.

    Checks, for every node reachable from the root:

    - the node's level decreases by exactly one per edge and reaches 0
      at the leaves (``tree.height`` levels in total);
    - no node exceeds its page capacity;
    - every branch's stored MBR equals the tight MBR of its child node
      (exactly — MBRs are copied bits, never recomputed lossily);
    - the total number of points equals ``tree.count``;
    - optionally, every non-root node meets the R* minimum fill.

    Parameters
    ----------
    tree:
        The tree to inspect (an empty tree trivially passes).
    check_min_fill:
        Enforce the minimum-fill invariant; off by default because bulk
        loaders legitimately leave one underfull node per level.

    Returns
    -------
    A :class:`TreeSummary` of the walk.

    Raises
    ------
    InvariantViolation
        On the first violated invariant.
    """
    summary = TreeSummary(height=tree.height)
    if tree.root_pid is None:
        if tree.height != 0 or tree.count != 0:
            raise InvariantViolation(
                "empty tree must have height 0 and count 0, got "
                f"height={tree.height}, count={tree.count}"
            )
        return summary

    root = tree.read_node(tree.root_pid)
    if root.level != tree.height - 1:
        raise InvariantViolation(
            f"root level {root.level} != height-1 ({tree.height - 1})"
        )
    summary.min_leaf_fill = tree.leaf_capacity + 1

    stack: list[tuple[int, bool]] = [(tree.root_pid, True)]
    while stack:
        pid, is_root = stack.pop()
        node = tree.read_node(pid)
        _check_node(tree, node, pid, is_root, check_min_fill)
        summary.node_count += 1
        summary.entry_counts.append(len(node.entries))
        if node.is_leaf:
            summary.leaf_count += 1
            summary.point_count += len(node.entries)
            summary.min_leaf_fill = min(summary.min_leaf_fill, len(node.entries))
            continue
        for branch in node.entries:
            child = tree.read_node(branch.child)
            if child.level != node.level - 1:
                raise InvariantViolation(
                    f"child level {child.level} under node at level "
                    f"{node.level} (page {pid})"
                )
            child_mbr = child.mbr()
            if (
                branch.rect.xmin != child_mbr.xmin
                or branch.rect.ymin != child_mbr.ymin
                or branch.rect.xmax != child_mbr.xmax
                or branch.rect.ymax != child_mbr.ymax
            ):
                raise InvariantViolation(
                    f"stale branch MBR {branch.rect!r} != child MBR "
                    f"{child_mbr!r} (page {pid} -> {branch.child})"
                )
            stack.append((branch.child, False))

    if summary.point_count != tree.count:
        raise InvariantViolation(
            f"tree.count={tree.count} but {summary.point_count} points reachable"
        )
    return summary


def _check_node(
    tree: RTree, node: Node, pid: int, is_root: bool, check_min_fill: bool
) -> None:
    capacity = tree.leaf_capacity if node.is_leaf else tree.branch_capacity
    if len(node.entries) > capacity:
        raise InvariantViolation(
            f"node at page {pid} holds {len(node.entries)} entries "
            f"(capacity {capacity})"
        )
    if not node.entries:
        if not (is_root and node.is_leaf):
            raise InvariantViolation(f"empty non-root node at page {pid}")
        return
    if not node.is_leaf:
        # A branch node's own MBR must be consistent with its entries.
        entries_mbr(node.entries)  # raises on malformed entries
    if check_min_fill and not is_root:
        min_fill = tree._min_fill(node)
        if len(node.entries) < min_fill:
            raise InvariantViolation(
                f"underfull node at page {pid}: {len(node.entries)} < "
                f"min fill {min_fill}"
            )
