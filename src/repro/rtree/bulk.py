"""Bulk loading: sort-tile-recursive (STR) and Hilbert packing.

Benchmarks build their indexes with STR (fast, well-packed pages) while
the R* insertion path remains available and is exercised by tests and by
the build ablation bench.  :func:`hilbert_bulk_load` packs leaves along
the Hilbert curve instead of STR tiles — slightly worse leaf squareness,
but a single global sort and excellent curve locality.  All three
produce valid R-trees; the join algorithms are agnostic to how the tree
was built.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.geometry.hilbert import DEFAULT_ORDER, HilbertMapper
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.rtree.node import Branch, Node
from repro.rtree.tree import RTree


def _tile(items: list, capacity: int, key_x, key_y) -> list[list]:
    """Partition ``items`` into runs of at most ``capacity`` using STR.

    Sorts by x, slices into ``ceil(sqrt(P))`` vertical slabs, sorts each
    slab by y, and chunks it into capacity-sized runs.
    """
    n = len(items)
    num_pages = math.ceil(n / capacity)
    num_slabs = math.ceil(math.sqrt(num_pages))
    per_slab = math.ceil(n / num_slabs)
    by_x = sorted(items, key=key_x)
    runs: list[list] = []
    for s in range(0, n, per_slab):
        slab = sorted(by_x[s : s + per_slab], key=key_y)
        for c in range(0, len(slab), capacity):
            runs.append(slab[c : c + capacity])
    return runs


def bulk_load(
    points: Sequence[Point],
    tree: RTree | None = None,
    page_size: int | None = None,
    name: str = "T",
) -> RTree:
    """Build an R-tree over ``points`` with STR packing.

    Parameters
    ----------
    points:
        The dataset; must be non-empty for a usable index (an empty
        sequence yields an empty tree).
    tree:
        Optional pre-constructed (empty) tree to load into; a fresh one
        is created otherwise.
    page_size:
        Page size for the fresh tree when ``tree`` is not given.

    Returns
    -------
    The loaded :class:`RTree`.
    """
    if tree is None:
        kwargs = {"name": name}
        if page_size is not None:
            kwargs["page_size"] = page_size
        tree = RTree(**kwargs)
    if tree.count:
        raise ValueError("bulk_load requires an empty tree")
    if not points:
        return tree

    # Level 0: pack points into leaves.
    runs = _tile(
        list(points),
        tree.leaf_capacity,
        key_x=lambda p: p.x,
        key_y=lambda p: p.y,
    )
    level = 0
    branches: list[Branch] = []
    for run in runs:
        pid = tree.disk.allocate()
        node = Node(0, run)
        tree.write_node(pid, node)
        branches.append(Branch(node.mbr(), pid))

    # Upper levels: pack branches until a single root remains.
    while len(branches) > 1:
        level += 1
        runs = _tile(
            branches,
            tree.branch_capacity,
            key_x=lambda b: (b.rect.xmin + b.rect.xmax) / 2.0,
            key_y=lambda b: (b.rect.ymin + b.rect.ymax) / 2.0,
        )
        next_branches: list[Branch] = []
        for run in runs:
            pid = tree.disk.allocate()
            node = Node(level, run)
            tree.write_node(pid, node)
            next_branches.append(Branch(node.mbr(), pid))
        branches = next_branches

    tree.root_pid = branches[0].child
    tree.height = level + 1
    tree.count = len(points)
    return tree


def _chunk(items: list, capacity: int) -> list[list]:
    """Split ``items`` into consecutive runs of at most ``capacity``."""
    return [items[i : i + capacity] for i in range(0, len(items), capacity)]


def hilbert_bulk_load(
    points: Sequence[Point],
    tree: RTree | None = None,
    page_size: int | None = None,
    name: str = "T",
    order: int = DEFAULT_ORDER,
) -> RTree:
    """Build an R-tree over ``points`` packed along the Hilbert curve.

    Points are sorted once by their Hilbert key over the dataset MBR and
    chunked into full leaves; every upper level re-sorts its branches by
    the key of their MBR centre.  Compared with STR this trades a little
    leaf squareness for a single global sort order with strong locality.

    Parameters
    ----------
    points:
        The dataset (an empty sequence yields an empty tree).
    tree:
        Optional pre-constructed empty tree to load into.
    page_size:
        Page size for the fresh tree when ``tree`` is not given.
    order:
        Hilbert curve order (grid resolution of the sort key).

    Returns
    -------
    The loaded :class:`RTree`.
    """
    if tree is None:
        kwargs = {"name": name}
        if page_size is not None:
            kwargs["page_size"] = page_size
        tree = RTree(**kwargs)
    if tree.count:
        raise ValueError("hilbert_bulk_load requires an empty tree")
    if not points:
        return tree

    mapper = HilbertMapper(Rect.from_points(points), order)
    ordered = sorted(points, key=mapper.key_of_point)

    level = 0
    branches: list[Branch] = []
    for run in _chunk(ordered, tree.leaf_capacity):
        pid = tree.disk.allocate()
        node = Node(0, run)
        tree.write_node(pid, node)
        branches.append(Branch(node.mbr(), pid))

    while len(branches) > 1:
        level += 1
        branches.sort(key=lambda b: mapper.key_of_rect(b.rect))
        next_branches: list[Branch] = []
        for run in _chunk(branches, tree.branch_capacity):
            pid = tree.disk.allocate()
            node = Node(level, run)
            tree.write_node(pid, node)
            next_branches.append(Branch(node.mbr(), pid))
        branches = next_branches

    tree.root_pid = branches[0].child
    tree.height = level + 1
    tree.count = len(points)
    return tree
