"""The R*-tree split algorithm (Beckmann et al., SIGMOD 1990).

Given an overflowing entry list, the split proceeds in two steps:

1. *Choose split axis*: for each axis, sort the entries by their lower
   and by their upper boundary; over all legal distributions of both
   sorts, sum the margins (half-perimeters) of the two groups.  The axis
   with the minimum margin sum wins.
2. *Choose split index*: along the chosen axis, pick the distribution
   with minimum overlap between the two group MBRs, breaking ties by
   minimum combined area.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.geometry.rect import Rect
from repro.rtree.node import Branch, Point, entry_rect


def _group_mbr(entries: Sequence, lo: int, hi: int) -> Rect:
    """MBR of ``entries[lo:hi]``."""
    return Rect.union_of(entry_rect(e) for e in entries[lo:hi])


def _axis_goodness(
    entries: list, key_low: Callable, key_high: Callable, min_fill: int
) -> tuple[float, list[tuple[float, float, list, int]]]:
    """Margin sum and candidate distributions for one axis.

    Returns ``(margin_sum, candidates)`` where each candidate is
    ``(overlap, area, sorted_entries, split_index)``.
    """
    margin_sum = 0.0
    candidates: list[tuple[float, float, list, int]] = []
    total = len(entries)
    for key in (key_low, key_high):
        ordered = sorted(entries, key=key)
        for split_at in range(min_fill, total - min_fill + 1):
            mbr_a = _group_mbr(ordered, 0, split_at)
            mbr_b = _group_mbr(ordered, split_at, total)
            margin_sum += mbr_a.margin() + mbr_b.margin()
            overlap = mbr_a.intersection_area(mbr_b)
            area = mbr_a.area() + mbr_b.area()
            candidates.append((overlap, area, ordered, split_at))
    return margin_sum, candidates


def rstar_split(entries: list, min_fill: int) -> tuple[list, list]:
    """Split an overflowing entry list into two groups, R*-style.

    Parameters
    ----------
    entries:
        ``capacity + 1`` entries (points or branches).
    min_fill:
        Minimum number of entries per resulting group.

    Returns
    -------
    Two entry lists, each holding at least ``min_fill`` entries.
    """
    if len(entries) < 2 * min_fill:
        raise ValueError(
            f"cannot split {len(entries)} entries with min fill {min_fill}"
        )

    def x_low(e: Point | Branch) -> float:
        return entry_rect(e).xmin

    def x_high(e: Point | Branch) -> float:
        return entry_rect(e).xmax

    def y_low(e: Point | Branch) -> float:
        return entry_rect(e).ymin

    def y_high(e: Point | Branch) -> float:
        return entry_rect(e).ymax

    margin_x, candidates_x = _axis_goodness(entries, x_low, x_high, min_fill)
    margin_y, candidates_y = _axis_goodness(entries, y_low, y_high, min_fill)
    candidates = candidates_x if margin_x <= margin_y else candidates_y

    best = min(candidates, key=lambda c: (c[0], c[1]))
    _overlap, _area, ordered, split_at = best
    return list(ordered[:split_at]), list(ordered[split_at:])
