"""R-tree node layout and page (de)serialisation.

A node occupies exactly one disk page.  The layout is::

    header : level (uint8), pad (uint8), count (uint16)        -> 4 bytes
    leaf   entry : x (float64), y (float64), oid (int64)       -> 24 bytes
    branch entry : xmin, ymin, xmax, ymax (4 x float64),
                   child page id (int64)                        -> 40 bytes

Leaf nodes have ``level == 0``; a node at level ``l > 0`` holds branches
whose children are at level ``l - 1``.  Every read of a node goes through
:func:`Node.from_bytes`, so the I/O path is honest: nothing survives in
Python object form between page accesses.
"""

from __future__ import annotations

import struct
from typing import Iterable

from repro.geometry.point import Point
from repro.geometry.rect import Rect

_HEADER = struct.Struct("<BBH")
_LEAF_ENTRY = struct.Struct("<ddq")
_BRANCH_ENTRY = struct.Struct("<ddddq")

HEADER_SIZE = _HEADER.size
LEAF_ENTRY_SIZE = _LEAF_ENTRY.size
BRANCH_ENTRY_SIZE = _BRANCH_ENTRY.size


def leaf_capacity(page_size: int) -> int:
    """Maximum number of points a leaf page can hold."""
    return (page_size - HEADER_SIZE) // LEAF_ENTRY_SIZE


def branch_capacity(page_size: int) -> int:
    """Maximum number of child entries an internal page can hold."""
    return (page_size - HEADER_SIZE) // BRANCH_ENTRY_SIZE


class Branch:
    """An internal-node entry: a child page id and its MBR."""

    __slots__ = ("rect", "child")

    def __init__(self, rect: Rect, child: int):
        self.rect = rect
        self.child = int(child)

    def __repr__(self) -> str:
        return f"Branch({self.rect!r}, child={self.child})"


class Node:
    """A deserialised R-tree node.

    ``entries`` holds :class:`~repro.geometry.point.Point` objects for
    leaves (``level == 0``) and :class:`Branch` objects otherwise.
    """

    __slots__ = ("level", "entries")

    def __init__(self, level: int, entries: list | None = None):
        self.level = level
        self.entries = entries if entries is not None else []

    @property
    def is_leaf(self) -> bool:
        """True for level-0 (data) nodes."""
        return self.level == 0

    def mbr(self) -> Rect:
        """Tight bounding rectangle of all entries."""
        if not self.entries:
            raise ValueError("empty node has no MBR")
        if self.is_leaf:
            return Rect.from_points(self.entries)
        return Rect.union_of(b.rect for b in self.entries)

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_bytes(self, page_size: int) -> bytes:
        """Serialise into at most ``page_size`` bytes."""
        out = bytearray()
        out += _HEADER.pack(self.level, 0, len(self.entries))
        if self.is_leaf:
            for p in self.entries:
                out += _LEAF_ENTRY.pack(p.x, p.y, p.oid)
        else:
            for b in self.entries:
                r = b.rect
                out += _BRANCH_ENTRY.pack(r.xmin, r.ymin, r.xmax, r.ymax, b.child)
        if len(out) > page_size:
            raise ValueError(
                f"node with {len(self.entries)} entries overflows page size "
                f"{page_size}"
            )
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Node":
        """Deserialise a node from page bytes."""
        level, _pad, count = _HEADER.unpack_from(data, 0)
        entries: list = []
        offset = HEADER_SIZE
        if level == 0:
            for _ in range(count):
                x, y, oid = _LEAF_ENTRY.unpack_from(data, offset)
                entries.append(Point(x, y, oid))
                offset += LEAF_ENTRY_SIZE
        else:
            for _ in range(count):
                xmin, ymin, xmax, ymax, child = _BRANCH_ENTRY.unpack_from(data, offset)
                entries.append(Branch(Rect(xmin, ymin, xmax, ymax), child))
                offset += BRANCH_ENTRY_SIZE
        return cls(level, entries)

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else "branch"
        return f"Node(level={self.level}, {kind}, entries={len(self.entries)})"


def entry_rect(entry: Point | Branch) -> Rect:
    """MBR of an entry of either kind (degenerate rect for points)."""
    if isinstance(entry, Branch):
        return entry.rect
    return Rect(entry.x, entry.y, entry.x, entry.y)


def entries_mbr(entries: Iterable[Point | Branch]) -> Rect:
    """Tight MBR of a mixed entry collection."""
    return Rect.union_of(entry_rect(e) for e in entries)
