"""Quadtree node layout.

Leaves hold points (same layout as R-tree leaves); internal nodes hold
up to four :class:`QuadBranch` entries, one per non-empty quadrant.  A
branch carries its quadrant index (for insert routing), the *tight* MBR
of its subtree (for pruning — tight MBRs keep the face property the
verification shortcut relies on) and the child page id.
"""

from __future__ import annotations

import struct

from repro.geometry.point import Point
from repro.geometry.rect import Rect

_HEADER = struct.Struct("<BBHq")  # level, pad, count, overflow next pid
_LEAF_ENTRY = struct.Struct("<ddq")
_BRANCH_ENTRY = struct.Struct("<BddddQ")  # unaligned: 41 bytes

HEADER_SIZE = _HEADER.size
LEAF_ENTRY_SIZE = _LEAF_ENTRY.size
BRANCH_ENTRY_SIZE = _BRANCH_ENTRY.size

#: Sentinel for "no overflow page".
NO_OVERFLOW = -1

#: Quadrant indexes: 0 = SW, 1 = SE, 2 = NW, 3 = NE.
QUADRANTS = (0, 1, 2, 3)


def leaf_capacity(page_size: int) -> int:
    """Points a quadtree leaf page can hold."""
    return (page_size - HEADER_SIZE) // LEAF_ENTRY_SIZE


class QuadBranch:
    """An internal entry: quadrant tag, tight subtree MBR, child pid.

    Exposes ``rect`` and ``child`` with R-tree branch semantics so the
    join algorithms can consume either index.
    """

    __slots__ = ("quadrant", "rect", "child")

    def __init__(self, quadrant: int, rect: Rect, child: int):
        self.quadrant = int(quadrant)
        self.rect = rect
        self.child = int(child)

    def __repr__(self) -> str:
        return f"QuadBranch(q={self.quadrant}, {self.rect!r}, child={self.child})"


class QuadNode:
    """A deserialised quadtree node (protocol-compatible with
    :class:`repro.rtree.node.Node`).

    Leaves that cannot be split further (coincident duplicates, depth
    cap) chain *overflow pages* via ``next_pid``; the tree's
    ``read_node`` merges a chain into one logical node, charging one
    node access per physical page.
    """

    __slots__ = ("level", "entries", "next_pid")

    def __init__(
        self, level: int, entries: list | None = None, next_pid: int = NO_OVERFLOW
    ):
        self.level = level  # 0 = leaf, 1 = internal
        self.entries = entries if entries is not None else []
        self.next_pid = next_pid

    @property
    def is_leaf(self) -> bool:
        """True for point-holding nodes."""
        return self.level == 0

    def mbr(self) -> Rect:
        """Tight bounding rectangle of the subtree rooted here."""
        if not self.entries:
            raise ValueError("empty node has no MBR")
        if self.is_leaf:
            return Rect.from_points(self.entries)
        return Rect.union_of(b.rect for b in self.entries)

    def to_bytes(self, page_size: int) -> bytes:
        """Serialise into at most ``page_size`` bytes."""
        out = bytearray()
        out += _HEADER.pack(self.level, 0, len(self.entries), self.next_pid)
        if self.is_leaf:
            for p in self.entries:
                out += _LEAF_ENTRY.pack(p.x, p.y, p.oid)
        else:
            for b in self.entries:
                r = b.rect
                out += _BRANCH_ENTRY.pack(
                    b.quadrant, r.xmin, r.ymin, r.xmax, r.ymax, b.child
                )
        if len(out) > page_size:
            raise ValueError(
                f"quadtree node with {len(self.entries)} entries overflows "
                f"page size {page_size}"
            )
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "QuadNode":
        """Deserialise one physical page (not following overflow)."""
        level, _pad, count, next_pid = _HEADER.unpack_from(data, 0)
        entries: list = []
        offset = HEADER_SIZE
        if level == 0:
            for _ in range(count):
                x, y, oid = _LEAF_ENTRY.unpack_from(data, offset)
                entries.append(Point(x, y, oid))
                offset += LEAF_ENTRY_SIZE
        else:
            for _ in range(count):
                quadrant, xmin, ymin, xmax, ymax, child = _BRANCH_ENTRY.unpack_from(
                    data, offset
                )
                entries.append(
                    QuadBranch(quadrant, Rect(xmin, ymin, xmax, ymax), child)
                )
                offset += BRANCH_ENTRY_SIZE
        return cls(level, entries, next_pid)

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else "branch"
        return f"QuadNode({kind}, entries={len(self.entries)})"
