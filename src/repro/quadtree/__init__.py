"""Disk-resident point quadtree.

The paper (Section 3) notes its methodology "is directly applicable to
other hierarchical spatial indexes (e.g., point quad-tree)".  This
package substantiates that claim: a region quadtree stored in the same
page/buffer substrate whose nodes expose the same protocol as the
R-tree's (``is_leaf``, point entries, branch entries with a *tight* MBR
and a child page id) — so the Filter, Verify, INJ, BIJ and OBJ
implementations run over it unchanged and are tested to produce
identical joins.
"""

from repro.quadtree.tree import QuadTree

__all__ = ["QuadTree"]
