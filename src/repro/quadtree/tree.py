"""The disk-resident point quadtree.

Space is partitioned recursively into four quadrants of a fixed root
region; leaves split when they exceed the page capacity.  Leaves that
cannot be split productively (coincident duplicates, depth cap) chain
*overflow pages*.  Branch entries carry the *tight* MBR of their
subtree, so the index satisfies the same two properties the join
algorithms rely on for R-trees: branch rectangles bound all subtree
points, and every face of a branch rectangle touches a subtree point.
"""

from __future__ import annotations

from typing import Iterator

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.quadtree.node import NO_OVERFLOW, QuadBranch, QuadNode, leaf_capacity
from repro.storage.buffer import BufferManager
from repro.storage.disk import DEFAULT_PAGE_SIZE, DiskManager

#: Default root region: the paper's normalised coordinate domain.
DEFAULT_BOUNDS = Rect(0.0, 0.0, 10000.0, 10000.0)

#: Depth cap: beyond it leaves grow past capacity instead of splitting
#: (needed for coincident points, harmless otherwise).
DEFAULT_MAX_DEPTH = 32


def _quadrant_of(region: Rect, x: float, y: float) -> int:
    """Quadrant index of ``(x, y)`` in ``region`` (0 SW, 1 SE, 2 NW, 3 NE)."""
    cx = (region.xmin + region.xmax) / 2.0
    cy = (region.ymin + region.ymax) / 2.0
    return (1 if x >= cx else 0) + (2 if y >= cy else 0)


def _subregion(region: Rect, quadrant: int) -> Rect:
    """The sub-rectangle of ``region`` for a quadrant index."""
    cx = (region.xmin + region.xmax) / 2.0
    cy = (region.ymin + region.ymax) / 2.0
    if quadrant == 0:
        return Rect(region.xmin, region.ymin, cx, cy)
    if quadrant == 1:
        return Rect(cx, region.ymin, region.xmax, cy)
    if quadrant == 2:
        return Rect(region.xmin, cy, cx, region.ymax)
    return Rect(cx, cy, region.xmax, region.ymax)


class QuadTree:
    """A page-serialised point quadtree over a fixed root region.

    Protocol-compatible with :class:`repro.rtree.tree.RTree` for the
    read side (``read_node``, ``root_pid``, ``leaf_pids``,
    ``node_accesses``, ``buffer``, ``disk``), so the RCJ algorithms and
    the incremental-NN iterator run over it unchanged.
    """

    def __init__(
        self,
        disk: DiskManager | None = None,
        buffer: BufferManager | None = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        name: str = "QT",
        bounds: Rect = DEFAULT_BOUNDS,
        max_depth: int = DEFAULT_MAX_DEPTH,
    ):
        self.disk = disk if disk is not None else DiskManager(page_size)
        self.buffer = buffer
        self.name = name
        self.bounds = bounds
        self.max_depth = max_depth
        self.leaf_capacity = leaf_capacity(self.disk.page_size)
        # A branch page must hold all four quadrant entries and a leaf
        # at least two points.
        from repro.quadtree.node import BRANCH_ENTRY_SIZE, HEADER_SIZE

        min_page = max(
            HEADER_SIZE + 4 * BRANCH_ENTRY_SIZE,
            HEADER_SIZE + 2 * 24,
        )
        if self.disk.page_size < min_page:
            raise ValueError(
                f"page size {self.disk.page_size} too small for a quadtree "
                f"node (minimum {min_page})"
            )
        self.root_pid: int | None = None
        self.count = 0
        self.node_accesses = 0

    # ------------------------------------------------------------------
    # node I/O (same plumbing as the R-tree)
    # ------------------------------------------------------------------
    def _read_page(self, pid: int) -> QuadNode:
        """One physical page, through the buffer if attached."""
        self.node_accesses += 1
        if self.buffer is not None:
            data = self.buffer.get_page(self.disk, pid)
        else:
            data = self.disk.read_page(pid)
        return QuadNode.from_bytes(data)

    def read_node(self, pid: int) -> QuadNode:
        """Fetch a logical node, merging leaf overflow chains.

        Every physical page of a chain is charged as one node access,
        so oversized duplicate groups pay their true I/O cost.
        """
        node = self._read_page(pid)
        if node.is_leaf and node.next_pid != NO_OVERFLOW:
            entries = list(node.entries)
            next_pid = node.next_pid
            while next_pid != NO_OVERFLOW:
                page = self._read_page(next_pid)
                entries.extend(page.entries)
                next_pid = page.next_pid
            return QuadNode(0, entries)
        return node

    def write_node(self, pid: int, node: QuadNode) -> None:
        """Serialise and store a node, invalidating any cached copy."""
        self.disk.write_page(pid, node.to_bytes(self.disk.page_size))
        if self.buffer is not None:
            self.buffer.invalidate(self.disk, pid)

    def attach_buffer(self, buffer: BufferManager | None) -> None:
        """Route subsequent reads through ``buffer`` (or detach)."""
        self.buffer = buffer

    def reset_stats(self) -> None:
        """Zero the logical node-access counter."""
        self.node_accesses = 0

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def insert(self, point: Point) -> None:
        """Insert one point (must lie inside the root region)."""
        if not self.bounds.contains_point(point.x, point.y):
            raise ValueError(
                f"point ({point.x}, {point.y}) outside the quadtree bounds "
                f"{self.bounds!r}"
            )
        if self.root_pid is None:
            pid = self.disk.allocate()
            self.write_node(pid, QuadNode(0, [point]))
            self.root_pid = pid
            self.count = 1
            return
        self._insert(self.root_pid, self.bounds, point, 0)
        self.count += 1

    @staticmethod
    def _splittable(points: list[Point]) -> bool:
        """Splitting makes progress only with >1 distinct location."""
        first = points[0]
        return any(p.x != first.x or p.y != first.y for p in points)

    def _write_leaf_chain(self, pid: int, points: list[Point]) -> None:
        """Write a leaf, chaining overflow pages when points exceed one
        page (coincident duplicates, depth-capped regions)."""
        runs = [
            points[i : i + self.leaf_capacity]
            for i in range(0, len(points), self.leaf_capacity)
        ] or [[]]
        pids = [pid]
        for _ in runs[1:]:
            pids.append(self.disk.allocate())
        for i, run in enumerate(runs):
            next_pid = pids[i + 1] if i + 1 < len(runs) else NO_OVERFLOW
            self.write_node(pids[i], QuadNode(0, run, next_pid))

    def _insert(self, pid: int, region: Rect, point: Point, depth: int) -> Rect:
        """Recursive insert; returns the subtree's new tight MBR."""
        node = self.read_node(pid)
        if node.is_leaf:
            node.entries.append(point)
            can_split = depth < self.max_depth and self._splittable(node.entries)
            if len(node.entries) > self.leaf_capacity and can_split:
                branch = self._partition(node.entries, region, depth)
                self.write_node(pid, branch)
                return branch.mbr()
            self._write_leaf_chain(pid, node.entries)
            return node.mbr()

        quadrant = _quadrant_of(region, point.x, point.y)
        sub = _subregion(region, quadrant)
        entry = next(
            (b for b in node.entries if b.quadrant == quadrant), None
        )
        if entry is None:
            child_pid = self.disk.allocate()
            self.write_node(child_pid, QuadNode(0, [point]))
            node.entries.append(
                QuadBranch(quadrant, Rect.from_point(point), child_pid)
            )
        else:
            child_mbr = self._insert(entry.child, sub, point, depth + 1)
            entry.rect = child_mbr
        self.write_node(pid, node)
        return node.mbr()

    def _partition(
        self, points: list[Point], region: Rect, depth: int
    ) -> QuadNode:
        """Turn an overflowing point list into an internal node."""
        groups: dict[int, list[Point]] = {}
        for p in points:
            groups.setdefault(_quadrant_of(region, p.x, p.y), []).append(p)
        entries = []
        for quadrant, members in sorted(groups.items()):
            child_pid = self._build_subtree(
                members, _subregion(region, quadrant), depth + 1
            )
            mbr = Rect.from_points(members)
            entries.append(QuadBranch(quadrant, mbr, child_pid))
        return QuadNode(1, entries)

    def _build_subtree(
        self, points: list[Point], region: Rect, depth: int
    ) -> int:
        """Write a subtree for ``points`` and return its root page id."""
        pid = self.disk.allocate()
        can_split = depth < self.max_depth and self._splittable(points)
        if len(points) <= self.leaf_capacity or not can_split:
            self._write_leaf_chain(pid, points)
        else:
            self.write_node(pid, self._partition(points, region, depth))
        return pid

    # ------------------------------------------------------------------
    # queries and traversal
    # ------------------------------------------------------------------
    def range_search(self, rect: Rect) -> list[Point]:
        """All points inside the closed query rectangle."""
        results: list[Point] = []
        if self.root_pid is None:
            return results
        stack = [self.root_pid]
        while stack:
            node = self.read_node(stack.pop())
            if node.is_leaf:
                results.extend(
                    p for p in node.entries if rect.contains_point(p.x, p.y)
                )
            else:
                stack.extend(
                    b.child for b in node.entries if b.rect.intersects(rect)
                )
        return results

    def leaves(self) -> Iterator[QuadNode]:
        """Depth-first iteration over leaf nodes."""
        if self.root_pid is None:
            return
        stack = [self.root_pid]
        while stack:
            node = self.read_node(stack.pop())
            if node.is_leaf:
                yield node
            else:
                stack.extend(b.child for b in reversed(node.entries))

    def leaf_pids(self) -> list[int]:
        """Page ids of all leaves in depth-first order."""
        pids: list[int] = []
        if self.root_pid is None:
            return pids
        stack = [self.root_pid]
        while stack:
            pid = stack.pop()
            node = self.read_node(pid)
            if node.is_leaf:
                pids.append(pid)
            else:
                stack.extend(b.child for b in reversed(node.entries))
        return pids

    def all_points(self) -> list[Point]:
        """Every indexed point, in depth-first leaf order."""
        out: list[Point] = []
        for leaf in self.leaves():
            out.extend(leaf.entries)
        return out

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (
            f"QuadTree(name={self.name!r}, count={self.count}, "
            f"pages={self.disk.num_pages})"
        )
