"""Influence-based spatial queries (paper, Section 2.2).

The paper contrasts RCJ with influence-based queries: the *top-k
influential sites* query (Xia et al., VLDB 2005) and the *optimal
location* query (Du et al., SSTD 2005).  They differ from spatial
joins: the result is a point or location rather than pairs, and the two
datasets play asymmetric roles (*sites* vs *objects*, influence of a
site = number of objects whose nearest site it is).

These operators are implemented here both for completeness of the
paper's comparison surface and as additional consumers of the R-tree
substrate (nearest-neighbour search drives the influence counts).
"""

from repro.influence.queries import (
    influence_counts,
    optimal_location,
    top_k_influential,
)

__all__ = ["influence_counts", "optimal_location", "top_k_influential"]
