"""Top-k influential sites and the optimal-location query.

Definitions (paper, Section 2.2): given *sites* and *objects*, the
influence of a site is the number of objects having it as their nearest
site.  The top-k influential sites query returns the k sites with the
highest influence; the optimal-location query returns a *new* location
maximising the influence it would collect if added as a site.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

from repro.geometry.point import Point
from repro.rtree.bulk import bulk_load
from repro.rtree.inn import incremental_nearest
from repro.rtree.tree import RTree


def influence_counts(
    sites: Sequence[Point],
    objects: Sequence[Point],
    site_tree: RTree | None = None,
) -> dict[int, int]:
    """Influence of every site: objects assigned to their nearest site.

    Ties are broken towards the site discovered first by the
    incremental-NN order (deterministic for a given tree).  Sites with
    no assigned object are reported with influence 0.

    Parameters
    ----------
    sites, objects:
        The two pointsets; site ``oid`` values key the result.
    site_tree:
        Optional pre-built index over ``sites``.
    """
    if not sites:
        return {}
    if site_tree is None:
        site_tree = bulk_load(list(sites), name="T_sites")
    counts: Counter[int] = Counter()
    for obj in objects:
        for _dist, site in incremental_nearest(site_tree, obj.x, obj.y):
            counts[site.oid] += 1
            break
    return {site.oid: counts.get(site.oid, 0) for site in sites}


def top_k_influential(
    sites: Sequence[Point],
    objects: Sequence[Point],
    k: int,
    site_tree: RTree | None = None,
) -> list[tuple[Point, int]]:
    """The ``k`` sites with the highest influence (paper, Figure 3).

    Returns ``(site, influence)`` tuples, influence descending; ties
    broken by ascending ``oid`` for determinism.
    """
    if k <= 0:
        return []
    counts = influence_counts(sites, objects, site_tree)
    by_oid = {site.oid: site for site in sites}
    ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    return [(by_oid[oid], influence) for oid, influence in ranked[:k]]


def optimal_location(
    sites: Sequence[Point],
    objects: Sequence[Point],
    candidates: Sequence[Point] | None = None,
) -> tuple[Point, int]:
    """A location maximising the influence a *new* site would collect.

    The exact optimal-location query optimises over the continuous
    plane (Du et al. solve it with plane partitioning); this
    implementation optimises over a candidate set — by default the
    object locations themselves, a standard discretisation that attains
    the optimum whenever some object coincides with it and a
    2-approximation class heuristic otherwise.

    Returns ``(location, influence)`` where influence counts the
    objects strictly closer to the new location than to their current
    nearest site.
    """
    if not objects:
        raise ValueError("optimal_location needs at least one object")
    pool = list(candidates) if candidates is not None else list(objects)
    if not pool:
        raise ValueError("empty candidate pool")

    # Distance of every object to its current nearest site.
    if sites:
        site_tree = bulk_load(list(sites), name="T_sites")
        best_site_dist = []
        for obj in objects:
            for dist, _site in incremental_nearest(site_tree, obj.x, obj.y):
                best_site_dist.append(dist)
                break
    else:
        best_site_dist = [float("inf")] * len(objects)

    best_loc = pool[0]
    best_count = -1
    for cand in pool:
        count = 0
        for obj, current in zip(objects, best_site_dist):
            if obj.dist_to(cand) < current:
                count += 1
        if count > best_count:
            best_count = count
            best_loc = cand
    return best_loc, best_count
