"""Disk-resident k-d tree.

A third hierarchical point index (after the R*-tree and the point
quadtree) implementing the read-side protocol the RCJ algorithms
consume.  Exists to substantiate the paper's claim that its methodology
"is directly applicable to other hierarchical spatial indexes".

- :mod:`repro.kdtree.tree` — median-split bulk construction, range
  search, depth-first traversal.
"""

from repro.kdtree.tree import KDTree, build_kdtree

__all__ = ["KDTree", "build_kdtree"]
