"""The disk-resident k-d tree.

A static, perfectly balanced binary space partition built by recursive
median splits along the wider-extent axis.  Every internal entry
carries the *tight* MBR of its subtree, which gives the index the two
properties the RCJ join algorithms rely on (see
:mod:`repro.quadtree.tree`): branch rectangles bound all subtree points,
and every face of a branch rectangle touches a subtree point.  Pages
reuse the R-tree node layout (:mod:`repro.rtree.node`), so one
(de)serialisation path covers both indexes.

Binary fan-out under-fills 1 KiB branch pages by design — that is the
textbook trade-off of the k-d tree as a disk index, and exactly what
the index-generality ablation (`bench_ablation_kdtree`) measures.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.rtree.node import Branch, Node, leaf_capacity
from repro.storage.buffer import BufferManager
from repro.storage.disk import DEFAULT_PAGE_SIZE, DiskManager


class KDTree:
    """A page-serialised, median-split k-d tree over 2D points.

    Protocol-compatible with :class:`repro.rtree.tree.RTree` on the read
    side (``read_node``, ``root_pid``, ``leaf_pids``, ``node_accesses``,
    ``buffer``, ``disk``), so Filter/Verify/INJ/BIJ/OBJ and the
    incremental-NN iterator run over it unchanged.

    The tree is static: build it once with :func:`build_kdtree` (or the
    :meth:`build` method).  There is no point-level insert/delete — use
    the R*-tree when the workload mutates.
    """

    def __init__(
        self,
        disk: DiskManager | None = None,
        buffer: BufferManager | None = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        name: str = "KD",
    ):
        self.disk = disk if disk is not None else DiskManager(page_size)
        self.buffer = buffer
        self.name = name
        self.leaf_capacity = leaf_capacity(self.disk.page_size)
        if self.leaf_capacity < 2:
            raise ValueError(
                f"page size {self.disk.page_size} too small for a k-d tree leaf"
            )
        self.root_pid: int | None = None
        self.height = 0
        self.count = 0
        self.node_accesses = 0

    # ------------------------------------------------------------------
    # node I/O (same honesty contract as the R-tree: every access is a
    # full page (de)serialisation)
    # ------------------------------------------------------------------
    def read_node(self, pid: int) -> Node:
        """Fetch and deserialise a node, through the buffer if attached."""
        self.node_accesses += 1
        if self.buffer is not None:
            data = self.buffer.get_page(self.disk, pid)
        else:
            data = self.disk.read_page(pid)
        return Node.from_bytes(data)

    def write_node(self, pid: int, node: Node) -> None:
        """Serialise and store a node, invalidating any cached copy."""
        self.disk.write_page(pid, node.to_bytes(self.disk.page_size))
        if self.buffer is not None:
            self.buffer.invalidate(self.disk, pid)

    def attach_buffer(self, buffer: BufferManager | None) -> None:
        """Route subsequent reads through ``buffer`` (or detach)."""
        self.buffer = buffer

    def reset_stats(self) -> None:
        """Zero the logical node-access counter."""
        self.node_accesses = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def build(self, points: Sequence[Point]) -> "KDTree":
        """(Re)build the tree over ``points`` by recursive median split.

        The split axis is the wider extent of the current point set (the
        "optimised" k-d tree rule); the split position is the median, so
        the tree is balanced to within one level.
        """
        if self.count:
            raise ValueError("build requires an empty tree")
        if not points:
            return self
        root_branch, height = self._build_rec(list(points))
        self.root_pid = root_branch.child
        self.height = height
        self.count = len(points)
        return self

    def _build_rec(self, points: list[Point]) -> tuple[Branch, int]:
        """Build a subtree; returns its branch entry and height."""
        if len(points) <= self.leaf_capacity:
            pid = self.disk.allocate()
            node = Node(0, points)
            self.write_node(pid, node)
            return Branch(node.mbr(), pid), 1

        mbr = Rect.from_points(points)
        if mbr.xmax - mbr.xmin >= mbr.ymax - mbr.ymin:
            points.sort(key=lambda p: (p.x, p.y, p.oid))
        else:
            points.sort(key=lambda p: (p.y, p.x, p.oid))
        mid = len(points) // 2
        left, left_h = self._build_rec(points[:mid])
        right, right_h = self._build_rec(points[mid:])
        level = max(left_h, right_h)
        pid = self.disk.allocate()
        self.write_node(pid, Node(level, [left, right]))
        return Branch(mbr, pid), level + 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def range_search(self, rect: Rect) -> list[Point]:
        """All points inside the closed query rectangle."""
        results: list[Point] = []
        if self.root_pid is None:
            return results
        stack = [self.root_pid]
        while stack:
            node = self.read_node(stack.pop())
            if node.is_leaf:
                results.extend(
                    p for p in node.entries if rect.contains_point(p.x, p.y)
                )
            else:
                stack.extend(
                    b.child for b in node.entries if b.rect.intersects(rect)
                )
        return results

    def mbr(self) -> Rect:
        """Bounding rectangle of the whole dataset."""
        if self.root_pid is None:
            raise ValueError("empty tree has no MBR")
        return self.read_node(self.root_pid).mbr()

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def leaves(self) -> Iterator[Node]:
        """Depth-first iteration over leaf nodes (spatially local order,
        the analogue of the paper's Algorithm 5 search order)."""
        if self.root_pid is None:
            return
        stack = [self.root_pid]
        while stack:
            node = self.read_node(stack.pop())
            if node.is_leaf:
                yield node
            else:
                stack.extend(b.child for b in reversed(node.entries))

    def leaf_pids(self) -> list[int]:
        """Page ids of all leaves in depth-first order."""
        pids: list[int] = []
        if self.root_pid is None:
            return pids
        stack = [self.root_pid]
        while stack:
            pid = stack.pop()
            node = self.read_node(pid)
            if node.is_leaf:
                pids.append(pid)
            else:
                stack.extend(b.child for b in reversed(node.entries))
        return pids

    def all_points(self) -> list[Point]:
        """Every indexed point, in depth-first leaf order."""
        out: list[Point] = []
        for leaf in self.leaves():
            out.extend(leaf.entries)
        return out

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (
            f"KDTree(name={self.name!r}, count={self.count}, "
            f"height={self.height}, pages={self.disk.num_pages})"
        )


def build_kdtree(
    points: Sequence[Point],
    page_size: int = DEFAULT_PAGE_SIZE,
    buffer: BufferManager | None = None,
    name: str = "KD",
) -> KDTree:
    """Build a :class:`KDTree` over ``points`` in one call."""
    tree = KDTree(buffer=buffer, page_size=page_size, name=name)
    return tree.build(points)
