"""Circles and the strict-interior containment predicate.

A ring-constrained join pair is valid exactly when its enclosing circle
contains no other point *strictly* inside.  All algorithms in this
library share the predicates defined here, so their results are directly
comparable.
"""

from __future__ import annotations

import math

from repro.geometry.rect import Rect

#: Relative slack applied to strict containment tests.  Points whose
#: squared distance to the centre is within ``STRICT_REL_EPS`` of the
#: squared radius are treated as *on the boundary*, hence not contained.
#: This keeps the defining endpoints of a pair (which lie exactly on the
#: boundary, up to floating-point rounding) from invalidating their own
#: pair.
STRICT_REL_EPS = 1e-9


class Circle:
    """A circle given by centre ``(cx, cy)`` and radius ``r >= 0``."""

    __slots__ = ("cx", "cy", "r", "r_sq")

    def __init__(self, cx: float, cy: float, r: float):
        if r < 0.0:
            raise ValueError(f"negative radius {r}")
        self.cx = float(cx)
        self.cy = float(cy)
        self.r = float(r)
        self.r_sq = self.r * self.r

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    def contains_point(self, x: float, y: float) -> bool:
        """Strict-interior containment (boundary points excluded).

        Uses a relative epsilon so that points lying on the boundary up
        to floating-point rounding are *not* reported as contained.
        """
        dx = x - self.cx
        dy = y - self.cy
        return dx * dx + dy * dy < self.r_sq * (1.0 - STRICT_REL_EPS)

    def covers_point(self, x: float, y: float) -> bool:
        """Closed containment (boundary points included, with slack)."""
        dx = x - self.cx
        dy = y - self.cy
        return dx * dx + dy * dy <= self.r_sq * (1.0 + STRICT_REL_EPS)

    def intersects_rect(self, rect: Rect) -> bool:
        """Closed intersection between the disk and a rectangle.

        Conservative for tree descent: a subtree is visited whenever its
        MBR touches the closed disk.
        """
        return rect.mindist_sq(self.cx, self.cy) <= self.r_sq

    def contains_rect_face(self, rect: Rect) -> bool:
        """True when at least one full side of ``rect`` lies strictly inside.

        By the MBR property every face of an R-tree MBR touches at least
        one data point of the subtree, so a face strictly inside the
        circle certifies that the subtree holds a point strictly inside
        (paper, Section 3.2, "entry with a face inside the circle").

        A side is strictly inside iff both its endpoints are (a disk is
        convex).
        """
        c_bl = self.contains_point(rect.xmin, rect.ymin)
        c_br = self.contains_point(rect.xmax, rect.ymin)
        if c_bl and c_br:
            return True
        c_tl = self.contains_point(rect.xmin, rect.ymax)
        if c_bl and c_tl:
            return True
        c_tr = self.contains_point(rect.xmax, rect.ymax)
        if c_tr and (c_br or c_tl):
            return True
        return False

    def contains_rect(self, rect: Rect) -> bool:
        """True when the whole rectangle lies strictly inside the disk."""
        return all(self.contains_point(x, y) for x, y in rect.corners())

    def bounding_rect(self) -> Rect:
        """Tight axis-aligned bounding rectangle of the disk."""
        return Rect(self.cx - self.r, self.cy - self.r, self.cx + self.r, self.cy + self.r)

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Circle):
            return NotImplemented
        return self.cx == other.cx and self.cy == other.cy and self.r == other.r

    def __hash__(self) -> int:
        return hash((self.cx, self.cy, self.r))

    def __repr__(self) -> str:
        return f"Circle(({self.cx:g}, {self.cy:g}), r={self.r:g})"

    def dist_to_center(self, x: float, y: float) -> float:
        """Distance from a coordinate pair to the circle centre."""
        return math.hypot(x - self.cx, y - self.cy)
