"""Axis-aligned rectangles (minimum bounding rectangles).

Rectangles are closed regions ``[xmin, xmax] x [ymin, ymax]``.  They are
the bounding geometry of R-tree entries and the unit the pruning lemmas
operate on.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator

from repro.geometry.point import Point


class Rect:
    """A closed axis-aligned rectangle.

    Degenerate rectangles (zero width and/or height) are legal and are
    used as the MBR of a single point.
    """

    __slots__ = ("xmin", "ymin", "xmax", "ymax")

    def __init__(self, xmin: float, ymin: float, xmax: float, ymax: float):
        if xmin > xmax or ymin > ymax:
            raise ValueError(
                f"invalid rectangle bounds ({xmin}, {ymin}, {xmax}, {ymax})"
            )
        self.xmin = float(xmin)
        self.ymin = float(ymin)
        self.xmax = float(xmax)
        self.ymax = float(ymax)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_point(cls, p: Point) -> "Rect":
        """Degenerate rectangle covering exactly one point."""
        return cls(p.x, p.y, p.x, p.y)

    @classmethod
    def from_points(cls, points: Iterable[Point]) -> "Rect":
        """Tight MBR of a non-empty collection of points."""
        it = iter(points)
        try:
            first = next(it)
        except StopIteration:
            raise ValueError("cannot bound an empty point collection") from None
        xmin = xmax = first.x
        ymin = ymax = first.y
        for p in it:
            if p.x < xmin:
                xmin = p.x
            elif p.x > xmax:
                xmax = p.x
            if p.y < ymin:
                ymin = p.y
            elif p.y > ymax:
                ymax = p.y
        return cls(xmin, ymin, xmax, ymax)

    @classmethod
    def union_of(cls, rects: Iterable["Rect"]) -> "Rect":
        """Tight MBR of a non-empty collection of rectangles."""
        it = iter(rects)
        try:
            first = next(it)
        except StopIteration:
            raise ValueError("cannot bound an empty rectangle collection") from None
        xmin, ymin, xmax, ymax = first.xmin, first.ymin, first.xmax, first.ymax
        for r in it:
            if r.xmin < xmin:
                xmin = r.xmin
            if r.ymin < ymin:
                ymin = r.ymin
            if r.xmax > xmax:
                xmax = r.xmax
            if r.ymax > ymax:
                ymax = r.ymax
        return cls(xmin, ymin, xmax, ymax)

    # ------------------------------------------------------------------
    # basic measures
    # ------------------------------------------------------------------
    def width(self) -> float:
        """Extent along x."""
        return self.xmax - self.xmin

    def height(self) -> float:
        """Extent along y."""
        return self.ymax - self.ymin

    def area(self) -> float:
        """Area (zero for degenerate rectangles)."""
        return (self.xmax - self.xmin) * (self.ymax - self.ymin)

    def margin(self) -> float:
        """Half-perimeter, the R*-tree split criterion."""
        return (self.xmax - self.xmin) + (self.ymax - self.ymin)

    def center(self) -> tuple[float, float]:
        """Geometric centre."""
        return (self.xmin + self.xmax) / 2.0, (self.ymin + self.ymax) / 2.0

    # ------------------------------------------------------------------
    # relations
    # ------------------------------------------------------------------
    def contains_point(self, x: float, y: float) -> bool:
        """Closed containment of a coordinate pair."""
        return self.xmin <= x <= self.xmax and self.ymin <= y <= self.ymax

    def contains_rect(self, other: "Rect") -> bool:
        """True when ``other`` lies entirely inside this rectangle."""
        return (
            self.xmin <= other.xmin
            and self.ymin <= other.ymin
            and other.xmax <= self.xmax
            and other.ymax <= self.ymax
        )

    def intersects(self, other: "Rect") -> bool:
        """Closed intersection test."""
        return (
            self.xmin <= other.xmax
            and other.xmin <= self.xmax
            and self.ymin <= other.ymax
            and other.ymin <= self.ymax
        )

    def intersection_area(self, other: "Rect") -> float:
        """Area of the overlap region (zero when disjoint)."""
        w = min(self.xmax, other.xmax) - max(self.xmin, other.xmin)
        if w <= 0.0:
            return 0.0
        h = min(self.ymax, other.ymax) - max(self.ymin, other.ymin)
        if h <= 0.0:
            return 0.0
        return w * h

    def union(self, other: "Rect") -> "Rect":
        """Smallest rectangle covering both operands."""
        return Rect(
            min(self.xmin, other.xmin),
            min(self.ymin, other.ymin),
            max(self.xmax, other.xmax),
            max(self.ymax, other.ymax),
        )

    def enlargement(self, other: "Rect") -> float:
        """Area increase needed to absorb ``other`` (R-tree heuristic)."""
        union_area = (
            max(self.xmax, other.xmax) - min(self.xmin, other.xmin)
        ) * (max(self.ymax, other.ymax) - min(self.ymin, other.ymin))
        return union_area - self.area()

    # ------------------------------------------------------------------
    # distances
    # ------------------------------------------------------------------
    def mindist_sq(self, x: float, y: float) -> float:
        """Squared minimum distance from a coordinate pair to this rect.

        Zero when the point lies inside.  This is the classic R-tree
        MINDIST metric of Roussopoulos et al.
        """
        dx = self.xmin - x if x < self.xmin else (x - self.xmax if x > self.xmax else 0.0)
        dy = self.ymin - y if y < self.ymin else (y - self.ymax if y > self.ymax else 0.0)
        return dx * dx + dy * dy

    def mindist(self, x: float, y: float) -> float:
        """Minimum distance from a coordinate pair to this rectangle."""
        return math.sqrt(self.mindist_sq(x, y))

    def maxdist_sq(self, x: float, y: float) -> float:
        """Squared maximum distance from a coordinate pair to this rect."""
        dx = max(abs(x - self.xmin), abs(x - self.xmax))
        dy = max(abs(y - self.ymin), abs(y - self.ymax))
        return dx * dx + dy * dy

    def rect_mindist_sq(self, other: "Rect") -> float:
        """Squared minimum distance between two rectangles."""
        dx = 0.0
        if other.xmax < self.xmin:
            dx = self.xmin - other.xmax
        elif self.xmax < other.xmin:
            dx = other.xmin - self.xmax
        dy = 0.0
        if other.ymax < self.ymin:
            dy = self.ymin - other.ymax
        elif self.ymax < other.ymin:
            dy = other.ymin - self.ymax
        return dx * dx + dy * dy

    def corners(self) -> Iterator[tuple[float, float]]:
        """Yield the four corner coordinate pairs."""
        yield (self.xmin, self.ymin)
        yield (self.xmin, self.ymax)
        yield (self.xmax, self.ymin)
        yield (self.xmax, self.ymax)

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rect):
            return NotImplemented
        return (
            self.xmin == other.xmin
            and self.ymin == other.ymin
            and self.xmax == other.xmax
            and self.ymax == other.ymax
        )

    def __hash__(self) -> int:
        return hash((self.xmin, self.ymin, self.xmax, self.ymax))

    def __repr__(self) -> str:
        return f"Rect({self.xmin:g}, {self.ymin:g}, {self.xmax:g}, {self.ymax:g})"
