"""Planar geometry substrate for the ring-constrained join.

This package contains the geometric primitives every other subsystem is
built on: points, axis-aligned rectangles (MBRs), circles, the pruning
half-planes of the paper's Lemmas 1/3/5, smallest enclosing circles,
alternative distance metrics used by the metric-generalised RCJ, the
Hilbert space-filling curve backing the Hilbert-packed bulk loader, and
convex polygons for the Voronoi-cell comparator.
"""

from repro.geometry.circle import Circle
from repro.geometry.enclosing import enclosing_circle, welzl_circle
from repro.geometry.halfplane import HalfPlane
from repro.geometry.hilbert import HilbertMapper, d_to_xy, xy_to_d
from repro.geometry.metrics import (
    ChebyshevMetric,
    EuclideanMetric,
    ManhattanMetric,
    Metric,
    get_metric,
)
from repro.geometry.point import Point, dist, dist_sq, midpoint
from repro.geometry.polygon import (
    box_polygon,
    clip_halfplane,
    convex_polygons_intersect,
    polygon_area,
)
from repro.geometry.rect import Rect
from repro.geometry.ring import Ring

__all__ = [
    "Circle",
    "ChebyshevMetric",
    "EuclideanMetric",
    "HalfPlane",
    "HilbertMapper",
    "d_to_xy",
    "xy_to_d",
    "box_polygon",
    "clip_halfplane",
    "convex_polygons_intersect",
    "polygon_area",
    "ManhattanMetric",
    "Metric",
    "Point",
    "Rect",
    "Ring",
    "dist",
    "dist_sq",
    "enclosing_circle",
    "get_metric",
    "midpoint",
    "welzl_circle",
]
