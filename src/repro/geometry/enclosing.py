"""Smallest enclosing circles.

The RCJ constraint is expressed through the smallest circle enclosing a
*pair* of points: the circle whose diameter is the segment between them.
For completeness (and for applications that aggregate more than two
facilities) a randomised Welzl solver for arbitrary pointsets is included.
"""

from __future__ import annotations

import math
import random
from typing import Sequence

from repro.geometry.circle import Circle
from repro.geometry.point import Point


def enclosing_circle(p: Point, q: Point) -> Circle:
    """Smallest circle enclosing two points.

    Its centre is the midpoint of ``pq`` — the *fair middleman location*
    — and its radius half the distance between them.
    """
    cx = (p.x + q.x) / 2.0
    cy = (p.y + q.y) / 2.0
    r = math.hypot(p.x - q.x, p.y - q.y) / 2.0
    return Circle(cx, cy, r)


def _circle_two(a: Point, b: Point) -> Circle:
    return enclosing_circle(a, b)


def _circle_three(a: Point, b: Point, c: Point) -> Circle | None:
    """Circumscribed circle of three points; None when collinear."""
    ax, ay, bx, by, cx, cy = a.x, a.y, b.x, b.y, c.x, c.y
    d = 2.0 * (ax * (by - cy) + bx * (cy - ay) + cx * (ay - by))
    if d == 0.0:
        return None
    a_sq = ax * ax + ay * ay
    b_sq = bx * bx + by * by
    c_sq = cx * cx + cy * cy
    ux = (a_sq * (by - cy) + b_sq * (cy - ay) + c_sq * (ay - by)) / d
    uy = (a_sq * (cx - bx) + b_sq * (ax - cx) + c_sq * (bx - ax)) / d
    r = math.hypot(ax - ux, ay - uy)
    return Circle(ux, uy, r)


def _covers(circle: Circle, p: Point, slack: float = 1e-9) -> bool:
    dx = p.x - circle.cx
    dy = p.y - circle.cy
    return dx * dx + dy * dy <= circle.r_sq * (1.0 + slack) + slack


def welzl_circle(points: Sequence[Point], seed: int = 0) -> Circle:
    """Smallest enclosing circle of a non-empty pointset (Welzl).

    Iterative move-to-front formulation with a seeded shuffle; expected
    linear time.  Used by aggregate-facility applications and as a test
    oracle for :func:`enclosing_circle`.
    """
    if not points:
        raise ValueError("cannot enclose an empty pointset")
    pts = list(points)
    random.Random(seed).shuffle(pts)

    circle = Circle(pts[0].x, pts[0].y, 0.0)
    for i, p in enumerate(pts):
        if _covers(circle, p):
            continue
        circle = Circle(p.x, p.y, 0.0)
        for j in range(i):
            a = pts[j]
            if _covers(circle, a):
                continue
            circle = _circle_two(p, a)
            for k in range(j):
                b = pts[k]
                if _covers(circle, b):
                    continue
                three = _circle_three(p, a, b)
                if three is None:
                    # Collinear triple: the two extreme points define it.
                    three = max(
                        (_circle_two(p, a), _circle_two(p, b), _circle_two(a, b)),
                        key=lambda c: c.r,
                    )
                circle = three
    return circle
