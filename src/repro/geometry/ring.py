"""The ring of a pair: its enclosing circle with an *exact* predicate.

A point ``x`` lies strictly inside the circle with diameter ``pq`` iff
the angle ``p-x-q`` is obtuse, i.e. iff ``(x - p) . (x - q) < 0``.  This
dot-product form needs no midpoint, radius or square root, so:

- the pair's endpoints (and any coincident duplicates) evaluate to
  *exactly* zero and are never counted as inside, with no epsilon;
- it is **exactly consistent** with the Ψ− half-plane pruning tests in
  IEEE arithmetic: ``HalfPlane.psi_minus(q, p).contains_point(p')``
  evaluates the negation of ``Ring(p', q).contains_point(p)`` term by
  term (float negation is exact), so the Filter step prunes a pair
  precisely when Verification would have discarded it.

The centre/radius representation is still kept (inherited from
:class:`~repro.geometry.circle.Circle`) for MBR interaction tests, where
small *conservative* slacks are applied: descent tests may visit a
subtree unnecessarily but can never skip a relevant one, and the
face-containment shortcut only fires with a margin that dominates
floating-point evaluation error.
"""

from __future__ import annotations

import math

from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.rect import Rect

#: Relative margin demanded by the face-containment shortcut; several
#: orders of magnitude above the ~2e-16 evaluation error of the dot
#: predicate, so the shortcut only fires when a point of the subtree is
#: certainly strictly inside.
_CERTAIN_REL_MARGIN = 1e-12

#: Relative slack applied to the (conservative) descent test.
_DESCEND_REL_SLACK = 1e-9


class Ring(Circle):
    """The smallest circle enclosing a point pair, with exact tests."""

    __slots__ = ("px", "py", "qx", "qy")

    def __init__(self, px: float, py: float, qx: float, qy: float):
        cx = (px + qx) / 2.0
        cy = (py + qy) / 2.0
        r = math.hypot(px - qx, py - qy) / 2.0
        super().__init__(cx, cy, r)
        self.px = float(px)
        self.py = float(py)
        self.qx = float(qx)
        self.qy = float(qy)

    @classmethod
    def of_pair(cls, p: Point, q: Point) -> "Ring":
        """Ring of the pair ``<p, q>``."""
        return cls(p.x, p.y, q.x, q.y)

    # ------------------------------------------------------------------
    # exact predicates
    # ------------------------------------------------------------------
    def contains_point(self, x: float, y: float) -> bool:
        """Strict-interior containment, exact at the boundary.

        ``(x - p) . (x - q) < 0``; endpoints and their duplicates give
        exactly zero.
        """
        return (x - self.px) * (x - self.qx) + (y - self.py) * (y - self.qy) < 0.0

    def contains_point_certainly(self, x: float, y: float) -> bool:
        """Containment with a margin dominating evaluation error.

        Used by decisions that must never fire spuriously (the MBR
        face-containment shortcut kills a candidate without reading the
        subtree).
        """
        t1 = (x - self.px) * (x - self.qx)
        t2 = (y - self.py) * (y - self.qy)
        return t1 + t2 < -_CERTAIN_REL_MARGIN * (abs(t1) + abs(t2))

    # ------------------------------------------------------------------
    # conservative MBR interactions
    # ------------------------------------------------------------------
    def intersects_rect(self, rect: Rect) -> bool:
        """Conservative descent test: may admit a touching rectangle,
        never rejects one holding a point the dot predicate counts."""
        slack = _DESCEND_REL_SLACK * (self.r + abs(self.cx) + abs(self.cy) + 1.0)
        bound = self.r + slack
        return rect.mindist_sq(self.cx, self.cy) <= bound * bound

    def contains_rect_face(self, rect: Rect) -> bool:
        """True when a full side of ``rect`` is certainly strictly inside.

        By the MBR property that side carries a data point of the
        subtree, so the candidate can be discarded without reading it.
        Uses the margined predicate: a spurious kill would be a
        correctness bug, a missed kill only costs a node read.
        """
        c_bl = self.contains_point_certainly(rect.xmin, rect.ymin)
        c_br = self.contains_point_certainly(rect.xmax, rect.ymin)
        if c_bl and c_br:
            return True
        c_tl = self.contains_point_certainly(rect.xmin, rect.ymax)
        if c_bl and c_tl:
            return True
        c_tr = self.contains_point_certainly(rect.xmax, rect.ymax)
        if c_tr and (c_br or c_tl):
            return True
        return False

    def __repr__(self) -> str:
        return (
            f"Ring(p=({self.px:g}, {self.py:g}), q=({self.qx:g}, {self.qy:g}), "
            f"r={self.r:g})"
        )
