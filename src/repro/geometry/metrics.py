"""Distance metrics for the metric-generalised ring constraint.

The paper's future-work section proposes exploring the ring constraint
under distance functions other than Euclidean.  Each metric defines the
distance itself and the shape of the "ring": the metric ball centred at
the midpoint of a pair with radius half the pair distance.  Under L2 the
ball is the classic enclosing circle, so the generalised join coincides
with the standard RCJ (property-tested).

Under L1 and L∞ the centre minimising the maximum distance to both
endpoints is not unique; following common practice we anchor the ball at
the coordinate midpoint, which is always one of the minimisers.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.geometry.point import Point
from repro.geometry.rect import Rect

#: Relative slack for strict ball containment, mirroring the circle
#: predicate in :mod:`repro.geometry.circle`.
_STRICT_REL_EPS = 1e-9


class Metric(ABC):
    """A planar distance function plus its midpoint-ball geometry."""

    #: Short name used by :func:`get_metric`.
    name: str = ""

    @abstractmethod
    def dist(self, ax: float, ay: float, bx: float, by: float) -> float:
        """Distance between two coordinate pairs."""

    def pair_ball(self, p: Point, q: Point) -> "MetricBall":
        """Smallest midpoint-centred ball enclosing ``p`` and ``q``."""
        cx = (p.x + q.x) / 2.0
        cy = (p.y + q.y) / 2.0
        return MetricBall(self, cx, cy, self.dist(p.x, p.y, q.x, q.y) / 2.0)

    def ball_bounding_rect(self, cx: float, cy: float, r: float) -> Rect:
        """Axis-aligned bounding rectangle of the ball.

        For all Lp metrics the ball is contained in the L∞ ball of the
        same radius, so the square is a correct (possibly loose) bound.
        """
        return Rect(cx - r, cy - r, cx + r, cy + r)


class EuclideanMetric(Metric):
    """The standard L2 metric; its ball is the enclosing circle."""

    name = "l2"

    def dist(self, ax: float, ay: float, bx: float, by: float) -> float:
        return math.hypot(ax - bx, ay - by)


class ManhattanMetric(Metric):
    """The L1 (city-block) metric; its ball is a diamond."""

    name = "l1"

    def dist(self, ax: float, ay: float, bx: float, by: float) -> float:
        return abs(ax - bx) + abs(ay - by)


class ChebyshevMetric(Metric):
    """The L∞ metric; its ball is an axis-aligned square."""

    name = "linf"

    def dist(self, ax: float, ay: float, bx: float, by: float) -> float:
        return max(abs(ax - bx), abs(ay - by))


class MetricBall:
    """An open metric ball ``{ x : d(x, c) < r }`` with boundary slack."""

    __slots__ = ("metric", "cx", "cy", "r")

    def __init__(self, metric: Metric, cx: float, cy: float, r: float):
        self.metric = metric
        self.cx = float(cx)
        self.cy = float(cy)
        self.r = float(r)

    def contains_point(self, x: float, y: float) -> bool:
        """Strict containment with relative boundary slack."""
        return self.metric.dist(x, y, self.cx, self.cy) < self.r * (
            1.0 - _STRICT_REL_EPS
        )

    def bounding_rect(self) -> Rect:
        """Axis-aligned bounding rectangle (used by grid range queries)."""
        return self.metric.ball_bounding_rect(self.cx, self.cy, self.r)

    def __repr__(self) -> str:
        return (
            f"MetricBall({self.metric.name}, ({self.cx:g}, {self.cy:g}), "
            f"r={self.r:g})"
        )


_METRICS: dict[str, Metric] = {
    "l1": ManhattanMetric(),
    "l2": EuclideanMetric(),
    "linf": ChebyshevMetric(),
    "manhattan": ManhattanMetric(),
    "euclidean": EuclideanMetric(),
    "chebyshev": ChebyshevMetric(),
}


def get_metric(name: str) -> Metric:
    """Look up a metric by name (``l1``, ``l2``, ``linf`` and aliases)."""
    try:
        return _METRICS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown metric {name!r}; expected one of {sorted(set(_METRICS))}"
        ) from None
