"""Pruning half-planes (the paper's Ψ+ / Ψ− regions).

Given a join point ``q`` and a discovered point ``p``, let ``L(q, p)`` be
the line through ``p`` perpendicular to the segment ``qp``.  The open
half-plane on the far side of ``L`` from ``q`` is ``Ψ−(q, p)``: by
Lemma 1 no point strictly inside it can form an RCJ pair with ``q``, and
by Lemma 3 an MBR entirely inside it can be pruned wholesale.  Lemma 5 is
the same construction with ``p`` replaced by another point ``q'`` of the
same dataset as ``q``.
"""

from __future__ import annotations

from repro.geometry.point import Point
from repro.geometry.rect import Rect


class HalfPlane:
    """The open half-plane ``{ x : (x - a) . n > 0 }``.

    ``a`` is the anchor point on the boundary line and ``n`` the outward
    normal.  Containment is *strict*: boundary points are not contained,
    matching the open-disk containment convention (a point exactly on
    ``L(q, p)`` sits on the boundary of the candidate circle and does not
    invalidate the pair).
    """

    __slots__ = ("ax", "ay", "nx", "ny")

    def __init__(self, ax: float, ay: float, nx: float, ny: float):
        self.ax = float(ax)
        self.ay = float(ay)
        self.nx = float(nx)
        self.ny = float(ny)

    @classmethod
    def psi_minus(cls, q: Point, p: Point) -> "HalfPlane":
        """The pruning region ``Ψ−(q, p)`` of Lemma 1 / Lemma 5.

        Anchored at ``p`` with normal ``p - q`` (pointing away from
        ``q``).  When ``p`` and ``q`` coincide the region is degenerate
        and contains nothing, which is the correct semantics: a
        coincident point lies on the boundary of every candidate circle
        through ``q`` and never invalidates a pair.
        """
        return cls(p.x, p.y, p.x - q.x, p.y - q.y)

    def is_degenerate(self) -> bool:
        """True when the normal is null (region contains nothing)."""
        return self.nx == 0.0 and self.ny == 0.0

    def contains_point(self, x: float, y: float) -> bool:
        """Strict containment of a coordinate pair.

        The expression ``(x - a) . n`` is, term by term, the exact IEEE
        negation of the ring predicate ``(a - x) . n`` used during
        verification, so point-level pruning and verification can never
        disagree (see :mod:`repro.geometry.ring`).
        """
        return (x - self.ax) * self.nx + (y - self.ay) * self.ny > 0.0

    def contains_rect(self, rect: Rect) -> bool:
        """True when the whole rectangle is *certainly* strictly inside.

        Evaluates the linear functional at the corner that minimises it
        (picked per-axis from the sign of the normal) and demands a
        margin dominating the floating-point evaluation error at any
        point of the rectangle: pruning a subtree must never be
        spurious, while a missed prune only costs a node read.
        """
        x = rect.xmin if self.nx > 0.0 else rect.xmax
        y = rect.ymin if self.ny > 0.0 else rect.ymax
        value = (x - self.ax) * self.nx + (y - self.ay) * self.ny
        # Error bound scaled by the largest-magnitude corner terms.
        span_x = max(abs(rect.xmin - self.ax), abs(rect.xmax - self.ax))
        span_y = max(abs(rect.ymin - self.ay), abs(rect.ymax - self.ay))
        tol = 1e-12 * (span_x * abs(self.nx) + span_y * abs(self.ny))
        return value > tol

    def __repr__(self) -> str:
        return f"HalfPlane(anchor=({self.ax:g}, {self.ay:g}), n=({self.nx:g}, {self.ny:g}))"
