"""Planar points.

Every dataset object in the library is a :class:`Point`: an immutable 2D
location plus an integer object identifier (``oid``).  The ``oid`` is what
join results are expressed in, so two points at the same location remain
distinguishable.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Sequence


class Point:
    """An immutable planar point with an object identifier.

    Parameters
    ----------
    x, y:
        Coordinates.  The library normalises datasets to ``[0, 10000]``
        (the paper's domain) but nothing here depends on that.
    oid:
        Integer object identifier.  Defaults to ``-1`` for anonymous
        points (e.g. query locations).
    """

    __slots__ = ("x", "y", "oid")

    def __init__(self, x: float, y: float, oid: int = -1):
        object.__setattr__(self, "x", float(x))
        object.__setattr__(self, "y", float(y))
        object.__setattr__(self, "oid", int(oid))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Point is immutable")

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Point):
            return NotImplemented
        return self.x == other.x and self.y == other.y and self.oid == other.oid

    def __hash__(self) -> int:
        return hash((self.x, self.y, self.oid))

    def __repr__(self) -> str:
        return f"Point({self.x:g}, {self.y:g}, oid={self.oid})"

    def same_location(self, other: "Point") -> bool:
        """Return True when ``other`` has exactly the same coordinates."""
        return self.x == other.x and self.y == other.y

    def dist_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def dist_sq_to(self, other: "Point") -> float:
        """Squared Euclidean distance to ``other`` (no sqrt)."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy


def dist(a: Point, b: Point) -> float:
    """Euclidean distance between two points."""
    return math.hypot(a.x - b.x, a.y - b.y)


def dist_sq(a: Point, b: Point) -> float:
    """Squared Euclidean distance between two points."""
    dx = a.x - b.x
    dy = a.y - b.y
    return dx * dx + dy * dy


def midpoint(a: Point, b: Point) -> tuple[float, float]:
    """Midpoint of the segment ``ab`` as a coordinate pair."""
    return (a.x + b.x) / 2.0, (a.y + b.y) / 2.0


def points_from_coords(
    coords: Iterable[Sequence[float]], start_oid: int = 0
) -> list[Point]:
    """Build a list of :class:`Point` from an iterable of ``(x, y)`` pairs.

    Object identifiers are assigned sequentially starting at
    ``start_oid``.
    """
    return [Point(c[0], c[1], start_oid + i) for i, c in enumerate(coords)]
