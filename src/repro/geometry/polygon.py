"""Convex polygons: half-plane clipping and intersection tests.

The substrate of the common-influence-join comparator
(:mod:`repro.joins.common_influence`): Voronoi cells are convex
polygons produced by clipping the domain box with perpendicular
bisectors, and the join predicate is convex-polygon intersection.

Polygons are lists of ``(x, y)`` vertex tuples in counter-clockwise
order.  An empty list is the empty polygon.
"""

from __future__ import annotations

import math
from typing import Sequence

Vertex = tuple[float, float]


def box_polygon(xmin: float, ymin: float, xmax: float, ymax: float) -> list[Vertex]:
    """The CCW rectangle polygon of a bounding box."""
    return [(xmin, ymin), (xmax, ymin), (xmax, ymax), (xmin, ymax)]


def clip_halfplane(
    polygon: Sequence[Vertex],
    ax: float,
    ay: float,
    nx: float,
    ny: float,
) -> list[Vertex]:
    """Clip a convex polygon to the closed half-plane
    ``{ x : (x - a) . n <= 0 }`` (Sutherland–Hodgman, one plane).

    Parameters
    ----------
    polygon:
        CCW convex polygon (may be empty).
    ax, ay:
        A point on the clipping line.
    nx, ny:
        Normal pointing *out* of the kept side.

    Returns
    -------
    The clipped polygon (CCW, possibly empty or degenerate).
    """
    if not polygon:
        return []
    out: list[Vertex] = []
    n = len(polygon)
    for i in range(n):
        cx, cy = polygon[i]
        px, py = polygon[(i - 1) % n]
        cur_val = (cx - ax) * nx + (cy - ay) * ny
        prev_val = (px - ax) * nx + (py - ay) * ny
        cur_in = cur_val <= 0.0
        prev_in = prev_val <= 0.0
        if cur_in != prev_in:
            # Edge crosses the line: add the crossing point.
            t = prev_val / (prev_val - cur_val)
            out.append((px + t * (cx - px), py + t * (cy - py)))
        if cur_in:
            out.append((cx, cy))
    return out


def polygon_area(polygon: Sequence[Vertex]) -> float:
    """Signed shoelace area (positive for CCW orientation)."""
    if len(polygon) < 3:
        return 0.0
    area = 0.0
    n = len(polygon)
    for i in range(n):
        x1, y1 = polygon[i]
        x2, y2 = polygon[(i + 1) % n]
        area += x1 * y2 - x2 * y1
    return area / 2.0


def polygon_bbox(polygon: Sequence[Vertex]) -> tuple[float, float, float, float]:
    """``(xmin, ymin, xmax, ymax)`` of a non-empty polygon."""
    if not polygon:
        raise ValueError("empty polygon has no bounding box")
    xs = [v[0] for v in polygon]
    ys = [v[1] for v in polygon]
    return min(xs), min(ys), max(xs), max(ys)


def polygon_centroid(polygon: Sequence[Vertex]) -> Vertex:
    """Area centroid of a convex polygon (vertex mean when degenerate)."""
    area = polygon_area(polygon)
    if abs(area) < 1e-12:
        xs = [v[0] for v in polygon]
        ys = [v[1] for v in polygon]
        return sum(xs) / len(xs), sum(ys) / len(ys)
    cx = cy = 0.0
    n = len(polygon)
    for i in range(n):
        x1, y1 = polygon[i]
        x2, y2 = polygon[(i + 1) % n]
        cross = x1 * y2 - x2 * y1
        cx += (x1 + x2) * cross
        cy += (y1 + y2) * cross
    return cx / (6.0 * area), cy / (6.0 * area)


def convex_polygons_intersect(
    a: Sequence[Vertex], b: Sequence[Vertex], tol: float = 1e-9
) -> bool:
    """Closed intersection test for two convex polygons (SAT).

    Two convex shapes are disjoint iff some edge normal of either is a
    separating axis.  ``tol`` treats near-touching shapes as
    intersecting, which matches the closed-cell semantics of the
    common influence join (cells sharing only a boundary still join).
    """
    if not a or not b:
        return False
    return not (_separating_axis(a, b, tol) or _separating_axis(b, a, tol))


def _separating_axis(a: Sequence[Vertex], b: Sequence[Vertex], tol: float) -> bool:
    """True when some edge of ``a`` separates ``a`` from ``b``."""
    n = len(a)
    for i in range(n):
        x1, y1 = a[i]
        x2, y2 = a[(i + 1) % n]
        # Outward normal of a CCW edge.
        ex, ey = x2 - x1, y2 - y1
        norm = math.hypot(ex, ey)
        if norm == 0.0:
            continue
        nx, ny = ey / norm, -ex / norm
        max_a = max((vx - x1) * nx + (vy - y1) * ny for vx, vy in a)
        min_b = min((vx - x1) * nx + (vy - y1) * ny for vx, vy in b)
        if min_b > max_a + tol:
            return True
    return False


def clip_convex_pair(
    a: Sequence[Vertex], b: Sequence[Vertex]
) -> list[Vertex]:
    """The intersection polygon of two convex polygons.

    Clips ``a`` successively by every edge half-plane of ``b``.  Used
    as the independent oracle for :func:`convex_polygons_intersect` in
    tests, and to materialise overlap regions for reporting.
    """
    out = list(a)
    n = len(b)
    for i in range(n):
        if not out:
            return []
        x1, y1 = b[i]
        x2, y2 = b[(i + 1) % n]
        ex, ey = x2 - x1, y2 - y1
        # Outward normal of the CCW edge: keep (x - v1) . n <= 0.
        out = clip_halfplane(out, x1, y1, ey, -ex)
    return out
