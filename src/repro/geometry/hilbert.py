"""Hilbert space-filling curve.

Maps 2D cells of a ``2^order x 2^order`` grid to positions along the
Hilbert curve and back.  The curve's locality (cells close along the
curve are close in the plane) makes it a good one-dimensional sort key
for packing spatially nearby points into the same R-tree leaf — the
classic Hilbert-packed bulk-loading alternative to STR exercised by the
build ablation bench.

The transform is the standard iterative quadrant-rotation algorithm; no
recursion and no floating point, so encode/decode are exact inverses for
every cell.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.geometry.point import Point
from repro.geometry.rect import Rect

#: Default curve order: a 2^16 x 2^16 grid resolves points to ~0.15
#: domain units in the paper's [0, 10000] space, far below typical
#: point spacing.
DEFAULT_ORDER = 16


def _rotate(side: int, x: int, y: int, rx: int, ry: int) -> tuple[int, int]:
    """Rotate/flip a quadrant so the sub-curve is in canonical position."""
    if ry == 0:
        if rx == 1:
            x = side - 1 - x
            y = side - 1 - y
        x, y = y, x
    return x, y


def xy_to_d(order: int, x: int, y: int) -> int:
    """Distance along the Hilbert curve of cell ``(x, y)``.

    Parameters
    ----------
    order:
        The curve order; the grid has ``2**order`` cells per side.
    x, y:
        Integer cell coordinates in ``[0, 2**order)``.
    """
    side = 1 << order
    if not (0 <= x < side and 0 <= y < side):
        raise ValueError(f"cell ({x}, {y}) outside a {side}x{side} grid")
    d = 0
    s = side >> 1
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        d += s * s * ((3 * rx) ^ ry)
        x, y = _rotate(s, x, y, rx, ry)
        s >>= 1
    return d


def xy_to_d_batch(order: int, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Vectorized :func:`xy_to_d` over integer cell-coordinate arrays.

    Runs the same quadrant-rotation recurrence as the scalar transform,
    but over whole numpy arrays — ``order`` passes over the input
    instead of a Python loop per cell — so spatially sorting a 100k+
    pointset by Hilbert key (the shard layer of :mod:`repro.parallel`)
    costs milliseconds rather than seconds.  Exactly equal to the scalar
    function on every cell; the equivalence is pinned by the tests.
    """
    x = np.asarray(x, dtype=np.int64).copy()
    y = np.asarray(y, dtype=np.int64).copy()
    side = np.int64(1) << order
    if x.size and (
        x.min() < 0 or y.min() < 0 or x.max() >= side or y.max() >= side
    ):
        raise ValueError(f"cell coordinates outside a {side}x{side} grid")
    d = np.zeros(x.shape, dtype=np.int64)
    s = side >> 1
    while s > 0:
        rx = ((x & s) > 0).astype(np.int64)
        ry = ((y & s) > 0).astype(np.int64)
        d += s * s * ((3 * rx) ^ ry)
        # The vectorized body of _rotate: swap applies where ry == 0,
        # the flip additionally where rx == 1.
        flip = (ry == 0) & (rx == 1)
        x = np.where(flip, s - 1 - x, x)
        y = np.where(flip, s - 1 - y, y)
        swap = ry == 0
        x, y = np.where(swap, y, x), np.where(swap, x, y)
        s >>= 1
    return d


def d_to_xy(order: int, d: int) -> tuple[int, int]:
    """Cell coordinates of curve position ``d`` (inverse of
    :func:`xy_to_d`)."""
    side = 1 << order
    if not 0 <= d < side * side:
        raise ValueError(f"distance {d} outside curve of order {order}")
    x = y = 0
    t = d
    s = 1
    while s < side:
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        x, y = _rotate(s, x, y, rx, ry)
        x += s * rx
        y += s * ry
        t //= 4
        s <<= 1
    return x, y


class HilbertMapper:
    """Maps float coordinates in a bounding rectangle to Hilbert keys.

    Parameters
    ----------
    bounds:
        The data domain.  Degenerate extents (all points on a vertical
        or horizontal line, or a single location) are handled by
        collapsing that axis to cell 0.
    order:
        Curve order (grid resolution).
    """

    __slots__ = ("bounds", "order", "_side", "_sx", "_sy")

    def __init__(self, bounds: Rect, order: int = DEFAULT_ORDER):
        if order < 1 or order > 31:
            raise ValueError(f"curve order {order} out of supported range 1..31")
        self.bounds = bounds
        self.order = order
        self._side = 1 << order
        width = bounds.xmax - bounds.xmin
        height = bounds.ymax - bounds.ymin
        # A sub-ulp extent would give an infinite scale (and 0 * inf =
        # nan for points on the boundary); collapse such an axis like a
        # zero-width one.
        sx = (self._side - 1) / width if width > 0 else 0.0
        sy = (self._side - 1) / height if height > 0 else 0.0
        self._sx = sx if math.isfinite(sx) else 0.0
        self._sy = sy if math.isfinite(sy) else 0.0

    @classmethod
    def for_points(
        cls, points: Sequence[Point], order: int = DEFAULT_ORDER
    ) -> "HilbertMapper":
        """Mapper over the tight bounding box of ``points``."""
        if not points:
            raise ValueError("cannot build a HilbertMapper over no points")
        return cls(Rect.from_points(points), order)

    def cell_of(self, x: float, y: float) -> tuple[int, int]:
        """Grid cell of a coordinate pair (clamped to the domain)."""
        cx = int((x - self.bounds.xmin) * self._sx)
        cy = int((y - self.bounds.ymin) * self._sy)
        cx = min(max(cx, 0), self._side - 1)
        cy = min(max(cy, 0), self._side - 1)
        return cx, cy

    def key(self, x: float, y: float) -> int:
        """Hilbert sort key of a coordinate pair."""
        cx, cy = self.cell_of(x, y)
        return xy_to_d(self.order, cx, cy)

    def key_of_point(self, point: Point) -> int:
        """Hilbert sort key of a :class:`Point`."""
        return self.key(point.x, point.y)

    def keys_batch(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Hilbert sort keys of coordinate arrays (vectorized
        :meth:`key`; same clamped-cell convention, pinned equal by the
        tests)."""
        cx = ((np.asarray(x, np.float64) - self.bounds.xmin) * self._sx).astype(
            np.int64
        )
        cy = ((np.asarray(y, np.float64) - self.bounds.ymin) * self._sy).astype(
            np.int64
        )
        np.clip(cx, 0, self._side - 1, out=cx)
        np.clip(cy, 0, self._side - 1, out=cy)
        return xy_to_d_batch(self.order, cx, cy)

    def key_of_rect(self, rect: Rect) -> int:
        """Hilbert sort key of a rectangle (its centre's key)."""
        cx, cy = rect.center()
        return self.key(cx, cy)

    def __repr__(self) -> str:
        return f"HilbertMapper(order={self.order}, bounds={self.bounds!r})"
