"""I/O accounting and the paper's cost model.

The paper measures *I/O time* by charging a fixed 10 ms per page fault
(a typical disk seek) and *CPU time* as everything else.  The same model
is used here so that the benchmark series are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Milliseconds charged per page fault (paper, Section 5: "charging 10ms
#: per page fault (a typical value)").
DEFAULT_MS_PER_FAULT = 10.0

#: Milliseconds charged per logical R-tree node access when modelling
#: CPU time.  The paper states that its CPU time "roughly models the
#: total number (including repeated) of R-tree node accesses"; charging
#: a fixed per-access cost reproduces that model independently of the
#: host language's constant factors.
DEFAULT_MS_PER_NODE_ACCESS = 0.05


@dataclass
class IOStats:
    """Counters for one buffer/disk stack.

    Attributes
    ----------
    buffer_hits:
        Page requests satisfied from the LRU buffer.
    page_faults:
        Page requests that had to go to the (simulated) disk.
    physical_writes:
        Pages written back to disk (evictions of dirty pages + direct
        writes).
    """

    buffer_hits: int = 0
    page_faults: int = 0
    physical_writes: int = 0

    def reset(self) -> None:
        """Zero all counters (called before each measured experiment)."""
        self.buffer_hits = 0
        self.page_faults = 0
        self.physical_writes = 0

    @property
    def requests(self) -> int:
        """Total page requests observed."""
        return self.buffer_hits + self.page_faults

    def hit_ratio(self) -> float:
        """Fraction of requests served by the buffer (0 when idle)."""
        total = self.requests
        return self.buffer_hits / total if total else 0.0

    def snapshot(self) -> "IOStats":
        """Copy of the current counters."""
        return IOStats(self.buffer_hits, self.page_faults, self.physical_writes)

    def delta(self, earlier: "IOStats") -> "IOStats":
        """Counters accumulated since ``earlier`` (a prior snapshot)."""
        return IOStats(
            self.buffer_hits - earlier.buffer_hits,
            self.page_faults - earlier.page_faults,
            self.physical_writes - earlier.physical_writes,
        )


@dataclass
class CostModel:
    """Translates execution counters into simulated time.

    Parameters
    ----------
    ms_per_fault:
        Milliseconds charged per page fault (the paper's I/O model).
    ms_per_node_access:
        Milliseconds charged per logical node access (the paper's CPU
        model).
    """

    ms_per_fault: float = field(default=DEFAULT_MS_PER_FAULT)
    ms_per_node_access: float = field(default=DEFAULT_MS_PER_NODE_ACCESS)

    def io_seconds(self, stats: IOStats) -> float:
        """Simulated I/O time for the given counters, in seconds."""
        return stats.page_faults * self.ms_per_fault / 1000.0

    def cpu_seconds(self, node_accesses: int) -> float:
        """Modelled CPU time for the given logical node accesses."""
        return node_accesses * self.ms_per_node_access / 1000.0
