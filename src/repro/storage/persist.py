"""Durable single-file persistence for R-trees.

:mod:`repro.storage.disk` gives a *file-backed* page store, but its
files are anonymous temporaries: no metadata survives, and closing
unlinks.  This module adds the real persistence story: an R-tree is
saved to (and reloaded from) a single file with a fixed-size superblock
carrying the page geometry and the tree header (root page, height,
point count), followed by the raw pages.

File layout::

    superblock : magic "RCJTREE1" (8s), version (I), page_size (I),
                 num_pages, root_pid, height, count (4 x q), padded to
                 SUPERBLOCK_SIZE
    pages      : num_pages x page_size raw page images

A reloaded tree is fully live: reads go through the normal buffer path
and further inserts/deletes extend the same file.  Call :func:`sync`
(or use the context manager) after mutating to refresh the superblock.
"""

from __future__ import annotations

import os
import struct
from typing import TYPE_CHECKING

from repro.storage.buffer import BufferManager
from repro.storage.disk import _allocate_disk_id

if TYPE_CHECKING:  # avoid a circular import; RTree is needed lazily
    from repro.rtree.tree import RTree

MAGIC = b"RCJTREE1"
VERSION = 1

_SUPERBLOCK = struct.Struct("<8sIIqqqq")
SUPERBLOCK_SIZE = 64


class PersistenceError(ValueError):
    """The file is not a valid saved tree (bad magic, version, size)."""


class FileStore:
    """A page store living at a fixed offset inside a real file.

    Implements the same duck-typed interface as
    :class:`repro.storage.disk.DiskManager` (``page_size``,
    ``disk_id``, ``allocate``, ``read_page``, ``write_page``,
    ``num_pages``, physical counters), so trees and buffers use it
    interchangeably.  Unlike ``DiskManager``, closing does *not* remove
    the file — that is the point.
    """

    def __init__(self, path: str, page_size: int, offset: int, num_pages: int):
        self.page_size = page_size
        self.disk_id = _allocate_disk_id()
        self._offset = offset
        self._num_pages = num_pages
        self._file = open(path, "r+b")
        self.physical_reads = 0
        self.physical_writes = 0

    def allocate(self) -> int:
        pid = self._num_pages
        self._num_pages += 1
        self._file.seek(self._offset + pid * self.page_size)
        self._file.write(b"\x00" * self.page_size)
        return pid

    def write_page(self, pid: int, data: bytes) -> None:
        if len(data) > self.page_size:
            raise ValueError(
                f"page overflow: {len(data)} bytes > page size {self.page_size}"
            )
        if not 0 <= pid < self._num_pages:
            raise IndexError(f"page id {pid} out of range")
        self.physical_writes += 1
        self._file.seek(self._offset + pid * self.page_size)
        self._file.write(data.ljust(self.page_size, b"\x00"))

    def read_page(self, pid: int) -> bytes:
        if not 0 <= pid < self._num_pages:
            raise IndexError(f"page id {pid} out of range")
        self.physical_reads += 1
        self._file.seek(self._offset + pid * self.page_size)
        return self._file.read(self.page_size)

    @property
    def num_pages(self) -> int:
        return self._num_pages

    def flush(self) -> None:
        """Push buffered writes to the OS."""
        self._file.flush()

    def close(self) -> None:
        """Close the backing file (keeping it on disk)."""
        if not self._file.closed:
            self._file.close()


def save_tree(tree: "RTree", path: str) -> None:
    """Write ``tree`` (header and all pages) to ``path``.

    Overwrites any existing file.  The source tree may live on any
    page store; pages are copied verbatim.
    """
    header = _SUPERBLOCK.pack(
        MAGIC,
        VERSION,
        tree.disk.page_size,
        tree.disk.num_pages,
        tree.root_pid if tree.root_pid is not None else -1,
        tree.height,
        tree.count,
    )
    with open(path, "wb") as f:
        f.write(header.ljust(SUPERBLOCK_SIZE, b"\x00"))
        for pid in range(tree.disk.num_pages):
            f.write(tree.disk.read_page(pid).ljust(tree.disk.page_size, b"\x00"))


def load_tree(
    path: str,
    buffer: BufferManager | None = None,
    name: str = "T",
) -> "RTree":
    """Reopen a tree saved with :func:`save_tree`.

    The returned tree reads and writes the same file; subsequent
    mutations extend it in place (call :func:`sync` afterwards to
    refresh the superblock).

    Raises
    ------
    PersistenceError
        When the file is missing a valid superblock or is truncated.
    """
    size = os.path.getsize(path)
    if size < SUPERBLOCK_SIZE:
        raise PersistenceError(f"{path}: too small for a saved tree")
    with open(path, "rb") as f:
        raw = f.read(_SUPERBLOCK.size)
    magic, version, page_size, num_pages, root_pid, height, count = (
        _SUPERBLOCK.unpack(raw)
    )
    if magic != MAGIC:
        raise PersistenceError(f"{path}: bad magic {magic!r}")
    if version != VERSION:
        raise PersistenceError(f"{path}: unsupported version {version}")
    expected = SUPERBLOCK_SIZE + num_pages * page_size
    if size < expected:
        raise PersistenceError(
            f"{path}: truncated ({size} bytes, expected {expected})"
        )
    from repro.rtree.tree import RTree

    store = FileStore(path, page_size, SUPERBLOCK_SIZE, num_pages)
    tree = RTree(disk=store, buffer=buffer, page_size=page_size, name=name)
    tree.root_pid = root_pid if root_pid >= 0 else None
    tree.height = height
    tree.count = count
    return tree


def sync(tree: "RTree", path: str) -> None:
    """Rewrite the superblock of an open persistent tree.

    Use after mutating a tree returned by :func:`load_tree`; page
    content is already in the file, only the header lags.
    """
    disk = tree.disk
    if not isinstance(disk, FileStore):
        raise PersistenceError("sync requires a tree loaded with load_tree")
    header = _SUPERBLOCK.pack(
        MAGIC,
        VERSION,
        disk.page_size,
        disk.num_pages,
        tree.root_pid if tree.root_pid is not None else -1,
        tree.height,
        tree.count,
    )
    disk.flush()
    with open(path, "r+b") as f:
        f.write(header.ljust(SUPERBLOCK_SIZE, b"\x00"))
