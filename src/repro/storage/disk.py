"""Page-granular disk manager.

A :class:`DiskManager` is a flat array of fixed-size pages.  By default
pages live in memory (fast, reproducible benchmarks); passing a path
stores them in a real file so that the index genuinely round-trips
through serialisation on disk.  Either way every node access goes
through byte (de)serialisation, so the I/O accounting is honest.
"""

from __future__ import annotations

import os
from typing import Iterator

#: The paper indexes each dataset "by an R*-tree with disk page size of
#: 1K bytes".
DEFAULT_PAGE_SIZE = 1024

_next_disk_id = 0


def _allocate_disk_id() -> int:
    global _next_disk_id
    _next_disk_id += 1
    return _next_disk_id


class DiskManager:
    """A store of fixed-size pages addressed by integer page id.

    Parameters
    ----------
    page_size:
        Page capacity in bytes; all pages share it.
    path:
        Optional file path.  When given, pages are persisted to the file
        at ``page_id * page_size`` offsets; otherwise an in-memory list
        backs the store.
    """

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE, path: str | None = None):
        if page_size < 64:
            raise ValueError(f"page size {page_size} is too small to hold a node")
        self.page_size = page_size
        self.disk_id = _allocate_disk_id()
        self._path = path
        self._pages: list[bytes] = []
        self._file = open(path, "w+b") if path is not None else None
        self.physical_reads = 0
        self.physical_writes = 0

    # ------------------------------------------------------------------
    # page operations
    # ------------------------------------------------------------------
    def allocate(self) -> int:
        """Reserve a new zero-filled page and return its id."""
        pid = len(self._pages)
        self._pages.append(b"")
        if self._file is not None:
            self._file.seek(pid * self.page_size)
            self._file.write(b"\x00" * self.page_size)
        return pid

    def write_page(self, pid: int, data: bytes) -> None:
        """Store ``data`` (at most one page) at page ``pid``."""
        if len(data) > self.page_size:
            raise ValueError(
                f"page overflow: {len(data)} bytes > page size {self.page_size}"
            )
        if not 0 <= pid < len(self._pages):
            raise IndexError(f"page id {pid} out of range")
        self.physical_writes += 1
        if self._file is not None:
            padded = data.ljust(self.page_size, b"\x00")
            self._file.seek(pid * self.page_size)
            self._file.write(padded)
        else:
            self._pages[pid] = bytes(data)

    def read_page(self, pid: int) -> bytes:
        """Fetch the raw bytes of page ``pid``."""
        if not 0 <= pid < len(self._pages):
            raise IndexError(f"page id {pid} out of range")
        self.physical_reads += 1
        if self._file is not None:
            self._file.seek(pid * self.page_size)
            return self._file.read(self.page_size)
        return self._pages[pid]

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def num_pages(self) -> int:
        """Number of allocated pages (the tree size in pages)."""
        return len(self._pages)

    def page_ids(self) -> Iterator[int]:
        """Iterate over all allocated page ids."""
        return iter(range(len(self._pages)))

    def close(self) -> None:
        """Release the backing file, if any."""
        if self._file is not None:
            self._file.close()
            self._file = None
            if self._path and os.path.exists(self._path):
                os.unlink(self._path)

    def __enter__(self) -> "DiskManager":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        backing = self._path or "memory"
        return (
            f"DiskManager(id={self.disk_id}, pages={self.num_pages}, "
            f"page_size={self.page_size}, backing={backing})"
        )
