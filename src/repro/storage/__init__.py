"""Disk-page and buffer-management substrate.

The paper evaluates its algorithms on disk-resident R-trees with 1 KiB
pages and an LRU buffer sized as a percentage of the total tree size,
charging 10 ms per page fault.  This package reproduces that substrate:
a page-granular :class:`~repro.storage.disk.DiskManager`, an LRU
:class:`~repro.storage.buffer.BufferManager` shared between trees, and
the cost-model accounting in :mod:`repro.storage.stats`.  On top of
that, :mod:`repro.storage.persist` gives trees a durable single-file
format (superblock + raw pages) with save/load/sync.
"""

from repro.storage.buffer import BufferManager
from repro.storage.disk import DEFAULT_PAGE_SIZE, DiskManager
from repro.storage.persist import FileStore, load_tree, save_tree, sync
from repro.storage.policies import ClockBufferManager, FIFOBufferManager
from repro.storage.stats import CostModel, IOStats

__all__ = [
    "BufferManager",
    "CostModel",
    "DEFAULT_PAGE_SIZE",
    "DiskManager",
    "FileStore",
    "ClockBufferManager",
    "FIFOBufferManager",
    "load_tree",
    "save_tree",
    "sync",
    "IOStats",
]
