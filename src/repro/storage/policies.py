"""Alternative buffer replacement policies: FIFO and CLOCK.

The paper's buffer is LRU (:class:`repro.storage.buffer.BufferManager`).
Real database engines often run cheaper approximations, and the choice
interacts with the join's access pattern — depth-first INJ re-touches
recent paths (LRU-friendly) while the bulk algorithms sweep (where FIFO
loses little).  These drop-in subclasses let the buffer-policy ablation
(`bench_ablation_buffer_policy`) put numbers on that, on exactly the
paper's workloads.

Both reuse the LRU bookkeeping of the base class and override only the
replacement decision, so hit/fault accounting stays identical.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.storage.buffer import BufferManager
from repro.storage.disk import DiskManager


class FIFOBufferManager(BufferManager):
    """First-in-first-out replacement: hits do not refresh recency."""

    def get_page(self, disk: DiskManager, pid: int) -> bytes:
        key = (disk.disk_id, pid)
        frame = self._frames.get(key)
        if frame is not None:
            self.stats.buffer_hits += 1
            # FIFO: no move_to_end — insertion order decides eviction.
            return frame
        self.stats.page_faults += 1
        data = disk.read_page(pid)
        if self.capacity > 0:
            self._frames[key] = data
            while len(self._frames) > self.capacity:
                self._frames.popitem(last=False)
        return data


class ClockBufferManager(BufferManager):
    """CLOCK (second chance): a one-bit LRU approximation.

    Each frame carries a reference bit, set on every hit.  Eviction
    sweeps the frames in insertion order, clearing set bits and
    evicting the first frame found clear — so a page survives one sweep
    after its last touch, approximating LRU at O(1) amortised cost.
    """

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._ref_bits: OrderedDict[tuple[int, int], bool] = OrderedDict()

    def get_page(self, disk: DiskManager, pid: int) -> bytes:
        key = (disk.disk_id, pid)
        frame = self._frames.get(key)
        if frame is not None:
            self.stats.buffer_hits += 1
            self._ref_bits[key] = True
            return frame
        self.stats.page_faults += 1
        data = disk.read_page(pid)
        if self.capacity > 0:
            while len(self._frames) >= self.capacity:
                self._evict_one()
            self._frames[key] = data
            self._ref_bits[key] = False
        return data

    def _evict_one(self) -> None:
        """Advance the clock hand until a clear reference bit is found."""
        while True:
            key, referenced = next(iter(self._ref_bits.items()))
            if referenced:
                # Second chance: clear the bit, move behind the hand.
                self._ref_bits[key] = False
                self._ref_bits.move_to_end(key)
                self._frames.move_to_end(key)
            else:
                del self._ref_bits[key]
                del self._frames[key]
                return

    def invalidate(self, disk: DiskManager, pid: int) -> None:
        key = (disk.disk_id, pid)
        self._frames.pop(key, None)
        self._ref_bits.pop(key, None)

    def clear(self) -> None:
        super().clear()
        self._ref_bits.clear()

    def resize(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"negative buffer capacity {capacity}")
        self.capacity = capacity
        while len(self._frames) > capacity:
            self._evict_one()


#: Policy name -> constructor, for the ablation bench and tests.
POLICIES = {
    "LRU": BufferManager,
    "FIFO": FIFOBufferManager,
    "CLOCK": ClockBufferManager,
}
