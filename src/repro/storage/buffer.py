"""LRU buffer manager shared between R-trees.

The paper uses a single memory buffer sized as a fraction of the *sum*
of both tree sizes ("We set the default size of the memory buffer to 1%
of the sum of both tree sizes").  The buffer is therefore keyed by
``(disk_id, page_id)`` so one instance can front the trees of both join
inputs, letting algorithms with good access locality (depth-first INJ,
bulk BIJ/OBJ) profit exactly as in the paper.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.storage.disk import DiskManager
from repro.storage.stats import IOStats


class BufferManager:
    """A page cache with least-recently-used replacement.

    Parameters
    ----------
    capacity:
        Number of pages the buffer can hold.  A capacity of zero
        disables caching: every request is a fault (useful for worst-case
        experiments).
    """

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError(f"negative buffer capacity {capacity}")
        self.capacity = capacity
        self._frames: OrderedDict[tuple[int, int], bytes] = OrderedDict()
        self.stats = IOStats()

    # ------------------------------------------------------------------
    # page access
    # ------------------------------------------------------------------
    def get_page(self, disk: DiskManager, pid: int) -> bytes:
        """Fetch a page through the cache, counting hits and faults."""
        key = (disk.disk_id, pid)
        frame = self._frames.get(key)
        if frame is not None:
            self.stats.buffer_hits += 1
            self._frames.move_to_end(key)
            return frame
        self.stats.page_faults += 1
        data = disk.read_page(pid)
        if self.capacity > 0:
            self._frames[key] = data
            self._frames.move_to_end(key)
            while len(self._frames) > self.capacity:
                self._frames.popitem(last=False)
        return data

    def invalidate(self, disk: DiskManager, pid: int) -> None:
        """Drop a cached page (called after an in-place node update)."""
        self._frames.pop((disk.disk_id, pid), None)

    def clear(self) -> None:
        """Empty the cache without touching the counters."""
        self._frames.clear()

    def resize(self, capacity: int) -> None:
        """Change the capacity, evicting LRU pages as needed."""
        if capacity < 0:
            raise ValueError(f"negative buffer capacity {capacity}")
        self.capacity = capacity
        while len(self._frames) > capacity:
            self._frames.popitem(last=False)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def num_cached(self) -> int:
        """Pages currently resident."""
        return len(self._frames)

    def __repr__(self) -> str:
        return (
            f"BufferManager(capacity={self.capacity}, cached={self.num_cached}, "
            f"hits={self.stats.buffer_hits}, faults={self.stats.page_faults})"
        )


def buffer_for_trees(trees, fraction: float) -> BufferManager:
    """Build a buffer sized as ``fraction`` of the total size of ``trees``.

    Mirrors the paper's configuration where the buffer is a percentage
    (default 1 %) of the sum of both R-tree sizes.  At least one page is
    always granted so that tiny test trees still exercise the cache.
    """
    total_pages = sum(t.disk.num_pages for t in trees)
    capacity = max(1, int(total_pages * fraction))
    return BufferManager(capacity)
