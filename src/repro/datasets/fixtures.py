"""Seeded dataset families shared by the test suite and the benchmarks.

One home for the random-dataset construction that used to be repeated
across ``tests/conftest.py`` and the benchmark harness: deterministic,
seed-addressed pointset pairs covering both well-behaved and degenerate
geometry.  The equivalence suite runs every join engine over
:func:`equivalence_families`; benchmarks draw sized workloads from
:func:`uniform_pair` / :func:`clustered_pair`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.datasets.synthetic import DOMAIN, gaussian_clusters, uniform
from repro.geometry.point import Point


def make_points(
    coords: Iterable[Sequence[float]], start_oid: int = 0
) -> list[Point]:
    """Materialise coordinate pairs as points with sequential oids."""
    return [Point(x, y, start_oid + i) for i, (x, y) in enumerate(coords)]


def uniform_pair(
    n_p: int, n_q: int, seed: int = 0
) -> tuple[list[Point], list[Point]]:
    """Two disjoint-oid uniform datasets over the paper's domain."""
    return (
        uniform(n_p, seed=seed),
        uniform(n_q, seed=seed + 1, start_oid=n_p),
    )


def clustered_pair(
    n_p: int, n_q: int, seed: int = 0, w: int = 4
) -> tuple[list[Point], list[Point]]:
    """Two Gaussian-cluster datasets with independent cluster centres."""
    return (
        gaussian_clusters(n_p, w=w, seed=seed),
        gaussian_clusters(n_q, w=w, seed=seed + 1, start_oid=n_p),
    )


def collinear_pair(
    n_p: int, n_q: int, seed: int = 0
) -> tuple[list[Point], list[Point]]:
    """Interleaved points on one horizontal line (degenerate geometry).

    Collinear inputs break Delaunay-based shortcuts and stress the
    strict boundary conventions: every point lies on the boundary of
    its neighbours' rings.
    """
    y = DOMAIN[1] / 2.0
    step = DOMAIN[1] / (n_p + n_q + 1.0)
    points_p = [Point((2 * i + 1) * step, y, i) for i in range(n_p)]
    points_q = [
        Point((2 * i + 2) * step + seed % 7, y, n_p + i) for i in range(n_q)
    ]
    return points_p, points_q


def duplicate_pair(
    n_p: int, n_q: int, seed: int = 0, lattice: int = 6
) -> tuple[list[Point], list[Point]]:
    """Small-lattice datasets riddled with duplicate and cocircular
    locations, within and across the two sides."""
    import random

    rng = random.Random(seed)
    points_p = [
        Point(rng.randint(0, lattice), rng.randint(0, lattice), i)
        for i in range(n_p)
    ]
    points_q = [
        Point(rng.randint(0, lattice), rng.randint(0, lattice), n_p + i)
        for i in range(n_q)
    ]
    return points_p, points_q


def single_point_pair(seed: int = 0) -> tuple[list[Point], list[Point]]:
    """A one-point dataset against a small uniform one."""
    points_q = uniform(12, seed=seed + 1, start_oid=1)
    return [uniform(1, seed=seed)[0]], points_q


def equivalence_families(
    seed: int = 0, n_p: int = 60, n_q: int = 75
) -> dict[str, tuple[list[Point], list[Point]]]:
    """Named dataset families every RCJ engine must agree on.

    Keys: ``uniform``, ``clustered``, ``collinear``, ``duplicates``,
    ``single_point``.
    """
    return {
        "uniform": uniform_pair(n_p, n_q, seed=seed),
        "clustered": clustered_pair(n_p, n_q, seed=seed + 10),
        "collinear": collinear_pair(max(3, n_p // 3), max(3, n_q // 3), seed),
        "duplicates": duplicate_pair(
            max(4, n_p // 2), max(4, n_q // 2), seed=seed + 20
        ),
        "single_point": single_point_pair(seed=seed + 30),
    }
