"""Plain-text pointset serialisation.

One point per line: ``oid x y`` separated by whitespace.  The format is
deliberately trivial so external datasets (e.g. the original USGS
files, if available) can be dropped in.
"""

from __future__ import annotations

import os
from typing import Sequence

from repro.geometry.point import Point


def save_points(points: Sequence[Point], path: str) -> None:
    """Write a pointset to ``path`` (one ``oid x y`` line per point)."""
    with open(path, "w", encoding="ascii") as f:
        for p in points:
            f.write(f"{p.oid} {p.x!r} {p.y!r}\n")


def load_points(path: str) -> list[Point]:
    """Read a pointset written by :func:`save_points`.

    Blank lines and lines starting with ``#`` are ignored.
    """
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    points: list[Point] = []
    with open(path, "r", encoding="ascii") as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 3:
                raise ValueError(f"{path}:{lineno}: expected 'oid x y', got {line!r}")
            oid, x, y = parts
            points.append(Point(float(x), float(y), int(oid)))
    return points
