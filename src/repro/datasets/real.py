"""Synthetic stand-ins for the paper's real USGS datasets.

The paper evaluates on three pointsets from the U.S. Board on Geographic
Names: PP (Populated Places, 177,983), SC (Schools, 172,188) and LO
(Locales, 128,476).  Those files are not redistributable in this
offline reproduction, so seeded generators emulate their key structural
properties (DESIGN.md §4):

- *skewed, multi-scale clustering* — settlement locations follow many
  town/city clusters of varying size over a uniform rural background;
- *cross-dataset correlation* — schools and locales concentrate near
  populated places, so all datasets span the same geographic region
  with correlated local density (the paper requires that "data points
  of both datasets P and Q should span over the same geographical
  region");
- *matched cardinality ratios* — generated sizes keep the paper's
  PP : SC : LO proportions, scaled by ``scale`` (default 16) so the
  full experiment suite runs in minutes on a laptop; ``scale=1``
  restores the original cardinalities.
"""

from __future__ import annotations

import random

from repro.datasets.synthetic import DOMAIN
from repro.geometry.point import Point

#: Cardinalities of the paper's Table 2.
REAL_CARDINALITIES = {"PP": 177_983, "SC": 172_188, "LO": 128_476}

#: Default down-scaling factor applied to the paper's cardinalities.
DEFAULT_SCALE = 64

#: Number of town clusters in the PP stand-in (before scaling effects).
_PP_TOWNS = 300

#: Fraction of points drawn from the uniform rural background.
_BACKGROUND_FRACTION = 0.25


def _town_centers(rng: random.Random, n_towns: int) -> list[tuple[float, float, float]]:
    """Town centres with Zipf-like sizes: (x, y, weight)."""
    lo, hi = DOMAIN
    centers = []
    for rank in range(1, n_towns + 1):
        weight = 1.0 / rank**0.8  # heavy-tailed town sizes
        centers.append((rng.uniform(lo, hi), rng.uniform(lo, hi), weight))
    return centers


def _sample_clustered(
    rng: random.Random,
    n: int,
    centers: list[tuple[float, float, float]],
    spread: float,
    start_oid: int,
) -> list[Point]:
    lo, hi = DOMAIN
    weights = [c[2] for c in centers]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)

    def pick_center() -> tuple[float, float]:
        u = rng.random()
        # Linear scan is fine: len(centers) is a few hundred.
        for idx, threshold in enumerate(cumulative):
            if u <= threshold:
                return centers[idx][0], centers[idx][1]
        return centers[-1][0], centers[-1][1]

    points: list[Point] = []
    n_background = int(n * _BACKGROUND_FRACTION)
    for i in range(n):
        if i < n_background:
            x, y = rng.uniform(lo, hi), rng.uniform(lo, hi)
        else:
            cx, cy = pick_center()
            x = min(max(rng.gauss(cx, spread), lo), hi)
            y = min(max(rng.gauss(cy, spread), lo), hi)
        points.append(Point(x, y, start_oid + i))
    return points


def populated_places(
    scale: int = DEFAULT_SCALE, seed: int = 7, start_oid: int = 0
) -> list[Point]:
    """Stand-in for the PP dataset (populated places)."""
    n = max(1, REAL_CARDINALITIES["PP"] // scale)
    rng = random.Random(seed)
    centers = _town_centers(rng, _PP_TOWNS)
    return _sample_clustered(rng, n, centers, spread=220.0, start_oid=start_oid)


def schools(
    scale: int = DEFAULT_SCALE, seed: int = 7, start_oid: int = 0
) -> list[Point]:
    """Stand-in for the SC dataset (schools): correlated with PP.

    Schools are sampled around the same town centres (same seed stream
    for the centres) with a slightly wider spread — schools serve
    residential sprawl around each settlement.
    """
    n = max(1, REAL_CARDINALITIES["SC"] // scale)
    rng = random.Random(seed)  # same centre layout as PP
    centers = _town_centers(rng, _PP_TOWNS)
    rng_points = random.Random(seed + 1)
    return _sample_clustered(
        rng_points, n, centers, spread=300.0, start_oid=start_oid
    )


def locales(
    scale: int = DEFAULT_SCALE, seed: int = 7, start_oid: int = 0
) -> list[Point]:
    """Stand-in for the LO dataset (locales): correlated, sparser and
    more spread out than PP (locales include rural named places)."""
    n = max(1, REAL_CARDINALITIES["LO"] // scale)
    rng = random.Random(seed)
    centers = _town_centers(rng, _PP_TOWNS)
    rng_points = random.Random(seed + 2)
    return _sample_clustered(
        rng_points, n, centers, spread=450.0, start_oid=start_oid
    )


#: The paper's join combinations (Table 3): name -> (Q dataset, P dataset).
_COMBINATIONS = {
    "SP": ("SC", "PP"),
    "SP'": ("PP", "SC"),
    "LP": ("LO", "PP"),
    "LP'": ("PP", "LO"),
}

_GENERATORS = {
    "PP": populated_places,
    "SC": schools,
    "LO": locales,
}


def join_combination(
    name: str, scale: int = DEFAULT_SCALE, seed: int = 7
) -> tuple[list[Point], list[Point]]:
    """Return ``(Q, P)`` for a paper join combination (Table 3).

    ``name`` is one of ``SP``, ``SP'``, ``LP``, ``LP'``; the first
    dataset plays the role of ``Q`` (outer, drives the loop) and the
    second of ``P`` (inner, probed), matching the paper's convention.
    """
    try:
        q_name, p_name = _COMBINATIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown join combination {name!r}; expected one of "
            f"{sorted(_COMBINATIONS)}"
        ) from None
    q_points = _GENERATORS[q_name](scale=scale, seed=seed)
    p_points = _GENERATORS[p_name](scale=scale, seed=seed, start_oid=len(q_points))
    return q_points, p_points
