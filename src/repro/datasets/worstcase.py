"""Adversarial pointset families for the result-size study.

The paper's future work asks for "the theoretical upper bound of RCJ
result size ... for the 'worst' possible data distributions".  These
generators materialise the distributions that stress the bound and the
algorithms: degenerate (collinear, cocircular, lattice) configurations
maximise ties in the strict-containment predicate, and widely separated
clusters produce the giant empty rings that defeat locality heuristics.

All families deal out alternating set labels through the ``parity``
helpers so a single generator serves both join sides.
"""

from __future__ import annotations

import math
import random

from repro.geometry.point import Point

#: Shared coordinate domain (the paper's normalised space).
_LO, _HI = 0.0, 10000.0


def _split(points: list[Point]) -> tuple[list[Point], list[Point]]:
    """Alternate points into two sets, re-numbering oids per set."""
    ps = [Point(p.x, p.y, i) for i, p in enumerate(points[0::2])]
    qs = [Point(p.x, p.y, i) for i, p in enumerate(points[1::2])]
    return ps, qs


def collinear(n: int, jitter: float = 0.0, seed: int = 0) -> list[Point]:
    """``n`` evenly spaced points on a horizontal line.

    The Gabriel graph of distinct collinear points is the path graph,
    so the RCJ of an alternating split is exactly the adjacent pairs —
    the sparsest non-trivial family (result size ``n - 1``).

    Parameters
    ----------
    jitter:
        Optional uniform perturbation magnitude, to study how fast the
        path degenerates into a general-position result.
    """
    if n < 0:
        raise ValueError(f"negative dataset size {n}")
    rng = random.Random(seed)
    step = (_HI - _LO) / max(n, 1)
    out = []
    for i in range(n):
        dy = rng.uniform(-jitter, jitter) if jitter else 0.0
        out.append(Point(_LO + (i + 0.5) * step, (_LO + _HI) / 2.0 + dy, i))
    return out


def cocircular(n: int, radius: float = 4000.0) -> list[Point]:
    """``n`` points on a common circle (a regular n-gon).

    The maximal-tie configuration: every diametral pair's ring passes
    *through* the remaining points' circle, so boundary conventions
    decide the result.  In exact arithmetic the strict (open-disk)
    convention admits the ``2m`` sides of a regular ``2m``-gon plus all
    ``m`` diameters (``1.5 n`` edges).  With floating-point cos/sin the
    diametral ties resolve pseudo-randomly — each off-axis vertex lands
    a few ulps inside or outside the circumcircle — so only the sides
    are robust and the observed count lies in ``[n, 1.5 n]``.  Either
    way the family is linear, far below the degenerate-lattice regime.
    """
    if n < 0:
        raise ValueError(f"negative dataset size {n}")
    cx = cy = (_LO + _HI) / 2.0
    return [
        Point(
            cx + radius * math.cos(2.0 * math.pi * i / n),
            cy + radius * math.sin(2.0 * math.pi * i / n),
            i,
        )
        for i in range(n)
    ]


def lattice(n: int, spacing: float | None = None) -> list[Point]:
    """About ``n`` points on a square integer lattice.

    Unit squares are cocircular 4-tuples: both diagonals of every cell
    tie on the ring boundary and qualify under the strict convention,
    the densest planar-degenerate family (~``3n`` Gabriel edges:
    horizontal, vertical and both diagonals per cell amortised).
    """
    if n < 0:
        raise ValueError(f"negative dataset size {n}")
    if n == 0:
        return []
    side = max(1, math.isqrt(n))
    if spacing is None:
        spacing = (_HI - _LO) / (side + 1)
    out = []
    oid = 0
    for gy in range(side):
        for gx in range(side):
            if oid >= n:
                break
            out.append(
                Point(_LO + (gx + 1) * spacing, _LO + (gy + 1) * spacing, oid)
            )
            oid += 1
    return out


def two_clusters(
    n: int, separation: float = 8000.0, spread: float = 100.0, seed: int = 0
) -> list[Point]:
    """Two tight Gaussian clusters far apart (a dumbbell).

    Stresses the filter step: pairs bridging the clusters have enormous
    rings that almost always contain a third point, so nearly the whole
    result is intra-cluster — yet every filter probe must still *prove*
    that, which is exactly where Ψ− subtree pruning pays off.
    """
    if n < 0:
        raise ValueError(f"negative dataset size {n}")
    rng = random.Random(seed)
    mid = (_LO + _HI) / 2.0
    cx1 = mid - separation / 2.0
    cx2 = mid + separation / 2.0
    out = []
    for i in range(n):
        # Random cluster choice, so an alternating split leaves both
        # join sides present in both clusters.
        cx = cx1 if rng.random() < 0.5 else cx2
        x = min(max(rng.gauss(cx, spread), _LO), _HI)
        y = min(max(rng.gauss(mid, spread), _LO), _HI)
        out.append(Point(x, y, i))
    return out


def coincident(n: int, x: float = 5000.0, y: float = 5000.0) -> list[Point]:
    """``n`` copies of one location.

    The duplicate-handling stress case: every cross-set pair has a
    degenerate ring whose boundary carries all other duplicates, so
    under the strict convention *every* pair qualifies — the only
    family with a quadratic result, which is why the theoretical bound
    must assume distinct locations.
    """
    if n < 0:
        raise ValueError(f"negative dataset size {n}")
    return [Point(x, y, i) for i in range(n)]


def split_alternating(points: list[Point]) -> tuple[list[Point], list[Point]]:
    """Deal a family into the two join sides (even/odd positions)."""
    return _split(points)
