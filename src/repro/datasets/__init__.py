"""Workload generators and dataset I/O.

- :mod:`repro.datasets.synthetic` — the paper's synthetic workloads:
  uniform (UI) data and Gaussian clusters with the exact parameters of
  Section 5 (domain ``[0, 10000]²``, cluster σ = 1000);
- :mod:`repro.datasets.real` — seeded synthetic *stand-ins* for the
  USGS pointsets (PP, SC, LO) used by the paper, which are not
  redistributable here (see DESIGN.md §4 for the substitution argument);
- :mod:`repro.datasets.worstcase` — adversarial families (collinear,
  cocircular, lattice, dumbbell, coincident) for the result-size study;
- :mod:`repro.datasets.usgs` — loader for the real GNIS files (for
  users who hold the paper's actual USGS datasets);
- :mod:`repro.datasets.io` — simple text serialisation for pointsets.
"""

from repro.datasets.io import load_points, save_points
from repro.datasets.real import (
    REAL_CARDINALITIES,
    join_combination,
    locales,
    populated_places,
    schools,
)
from repro.datasets.synthetic import DOMAIN, gaussian_clusters, uniform
from repro.datasets.usgs import load_gnis, normalize
from repro.datasets.worstcase import (
    cocircular,
    coincident,
    collinear,
    lattice,
    split_alternating,
    two_clusters,
)

__all__ = [
    "DOMAIN",
    "REAL_CARDINALITIES",
    "gaussian_clusters",
    "join_combination",
    "load_points",
    "locales",
    "populated_places",
    "save_points",
    "schools",
    "uniform",
    "load_gnis",
    "normalize",
    "cocircular",
    "coincident",
    "collinear",
    "lattice",
    "split_alternating",
    "two_clusters",
]
