"""Loader for real USGS GNIS files (the paper's actual datasets).

The paper's real workloads — PP (Populated Places), SC (Schools), LO
(Locales) — come from the U.S. Board on Geographic Names
(geonames.usgs.gov).  Those files are not redistributable inside this
repository, so the benchmarks run on seeded stand-ins
(:mod:`repro.datasets.real`); but anyone holding the originals can feed
them straight in with this module and reproduce on the true data.

The GNIS *National File* is pipe-delimited with a header row::

    FEATURE_ID|FEATURE_NAME|FEATURE_CLASS|...|PRIM_LAT_DEC|PRIM_LONG_DEC|...

:func:`load_gnis` filters rows by feature class, drops records without
usable coordinates, and :func:`normalize` maps longitude/latitude to
the paper's ``[0, 10000]²`` domain.
"""

from __future__ import annotations

import csv
from typing import Iterable, Sequence, TextIO

from repro.geometry.point import Point

#: GNIS feature classes of the paper's three datasets.
FEATURE_CLASSES = {
    "PP": "Populated Place",
    "SC": "School",
    "LO": "Locale",
}

#: Target domain of the paper (Section 5).
DOMAIN_SIZE = 10000.0


class GNISFormatError(ValueError):
    """The file does not look like a GNIS national/state file."""


def _open_reader(f: TextIO) -> tuple[csv.reader, dict[str, int]]:
    reader = csv.reader(f, delimiter="|")
    try:
        header = next(reader)
    except StopIteration:
        raise GNISFormatError("empty GNIS file") from None
    columns = {name.strip().upper(): i for i, name in enumerate(header)}
    required = ("FEATURE_ID", "FEATURE_CLASS", "PRIM_LAT_DEC", "PRIM_LONG_DEC")
    missing = [c for c in required if c not in columns]
    if missing:
        raise GNISFormatError(f"missing GNIS columns: {', '.join(missing)}")
    return reader, columns


def load_gnis(
    path: str,
    feature_class: str,
    limit: int | None = None,
) -> list[Point]:
    """Load one feature class from a GNIS pipe-delimited file.

    Parameters
    ----------
    path:
        The national/state file (plain text, pipe-delimited).
    feature_class:
        Either a GNIS class name ("Populated Place") or one of the
        paper's dataset ids ("PP", "SC", "LO").
    limit:
        Optional cap on the number of points loaded.

    Returns
    -------
    Points in raw (longitude, latitude) coordinates with the GNIS
    FEATURE_ID as oid — normalise with :func:`normalize` before
    joining, so both datasets share the paper's domain.

    Raises
    ------
    GNISFormatError
        When the header lacks the GNIS columns.
    """
    wanted = FEATURE_CLASSES.get(feature_class.upper(), feature_class)
    out: list[Point] = []
    with open(path, newline="", encoding="utf-8", errors="replace") as f:
        reader, cols = _open_reader(f)
        i_id = cols["FEATURE_ID"]
        i_class = cols["FEATURE_CLASS"]
        i_lat = cols["PRIM_LAT_DEC"]
        i_lon = cols["PRIM_LONG_DEC"]
        width = max(i_id, i_class, i_lat, i_lon) + 1
        for row in reader:
            if len(row) < width or row[i_class].strip() != wanted:
                continue
            try:
                lat = float(row[i_lat])
                lon = float(row[i_lon])
                oid = int(row[i_id])
            except ValueError:
                continue
            if lat == 0.0 and lon == 0.0:  # GNIS's "unknown" sentinel
                continue
            out.append(Point(lon, lat, oid))
            if limit is not None and len(out) >= limit:
                break
    return out


def normalize(
    datasets: Sequence[Iterable[Point]],
    domain_size: float = DOMAIN_SIZE,
) -> list[list[Point]]:
    """Map several pointsets onto the paper's shared square domain.

    All datasets are scaled by one joint bounding box (the paper:
    "Coordinate values in all datasets are normalized to the interval
    [0, 10000]"), preserving the relative geometry between sets; the
    longer geographic axis spans the full domain.

    Raises
    ------
    ValueError
        When every dataset is empty.
    """
    materialised = [list(ds) for ds in datasets]
    all_points = [p for ds in materialised for p in ds]
    if not all_points:
        raise ValueError("cannot normalise empty datasets")
    xmin = min(p.x for p in all_points)
    xmax = max(p.x for p in all_points)
    ymin = min(p.y for p in all_points)
    ymax = max(p.y for p in all_points)
    span = max(xmax - xmin, ymax - ymin)
    scale = domain_size / span if span > 0 else 0.0
    return [
        [
            Point((p.x - xmin) * scale, (p.y - ymin) * scale, p.oid)
            for p in ds
        ]
        for ds in materialised
    ]
