"""The ε-distance join.

Returns all pairs ``<p, q>`` with ``dist(p, q) <= ε`` (Brinkhoff et al.,
SIGMOD 1993).  Two implementations:

- :func:`epsilon_join` — synchronised traversal of two R-trees,
  descending node pairs whose MBRs are within ε;
- :func:`epsilon_join_arrays` — main-memory KD-tree variant used by the
  resemblance sweeps of Figure 10, where the join is recomputed for many
  ε values.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy.spatial import cKDTree

from repro.geometry.point import Point
from repro.rtree.tree import RTree


def epsilon_join(
    tree_p: RTree, tree_q: RTree, eps: float
) -> list[tuple[Point, Point]]:
    """All pairs within distance ``eps`` via synchronised R-tree descent.

    Handles trees of different heights by descending the taller side.
    """
    if eps < 0:
        raise ValueError(f"negative epsilon {eps}")
    if tree_p.root_pid is None or tree_q.root_pid is None:
        return []
    eps_sq = eps * eps
    results: list[tuple[Point, Point]] = []
    stack = [(tree_p.root_pid, tree_q.root_pid)]
    while stack:
        pid_p, pid_q = stack.pop()
        node_p = tree_p.read_node(pid_p)
        node_q = tree_q.read_node(pid_q)
        if node_p.is_leaf and node_q.is_leaf:
            for p in node_p.entries:
                for q in node_q.entries:
                    dx, dy = p.x - q.x, p.y - q.y
                    if dx * dx + dy * dy <= eps_sq:
                        results.append((p, q))
        elif node_p.is_leaf:
            mbr_p = node_p.mbr()
            for bq in node_q.entries:
                if mbr_p.rect_mindist_sq(bq.rect) <= eps_sq:
                    stack.append((pid_p, bq.child))
        elif node_q.is_leaf:
            mbr_q = node_q.mbr()
            for bp in node_p.entries:
                if bp.rect.rect_mindist_sq(mbr_q) <= eps_sq:
                    stack.append((bp.child, pid_q))
        else:
            for bp in node_p.entries:
                for bq in node_q.entries:
                    if bp.rect.rect_mindist_sq(bq.rect) <= eps_sq:
                        stack.append((bp.child, bq.child))
    return results


def epsilon_join_arrays(
    points_p: Sequence[Point], points_q: Sequence[Point], eps: float
) -> set[tuple[int, int]]:
    """Identity set ``{(p.oid, q.oid)}`` of the ε-join, via KD-trees.

    Fast enough to re-run across a parameter sweep; used by the
    Figure 10 resemblance experiment.
    """
    if not points_p or not points_q:
        return set()
    arr_p = np.array([(p.x, p.y) for p in points_p])
    arr_q = np.array([(q.x, q.y) for q in points_q])
    tree_p = cKDTree(arr_p)
    tree_q = cKDTree(arr_q)
    matches = tree_p.query_ball_tree(tree_q, eps)
    out: set[tuple[int, int]] = set()
    for i, neighbors in enumerate(matches):
        p_oid = points_p[i].oid
        for j in neighbors:
            out.add((p_oid, points_q[j].oid))
    return out
