"""Common influence join (CIJ) — the comparator of the paper's ref [19].

The CIJ of pointsets ``P`` and ``Q`` is the set of pairs ``<p, q>``
whose Voronoi cells — ``p``'s cell in the diagram of ``P`` and ``q``'s
cell in the diagram of ``Q`` — intersect.  Equivalently: some location
exists whose nearest ``P``-point is ``p`` *and* nearest ``Q``-point is
``q``.

The paper positions CIJ as the only other parameterless spatial join on
pointsets and observes that "result pairs of common influence join
cannot be exploited to determine RCJ results effectively".  This module
implements CIJ from scratch so the claim can be tested empirically
(`bench_cij_resemblance`): every RCJ pair is a CIJ pair in general
position (the ring centre witnesses the intersection), but CIJ is a
strict superset whose extra pairs carry no ring guarantee.

Implementation: Voronoi cells are built by clipping the (slightly
expanded) domain box with perpendicular-bisector half-planes — against
the point's Delaunay neighbours when scipy can triangulate, against all
other points otherwise — then candidate cell pairs come from a plane
sweep over cell bounding boxes and are decided by a convex SAT test.
"""

from __future__ import annotations

from typing import Sequence

from repro.geometry.point import Point
from repro.geometry.polygon import (
    Vertex,
    box_polygon,
    clip_halfplane,
    convex_polygons_intersect,
    polygon_bbox,
)
from repro.geometry.rect import Rect

#: Fraction by which the clipping box is expanded beyond the data MBR,
#: so boundary cells keep their full shared edges.
_BOX_MARGIN = 0.05


def cij_bounds(
    points_p: Sequence[Point], points_q: Sequence[Point]
) -> Rect:
    """The default CIJ clipping region: the joint MBR expanded by the
    box margin.

    Factored out so the pointwise oracle and the columnar cell-overlap
    pipeline (:mod:`repro.engine.families`) compute the *same* floats —
    identical bounds give identical clipped cells, which is what makes
    their result pair sets comparable bit-for-bit.
    """
    mbr = Rect.from_points(list(points_p) + list(points_q))
    margin_x = (mbr.xmax - mbr.xmin) * _BOX_MARGIN + 1.0
    margin_y = (mbr.ymax - mbr.ymin) * _BOX_MARGIN + 1.0
    return Rect(
        mbr.xmin - margin_x,
        mbr.ymin - margin_y,
        mbr.xmax + margin_x,
        mbr.ymax + margin_y,
    )


def voronoi_cell(
    p: Point, others: Sequence[Point], box: Sequence[Vertex]
) -> list[Vertex]:
    """The Voronoi cell of ``p`` against ``others``, clipped to ``box``.

    Each competitor contributes the bisector half-plane of locations
    closer to it than to ``p``; the cell is what survives.  Coincident
    competitors (same location as ``p``) contribute a degenerate plane
    and are skipped — they share the cell.
    """
    cell = list(box)
    for z in others:
        nx, ny = z.x - p.x, z.y - p.y
        if nx == 0.0 and ny == 0.0:
            continue
        mx, my = (p.x + z.x) / 2.0, (p.y + z.y) / 2.0
        cell = clip_halfplane(cell, mx, my, nx, ny)
        if not cell:
            break
    return cell


def _delaunay_neighbors(points: Sequence[Point]) -> list[list[int]] | None:
    """Index lists of Delaunay neighbours, or None when triangulation
    is impossible (few points, collinear input, qhull failure)."""
    if len(points) < 5:
        return None
    try:
        import numpy as np
        from scipy.spatial import Delaunay
    except ImportError:  # pragma: no cover - scipy is a hard dependency
        return None
    coords = np.array([(p.x, p.y) for p in points])
    try:
        tri = Delaunay(coords)
    except Exception:
        return None
    if tri.coplanar.size:
        # Points qhull dropped would silently lose bisectors; fall back.
        return None
    neighbors: list[set[int]] = [set() for _ in points]
    for simplex in tri.simplices:
        a, b, c = int(simplex[0]), int(simplex[1]), int(simplex[2])
        neighbors[a].update((b, c))
        neighbors[b].update((a, c))
        neighbors[c].update((a, b))
    return [sorted(s) for s in neighbors]


def voronoi_cells(
    points: Sequence[Point], bounds: Rect | None = None
) -> list[list[Vertex]]:
    """Clipped Voronoi cells of every point, index-aligned with input.

    Parameters
    ----------
    points:
        The pointset (duplicates allowed: coincident points share a
        cell).
    bounds:
        Clipping region; the expanded MBR of the points by default.

    Notes
    -----
    Clipping against Delaunay neighbours only is exact: a Voronoi cell
    is the intersection of the bisectors with its Delaunay neighbours,
    every other bisector being redundant.  Degenerate inputs fall back
    to all-pairs clipping.
    """
    if not points:
        return []
    if bounds is None:
        mbr = Rect.from_points(points)
        margin_x = (mbr.xmax - mbr.xmin) * _BOX_MARGIN + 1.0
        margin_y = (mbr.ymax - mbr.ymin) * _BOX_MARGIN + 1.0
        bounds = Rect(
            mbr.xmin - margin_x,
            mbr.ymin - margin_y,
            mbr.xmax + margin_x,
            mbr.ymax + margin_y,
        )
    box = box_polygon(bounds.xmin, bounds.ymin, bounds.xmax, bounds.ymax)

    neighbors = _delaunay_neighbors(points)
    cells: list[list[Vertex]] = []
    for i, p in enumerate(points):
        if neighbors is None:
            others: Sequence[Point] = [z for j, z in enumerate(points) if j != i]
        else:
            others = [points[j] for j in neighbors[i]]
        cells.append(voronoi_cell(p, others, box))
    return cells


def common_influence_join(
    points_p: Sequence[Point],
    points_q: Sequence[Point],
    bounds: Rect | None = None,
) -> list[tuple[Point, Point]]:
    """All pairs whose Voronoi cells intersect (closed intersection).

    Parameters
    ----------
    points_p, points_q:
        The two pointsets.
    bounds:
        Clipping region for both diagrams; defaults to the expanded
        joint MBR, so both diagrams are clipped identically.

    Returns
    -------
    Result pairs ``(p, q)``.  Symmetric: swapping inputs swaps the pair
    order but selects the same pairs.
    """
    if not points_p or not points_q:
        return []
    if bounds is None:
        bounds = cij_bounds(points_p, points_q)
    cells_p = voronoi_cells(points_p, bounds)
    cells_q = voronoi_cells(points_q, bounds)

    # Candidate pairs by bounding-box sweep, decided by SAT.
    from repro.sweep import sweep_rect_pairs

    items_p = [
        (p, cell, Rect(*polygon_bbox(cell)))
        for p, cell in zip(points_p, cells_p)
        if cell
    ]
    items_q = [
        (q, cell, Rect(*polygon_bbox(cell)))
        for q, cell in zip(points_q, cells_q)
        if cell
    ]
    results: list[tuple[Point, Point]] = []
    for (p, cell_p, _), (q, cell_q, _) in sweep_rect_pairs(
        items_p,
        items_q,
        left_rect=lambda t: t[2],
        right_rect=lambda t: t[2],
    ):
        if convex_polygons_intersect(cell_p, cell_q):
            results.append((p, q))
    return results
