"""Classic distance-based spatial joins (the paper's comparison points).

These operators are *not* components of the RCJ algorithms; they exist
because Section 5.1 of the paper contrasts the RCJ result set against
them (Figures 10-12): the ε-distance join, the k-closest-pairs join and
the k-nearest-neighbour join.

:mod:`repro.joins.common_influence` adds the common influence join of
the paper's ref [19] — the only other parameterless pointset join —
so the paper's claim that it cannot stand in for RCJ is testable.
"""

from repro.joins.closest_pairs import incremental_closest_pairs, k_closest_pairs
from repro.joins.common_influence import common_influence_join, voronoi_cells
from repro.joins.epsilon import epsilon_join, epsilon_join_arrays
from repro.joins.knn import knn_join, knn_join_prefixes

__all__ = [
    "common_influence_join",
    "voronoi_cells",
    "epsilon_join",
    "epsilon_join_arrays",
    "incremental_closest_pairs",
    "k_closest_pairs",
    "knn_join",
    "knn_join_prefixes",
]
