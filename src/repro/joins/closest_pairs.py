"""The k-closest-pairs join.

Reports the ``k`` pairs of ``P x Q`` with the smallest distances
(Corral et al., SIGMOD 2000; Hjaltason & Samet's incremental distance
join, SIGMOD 1998).  The generator :func:`incremental_closest_pairs`
enumerates pairs in ascending distance from a min-heap of node pairs —
so the Figure 11 sweep obtains every ``k`` prefix from a single run.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Iterator

from repro.geometry.point import Point
from repro.rtree.tree import RTree


def incremental_closest_pairs(
    tree_p: RTree, tree_q: RTree
) -> Iterator[tuple[float, Point, Point]]:
    """Yield ``(distance, p, q)`` in non-decreasing distance order.

    Heap items carry either a pair of node page ids or a concrete point
    pair; node pairs are expanded lazily, so taking the first ``k``
    results performs work proportional to the neighbourhood of the
    answer.

    Ties are canonical: pairs at exactly equal squared distance are
    buffered until the heap can no longer produce that distance, then
    emitted sorted by ``(p.oid, q.oid)`` — the same tie rule as the
    array engine's :func:`repro.engine.streaming.pair_order_key`, so
    every ``k``-prefix of this stream equals the ``k``-prefix of the
    canonically sorted full join, independent of heap arrival order.
    Distinct distances flush immediately, so laziness is unchanged on
    general-position data.
    """
    if tree_p.root_pid is None or tree_q.root_pid is None:
        return
    counter = itertools.count()
    # (dist_sq, tiebreak, is_pair, payload):
    #   is_pair -> payload = (p, q); else payload = (pid_p or None, pid_q or None,
    #   point when one side already resolved)
    heap: list = [
        (0.0, next(counter), False, ("nn", tree_p.root_pid, tree_q.root_pid))
    ]

    def push_nodes(pid_p: int, pid_q: int) -> None:
        node_p = tree_p.read_node(pid_p)
        node_q = tree_q.read_node(pid_q)
        # Expand the coarser node (or both leaves into point pairs).
        if node_p.is_leaf and node_q.is_leaf:
            for p in node_p.entries:
                for q in node_q.entries:
                    dx, dy = p.x - q.x, p.y - q.y
                    heapq.heappush(
                        heap,
                        (dx * dx + dy * dy, next(counter), True, (p, q)),
                    )
        elif not node_p.is_leaf and (
            node_q.is_leaf or node_p.level >= node_q.level
        ):
            node_q_mbr = node_q.mbr()
            for bp in node_p.entries:
                heapq.heappush(
                    heap,
                    (
                        bp.rect.rect_mindist_sq(node_q_mbr),
                        next(counter),
                        False,
                        ("nn", bp.child, pid_q),
                    ),
                )
        else:
            node_p_mbr = node_p.mbr()
            for bq in node_q.entries:
                heapq.heappush(
                    heap,
                    (
                        node_p_mbr.rect_mindist_sq(bq.rect),
                        next(counter),
                        False,
                        ("nn", pid_p, bq.child),
                    ),
                )

    # Pairs of one equal-distance run, held back until no heap entry
    # (pair or unexpanded node) could still produce that distance.
    pending: list[tuple[float, Point, Point]] = []
    pending_d = 0.0
    while heap:
        dist_sq, _tie, is_pair, payload = heapq.heappop(heap)
        if is_pair:
            p, q = payload
            pending.append((dist_sq, p, q))
            pending_d = dist_sq
        else:
            _tag, pid_p, pid_q = payload
            push_nodes(pid_p, pid_q)
        if pending and (not heap or heap[0][0] > pending_d):
            pending.sort(key=lambda t: (t[1].oid, t[2].oid))
            for d_sq, pp, qq in pending:
                yield math.sqrt(d_sq), pp, qq
            pending.clear()


def k_closest_pairs(
    tree_p: RTree, tree_q: RTree, k: int
) -> list[tuple[float, Point, Point]]:
    """The ``k`` closest pairs of ``P x Q`` (fewer when the product is
    smaller than ``k``)."""
    if k <= 0:
        return []
    return list(itertools.islice(incremental_closest_pairs(tree_p, tree_q), k))
