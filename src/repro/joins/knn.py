"""The k-nearest-neighbour join.

For every ``p ∈ P`` reports the pairs ``<p, q>`` where ``q`` is one of
``p``'s ``k`` nearest neighbours in ``Q`` (Xia et al., VLDB 2004).  The
result size is ``k * |P|`` and the operator is asymmetric — swapping the
inputs changes the result (paper, Table 1).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.geometry.point import Point
from repro.rtree.inn import incremental_nearest
from repro.rtree.tree import RTree


def canonical_knn(p: Point, tree_q: RTree, k: int) -> list[Point]:
    """The ``k`` nearest ``Q``-neighbours of ``p`` in canonical tie order.

    Neighbours are ranked by exact squared distance
    ``dx*dx + dy*dy`` (the IEEE expression shared with the array
    engine), ties broken by ascending ``oid`` — so the cut at the
    ``k``-th distance is deterministic rather than an accident of heap
    arrival order.  The incremental stream is consumed just past the
    cutoff distance: the whole tied run at the ``k``-th distance is
    buffered, then the canonical first ``k`` win.
    """
    if k <= 0:
        return []
    got: list[tuple[float, int, Point]] = []
    cutoff: float | None = None
    sqrt_cutoff = 0.0
    for dist, q in incremental_nearest(tree_q, p.x, p.y):
        dx, dy = p.x - q.x, p.y - q.y
        d_sq = dx * dx + dy * dy
        if cutoff is not None and d_sq > cutoff:
            if dist > sqrt_cutoff:
                break  # stream ascends: no further tie can appear
            continue  # rounding collision at the cutoff: skip, keep looking
        got.append((d_sq, q.oid, q))
        if cutoff is None and len(got) == k:
            cutoff = max(t[0] for t in got)
            sqrt_cutoff = math.sqrt(cutoff)
    got.sort(key=lambda t: (t[0], t[1]))
    return [q for _d, _oid, q in got[:k]]


def knn_join(
    points_p: Sequence[Point], tree_q: RTree, k: int
) -> list[tuple[Point, Point]]:
    """Pairs ``<p, q>`` with ``q`` among the ``k`` NNs of ``p`` in ``Q``.

    Ties at the ``k``-th neighbour distance are cut canonically
    (:func:`canonical_knn`), so the result is a deterministic function
    of the pointsets — identical to the columnar pipeline's
    (:mod:`repro.engine.families`) on tie-riddled data.
    """
    if k <= 0:
        return []
    out: list[tuple[Point, Point]] = []
    for p in points_p:
        out.extend((p, q) for q in canonical_knn(p, tree_q, k))
    return out


def knn_join_prefixes(
    points_p: Sequence[Point], tree_q: RTree, k_max: int
) -> dict[int, set[tuple[int, int]]]:
    """Identity sets of the kNN join for every ``k`` in ``1..k_max``.

    One incremental-NN pass per point serves the whole sweep — the
    Figure 12 resemblance experiment evaluates many ``k`` values.  The
    canonical ``k_max``-neighbour list serves every smaller ``k``: its
    ``k``-prefix is exactly the canonical ``k``-NN set (all strictly
    closer neighbours are included, and ties at each cutoff sort by
    oid).
    """
    neighbor_lists: list[tuple[int, list[int]]] = []
    for p in points_p:
        qs = [q.oid for q in canonical_knn(p, tree_q, k_max)]
        neighbor_lists.append((p.oid, qs))

    prefixes: dict[int, set[tuple[int, int]]] = {}
    for k in range(1, k_max + 1):
        pairs: set[tuple[int, int]] = set()
        for p_oid, qs in neighbor_lists:
            for q_oid in qs[:k]:
                pairs.add((p_oid, q_oid))
        prefixes[k] = pairs
    return prefixes
