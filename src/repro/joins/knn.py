"""The k-nearest-neighbour join.

For every ``p ∈ P`` reports the pairs ``<p, q>`` where ``q`` is one of
``p``'s ``k`` nearest neighbours in ``Q`` (Xia et al., VLDB 2004).  The
result size is ``k * |P|`` and the operator is asymmetric — swapping the
inputs changes the result (paper, Table 1).
"""

from __future__ import annotations

from typing import Sequence

from repro.geometry.point import Point
from repro.rtree.inn import incremental_nearest
from repro.rtree.tree import RTree


def knn_join(
    points_p: Sequence[Point], tree_q: RTree, k: int
) -> list[tuple[Point, Point]]:
    """Pairs ``<p, q>`` with ``q`` among the ``k`` NNs of ``p`` in ``Q``."""
    if k <= 0:
        return []
    out: list[tuple[Point, Point]] = []
    for p in points_p:
        found = 0
        for _dist, q in incremental_nearest(tree_q, p.x, p.y):
            out.append((p, q))
            found += 1
            if found == k:
                break
    return out


def knn_join_prefixes(
    points_p: Sequence[Point], tree_q: RTree, k_max: int
) -> dict[int, set[tuple[int, int]]]:
    """Identity sets of the kNN join for every ``k`` in ``1..k_max``.

    One incremental-NN pass per point serves the whole sweep — the
    Figure 12 resemblance experiment evaluates many ``k`` values.
    """
    neighbor_lists: list[tuple[int, list[int]]] = []
    for p in points_p:
        qs: list[int] = []
        for _dist, q in incremental_nearest(tree_q, p.x, p.y):
            qs.append(q.oid)
            if len(qs) == k_max:
                break
        neighbor_lists.append((p.oid, qs))

    prefixes: dict[int, set[tuple[int, int]]] = {}
    for k in range(1, k_max + 1):
        pairs: set[tuple[int, int]] = set()
        for p_oid, qs in neighbor_lists:
            for q_oid in qs[:k]:
                pairs.add((p_oid, q_oid))
        prefixes[k] = pairs
    return prefixes
