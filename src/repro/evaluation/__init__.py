"""Result-set evaluation utilities.

Precision/recall resemblance of a distance-based join against the RCJ
result (Section 5.1) and tabular report formatting for the benchmark
harness; a Figure-1-style SVG join map; LaTeX table emission for
write-ups; strong-scaling series evaluation for the parallel engine
(:mod:`repro.evaluation.scaling`).
"""

from repro.evaluation.joinmap import draw_join_map
from repro.evaluation.resemblance import precision, precision_recall, recall
from repro.evaluation.report import format_latex_table, format_series, format_table
from repro.evaluation.scaling import (
    ScalePoint,
    scaling_summary,
    speedup_rows,
    write_json,
)

__all__ = [
    "ScalePoint",
    "draw_join_map",
    "format_latex_table",
    "format_series",
    "format_table",
    "precision",
    "precision_recall",
    "recall",
    "scaling_summary",
    "speedup_rows",
    "write_json",
]
