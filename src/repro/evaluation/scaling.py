"""Scalability-series evaluation for the parallel engine.

Turns raw ``(workers, wall-seconds)`` measurements of the same join
into the standard strong-scaling figures — speedup over the one-worker
run and parallel efficiency — plus a JSON-ready summary document
(``BENCH_parallel.json``) that CI archives so scaling regressions show
up as data, not anecdotes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass


@dataclass(frozen=True)
class ScalePoint:
    """One measured configuration of the scaling sweep."""

    n: int  #: dataset cardinality (|P|; the sweep fixes the |Q| ratio)
    workers: int
    wall_seconds: float
    pairs: int
    #: Which planner entry point produced the measurement: ``"join"``
    #: (the bulk join) or ``"topk"`` (ordered browsing through
    #: ``run_topk``) — the sweep machinery is mode-agnostic.
    mode: str = "join"

    @property
    def key(self) -> tuple[str, int, int]:
        return (self.mode, self.n, self.workers)


def speedup_rows(points: list[ScalePoint]) -> list[list]:
    """Strong-scaling table rows: one per measurement, with speedup and
    efficiency relative to the same-``n`` one-worker baseline.

    Raises ``ValueError`` when a size has no one-worker baseline — a
    speedup against nothing is not a number worth printing.  Baselines
    are per ``(mode, n)``: a top-k sweep never borrows the bulk join's
    baseline.
    """
    base: dict[tuple[str, int], float] = {
        (p.mode, p.n): p.wall_seconds for p in points if p.workers == 1
    }
    rows = []
    for p in sorted(points, key=lambda p: p.key):
        if (p.mode, p.n) not in base:
            raise ValueError(
                f"no workers=1 baseline for n={p.n} (mode={p.mode})"
            )
        speedup = base[(p.mode, p.n)] / max(p.wall_seconds, 1e-9)
        rows.append(
            [
                p.n,
                p.workers,
                p.pairs,
                f"{p.wall_seconds:.3f}",
                f"{speedup:.2f}x",
                f"{100.0 * speedup / p.workers:.0f}%",
            ]
        )
    return rows


def scaling_summary(
    points: list[ScalePoint],
    cpu_count: int,
    identical_pairs: bool,
    benchmark: str = "parallel_scaling",
) -> dict:
    """JSON-ready document of one scaling sweep.

    ``identical_pairs`` records the sweep's correctness verdict (every
    worker count returned the serial engine's exact pair set) alongside
    the numbers, so an archived run is self-describing.  ``benchmark``
    names the sweep (the top-k series archives under its own name).
    """
    base = {(p.mode, p.n): p.wall_seconds for p in points if p.workers == 1}
    series = [
        {
            "mode": p.mode,
            "n": p.n,
            "workers": p.workers,
            "wall_seconds": round(p.wall_seconds, 6),
            "pairs": p.pairs,
            "speedup": round(
                base[(p.mode, p.n)] / max(p.wall_seconds, 1e-9), 3
            )
            if (p.mode, p.n) in base
            else None,
        }
        for p in sorted(points, key=lambda p: p.key)
    ]
    return {
        "benchmark": benchmark,
        "cpu_count": cpu_count,
        "identical_pairs": identical_pairs,
        "series": series,
    }


def write_json(path: str, summary: dict) -> None:
    """Persist a summary document (stable key order, trailing
    newline)."""
    with open(path, "w") as f:
        json.dump(summary, f, indent=2, sort_keys=True)
        f.write("\n")
