"""Figure-1-style SVG maps of a join result.

The paper's Figure 1 shows two pointsets and the RCJ pairs' enclosing
circles on a map.  :func:`draw_join_map` renders exactly that for any
result: ``P`` points, ``Q`` points, one circle per pair and a dot at
each middleman location — dependency-free SVG, matching the rest of
:mod:`repro.evaluation.svgplot`.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.pairs import RCJPair
from repro.geometry.point import Point
from repro.geometry.rect import Rect

_STYLE = (
    '<style>text{font-family:sans-serif;font-size:12px}'
    ".p{fill:#1f77b4}.q{fill:#d62728}"
    ".ring{fill:none;stroke:#2ca02c;stroke-width:1;opacity:0.6}"
    ".mid{fill:#2ca02c}</style>"
)


def draw_join_map(
    points_p: Sequence[Point],
    points_q: Sequence[Point],
    pairs: Sequence[RCJPair],
    title: str = "Ring-constrained join",
    size: int = 640,
    max_pairs: int | None = None,
    path: str | None = None,
) -> str:
    """Render the two pointsets and the pairs' rings as an SVG map.

    Parameters
    ----------
    points_p, points_q:
        The join inputs (``P`` blue, ``Q`` red).
    pairs:
        The RCJ result; each contributes its ring (green) and its
        centre — the derived middleman location.
    size:
        Pixel width and height of the (square) map.
    max_pairs:
        Draw only the ``max_pairs`` smallest rings (all by default) —
        keeps dense joins readable.
    path:
        When given, the SVG is also written to this file.

    Returns
    -------
    The SVG document as a string.
    """
    everything = list(points_p) + list(points_q)
    if not everything:
        raise ValueError("cannot draw an empty join")
    bounds = Rect.from_points(everything)
    span = max(bounds.xmax - bounds.xmin, bounds.ymax - bounds.ymin, 1e-9)
    margin = 30.0
    scale = (size - 2 * margin) / span

    def sx(x: float) -> float:
        return margin + (x - bounds.xmin) * scale

    def sy(y: float) -> float:
        # SVG y grows downward; the map keeps north up.
        return size - margin - (y - bounds.ymin) * scale

    drawn = sorted(pairs, key=lambda pr: pr.radius)
    if max_pairs is not None:
        drawn = drawn[:max_pairs]

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{size}" '
        f'height="{size}" viewBox="0 0 {size} {size}">',
        _STYLE,
        f'<text x="{margin}" y="18">{title} — |P|={len(points_p)}, '
        f"|Q|={len(points_q)}, pairs={len(pairs)}</text>",
    ]
    for pair in drawn:
        cx, cy = pair.center
        parts.append(
            f'<circle class="ring" cx="{sx(cx):.1f}" cy="{sy(cy):.1f}" '
            f'r="{max(pair.radius * scale, 0.5):.1f}"/>'
        )
        parts.append(
            f'<circle class="mid" cx="{sx(cx):.1f}" cy="{sy(cy):.1f}" r="1.5"/>'
        )
    for p in points_p:
        parts.append(
            f'<circle class="p" cx="{sx(p.x):.1f}" cy="{sy(p.y):.1f}" r="3"/>'
        )
    for q in points_q:
        parts.append(
            f'<circle class="q" cx="{sx(q.x):.1f}" cy="{sy(q.y):.1f}" r="3"/>'
        )
    parts.append("</svg>")
    svg = "\n".join(parts)
    if path is not None:
        with open(path, "w") as f:
            f.write(svg)
    return svg
