"""Precision / recall between join result sets (paper, Section 5.1).

Given the RCJ result ``S`` and the result ``S'`` of another spatial
join, the paper measures::

    precision(S', S) = |S ∩ S'| / |S'| * 100%
    recall(S', S)    = |S ∩ S'| / |S|  * 100%

Result sets are compared by pair identity ``(p.oid, q.oid)``.
"""

from __future__ import annotations

from typing import Collection

PairKey = tuple[int, int]


def precision(result: Collection[PairKey], reference: Collection[PairKey]) -> float:
    """Percentage of ``result`` pairs that are RCJ pairs (100 when
    ``result`` is empty, following the convention that an empty result
    makes no false claims)."""
    result_set = set(result)
    if not result_set:
        return 100.0
    hits = len(result_set & set(reference))
    return 100.0 * hits / len(result_set)


def recall(result: Collection[PairKey], reference: Collection[PairKey]) -> float:
    """Percentage of RCJ pairs found in ``result`` (100 when the
    reference is empty)."""
    reference_set = set(reference)
    if not reference_set:
        return 100.0
    hits = len(set(result) & reference_set)
    return 100.0 * hits / len(reference_set)


def precision_recall(
    result: Collection[PairKey], reference: Collection[PairKey]
) -> tuple[float, float]:
    """Both resemblance measures in one pass."""
    result_set = set(result)
    reference_set = set(reference)
    hits = len(result_set & reference_set)
    prec = 100.0 * hits / len(result_set) if result_set else 100.0
    rec = 100.0 * hits / len(reference_set) if reference_set else 100.0
    return prec, rec
