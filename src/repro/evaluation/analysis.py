"""Analytical models for RCJ result size and index cost.

The paper's future work asks for (i) an I/O cost model for the proposed
algorithms and (ii) a theoretical bound on the RCJ result size.  This
module provides first-order versions of both, validated empirically by
the test suite and the benches.

Result size
-----------
The RCJ result is the set of bichromatic Gabriel-graph edges of
``P ∪ Q``.  For points in general position the Gabriel graph is planar,
so with ``N = |P| + |Q|`` vertices it has at most ``3N - 8`` edges and
empirically close to ``2N`` on Poisson-like data (average degree ≈ 4).
Under random labelling, a fraction ``2 |P||Q| / N²`` of edges is
bichromatic, giving::

    E[|RCJ|] ≈ 2N * 2|P||Q|/N² = 4 |P||Q| / N

which is linear in the input (the paper's Figure 16b) and maximised at
the balanced ratio (Figure 17b).

Worst case
----------
``upper_bound_result_size`` is exact for points in *general position*
(no two coincident, no four cocircular): the Gabriel graph is then
planar and no pointset can exceed ``3N - 6`` pairs.  Degenerate inputs
break planarity under the strict-containment convention — the unit
lattice reaches ~``4N`` edges (both diagonals of every cocircular unit
cell qualify and cross), and coincident duplicates are quadratic — so
the general bound degrades to ``|P| · |Q|``.  The adversarial families
in :mod:`repro.datasets.worstcase` exhibit each regime and the tests
pin them down.
"""

from __future__ import annotations

import math


def expected_result_size(size_p: int, size_q: int) -> float:
    """First-order estimate of the RCJ result cardinality.

    Assumes both datasets are drawn from the same spatial distribution
    (so set membership is an independent label) and points are in
    general position.  Accurate within ~15 % on uniform data — see
    ``tests/evaluation/test_analysis.py``.
    """
    if size_p < 0 or size_q < 0:
        raise ValueError("dataset sizes must be non-negative")
    total = size_p + size_q
    if total == 0 or size_p == 0 or size_q == 0:
        return 0.0
    return 4.0 * size_p * size_q / total


def upper_bound_result_size(
    size_p: int, size_q: int, general_position: bool = True
) -> int:
    """Worst-case bound on the RCJ result cardinality.

    Parameters
    ----------
    general_position:
        When True (default) the input is assumed to have no coincident
        points and no four cocircular points.  The Gabriel graph of
        ``P ∪ Q`` is then planar, so the result has at most ``3N - 6``
        pairs (``N >= 3``).  When False no linear bound exists: ties on
        ring boundaries allow crossing edges (the unit lattice reaches
        ~``4N``) and coincident duplicates make every cross pair valid,
        so the bound falls back to ``|P| · |Q|``.
    """
    if size_p < 0 or size_q < 0:
        raise ValueError("dataset sizes must be non-negative")
    total = size_p + size_q
    if size_p == 0 or size_q == 0:
        return 0
    if not general_position:
        return size_p * size_q
    if total < 3:
        return size_p * size_q
    return 3 * total - 6


def expected_tree_height(n: int, leaf_capacity: int, branch_capacity: int) -> int:
    """Height of an STR-packed R-tree over ``n`` points."""
    if n <= 0:
        return 0
    height = 1
    nodes = math.ceil(n / leaf_capacity)
    while nodes > 1:
        nodes = math.ceil(nodes / branch_capacity)
        height += 1
    return height


def estimate_inj_node_accesses(
    size_q: int,
    size_p: int,
    leaf_capacity: int,
    branch_capacity: int,
    candidates_per_point: float = 4.0,
) -> float:
    """First-order node-access estimate for INJ.

    Per outer point ``q`` INJ performs one pruned best-first descent of
    ``TP`` (about one root-to-leaf path per surviving candidate
    neighbourhood) and two verification descents.  With ``h`` the inner
    tree height and ``c`` the expected candidate count per point::

        accesses ≈ |Q| * (1 + 3c) * h / 2        (filter + 2 x verify)

    plus the outer leaf scan.  This is an order-of-magnitude model: the
    tests assert agreement within a factor of 3 on uniform data, which
    is the accuracy class the paper's future-work item targets.
    """
    if size_q <= 0 or size_p <= 0:
        return 0.0
    height_p = expected_tree_height(size_p, leaf_capacity, branch_capacity)
    outer_leaves = math.ceil(size_q / leaf_capacity)
    per_point = (1.0 + 3.0 * candidates_per_point) * height_p / 2.0
    return outer_leaves + size_q * per_point


def estimate_bij_node_accesses(
    size_q: int,
    size_p: int,
    leaf_capacity: int,
    branch_capacity: int,
    candidates_per_point: float = 6.0,
) -> float:
    """First-order node-access estimate for BIJ (and OBJ).

    Bulk computation amortises the descents of INJ over a whole outer
    leaf: per leaf of ``TQ`` one shared bulk-filter traversal covers
    the union of the members' candidate neighbourhoods, and the two
    verification sweeps are batched.  Modelling the shared traversal as
    one pruned descent per *distinct* candidate neighbourhood::

        accesses ≈ leaves(Q) * (1 + 3c') * h

    with ``c'`` the per-point candidate count (larger than INJ's
    because the bulk traversal is ordered by the leaf centroid, the
    effect Table 4 shows).  Same accuracy class as the INJ model:
    agreement within a factor of 3 asserted on uniform data.
    """
    if size_q <= 0 or size_p <= 0:
        return 0.0
    height_p = expected_tree_height(size_p, leaf_capacity, branch_capacity)
    outer_leaves = math.ceil(size_q / leaf_capacity)
    per_leaf = (1.0 + 3.0 * candidates_per_point) * height_p
    return outer_leaves * (1.0 + per_leaf)


def speedup_bij_over_inj(
    size_q: int,
    size_p: int,
    leaf_capacity: int,
    branch_capacity: int,
) -> float:
    """Modelled BIJ-over-INJ node-access ratio (> 1 means BIJ wins).

    The headline prediction of Section 4.1 — "the number of R-tree
    traversals is proportional to |Q|" for INJ versus proportional to
    the number of leaves for BIJ — in one number.
    """
    inj_cost = estimate_inj_node_accesses(
        size_q, size_p, leaf_capacity, branch_capacity
    )
    bij_cost = estimate_bij_node_accesses(
        size_q, size_p, leaf_capacity, branch_capacity
    )
    if bij_cost == 0.0:
        return 1.0
    return inj_cost / bij_cost
