"""Plain-text tables for the benchmark harness.

The benches print the same rows/series the paper's tables and figures
report; these helpers keep that output consistent and diff-friendly.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned fixed-width table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    xs: Sequence[object],
    series: dict[str, Sequence[object]],
    title: str = "",
) -> str:
    """Render a figure-style series table: one row per x value, one
    column per named series."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [series[name][i] for name in series])
    return format_table(headers, rows, title=title)


def _latex_escape(text: str) -> str:
    out = []
    for ch in text:
        if ch in "&%$#_{}":
            out.append("\\" + ch)
        elif ch == "\\":
            out.append(r"\textbackslash{}")
        elif ch == "~":
            out.append(r"\textasciitilde{}")
        elif ch == "^":
            out.append(r"\textasciicircum{}")
        else:
            out.append(ch)
    return "".join(out)


def format_latex_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    caption: str = "",
    label: str = "",
) -> str:
    """Render a result table as a LaTeX ``table`` environment.

    For dropping reproduced numbers straight into a write-up.  All cell
    content is escaped; columns are left-aligned to match the
    plain-text tables.
    """
    cols = "l" * len(headers)
    lines = [r"\begin{table}[ht]", r"\centering"]
    lines.append(rf"\begin{{tabular}}{{{cols}}}")
    lines.append(r"\hline")
    lines.append(
        " & ".join(_latex_escape(str(h)) for h in headers) + r" \\"
    )
    lines.append(r"\hline")
    for row in rows:
        lines.append(
            " & ".join(_latex_escape(str(c)) for c in row) + r" \\"
        )
    lines.append(r"\hline")
    lines.append(r"\end{tabular}")
    if caption:
        lines.append(rf"\caption{{{_latex_escape(caption)}}}")
    if label:
        lines.append(rf"\label{{{label}}}")
    lines.append(r"\end{table}")
    return "\n".join(lines)
