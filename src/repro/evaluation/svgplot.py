"""Dependency-free SVG line charts for the experiment figures.

The benchmark harness prints paper-style tables; this module renders
the same series as standalone SVG line charts (the reproduction ships
without matplotlib).  Example::

    from repro.evaluation.svgplot import line_chart

    svg = line_chart(
        title="Figure 10 (SP)",
        x_label="eps / mean NN dist",
        y_label="quality (%)",
        xs=[0.25, 0.5, 1, 2, 4],
        series={"precision": [98, 92, 71, 40, 16],
                "recall": [2, 9, 26, 58, 91]},
        path="fig10_sp.svg",
    )
"""

from __future__ import annotations

import math
from typing import Sequence

#: Stroke colours cycled across series.
PALETTE = ("#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b")

_MARGIN_LEFT = 62.0
_MARGIN_RIGHT = 18.0
_MARGIN_TOP = 34.0
_MARGIN_BOTTOM = 46.0


def _nice_ticks(lo: float, hi: float, n: int = 5) -> list[float]:
    """Round tick positions covering ``[lo, hi]``."""
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    step = 10 ** math.floor(math.log10(span / max(1, n)))
    for mult in (1, 2, 5, 10):
        if span / (step * mult) <= n:
            step *= mult
            break
    first = math.floor(lo / step) * step
    ticks = []
    t = first
    while t <= hi + step / 2:
        if t >= lo - step / 2:
            ticks.append(round(t, 10))
        t += step
    return ticks


def line_chart(
    title: str,
    x_label: str,
    y_label: str,
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 640,
    height: int = 400,
    log_y: bool = False,
    path: str | None = None,
) -> str:
    """Render one or more series as an SVG line chart.

    Parameters
    ----------
    xs:
        Shared x coordinates (ascending).
    series:
        Mapping from series name to y values (same length as ``xs``).
    log_y:
        Plot y on a log10 scale (all values must be positive) — used by
        the cost figures whose algorithms differ by orders of magnitude.
    path:
        When given, the SVG is also written to this file.

    Returns
    -------
    The SVG document as a string.
    """
    if not xs:
        raise ValueError("cannot plot an empty x axis")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(
                f"series {name!r} has {len(ys)} values for {len(xs)} x points"
            )
        if log_y and any(y <= 0 for y in ys):
            raise ValueError(f"log scale requires positive values ({name!r})")

    def ty(value: float) -> float:
        return math.log10(value) if log_y else float(value)

    x_lo, x_hi = min(xs), max(xs)
    all_y = [ty(y) for ys in series.values() for y in ys] or [0.0]
    y_lo, y_hi = min(all_y), max(all_y)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    plot_w = width - _MARGIN_LEFT - _MARGIN_RIGHT
    plot_h = height - _MARGIN_TOP - _MARGIN_BOTTOM

    def px(x: float) -> float:
        return _MARGIN_LEFT + (x - x_lo) / (x_hi - x_lo) * plot_w

    def py(y: float) -> float:
        return _MARGIN_TOP + (1.0 - (y - y_lo) / (y_hi - y_lo)) * plot_h

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{width / 2:.1f}" y="20" text-anchor="middle" '
        f'font-size="14" font-family="sans-serif">{title}</text>',
    ]

    # Axes.
    x0, y0 = _MARGIN_LEFT, _MARGIN_TOP + plot_h
    parts.append(
        f'<line x1="{x0}" y1="{y0}" x2="{x0 + plot_w}" y2="{y0}" '
        f'stroke="black"/>'
    )
    parts.append(
        f'<line x1="{x0}" y1="{_MARGIN_TOP}" x2="{x0}" y2="{y0}" '
        f'stroke="black"/>'
    )

    for tick in _nice_ticks(x_lo, x_hi):
        tx = px(tick)
        parts.append(
            f'<line x1="{tx:.1f}" y1="{y0}" x2="{tx:.1f}" y2="{y0 + 4}" '
            f'stroke="black"/>'
        )
        parts.append(
            f'<text x="{tx:.1f}" y="{y0 + 17}" text-anchor="middle" '
            f'font-size="10" font-family="sans-serif">{tick:g}</text>'
        )
    for tick in _nice_ticks(y_lo, y_hi):
        tyv = py(tick)
        label = f"1e{tick:g}" if log_y else f"{tick:g}"
        parts.append(
            f'<line x1="{x0 - 4}" y1="{tyv:.1f}" x2="{x0}" y2="{tyv:.1f}" '
            f'stroke="black"/>'
        )
        parts.append(
            f'<text x="{x0 - 7}" y="{tyv + 3:.1f}" text-anchor="end" '
            f'font-size="10" font-family="sans-serif">{label}</text>'
        )

    parts.append(
        f'<text x="{x0 + plot_w / 2:.1f}" y="{height - 8}" '
        f'text-anchor="middle" font-size="11" '
        f'font-family="sans-serif">{x_label}</text>'
    )
    parts.append(
        f'<text x="14" y="{_MARGIN_TOP + plot_h / 2:.1f}" '
        f'text-anchor="middle" font-size="11" font-family="sans-serif" '
        f'transform="rotate(-90 14 {_MARGIN_TOP + plot_h / 2:.1f})">'
        f"{y_label}</text>"
    )

    # Series polylines + legend.
    for i, (name, ys) in enumerate(series.items()):
        color = PALETTE[i % len(PALETTE)]
        points = " ".join(
            f"{px(x):.1f},{py(ty(y)):.1f}" for x, y in zip(xs, ys)
        )
        parts.append(
            f'<polyline fill="none" stroke="{color}" stroke-width="1.8" '
            f'points="{points}"/>'
        )
        for x, y in zip(xs, ys):
            parts.append(
                f'<circle cx="{px(x):.1f}" cy="{py(ty(y)):.1f}" r="2.4" '
                f'fill="{color}"/>'
            )
        legend_y = _MARGIN_TOP + 8 + i * 15
        legend_x = x0 + plot_w - 120
        parts.append(
            f'<line x1="{legend_x}" y1="{legend_y}" x2="{legend_x + 18}" '
            f'y2="{legend_y}" stroke="{color}" stroke-width="1.8"/>'
        )
        parts.append(
            f'<text x="{legend_x + 23}" y="{legend_y + 3.5}" font-size="10" '
            f'font-family="sans-serif">{name}</text>'
        )

    parts.append("</svg>")
    svg = "\n".join(parts)
    if path is not None:
        with open(path, "w", encoding="utf-8") as f:
            f.write(svg)
    return svg
