"""Top-k / incremental RCJ, ordered by ring diameter.

The paper's tourist-recommendation application browses "the sorted list
of RCJ results" in ascending order of ring diameter.  Computing the
whole join and sorting works, but the R-tree substrate supports better:
candidate pairs can be *enumerated* in ascending distance (the
incremental distance join) and the ring diameter of a pair equals that
distance, so verifying pairs as they stream out yields RCJ results in
sorted order — lazily, stopping after ``k`` without computing the rest.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.pairs import Candidate, RCJPair
from repro.core.verification import verify_circles
from repro.joins.closest_pairs import incremental_closest_pairs
from repro.rtree.tree import RTree


def incremental_rcj(
    tree_p: RTree,
    tree_q: RTree,
    exclude_same_oid: bool = False,
) -> Iterator[RCJPair]:
    """Yield RCJ pairs in ascending ring-diameter order.

    Enumerates candidate pairs by pairwise distance from the synchronised
    R-tree heap and verifies each ring against both trees; valid pairs
    stream out immediately.  Diameter order is exactly pairwise-distance
    order, so the output is sorted.
    """
    for _dist, p, q in incremental_closest_pairs(tree_p, tree_q):
        if exclude_same_oid and p.oid == q.oid:
            continue
        candidate = Candidate(p, q)
        verify_circles(tree_p, [candidate])
        if candidate.alive:
            verify_circles(tree_q, [candidate])
        if candidate.alive:
            yield candidate.to_pair()


def top_k_rcj(
    tree_p: RTree,
    tree_q: RTree,
    k: int,
    exclude_same_oid: bool = False,
) -> list[RCJPair]:
    """The ``k`` smallest-diameter RCJ pairs (fewer if the join is
    smaller than ``k``).

    Drives the candidate stream directly and closes it the moment the
    ``k``-th pair verifies: not a single candidate is pulled (nor a
    node expanded) past the last yield, which keeps the node-access
    cost exactly proportional to the answer's neighbourhood.
    """
    if k <= 0:
        return []
    out: list[RCJPair] = []
    stream = incremental_rcj(tree_p, tree_q, exclude_same_oid)
    for pair in stream:
        out.append(pair)
        if len(out) == k:
            # GeneratorExit propagates into the inner distance-join
            # generator immediately — its heap is finalized here, not
            # whenever garbage collection gets around to it.
            stream.close()
            break
    return out
