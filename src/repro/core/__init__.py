"""The ring-constrained join: the paper's primary contribution.

Public entry points:

- :func:`~repro.core.brute.brute_force_rcj` — quadratic reference
  implementation (the correctness oracle);
- :func:`~repro.core.inj.inj` — Index Nested Loop Join (Algorithms 4/5);
- :func:`~repro.core.bij.bij` — Bulk Index Nested Loop Join
  (Algorithms 6/7); with ``symmetric=True`` it is the paper's OBJ;
- :func:`~repro.core.obj.obj` — convenience wrapper for OBJ;
- :func:`~repro.core.gabriel.gabriel_rcj` — main-memory comparator via
  the Delaunay/Gabriel-graph equivalence;
- :func:`~repro.core.selfjoin.self_rcj` — the self-join variant (both
  inputs are the same pointset, e.g. the postboxes application);
- :func:`~repro.core.metric_rcj.metric_rcj` — the ring constraint under
  L1 / L∞ metrics (the paper's future-work generalisation).
"""

from repro.core.bij import bij, bulk_filter
from repro.core.brute import brute_force_rcj, brute_candidate_count
from repro.core.filtering import filter_candidates
from repro.core.gabriel import gabriel_rcj
from repro.core.inj import inj
from repro.core.metric_rcj import metric_rcj
from repro.core.obj import obj
from repro.core.pairs import Candidate, JoinReport, RCJPair
from repro.core.selfjoin import self_rcj
from repro.core.topk import incremental_rcj, top_k_rcj
from repro.core.verification import verify_circles

__all__ = [
    "Candidate",
    "JoinReport",
    "RCJPair",
    "bij",
    "brute_candidate_count",
    "brute_force_rcj",
    "bulk_filter",
    "filter_candidates",
    "gabriel_rcj",
    "incremental_rcj",
    "inj",
    "metric_rcj",
    "obj",
    "self_rcj",
    "top_k_rcj",
    "verify_circles",
]
