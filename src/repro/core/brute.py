"""Brute-force RCJ: the quadratic reference implementation.

The paper's BRUTE baseline performs a nested-loop join and verifies
every pair with a range search, taking the full Cartesian product as its
candidate set.  Here it doubles as the *correctness oracle* for every
other algorithm: it evaluates the exact dot-product form of the ring
predicate — ``x`` is strictly inside the circle with diameter ``pq`` iff
``(x - p) . (x - q) < 0`` — the same arithmetic (element-wise in numpy)
used by :class:`~repro.geometry.ring.Ring`, so results match the R-tree
algorithms bit-for-bit.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.pairs import RCJPair
from repro.geometry.point import Point


def brute_candidate_count(size_p: int, size_q: int) -> int:
    """Candidate pairs examined by BRUTE: the full ``|P| x |Q|`` product
    (Table 4's first row)."""
    return size_p * size_q


def brute_force_rcj(
    points_p: Sequence[Point],
    points_q: Sequence[Point],
    exclude_same_oid: bool = False,
) -> list[RCJPair]:
    """Compute the RCJ result by exhaustive verification.

    Quadratic in the input — intended for oracles, small workloads and
    the BRUTE baseline row.

    Parameters
    ----------
    points_p, points_q:
        The two datasets.
    exclude_same_oid:
        Skip pairs whose endpoints carry the same ``oid`` — used by the
        self-join, where both inputs are the same pointset.
    """
    if not points_p or not points_q:
        return []

    coords = np.array(
        [(pt.x, pt.y) for pt in points_p] + [(pt.x, pt.y) for pt in points_q],
        dtype=np.float64,
    )
    xs = coords[:, 0]
    ys = coords[:, 1]

    results: list[RCJPair] = []
    for p in points_p:
        # Hoist the p-dependent differences out of the inner loop.
        dx_p = xs - p.x
        dy_p = ys - p.y
        for q in points_q:
            if exclude_same_oid and p.oid == q.oid:
                continue
            # (x - p) . (x - q) < 0  <=>  x strictly inside the ring;
            # endpoints contribute exactly zero and never block.
            dots = dx_p * (xs - q.x) + dy_p * (ys - q.y)
            if not np.any(dots < 0.0):
                results.append(RCJPair(p, q))
    return results
