"""The Filter step (paper, Algorithm 2).

For a join point ``q`` the filter retrieves the set ``S`` of points of
``P`` that can possibly form RCJ pairs with ``q``.  It ranks R-tree
entries by MINDIST from ``q`` (the incremental-NN order, which maximises
pruning power: near points are discovered first and their Ψ− regions are
large) and discards any entry — point or whole subtree — that lies
entirely inside the Ψ− region of an already-discovered point (Lemmas 1
and 3).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Sequence

from repro.geometry.halfplane import HalfPlane
from repro.geometry.point import Point
from repro.rtree.tree import RTree


def filter_candidates(
    q: Point,
    tree_p: RTree,
    extra_prune_points: Sequence[Point] = (),
    exclude_same_oid: bool = False,
) -> list[Point]:
    """Candidates of ``P`` that may join with ``q`` (Algorithm 2).

    Parameters
    ----------
    q:
        The probe point (from ``Q``).
    tree_p:
        R-tree over ``P``.
    extra_prune_points:
        Additional points usable for pruning but not candidate
        themselves — the symmetric rule of Lemma 5 passes other points
        of ``Q`` here.
    exclude_same_oid:
        Drop candidates sharing ``q``'s oid (self-join mode).  Such a
        point still cannot prune anything: its Ψ− region is degenerate.

    Returns
    -------
    The candidate list, in ascending distance from ``q``.
    """
    candidates: list[Point] = []
    planes: list[HalfPlane] = []
    for extra in extra_prune_points:
        plane = HalfPlane.psi_minus(q, extra)
        if not plane.is_degenerate():
            planes.append(plane)

    if tree_p.root_pid is None:
        return candidates

    counter = itertools.count()
    # Heap of (mindist_sq, tiebreak, is_point, payload); payload is a
    # child page id for subtree items and a Point for data items.
    heap: list[tuple[float, int, bool, object]] = [
        (0.0, next(counter), False, tree_p.root_pid)
    ]
    while heap:
        _dist, _tie, is_point, payload = heapq.heappop(heap)
        if is_point:
            p: Point = payload  # type: ignore[assignment]
            if any(pl.contains_point(p.x, p.y) for pl in planes):
                continue
            if exclude_same_oid and p.oid == q.oid:
                continue
            candidates.append(p)
            plane = HalfPlane.psi_minus(q, p)
            if not plane.is_degenerate():
                planes.append(plane)
            continue
        node = tree_p.read_node(payload)  # type: ignore[arg-type]
        if node.is_leaf:
            for pt in node.entries:
                dx, dy = pt.x - q.x, pt.y - q.y
                heapq.heappush(
                    heap, (dx * dx + dy * dy, next(counter), True, pt)
                )
        else:
            for b in node.entries:
                if any(pl.contains_rect(b.rect) for pl in planes):
                    continue
                heapq.heappush(
                    heap,
                    (b.rect.mindist_sq(q.x, q.y), next(counter), False, b.child),
                )
    return candidates
