"""Cost accounting shared by the join algorithms.

Wraps an algorithm execution with snapshots of the logical node-access
counters of both trees and of the shared buffer's fault counters, and
converts them into a :class:`~repro.core.pairs.JoinReport` using the
paper's cost model (10 ms per page fault by default).
"""

from __future__ import annotations

import time

from repro.core.pairs import JoinReport
from repro.rtree.tree import RTree
from repro.storage.stats import CostModel, IOStats


class JoinAccounting:
    """Collects cost counters around one join execution."""

    def __init__(
        self,
        algorithm: str,
        trees: list[RTree],
        cost_model: CostModel | None = None,
    ):
        self.algorithm = algorithm
        self.trees = trees
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self._node_access_start = [t.node_accesses for t in trees]
        # Buffers may be shared between trees; account each once.
        self._buffers = []
        seen: set[int] = set()
        for t in trees:
            if t.buffer is not None and id(t.buffer) not in seen:
                seen.add(id(t.buffer))
                self._buffers.append(t.buffer)
        self._buffer_start = [b.stats.snapshot() for b in self._buffers]
        self._t0 = time.perf_counter()

    def finish(self, report: JoinReport) -> JoinReport:
        """Fill the cost fields of ``report`` and return it."""
        elapsed = time.perf_counter() - self._t0
        report.algorithm = self.algorithm
        report.node_accesses = sum(
            t.node_accesses - s for t, s in zip(self.trees, self._node_access_start)
        )
        faults = IOStats()
        for buffer, start in zip(self._buffers, self._buffer_start):
            delta = buffer.stats.delta(start)
            faults.page_faults += delta.page_faults
            faults.buffer_hits += delta.buffer_hits
        report.page_faults = faults.page_faults
        report.buffer_hits = faults.buffer_hits
        report.io_seconds = self.cost_model.io_seconds(faults)
        report.cpu_seconds = elapsed
        report.modeled_cpu_seconds = self.cost_model.cpu_seconds(
            report.node_accesses
        )
        return report
