"""The ring constraint under alternative metrics (paper future work).

The paper's Section 6 proposes generalising the ring constraint beyond
Euclidean space, naming the Manhattan distance explicitly.  Here the
"ring" of a pair becomes the metric ball centred at the coordinate
midpoint with radius ``d(p, q) / 2``; a pair joins when no other point
of ``P ∪ Q`` lies strictly inside that ball.  Under L2 the ball is the
classic enclosing circle, so ``metric_rcj(..., "l2")`` coincides with
the standard RCJ (property-tested against the oracle).

The Euclidean pruning lemmas (perpendicular-bisector half-planes) do not
transfer to L1/L∞ geometry, so this implementation verifies each pair's
ball directly against a :class:`~repro.grid.index.GridIndex` — a sound,
exploratory algorithm rather than an optimised one.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.pairs import RCJPair
from repro.geometry.enclosing import enclosing_circle
from repro.geometry.metrics import get_metric
from repro.geometry.point import Point
from repro.grid.index import GridIndex


def metric_rcj(
    points_p: Sequence[Point],
    points_q: Sequence[Point],
    metric: str = "l2",
    exclude_same_oid: bool = False,
) -> list[RCJPair]:
    """Ring-constrained join under the named metric.

    Parameters
    ----------
    points_p, points_q:
        The two datasets.
    metric:
        ``"l1"``, ``"l2"`` or ``"linf"`` (plus aliases; see
        :func:`repro.geometry.metrics.get_metric`).
    exclude_same_oid:
        Self-join mode.

    Returns
    -------
    Result pairs.  The attached circle is always the *Euclidean*
    enclosing circle of the pair (the middleman location is the midpoint
    in every supported metric); the join predicate uses the requested
    metric's ball.
    """
    if not points_p or not points_q:
        return []
    m = get_metric(metric)
    grid = GridIndex(list(points_p) + list(points_q))

    results: list[RCJPair] = []
    for p in points_p:
        for q in points_q:
            if exclude_same_oid and p.oid == q.oid:
                continue
            ball = m.pair_ball(p, q)
            occupied = grid.any_point_where(
                ball.bounding_rect(),
                lambda pt, b=ball: b.contains_point(pt.x, pt.y),
            )
            if not occupied:
                results.append(RCJPair(p, q, enclosing_circle(p, q)))
    return results
