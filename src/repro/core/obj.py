"""OBJ — Optimized Bulk Index Nested Loop Join (paper, Section 4.2).

OBJ is BIJ with the symmetric pruning rule of Lemma 5: points of the
same ``TQ`` leaf prune each other's search space before any ``P`` point
has been discovered.  It is the paper's best algorithm across every
experiment.
"""

from __future__ import annotations

from repro.core.bij import bij
from repro.core.pairs import JoinReport
from repro.rtree.tree import RTree
from repro.storage.stats import CostModel


def obj(
    tree_q: RTree,
    tree_p: RTree,
    verify: bool = True,
    exclude_same_oid: bool = False,
    cost_model: CostModel | None = None,
) -> JoinReport:
    """Compute the RCJ with BIJ plus symmetric pruning (Lemma 5)."""
    return bij(
        tree_q,
        tree_p,
        symmetric=True,
        verify=verify,
        exclude_same_oid=exclude_same_oid,
        cost_model=cost_model,
    )
