"""The Verification step (paper, Algorithm 3).

Candidate circles are verified concurrently against one R-tree.  At a
non-leaf entry a candidate dies when the entry's MBR has a whole face
strictly inside the circle (the MBR property guarantees a data point on
every face); a subtree is descended only when its MBR intersects at
least one live circle; at leaf entries the strict-interior containment
test is applied directly.

For large candidate sets a plane-sweep fast path narrows the
circle-vs-entry comparisons by x-interval overlap, as the paper suggests
("plane-sweep is an efficient method for detecting the intersection
between two groups of rectangles").
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Sequence

from repro.core.pairs import Candidate
from repro.rtree.tree import RTree

#: Below this many live candidates the simple nested loop beats the
#: sweep's sorting overhead.
_SWEEP_THRESHOLD = 16


def _verify_node(tree: RTree, pid: int, cands: list[Candidate]) -> None:
    node = tree.read_node(pid)
    if node.is_leaf:
        for p in node.entries:
            for cand in cands:
                if cand.alive and cand.circle.contains_point(p.x, p.y):
                    cand.alive = False
        return
    for b in node.entries:
        sub: list[Candidate] = []
        for cand in cands:
            if not cand.alive:
                continue
            circle = cand.circle
            if not circle.intersects_rect(b.rect):
                continue
            if circle.contains_rect_face(b.rect):
                cand.alive = False
                continue
            sub.append(cand)
        if sub:
            _verify_node(tree, b.child, sub)


def _verify_node_sweep(tree: RTree, pid: int, cands: list[Candidate]) -> None:
    """Same semantics as :func:`_verify_node` with an x-interval index.

    Candidates are sorted by the left edge of their circle's bounding
    box; for each node entry only candidates whose x-interval overlaps
    the entry's are examined.
    """
    node = tree.read_node(pid)
    ordered = sorted(cands, key=lambda c: c.circle.cx - c.circle.r)
    starts = [c.circle.cx - c.circle.r for c in ordered]

    def overlapping(xmin: float, xmax: float) -> list[Candidate]:
        # Candidates with start <= xmax whose interval reaches xmin.
        hi = bisect_left(starts, xmax, 0, len(starts))
        out = []
        for i in range(hi):
            c = ordered[i]
            if c.alive and c.circle.cx + c.circle.r >= xmin:
                out.append(c)
        return out

    if node.is_leaf:
        for p in node.entries:
            for cand in overlapping(p.x, p.x):
                if cand.circle.contains_point(p.x, p.y):
                    cand.alive = False
        return
    for b in node.entries:
        sub: list[Candidate] = []
        for cand in overlapping(b.rect.xmin, b.rect.xmax):
            circle = cand.circle
            if not circle.intersects_rect(b.rect):
                continue
            if circle.contains_rect_face(b.rect):
                cand.alive = False
                continue
            sub.append(cand)
        if sub:
            _verify_node(tree, b.child, sub)


def verify_circles(tree: RTree, candidates: Sequence[Candidate]) -> None:
    """Kill every candidate whose circle strictly contains a point of
    ``tree`` (Algorithm 3).  Mutates ``alive`` flags in place."""
    live = [c for c in candidates if c.alive]
    if not live or tree.root_pid is None:
        return
    if len(live) >= _SWEEP_THRESHOLD:
        _verify_node_sweep(tree, tree.root_pid, live)
    else:
        _verify_node(tree, tree.root_pid, live)
