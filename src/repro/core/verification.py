"""The Verification step (paper, Algorithm 3).

Candidate circles are verified concurrently against one R-tree.  At a
non-leaf entry a candidate dies when the entry's MBR has a whole face
strictly inside the circle (the MBR property guarantees a data point on
every face); a subtree is descended only when its MBR intersects at
least one live circle; at leaf entries the strict-interior containment
test is applied directly.

For large candidate sets a plane-sweep fast path narrows the
circle-vs-entry comparisons by x-interval overlap, as the paper suggests
("plane-sweep is an efficient method for detecting the intersection
between two groups of rectangles").

Leaf batching
-------------
Leaf-level containment — the hot, all-pairs part of the traversal — is
routed through the vectorized batch kernel
(:func:`repro.engine.kernels.verify_rings_batch`) whenever enough
candidates are live: one KD-tree ball query over the leaf's points and
one vectorized evaluation of the *same* exact dot predicate replace the
per-circle Python loop.  A candidate dies at a leaf iff some leaf point
lies strictly inside its ring, and that decision is independent of the
order the leaf's points are examined in, so batching changes no
aliveness outcome, no descent decision, and therefore no node-access or
page-fault figure: the R-tree algorithms keep charging the paper's
cost model unchanged (the accounting-regression pins stay bit-exact)
while verification stops being circle-at-a-time.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Sequence

from repro.core.pairs import Candidate
from repro.rtree.tree import RTree

#: Below this many live candidates the simple nested loop beats the
#: sweep's sorting overhead.
_SWEEP_THRESHOLD = 16

#: Minimum live-candidate x leaf-point volume for the batch kernel;
#: under it the numpy/KD-tree setup costs more than the plain loop.
_BATCH_LEAF_WORK = 256


def _verify_leaf(entries, cands: list[Candidate]) -> None:
    """Kill candidates containing a leaf point, batched when worthwhile.

    Semantically identical to the per-circle loop — a candidate dies iff
    some entry lies strictly inside its ring, under the same IEEE dot
    predicate — so the traversal above sees the exact same aliveness
    whichever path ran.
    """
    live = [c for c in cands if c.alive]
    if not live or not entries:
        return
    if len(live) * len(entries) < _BATCH_LEAF_WORK:
        for p in entries:
            for cand in live:
                if cand.alive and cand.circle.contains_point(p.x, p.y):
                    cand.alive = False
        return
    # Imported lazily: the core layer must not pull the numpy/scipy
    # engine stack in at import time.
    import numpy as np
    from scipy.spatial import cKDTree

    from repro.engine.kernels import verify_rings_batch

    m = len(live)
    px = np.fromiter((c.circle.px for c in live), np.float64, count=m)
    py = np.fromiter((c.circle.py for c in live), np.float64, count=m)
    qx = np.fromiter((c.circle.qx for c in live), np.float64, count=m)
    qy = np.fromiter((c.circle.qy for c in live), np.float64, count=m)
    sx = np.fromiter((p.x for p in entries), np.float64, count=len(entries))
    sy = np.fromiter((p.y for p in entries), np.float64, count=len(entries))
    alive = verify_rings_batch(
        px, py, qx, qy, cKDTree(np.column_stack((sx, sy))), sx, sy
    )
    for cand, ok in zip(live, alive.tolist()):
        if not ok:
            cand.alive = False


def _verify_node(tree: RTree, pid: int, cands: list[Candidate]) -> None:
    node = tree.read_node(pid)
    if node.is_leaf:
        _verify_leaf(node.entries, cands)
        return
    for b in node.entries:
        sub: list[Candidate] = []
        for cand in cands:
            if not cand.alive:
                continue
            circle = cand.circle
            if not circle.intersects_rect(b.rect):
                continue
            if circle.contains_rect_face(b.rect):
                cand.alive = False
                continue
            sub.append(cand)
        if sub:
            _verify_node(tree, b.child, sub)


def _verify_node_sweep(tree: RTree, pid: int, cands: list[Candidate]) -> None:
    """Same semantics as :func:`_verify_node` with an x-interval index.

    Candidates are sorted by the left edge of their circle's bounding
    box; for each node entry only candidates whose x-interval overlaps
    the entry's are examined.
    """
    node = tree.read_node(pid)
    if node.is_leaf:
        # A point outside a candidate's x-interval cannot lie inside its
        # ring, so handing the whole leaf to the batch path tests a
        # superset of the sweep's (point, candidate) pairs with
        # identical kills — and needs no x-interval index at all.
        _verify_leaf(node.entries, cands)
        return

    ordered = sorted(cands, key=lambda c: c.circle.cx - c.circle.r)
    starts = [c.circle.cx - c.circle.r for c in ordered]

    def overlapping(xmin: float, xmax: float) -> list[Candidate]:
        # Candidates with start <= xmax whose interval reaches xmin.
        hi = bisect_left(starts, xmax, 0, len(starts))
        out = []
        for i in range(hi):
            c = ordered[i]
            if c.alive and c.circle.cx + c.circle.r >= xmin:
                out.append(c)
        return out

    for b in node.entries:
        sub: list[Candidate] = []
        for cand in overlapping(b.rect.xmin, b.rect.xmax):
            circle = cand.circle
            if not circle.intersects_rect(b.rect):
                continue
            if circle.contains_rect_face(b.rect):
                cand.alive = False
                continue
            sub.append(cand)
        if sub:
            _verify_node(tree, b.child, sub)


def verify_circles(tree: RTree, candidates: Sequence[Candidate]) -> None:
    """Kill every candidate whose circle strictly contains a point of
    ``tree`` (Algorithm 3).  Mutates ``alive`` flags in place."""
    live = [c for c in candidates if c.alive]
    if not live or tree.root_pid is None:
        return
    if len(live) >= _SWEEP_THRESHOLD:
        _verify_node_sweep(tree, tree.root_pid, live)
    else:
        _verify_node(tree, tree.root_pid, live)
