"""Result and accounting types shared by all RCJ algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.ring import Ring


class RCJPair:
    """One ring-constrained join result pair.

    Besides the pair itself the enclosing circle is part of the result:
    its centre is the derived *fair middleman location* and its radius
    (half the pair distance) the fairness radius, both of which the
    paper's applications consume directly.  The circle is derived
    lazily on first access: bulk joins materialise hundreds of
    thousands of pairs whose circles are never read, and the eager
    :class:`~repro.geometry.ring.Ring` construction used to dominate
    the vectorized engines' wall time.
    """

    __slots__ = ("p", "q", "_circle")

    def __init__(self, p: Point, q: Point, circle: Circle | None = None):
        self.p = p
        self.q = q
        self._circle = circle

    @property
    def circle(self) -> Circle:
        """The enclosing circle (derived from the endpoints on demand)."""
        if self._circle is None:
            self._circle = Ring.of_pair(self.p, self.q)
        return self._circle

    @property
    def center(self) -> tuple[float, float]:
        """The fair middleman location (circle centre)."""
        return self.circle.cx, self.circle.cy

    @property
    def radius(self) -> float:
        """Distance from the middleman location to either endpoint."""
        return self.circle.r

    @property
    def diameter(self) -> float:
        """The pair distance (sort key of the tourist-recommendation
        application)."""
        return 2.0 * self.circle.r

    def key(self) -> tuple[int, int]:
        """Identity of the pair as ``(p.oid, q.oid)``."""
        return (self.p.oid, self.q.oid)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RCJPair):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        return (
            f"RCJPair(p={self.p.oid}, q={self.q.oid}, "
            f"center=({self.circle.cx:.2f}, {self.circle.cy:.2f}), "
            f"r={self.circle.r:.2f})"
        )


class Candidate:
    """A candidate pair flowing through the verification step."""

    __slots__ = ("p", "q", "circle", "alive")

    def __init__(self, p: Point, q: Point):
        self.p = p
        self.q = q
        self.circle = Ring.of_pair(p, q)
        self.alive = True

    def to_pair(self) -> RCJPair:
        """Promote a surviving candidate to a result pair."""
        return RCJPair(self.p, self.q, self.circle)

    def __repr__(self) -> str:
        state = "alive" if self.alive else "pruned"
        return f"Candidate(p={self.p.oid}, q={self.q.oid}, {state})"


@dataclass
class JoinReport:
    """Everything an RCJ algorithm reports about one execution.

    Cost figures follow the paper's model: ``io_seconds`` charges a
    fixed cost per page fault observed at the shared buffer;
    ``cpu_seconds`` is the measured wall-clock time of the computation;
    ``node_accesses`` counts logical R-tree node reads (the paper notes
    CPU time "roughly models the total number ... of R-tree node
    accesses").
    """

    algorithm: str
    pairs: list[RCJPair] = field(default_factory=list)
    candidate_count: int = 0
    node_accesses: int = 0
    page_faults: int = 0
    buffer_hits: int = 0
    cpu_seconds: float = 0.0
    io_seconds: float = 0.0
    modeled_cpu_seconds: float = 0.0
    #: The cost-based planner's decision record
    #: (:class:`repro.parallel.costmodel.ExecutionPlan`) when the join
    #: ran through ``engine="auto"``; None for explicit dispatch.  Auto
    #: runs of the memory engines carry the measured per-stage wall
    #: times on the plan itself (``plan.measured``), pairing the
    #: planner's estimates with what actually happened.
    plan: object | None = None
    #: Measured per-stage wall seconds of the memory engines
    #: (``candidate`` / ``prune`` / ``verify``), recorded for explicit
    #: and planned dispatch alike; empty for the R-tree backend, whose
    #: cost accounting is the paper's node/fault model instead.  When a
    #: trace was captured these totals are derived from its stage spans
    #: (:func:`repro.obs.trace.stage_totals`).
    stage_seconds: dict = field(default_factory=dict)
    #: Worker processes that actually executed the join: 1 for every
    #: serial engine *and* for parallel requests that fell back to the
    #: in-process path — distinct from the requested/planned count,
    #: which is what makes calibration observations honest.
    workers_used: int | None = None
    #: The captured trace tree (:class:`repro.obs.trace.Span`) of this
    #: execution, or None when tracing was disabled (``REPRO_TRACE=0``).
    trace: object | None = None

    @property
    def result_count(self) -> int:
        """Number of result pairs."""
        return len(self.pairs)

    @property
    def total_seconds(self) -> float:
        """Wall-clock CPU plus modelled I/O time."""
        return self.cpu_seconds + self.io_seconds

    @property
    def modeled_total_seconds(self) -> float:
        """Fully modelled time: per-fault I/O charge plus per-node-access
        CPU charge (the paper's own accounting, host-independent)."""
        return self.modeled_cpu_seconds + self.io_seconds

    def pair_keys(self) -> set[tuple[int, int]]:
        """Result identity set for resemblance / equality comparisons."""
        return {pair.key() for pair in self.pairs}

    def __repr__(self) -> str:
        return (
            f"JoinReport({self.algorithm}: results={self.result_count}, "
            f"candidates={self.candidate_count}, node_accesses={self.node_accesses}, "
            f"faults={self.page_faults}, cpu={self.cpu_seconds:.3f}s, "
            f"io={self.io_seconds:.3f}s)"
        )
