"""Main-memory RCJ via the Gabriel-graph equivalence.

The RCJ condition — the circle with diameter ``pq`` contains no other
point of ``P ∪ Q`` strictly inside — is exactly the *Gabriel graph*
edge condition over ``P ∪ Q``.  Since every Gabriel edge is a Delaunay
edge (for points in general position), the RCJ result can be computed
in main memory by:

1. building the Delaunay triangulation of the distinct coordinates of
   ``P ∪ Q`` (scipy/Qhull);
2. keeping the Delaunay edges whose diameter circle is empty — blocker
   candidates come from a slightly inflated KD-tree ball query and are
   confirmed with the exact dot-product predicate shared with the
   oracle (see :mod:`repro.geometry.ring`);
3. emitting the bichromatic pairs of each surviving edge, plus the
   pairs of coincident ``P``/``Q`` points (their circle has radius zero
   and is trivially empty).

This is not one of the paper's algorithms — it serves as an independent
comparator for correctness testing and as a main-memory performance
ablation (it has no I/O model and assumes the data fits in RAM).
Degenerate inputs (fewer than 3 distinct locations, all collinear) fall
back to the brute-force oracle.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np
from scipy.spatial import Delaunay, QhullError, cKDTree

from repro.core.brute import brute_force_rcj
from repro.core.pairs import RCJPair
from repro.geometry.point import Point


def _coincident_pairs(
    groups: dict[tuple[float, float], tuple[list[Point], list[Point]]],
    exclude_same_oid: bool,
) -> list[RCJPair]:
    """Pairs of P/Q points sharing a coordinate (radius-zero circles)."""
    out: list[RCJPair] = []
    for p_members, q_members in groups.values():
        for p in p_members:
            for q in q_members:
                if exclude_same_oid and p.oid == q.oid:
                    continue
                out.append(RCJPair(p, q))
    return out


def recoverable_radius_bound(kdtree: cKDTree) -> float:
    """Largest circumradius a cocircular cluster can possibly have.

    A recoverable cluster's circle is the ring of some site pair, so
    its radius is at most half the site bounding-box diagonal; the 1e6
    headroom dwarfs every floating-point tolerance in play.  Simplices
    with larger (or nan/inf) circumradii are near-degenerate slivers
    that cannot hide a missed edge — and whose radii would overflow
    inside a KD-tree ball query.
    """
    spans = kdtree.maxes - kdtree.mins
    return 1e6 * (math.hypot(spans[0], spans[1]) + 1.0)


def recover_cocircular_pairs(
    sites, kdtree: cKDTree, centers_x, centers_y, radii
) -> set[tuple[int, int]]:
    """Pairwise site pairs of ≥4-site cocircular clusters.

    Shared cluster recovery used by this comparator and by the
    vectorized engine's Delaunay backstop
    (:func:`repro.engine.kernels._cocircular_site_pairs`): each
    candidate circle (``centers_x, centers_y, radii`` — typically
    triangle circumcircles) is probed with one batched KD-tree ball
    query; circles carrying four or more sites *exactly on* the circle
    (within a tolerance tied to the radius) form a cluster whose
    pairwise site pairs are emitted.  False pairs are harmless — every
    consumer re-checks candidates with the exact blocker predicate.
    """
    extra: set[tuple[int, int]] = set()
    if len(radii) == 0:
        return extra
    radii = np.asarray(radii, dtype=np.float64)
    tol = 1e-9 * (radii + 1.0)
    near_lists = kdtree.query_ball_point(
        np.column_stack((centers_x, centers_y)),
        radii + tol,
        return_sorted=False,
    )
    seen_clusters: set[tuple[int, ...]] = set()
    for i, near in enumerate(near_lists):
        if len(near) < 4:
            continue  # plain triangle: its edges are already candidates
        cx, cy, radius = centers_x[i], centers_y[i], radii[i]
        on_circle = [
            int(s)
            for s in near
            if abs(math.hypot(sites[s][0] - cx, sites[s][1] - cy) - radius)
            <= tol[i]
        ]
        if len(on_circle) < 4:
            continue
        cluster = tuple(sorted(on_circle))
        if cluster in seen_clusters:
            continue
        seen_clusters.add(cluster)
        for x in range(len(cluster)):
            for y in range(x + 1, len(cluster)):
                extra.add((cluster[x], cluster[y]))
    return extra


def _cocircular_cluster_pairs(tri, sites, kdtree) -> set[tuple[int, int]]:
    """Candidate edges missed by the triangulation under cocircular ties.

    "Every Gabriel edge is a Delaunay edge" fails for degenerate inputs
    with the strict predicate: when four or more points lie exactly on
    an empty circle, *all* their pairwise diametral edges whose open
    disk is otherwise empty qualify (e.g. both crossing diagonals of a
    unit lattice cell), but a triangulation keeps only some of them.
    Any such edge lives on a cocircular face of the Delaunay *complex*,
    and every triangle qhull carved out of that face has the whole
    cluster on its circumcircle — so scanning triangle circumcircles
    recovers the clusters (:func:`recover_cocircular_pairs`), and
    emitting each cluster's pairwise index pairs as extra candidates
    restores completeness.
    """
    max_radius = recoverable_radius_bound(kdtree)
    centers_x: list[float] = []
    centers_y: list[float] = []
    radii: list[float] = []
    for simplex in tri.simplices:
        pa, pb, pc = (sites[int(v)] for v in simplex)
        # Circumcenter via the perpendicular-bisector linear system.
        d = 2.0 * (
            pa[0] * (pb[1] - pc[1])
            + pb[0] * (pc[1] - pa[1])
            + pc[0] * (pa[1] - pb[1])
        )
        if d == 0.0:  # degenerate sliver; no circumcircle
            continue
        sq_a = pa[0] * pa[0] + pa[1] * pa[1]
        sq_b = pb[0] * pb[0] + pb[1] * pb[1]
        sq_c = pc[0] * pc[0] + pc[1] * pc[1]
        ux = (
            sq_a * (pb[1] - pc[1])
            + sq_b * (pc[1] - pa[1])
            + sq_c * (pa[1] - pb[1])
        ) / d
        uy = (
            sq_a * (pc[0] - pb[0])
            + sq_b * (pa[0] - pc[0])
            + sq_c * (pb[0] - pa[0])
        ) / d
        radius = math.hypot(pa[0] - ux, pa[1] - uy)
        if not (radius <= max_radius):  # False for nan/inf too
            continue
        centers_x.append(ux)
        centers_y.append(uy)
        radii.append(radius)
    return recover_cocircular_pairs(sites, kdtree, centers_x, centers_y, radii)


def gabriel_rcj(
    points_p: Sequence[Point],
    points_q: Sequence[Point],
    exclude_same_oid: bool = False,
) -> list[RCJPair]:
    """Compute the RCJ result in main memory via Delaunay + Gabriel test.

    Matches :func:`~repro.core.brute.brute_force_rcj` exactly (shared
    strict-containment convention) but runs in near ``O(n log n)``.
    """
    if not points_p or not points_q:
        return []

    # Group points by exact coordinates; Delaunay requires unique sites.
    groups: dict[tuple[float, float], tuple[list[Point], list[Point]]] = {}
    for p in points_p:
        groups.setdefault((p.x, p.y), ([], []))[0].append(p)
    for q in points_q:
        groups.setdefault((q.x, q.y), ([], []))[1].append(q)

    coords = list(groups)
    results = _coincident_pairs(groups, exclude_same_oid)

    if len(coords) < 4:
        # Too few distinct sites for a robust triangulation.
        distinct = brute_force_rcj(points_p, points_q, exclude_same_oid)
        seen = {pair.key() for pair in results}
        results.extend(p for p in distinct if p.key() not in seen)
        return results

    sites = np.asarray(coords, dtype=np.float64)
    try:
        tri = Delaunay(sites)
    except QhullError:
        distinct = brute_force_rcj(points_p, points_q, exclude_same_oid)
        seen = {pair.key() for pair in results}
        results.extend(p for p in distinct if p.key() not in seen)
        return results

    edges: set[tuple[int, int]] = set()
    for simplex in tri.simplices:
        a, b, c = int(simplex[0]), int(simplex[1]), int(simplex[2])
        edges.add((a, b) if a < b else (b, a))
        edges.add((a, c) if a < c else (c, a))
        edges.add((b, c) if b < c else (c, b))

    kdtree = cKDTree(sites)
    edges |= _cocircular_cluster_pairs(tri, sites, kdtree)
    for i, j in edges:
        gi = groups[coords[i]]
        gj = groups[coords[j]]
        # Bichromatic members on both sides; skip monochromatic edges.
        has_pairs = (gi[0] and gj[1]) or (gj[0] and gi[1])
        if not has_pairs:
            continue
        ax, ay = float(sites[i][0]), float(sites[i][1])
        bx, by = float(sites[j][0]), float(sites[j][1])
        cx, cy = (ax + bx) / 2.0, (ay + by) / 2.0
        r = math.hypot(ax - bx, ay - by) / 2.0
        # Candidate blockers from a slightly inflated KD-tree ball, then
        # the exact dot predicate shared with the oracle: a site is
        # strictly inside iff (s - a) . (s - b) < 0 (endpoints give
        # exactly zero and are excluded automatically).
        near = kdtree.query_ball_point([cx, cy], r * (1.0 + 1e-7) + 1e-12)
        blocked = False
        for s in near:
            sx, sy = float(sites[s][0]), float(sites[s][1])
            if (sx - ax) * (sx - bx) + (sy - ay) * (sy - by) < 0.0:
                blocked = True
                break
        if blocked:
            continue
        for p in gi[0]:
            for q in gj[1]:
                if exclude_same_oid and p.oid == q.oid:
                    continue
                results.append(RCJPair(p, q))
        for p in gj[0]:
            for q in gi[1]:
                if exclude_same_oid and p.oid == q.oid:
                    continue
                results.append(RCJPair(p, q))
    return results
