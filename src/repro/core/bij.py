"""Bulk Index Nested Loop Join — BIJ and OBJ (paper, Section 4).

BIJ (Algorithms 6/7) computes RCJ pairs for *all* points of a ``TQ``
leaf concurrently: one traversal of ``TP`` (ordered by MINDIST from the
leaf's centroid) feeds every point's candidate set, and one verification
pass serves all the leaf's circles.  This cuts the number of tree
traversals from ``|Q|`` to the number of ``TQ`` leaves.

OBJ is BIJ plus the *symmetric pruning rule* (Lemma 5): the other points
of the same leaf — already in memory, costing no extra I/O — prune the
search space of each ``q`` exactly like discovered ``P`` points do.
"""

from __future__ import annotations

from repro.core.accounting import JoinAccounting
from repro.core.pairs import Candidate, JoinReport
from repro.core.verification import verify_circles
from repro.geometry.halfplane import HalfPlane
from repro.geometry.point import Point
from repro.rtree.tree import RTree
from repro.storage.stats import CostModel

import heapq
import itertools


def bulk_filter(
    group: list[Point],
    tree_p: RTree,
    symmetric: bool = False,
    exclude_same_oid: bool = False,
) -> dict[Point, list[Point]]:
    """The Bulk Filter (Algorithm 7): candidates for a whole leaf group.

    Parameters
    ----------
    group:
        The points of one ``TQ`` leaf (the paper's set ``V``).
    tree_p:
        R-tree over the inner dataset ``P``.
    symmetric:
        Apply Lemma 5: seed each point's pruning set with the other
        points of ``group`` (the OBJ optimisation).
    exclude_same_oid:
        Self-join mode.

    Returns
    -------
    Mapping from each ``q`` of ``group`` to its candidate list ``q.S``.
    """
    candidate_sets: dict[Point, list[Point]] = {q: [] for q in group}
    planes: dict[Point, list[HalfPlane]] = {q: [] for q in group}
    if symmetric:
        for q in group:
            for other in group:
                if other is q:
                    continue
                plane = HalfPlane.psi_minus(q, other)
                if not plane.is_degenerate():
                    planes[q].append(plane)

    if tree_p.root_pid is None or not group:
        return candidate_sets

    # Entries of TP are visited in ascending MINDIST from the group
    # centroid (Algorithm 7, line 2).
    cen_x = sum(q.x for q in group) / len(group)
    cen_y = sum(q.y for q in group) / len(group)

    counter = itertools.count()
    heap: list[tuple[float, int, bool, object]] = [
        (0.0, next(counter), False, tree_p.root_pid)
    ]
    while heap:
        _dist, _tie, is_point, payload = heapq.heappop(heap)
        if is_point:
            p: Point = payload  # type: ignore[assignment]
            for q in group:
                if exclude_same_oid and p.oid == q.oid:
                    continue
                if any(pl.contains_point(p.x, p.y) for pl in planes[q]):
                    continue
                candidate_sets[q].append(p)
                plane = HalfPlane.psi_minus(q, p)
                if not plane.is_degenerate():
                    planes[q].append(plane)
            continue
        node = tree_p.read_node(payload)  # type: ignore[arg-type]
        if node.is_leaf:
            for pt in node.entries:
                dx, dy = pt.x - cen_x, pt.y - cen_y
                heapq.heappush(
                    heap, (dx * dx + dy * dy, next(counter), True, pt)
                )
        else:
            for b in node.entries:
                # Discard the subtree only when every q can prune it
                # (Algorithm 7, line 7).
                if all(
                    any(pl.contains_rect(b.rect) for pl in planes[q])
                    for q in group
                ):
                    continue
                heapq.heappush(
                    heap,
                    (
                        b.rect.mindist_sq(cen_x, cen_y),
                        next(counter),
                        False,
                        b.child,
                    ),
                )
    return candidate_sets


def bij(
    tree_q: RTree,
    tree_p: RTree,
    symmetric: bool = False,
    verify: bool = True,
    exclude_same_oid: bool = False,
    cost_model: CostModel | None = None,
) -> JoinReport:
    """Compute the RCJ with bulk per-leaf processing (Algorithm 6).

    With ``symmetric=True`` this is the paper's OBJ algorithm.  See
    :func:`repro.core.inj.inj` for the shared parameter semantics.
    """
    name = "OBJ" if symmetric else "BIJ"
    accounting = JoinAccounting(name, [tree_q, tree_p], cost_model)
    report = JoinReport(name)

    for pid in tree_q.leaf_pids():
        leaf = tree_q.read_node(pid)
        group = list(leaf.entries)
        candidate_sets = bulk_filter(
            group,
            tree_p,
            symmetric=symmetric,
            exclude_same_oid=exclude_same_oid,
        )
        candidates: list[Candidate] = []
        for q in group:
            candidates.extend(Candidate(p, q) for p in candidate_sets[q])
        report.candidate_count += len(candidates)
        if verify:
            verify_circles(tree_q, candidates)
            verify_circles(tree_p, candidates)
        report.pairs.extend(c.to_pair() for c in candidates if c.alive)

    return accounting.finish(report)
