"""The self-RCJ: both join inputs are the same pointset.

The paper's postboxes application is the self-join: "both sets P and Q
contain locations of all buildings".  A point never pairs with itself,
and since the predicate is symmetric each unordered pair is reported
once (with ``p.oid < q.oid``).
"""

from __future__ import annotations

from typing import Callable, Literal, Sequence

from repro.core.bij import bij
from repro.core.brute import brute_force_rcj
from repro.core.gabriel import gabriel_rcj
from repro.core.inj import inj
from repro.core.pairs import RCJPair
from repro.geometry.point import Point
from repro.rtree.bulk import bulk_load
from repro.rtree.tree import RTree

SelfAlgorithm = Literal[
    "inj", "bij", "obj", "brute", "gabriel", "array", "array-parallel", "auto"
]


def _dedupe_symmetric(pairs: Sequence[RCJPair]) -> list[RCJPair]:
    """Keep one representative per unordered pair, ordered by oid."""
    out: dict[tuple[int, int], RCJPair] = {}
    for pair in pairs:
        a, b = pair.p.oid, pair.q.oid
        key = (a, b) if a <= b else (b, a)
        if key not in out:
            if a <= b:
                out[key] = pair
            else:
                out[key] = RCJPair(pair.q, pair.p, pair.circle)
    return list(out.values())


def self_rcj(
    points: Sequence[Point],
    algorithm: SelfAlgorithm = "obj",
    tree: RTree | None = None,
    workers: int | None = None,
) -> list[RCJPair]:
    """Compute the self-RCJ of a pointset.

    Parameters
    ----------
    points:
        The dataset; ``oid`` values must be unique (they identify the
        endpoints of each reported pair).
    algorithm:
        One of ``"inj"``, ``"bij"``, ``"obj"`` (R-tree based),
        ``"brute"``, ``"gabriel"``, ``"array"`` (main memory),
        ``"array-parallel"`` (sharded worker pool) or ``"auto"``
        (cost-based planner).
    tree:
        Optional pre-built index over ``points``; built with STR bulk
        loading when omitted (only used by the R-tree algorithms).
    workers:
        Worker budget for ``"array-parallel"`` and ``"auto"`` (``None``
        = all cores).

    Returns
    -------
    Unordered result pairs, one per pair, with ``p.oid < q.oid``.
    """
    points = list(points)
    oids = {p.oid for p in points}
    if len(oids) != len(points):
        raise ValueError("self_rcj requires unique oids")

    if algorithm == "brute":
        return _dedupe_symmetric(
            brute_force_rcj(points, points, exclude_same_oid=True)
        )
    if algorithm == "gabriel":
        return _dedupe_symmetric(
            gabriel_rcj(points, points, exclude_same_oid=True)
        )
    if algorithm in ("array", "array-parallel", "auto"):
        # Imported lazily to keep the core layer import-light; the
        # engine subsystem pulls in numpy/scipy machinery.
        from repro.engine.planner import run_join

        report = run_join(
            points,
            points,
            algorithm=algorithm,
            workers=workers,
            exclude_same_oid=True,
        )
        return _dedupe_symmetric(report.pairs)

    if tree is None:
        tree = bulk_load(points, name="T_self")
    runner: Callable
    if algorithm == "inj":
        runner = lambda: inj(tree, tree, exclude_same_oid=True)  # noqa: E731
    elif algorithm == "bij":
        runner = lambda: bij(tree, tree, exclude_same_oid=True)  # noqa: E731
    elif algorithm == "obj":
        runner = lambda: bij(  # noqa: E731
            tree, tree, symmetric=True, exclude_same_oid=True
        )
    else:
        raise ValueError(f"unknown self-join algorithm {algorithm!r}")
    return _dedupe_symmetric(runner().pairs)
