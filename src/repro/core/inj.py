"""Index Nested Loop Join — INJ (paper, Algorithms 4 and 5).

For every point ``q`` of ``Q`` (visited in depth-first leaf order over
``TQ`` for buffer locality, Section 3.4): run the Filter step against
``TP`` to obtain candidates, build their enclosing circles, and verify
the circles against both trees.  Surviving candidates are exactly the
RCJ pairs of ``q`` (paper, Lemma 4: no false negatives, no false
positives, no duplicates).
"""

from __future__ import annotations

import random
from typing import Literal

from repro.core.accounting import JoinAccounting
from repro.core.filtering import filter_candidates
from repro.core.pairs import Candidate, JoinReport
from repro.core.verification import verify_circles
from repro.rtree.tree import RTree
from repro.storage.stats import CostModel

SearchOrder = Literal["depth_first", "random"]


def inj(
    tree_q: RTree,
    tree_p: RTree,
    search_order: SearchOrder = "depth_first",
    verify: bool = True,
    exclude_same_oid: bool = False,
    cost_model: CostModel | None = None,
    seed: int = 0,
) -> JoinReport:
    """Compute the RCJ of the pointsets indexed by ``tree_q``/``tree_p``.

    Parameters
    ----------
    tree_q:
        Index over the outer dataset ``Q`` whose leaves drive the loop.
    tree_p:
        Index over the inner dataset ``P`` probed by the Filter step.
    search_order:
        ``"depth_first"`` is the paper's locality-preserving order;
        ``"random"`` shuffles the leaf order (the strawman of
        Section 3.4, kept for the search-order ablation).
    verify:
        When False the verification step is skipped and *candidates* are
        reported as pairs — only meaningful for the Figure 14 cost
        ablation, where the paper measures the filter-only variant.
    exclude_same_oid:
        Self-join mode: a point never pairs with itself.
    cost_model:
        I/O charging model (defaults to 10 ms per fault).
    seed:
        Shuffle seed for the random search order.

    Returns
    -------
    A :class:`~repro.core.pairs.JoinReport` with result pairs and costs.
    """
    accounting = JoinAccounting("INJ", [tree_q, tree_p], cost_model)
    report = JoinReport("INJ")

    leaf_pids = tree_q.leaf_pids()
    if search_order == "random":
        random.Random(seed).shuffle(leaf_pids)
    elif search_order != "depth_first":
        raise ValueError(f"unknown search order {search_order!r}")

    for pid in leaf_pids:
        leaf = tree_q.read_node(pid)
        for q in leaf.entries:
            candidates = [
                Candidate(p, q)
                for p in filter_candidates(
                    q, tree_p, exclude_same_oid=exclude_same_oid
                )
            ]
            report.candidate_count += len(candidates)
            if verify:
                verify_circles(tree_q, candidates)
                verify_circles(tree_p, candidates)
            report.pairs.extend(c.to_pair() for c in candidates if c.alive)

    return accounting.finish(report)
