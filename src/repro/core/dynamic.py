"""Incremental RCJ maintenance under point insertions and deletions.

The decision-support applications of the paper (recycling stations,
postboxes, bus stops) face datasets that change: restaurants open,
buildings are demolished.  Recomputing the join from scratch per update
wastes the locality of the change — an update only affects pairs whose
ring interacts with the updated location.  :class:`DynamicRCJ` keeps
the result set current with local work per update:

Insertion of ``z``
    (i) every existing pair whose ring strictly contains ``z`` dies —
    found via a uniform grid over pair circles and confirmed with the
    exact ring predicate; (ii) new pairs all involve ``z`` (adding a
    point never validates a pair between others): its partners come
    from the paper's own Filter step against the opposite tree,
    verified against both trees.

Deletion of ``x``
    (i) pairs involving ``x`` die; (ii) pairs *freed* by ``x`` are
    those whose ring contained ``x`` and nothing else.  Shrinking such
    a ring towards either endpoint produces an empty circle through the
    endpoint and ``x``, so both endpoints are Delaunay neighbours of
    ``x`` in ``P ∪ Q``.  The neighbourhood is computed exactly, without
    a triangulation, by clipping ``x``'s Voronoi cell with bisectors of
    points streamed in ascending distance (merged incremental-NN over
    both trees): once the next point is farther than twice the farthest
    cell vertex, no remaining point can be a Delaunay neighbour.  All
    streamed points form the (slightly super-) candidate set; candidate
    bichromatic pairs with ``x`` strictly inside their ring are
    verified against both trees.

Every mutation is mirrored to the R*-trees (R* insert / condense-tree
delete), so the structure *is* the disk-resident index plus a derived
view — exactly what a decision-support deployment would keep.

Batched updates
---------------
Both backends also accept a whole batch at once
(:meth:`DynamicBackend.apply_batch`): deletes are applied before
inserts, so a "move" — delete and insert of the same oid in one batch —
is well defined.  This class applies the batch as the validated
sequential composition of its per-event updates (the *oracle* the
columnar backend's amortized batch path is equivalence-tested against);
:class:`repro.engine.streaming.DynamicArrayRCJ` absorbs the batch with
tombstone masks and an insert buffer, compacting at most once.  Batch
validation (:func:`validate_batch`) is shared so malformed batches fail
identically — *before* any mutation — on either backend.
"""

from __future__ import annotations

import heapq
import time
from typing import (
    Iterable,
    Iterator,
    Literal,
    Protocol,
    Sequence,
    runtime_checkable,
)

from repro.core.filtering import filter_candidates
from repro.core.gabriel import gabriel_rcj
from repro.core.pairs import Candidate, RCJPair
from repro.core.verification import verify_circles
from repro.geometry.point import Point
from repro.geometry.polygon import box_polygon, clip_halfplane
from repro.geometry.rect import Rect
from repro.obs.trace import trace as obs_trace
from repro.rtree.bulk import bulk_load
from repro.rtree.tree import RTree
from repro.storage.disk import DEFAULT_PAGE_SIZE

Side = Literal["P", "Q"]


@runtime_checkable
class DynamicBackend(Protocol):
    """The contract every dynamic-RCJ implementation satisfies.

    Two backends exist: :class:`DynamicRCJ` (this module — pointwise
    updates over disk-resident R*-trees) and
    :class:`repro.engine.streaming.DynamicArrayRCJ` (batched kernels
    over resident columns).  Both maintain the invariant that after any
    update sequence the pair set equals the from-scratch join of the
    current populations, so callers pick a backend — directly or via
    :func:`repro.engine.planner.make_dynamic` — on cost, never on
    semantics.

    ``delete`` of an absent oid raises ``KeyError`` naming the oid and
    side (and mutates nothing); it returns True on success.
    ``apply_batch`` absorbs one batch of ``(point, side)`` updates,
    deletes before inserts, after validating the whole batch with
    :func:`validate_batch`.
    """

    def insert(self, point: Point, side: Side) -> None: ...

    def delete(self, point: Point, side: Side) -> bool: ...

    def apply_batch(self, inserts=(), deletes=()) -> None: ...

    @property
    def pairs(self) -> list[RCJPair]: ...

    def pair_keys(self) -> set[tuple[int, int]]: ...

    def __len__(self) -> int: ...


def validate_batch(inserts, deletes, has_point) -> None:
    """Validate one update batch before any mutation happens.

    ``inserts``/``deletes`` are sequences of ``(point, side)``;
    ``has_point(side, oid)`` reports current membership.  The batch
    semantics are *deletes first, then inserts*, so deleting and
    inserting the same oid in one batch is a legal "move".  Everything
    else that would silently corrupt state is rejected up front:

    - an invalid side (``ValueError``),
    - the same ``(side, oid)`` deleted or inserted twice in one batch
      (``ValueError``),
    - deleting an oid that is not present (``KeyError``, naming it),
    - inserting an oid already present and *not* deleted in the same
      batch (``ValueError`` — a move must carry its delete).

    Both backends call this first, so a malformed batch fails
    identically everywhere and leaves the result untouched.
    """
    seen_deletes: set[tuple[str, int]] = set()
    for point, side in deletes:
        if side not in ("P", "Q"):
            raise ValueError(f"side must be 'P' or 'Q', got {side!r}")
        key = (side, point.oid)
        if key in seen_deletes:
            raise ValueError(
                f"duplicate delete of oid {point.oid} on side {side!r}"
                " in one batch"
            )
        seen_deletes.add(key)
        if not has_point(side, point.oid):
            raise KeyError(
                f"no point with oid {point.oid} on side {side!r}"
            )
    seen_inserts: set[tuple[str, int]] = set()
    for point, side in inserts:
        if side not in ("P", "Q"):
            raise ValueError(f"side must be 'P' or 'Q', got {side!r}")
        key = (side, point.oid)
        if key in seen_inserts:
            raise ValueError(
                f"duplicate insert of oid {point.oid} on side {side!r}"
                " in one batch"
            )
        seen_inserts.add(key)
        if has_point(side, point.oid) and key not in seen_deletes:
            raise ValueError(
                f"oid {point.oid} already present on side {side!r};"
                " delete it in the same batch to move it"
            )


#: Grid resolution of the pair-circle index.
_GRID_CELLS = 64


class _PairGrid:
    """Uniform grid over pair circles, for "rings containing (x, y)"
    lookups.  Pairs register in every cell their circle's bounding box
    overlaps; lookups return a candidate superset that the caller
    confirms with the exact predicate."""

    def __init__(self, bounds: Rect, cells: int = _GRID_CELLS):
        self.bounds = bounds
        self.cells = cells
        self._cell_w = max(bounds.xmax - bounds.xmin, 1e-9) / cells
        self._cell_h = max(bounds.ymax - bounds.ymin, 1e-9) / cells
        self._buckets: dict[tuple[int, int], set[tuple[int, int]]] = {}
        self._cells_of: dict[tuple[int, int], list[tuple[int, int]]] = {}

    def _cell_of(self, x: float, y: float) -> tuple[int, int]:
        ix = int((x - self.bounds.xmin) / self._cell_w)
        iy = int((y - self.bounds.ymin) / self._cell_h)
        last = self.cells - 1
        return (min(max(ix, 0), last), min(max(iy, 0), last))

    def add(self, key: tuple[int, int], pair: RCJPair) -> None:
        c = pair.circle
        lo = self._cell_of(c.cx - c.r, c.cy - c.r)
        hi = self._cell_of(c.cx + c.r, c.cy + c.r)
        cells = [
            (ix, iy)
            for ix in range(lo[0], hi[0] + 1)
            for iy in range(lo[1], hi[1] + 1)
        ]
        for cell in cells:
            self._buckets.setdefault(cell, set()).add(key)
        self._cells_of[key] = cells

    def remove(self, key: tuple[int, int]) -> None:
        for cell in self._cells_of.pop(key, ()):
            bucket = self._buckets.get(cell)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del self._buckets[cell]

    def keys_near(self, x: float, y: float) -> Iterable[tuple[int, int]]:
        """Candidate pair keys whose circle may contain ``(x, y)``."""
        return tuple(self._buckets.get(self._cell_of(x, y), ()))


class DynamicRCJ:
    """The RCJ result of two pointsets, maintained under updates.

    Parameters
    ----------
    points_p, points_q:
        Initial datasets (may be empty).
    bounds:
        Coordinate domain for the internal pair grid; the paper's
        ``[0, 10000]²`` by default.  Points outside are legal — edge
        cells absorb them with reduced lookup selectivity.
    page_size:
        Page size of the two backing R*-trees.
    """

    def __init__(
        self,
        points_p: Sequence[Point] = (),
        points_q: Sequence[Point] = (),
        bounds: Rect | None = None,
        page_size: int = DEFAULT_PAGE_SIZE,
    ):
        self.bounds = bounds if bounds is not None else Rect(0, 0, 10000, 10000)
        self.tree_p = bulk_load(list(points_p), page_size=page_size, name="TP")
        self.tree_q = bulk_load(list(points_q), page_size=page_size, name="TQ")
        self._pairs: dict[tuple[int, int], RCJPair] = {}
        self._grid = _PairGrid(self.bounds)
        self._oids: dict[str, set[int]] = {
            "P": {p.oid for p in points_p},
            "Q": {q.oid for q in points_q},
        }
        #: Set by :func:`repro.engine.planner.make_dynamic` on planned
        #: (``backend="auto"``) instances: batches then feed the
        #: calibration observation log.
        self.record_calibration = False
        #: Root span of the last ``apply_batch`` (None when tracing is
        #: off) — the CLI's ``--trace`` sink reads it after each batch.
        self.last_batch_trace = None
        for pair in gabriel_rcj(list(points_p), list(points_q)):
            self._store(pair)

    # ------------------------------------------------------------------
    # result access
    # ------------------------------------------------------------------
    @property
    def pairs(self) -> list[RCJPair]:
        """The current RCJ result (unordered)."""
        return list(self._pairs.values())

    def pair_keys(self) -> set[tuple[int, int]]:
        """Identity set of the current result."""
        return set(self._pairs)

    def __len__(self) -> int:
        return len(self._pairs)

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def insert(self, point: Point, side: Side) -> None:
        """Add ``point`` to dataset ``side`` and repair the result."""
        own, other = self._trees(side)
        if point.oid in self._oids[side]:
            raise ValueError(f"duplicate oid {point.oid} on one side")
        with obs_trace("dynamic-insert", backend="obj", side=side) as sp:
            own.insert(point)
            self._oids[side].add(point.oid)
            # (i) Kill pairs whose ring strictly contains the new point.
            killed = 0
            for key in self._grid.keys_near(point.x, point.y):
                pair = self._pairs.get(key)
                if pair is not None and pair.circle.contains_point(
                    point.x, point.y
                ):
                    self._drop(key)
                    killed += 1
            # (ii) New pairs involve the new point only.
            candidates = [
                self._candidate(point, partner, side)
                for partner in filter_candidates(point, other)
            ]
            verify_circles(self.tree_p, candidates)
            verify_circles(self.tree_q, candidates)
            added = 0
            for cand in candidates:
                if cand.alive:
                    self._store(cand.to_pair())
                    added += 1
            if sp is not None:
                sp.add("killed", killed)
                sp.add("added", added)

    def delete(self, point: Point, side: Side) -> bool:
        """Remove ``point`` from dataset ``side`` and repair the result.

        Raises a named ``KeyError`` (and changes nothing) when no point
        with that oid lives on ``side``; returns True on success.
        """
        own, _other = self._trees(side)
        if point.oid not in self._oids[side]:
            raise KeyError(
                f"no point with oid {point.oid} on side {side!r}"
            )
        with obs_trace("dynamic-delete", backend="obj", side=side) as sp:
            if not own.delete(point):
                raise KeyError(
                    f"no point with oid {point.oid} at "
                    f"({point.x}, {point.y}) on side {side!r}"
                )
            self._oids[side].discard(point.oid)
            # (i) Pairs involving the departed point die.
            involved = [
                k for k in self._pairs if self._involves(k, point, side)
            ]
            for key in involved:
                self._drop(key)
            # (ii) Pairs freed by the departure.
            neighborhood = self._neighborhood(point)
            if neighborhood is None:
                # A coincident twin remains: every ring that contained
                # the departed point still contains the twin.
                if sp is not None:
                    sp.add("killed", len(involved))
                return True
            near_p = [z for z, z_side in neighborhood if z_side == "P"]
            near_q = [z for z, z_side in neighborhood if z_side == "Q"]
            candidates: list[Candidate] = []
            for p in near_p:
                for q in near_q:
                    if (p.oid, q.oid) in self._pairs:
                        continue
                    cand = Candidate(p, q)
                    # Only rings the departed point blocked can be new.
                    if cand.circle.contains_point(point.x, point.y):
                        candidates.append(cand)
            verify_circles(self.tree_p, candidates)
            verify_circles(self.tree_q, candidates)
            freed = 0
            for cand in candidates:
                if cand.alive:
                    self._store(cand.to_pair())
                    freed += 1
            if sp is not None:
                sp.add("killed", len(involved))
                sp.add("freed", freed)
        return True

    def apply_batch(self, inserts=(), deletes=()) -> None:
        """Absorb one update batch: validated deletes, then inserts.

        The *sequential oracle*: after validation
        (:func:`validate_batch` — atomic, nothing mutates on a
        malformed batch) the batch is exactly the composition of the
        per-event updates, deletes first.  The columnar backend's
        amortized batch path is equivalence-tested against this.
        """
        inserts = [(point, side) for point, side in inserts]
        deletes = [(point, side) for point, side in deletes]
        validate_batch(
            inserts, deletes, lambda side, oid: oid in self._oids[side]
        )
        t0 = time.perf_counter()
        with obs_trace(
            "dynamic-batch",
            backend="obj",
            n_inserts=len(inserts),
            n_deletes=len(deletes),
        ) as root:
            for point, side in deletes:
                self.delete(point, side)
            for point, side in inserts:
                self.insert(point, side)
            if root is not None:
                root.add("pairs", len(self._pairs))
        self.last_batch_trace = root
        self._record_batch(
            len(inserts) + len(deletes), time.perf_counter() - t0
        )

    def _record_batch(self, batch_size: int, seconds: float) -> None:
        """Feed one batch to the calibration log (planned instances
        only; exception-fenced like every calibration hook)."""
        if not getattr(self, "record_calibration", False):
            return
        try:
            from repro.calibration.observations import record_observation
            from repro.parallel.costmodel import estimate_bytes

            n_p, n_q = len(self.tree_p), len(self.tree_q)
            record_observation(
                kind="dynamic",
                engine="obj",
                workers=1,
                n_p=n_p,
                n_q=n_q,
                density_factor=1.0,
                est_candidates=batch_size,
                est_bytes=estimate_bytes(n_p, n_q, 1, 0),
                stage_seconds=None,
                total_seconds=seconds,
            )
        except Exception:
            pass

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _trees(self, side: Side) -> tuple[RTree, RTree]:
        if side == "P":
            return self.tree_p, self.tree_q
        if side == "Q":
            return self.tree_q, self.tree_p
        raise ValueError(f"side must be 'P' or 'Q', got {side!r}")

    @staticmethod
    def _candidate(point: Point, partner: Point, side: Side) -> Candidate:
        if side == "P":
            return Candidate(point, partner)
        return Candidate(partner, point)

    @staticmethod
    def _involves(key: tuple[int, int], point: Point, side: Side) -> bool:
        return key[0 if side == "P" else 1] == point.oid

    def _store(self, pair: RCJPair) -> None:
        key = pair.key()
        if key in self._pairs:
            return
        self._pairs[key] = pair
        self._grid.add(key, pair)

    def _drop(self, key: tuple[int, int]) -> None:
        if self._pairs.pop(key, None) is not None:
            self._grid.remove(key)

    def _merged_stream(self, x: Point) -> Iterator[tuple[float, Point, Side]]:
        """Points of both trees in ascending distance from ``x``."""
        from repro.rtree.inn import incremental_nearest

        streams = [
            ((d, z, "P") for d, z in incremental_nearest(self.tree_p, x.x, x.y)),
            ((d, z, "Q") for d, z in incremental_nearest(self.tree_q, x.x, x.y)),
        ]
        return heapq.merge(*streams, key=lambda t: t[0])

    def _neighborhood(
        self, x: Point
    ) -> list[tuple[Point, Side]] | None:
        """Candidate endpoints for pairs freed by deleting ``x``.

        Streams points in ascending distance while clipping ``x``'s
        Voronoi cell; stops when the next point is beyond twice the
        farthest cell vertex (no Delaunay neighbour of ``x`` can remain,
        because the empty-circle centre witnessing adjacency lies inside
        the cell).  Returns None when a point coincides with ``x`` — no
        ring can have been blocked by ``x`` alone.

        Only points whose bisector reaches the current cell are
        emitted: the cell is a superset of ``x``'s final Voronoi region
        throughout, so a bisector leaving every cell vertex strictly on
        ``x``'s side can never touch it — not a Delaunay neighbour, and
        its clip would be a no-op.  Hull probes (unbounded cells) would
        otherwise emit the entire union.
        """
        # The clipping box must cover every possible cell vertex: take
        # the union of the domain, the data MBRs and x, expanded.
        span = [self.bounds.xmin, self.bounds.ymin, self.bounds.xmax, self.bounds.ymax]
        for tree in (self.tree_p, self.tree_q):
            if tree.root_pid is not None:
                mbr = tree.mbr()
                span[0] = min(span[0], mbr.xmin)
                span[1] = min(span[1], mbr.ymin)
                span[2] = max(span[2], mbr.xmax)
                span[3] = max(span[3], mbr.ymax)
        span[0] = min(span[0], x.x)
        span[1] = min(span[1], x.y)
        span[2] = max(span[2], x.x)
        span[3] = max(span[3], x.y)
        margin = max(span[2] - span[0], span[3] - span[1], 1.0)
        cell = box_polygon(
            span[0] - margin, span[1] - margin, span[2] + margin, span[3] + margin
        )
        slack = 1e-9 * max(
            abs(span[0]), abs(span[1]), abs(span[2]), abs(span[3]), 1.0
        )

        def max_vertex_dist() -> float:
            return max(
                ((vx - x.x) ** 2 + (vy - x.y) ** 2) ** 0.5 for vx, vy in cell
            )

        horizon = 2.0 * max_vertex_dist()
        out: list[tuple[Point, Side]] = []
        for d, z, z_side in self._merged_stream(x):
            if d > horizon:
                break
            if z.x == x.x and z.y == x.y:
                return None
            nx = z.x - x.x
            ny = z.y - x.y
            mx = (x.x + z.x) / 2.0
            my = (x.y + z.y) / 2.0
            smax = max((vx - mx) * nx + (vy - my) * ny for vx, vy in cell)
            if smax < -slack * d:
                continue
            out.append((z, z_side))
            clipped = clip_halfplane(cell, mx, my, nx, ny)
            if clipped:
                cell = clipped
                horizon = 2.0 * max_vertex_dist()
            # else: the cell collapsed numerically — keep the previous
            # (larger) horizon and keep streaming; conservative.
        return out

    def __repr__(self) -> str:
        return (
            f"DynamicRCJ(|P|={len(self.tree_p)}, |Q|={len(self.tree_q)}, "
            f"pairs={len(self._pairs)})"
        )
