"""Exact network-distance RCJ.

The ring constraint translated to a road network ``G``:

- the *middleman vertex* of a pair ``<p, q>`` is the network vertex
  ``m`` minimising ``max(d(m, p), d(m, q))`` (the network analogue of
  the circle centre, which minimises the maximum Euclidean distance);
- the *ring* is the ball ``{ v : d(v, m) < r }`` with
  ``r = max(d(m, p), d(m, q))``;
- the pair joins when no other dataset point lies strictly inside the
  ring.

This is an exact, exploratory algorithm: one single-source Dijkstra per
dataset point (``O(n · (E + V log V))`` total), suitable for the small
instances the road-network example and tests use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

import networkx as nx

from repro.geometry.point import Point

#: Relative slack on strict ring containment, mirroring the planar
#: convention (boundary points do not invalidate a pair).
_STRICT_REL_EPS = 1e-9


@dataclass(frozen=True)
class NetworkRCJPair:
    """A network-RCJ result pair with its middleman vertex and radius."""

    p: Point
    q: Point
    middleman: Hashable
    radius: float

    def key(self) -> tuple[int, int]:
        """Pair identity as ``(p.oid, q.oid)``."""
        return (self.p.oid, self.q.oid)


def network_rcj(
    graph: "nx.Graph",
    located_p: Sequence[tuple[Point, Hashable]],
    located_q: Sequence[tuple[Point, Hashable]],
    weight: str = "length",
) -> list[NetworkRCJPair]:
    """Ring-constrained join under shortest-path distance.

    Parameters
    ----------
    graph:
        The road network; must be connected.
    located_p, located_q:
        Dataset points paired with the network vertex they sit on
        (see :func:`repro.network.roadnet.attach_points`).
    weight:
        Edge-weight attribute holding the travel cost.

    Returns
    -------
    All pairs whose middleman ring contains no other dataset point.
    """
    if not located_p or not located_q:
        return []
    if not nx.is_connected(graph):
        raise ValueError("network_rcj requires a connected road network")

    # One Dijkstra per distinct dataset vertex.
    vertices = {v for _, v in located_p} | {v for _, v in located_q}
    dist_from: dict[Hashable, dict[Hashable, float]] = {
        v: nx.single_source_dijkstra_path_length(graph, v, weight=weight)
        for v in vertices
    }

    # All dataset points with their vertices, for ring-emptiness checks.
    occupants: list[tuple[Point, Hashable]] = list(located_p) + list(located_q)

    results: list[NetworkRCJPair] = []
    nodes = list(graph.nodes)
    for p, vp in located_p:
        dp = dist_from[vp]
        for q, vq in located_q:
            dq = dist_from[vq]
            # Middleman vertex: minimise the max distance to p and q.
            middleman = min(nodes, key=lambda v: max(dp[v], dq[v]))
            radius = max(dp[middleman], dq[middleman])
            threshold = radius * (1.0 - _STRICT_REL_EPS)
            valid = True
            for other, vo in occupants:
                if other is p or other is q:
                    continue
                if dist_from[vo][middleman] < threshold:
                    valid = False
                    break
            if valid:
                results.append(NetworkRCJPair(p, q, middleman, radius))
    return results
