"""RCJ under shortest-path distance on a road network.

The paper's future work proposes generalising the ring constraint to
"the shortest path distance along a road network".  This package
implements that generalisation exactly as an exploratory, exact
algorithm on networkx graphs, together with a synthetic road-network
generator (perturbed grid with random speeds).
"""

from repro.network.rcj import NetworkRCJPair, network_rcj
from repro.network.roadnet import attach_points, grid_road_network

__all__ = [
    "NetworkRCJPair",
    "attach_points",
    "grid_road_network",
    "network_rcj",
]
