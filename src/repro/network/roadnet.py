"""Synthetic road networks.

A perturbed grid network stands in for a real road map: vertices carry
planar coordinates, edges connect grid neighbours with weights equal to
Euclidean length times a random slowness factor (capturing road-quality
variation).  Dataset points snap to network vertices, the standard
simplification in road-network query processing.
"""

from __future__ import annotations

import math
import random

import networkx as nx

from repro.geometry.point import Point


def grid_road_network(
    rows: int,
    cols: int,
    spacing: float = 100.0,
    jitter: float = 0.25,
    seed: int = 0,
) -> "nx.Graph":
    """Build a connected perturbed-grid road network.

    Parameters
    ----------
    rows, cols:
        Grid dimensions (each at least 2).
    spacing:
        Nominal distance between adjacent intersections.
    jitter:
        Vertex position noise as a fraction of ``spacing``.
    seed:
        RNG seed.

    Returns
    -------
    A networkx graph whose nodes are ``(row, col)`` tuples with ``x``,
    ``y`` attributes and whose edges carry a ``length`` weight.
    """
    if rows < 2 or cols < 2:
        raise ValueError("road network needs at least a 2x2 grid")
    rng = random.Random(seed)
    graph = nx.Graph()
    for r in range(rows):
        for c in range(cols):
            x = c * spacing + rng.uniform(-jitter, jitter) * spacing
            y = r * spacing + rng.uniform(-jitter, jitter) * spacing
            graph.add_node((r, c), x=x, y=y)
    for r in range(rows):
        for c in range(cols):
            for dr, dc in ((0, 1), (1, 0)):
                rr, cc = r + dr, c + dc
                if rr < rows and cc < cols:
                    ax, ay = graph.nodes[(r, c)]["x"], graph.nodes[(r, c)]["y"]
                    bx, by = graph.nodes[(rr, cc)]["x"], graph.nodes[(rr, cc)]["y"]
                    slowness = rng.uniform(1.0, 1.6)
                    graph.add_edge(
                        (r, c),
                        (rr, cc),
                        length=math.hypot(ax - bx, ay - by) * slowness,
                    )
    return graph


def attach_points(
    graph: "nx.Graph", n: int, seed: int = 0, start_oid: int = 0
) -> list[tuple[Point, object]]:
    """Place ``n`` dataset points on distinct random network vertices.

    Returns ``(point, vertex)`` tuples: the point carries the vertex's
    planar coordinates (for display) while queries use network distance.
    """
    nodes = list(graph.nodes)
    if n > len(nodes):
        raise ValueError(
            f"cannot place {n} points on a network with {len(nodes)} vertices"
        )
    rng = random.Random(seed)
    chosen = rng.sample(nodes, n)
    out = []
    for i, v in enumerate(chosen):
        data = graph.nodes[v]
        out.append((Point(data["x"], data["y"], start_oid + i), v))
    return out
