"""Fleet-telemetry simulator: the moving-objects workload behind the
dynamic backends' batched maintenance path.

The decision-support deployments the paper motivates don't see static
datasets — vehicles report positions, facilities open and close.  This
module generates that traffic deterministically:

:class:`FleetSimulator`
    Side ``P`` is a vehicle fleet: each vehicle carries a three-state
    Markov machine (``idle`` → ``en_route`` → ``service``) and, while
    ``en_route``, integrates a jittered heading/speed per tick,
    bouncing off the domain walls.  A position report is a *move* —
    a delete of the previous fix plus an insert of the new one under
    the same oid.  Side ``Q`` is the service infrastructure (depots):
    static except for slow churn (a depot closes, another opens).
    Both sides also churn vehicles in and out of service.  Everything
    derives from one seeded :class:`random.Random`, so a given
    ``(seed, fleet, depots)`` triple replays the identical event
    stream forever; timestamps are ``tick * tick_seconds`` — no wall
    clock anywhere.

:class:`BatchAccumulator`
    Groups the raw event stream into :class:`UpdateBatch` instances of
    a fixed raw-event count, *coalescing* per ``(side, oid)`` runs
    within the open batch (two moves of one vehicle net to one; an
    insert followed by its delete cancels).  Coalescing is what makes
    a batch a valid :meth:`~repro.core.dynamic.DynamicBackend.apply_batch`
    argument — batch validation rejects duplicate deletes or inserts of
    one oid — and it preserves the sequential semantics exactly: the
    net batch and the raw event run reach the same final population,
    and the maintained pair set only depends on the population at the
    batch boundary.

The module is pure stdlib (``random``, ``math``) — simulation cost must
not pollute maintenance measurements with numpy dispatch overhead at
these event volumes.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.geometry.point import Point
from repro.geometry.rect import Rect

#: Markov transition table of the vehicle state machine:
#: ``state -> ((next_state, probability), ...)`` (probabilities sum
#: to 1 per row; sampled with one uniform draw each tick).
VEHICLE_TRANSITIONS: dict[str, tuple[tuple[str, float], ...]] = {
    "idle": (("idle", 0.55), ("en_route", 0.45)),
    "en_route": (("en_route", 0.75), ("service", 0.13), ("idle", 0.12)),
    "service": (("service", 0.50), ("idle", 0.30), ("en_route", 0.20)),
}

#: Per-tick distance bounds of an ``en_route`` vehicle, as a fraction
#: of the domain diagonal.
SPEED_RANGE = (0.002, 0.012)

#: Std-dev of the per-tick heading jitter (radians).
HEADING_JITTER = 0.35

#: Per-tick probability that a vehicle retires (replaced by a fresh
#: oid at a fresh position).
VEHICLE_CHURN = 0.002

#: Per-tick probability that a depot relocates (closes + reopens).
DEPOT_CHURN = 0.001

#: Default simulated seconds between ticks.
TICK_SECONDS = 1.0


@dataclass
class UpdateBatch:
    """One timestamped batch of net updates, ready for ``apply_batch``.

    ``events`` counts the *raw* simulator events the batch absorbed
    (the updates/sec numerator); ``len(batch)`` is the net update count
    after coalescing (what the backend actually applies).
    """

    seq: int
    timestamp: float
    inserts: list[tuple[Point, str]] = field(default_factory=list)
    deletes: list[tuple[Point, str]] = field(default_factory=list)
    events: int = 0

    def __len__(self) -> int:
        return len(self.inserts) + len(self.deletes)


class BatchAccumulator:
    """Coalesce a raw event run into one valid update batch.

    Per ``(side, oid)`` the open batch keeps at most ``(first delete of
    the pre-batch point, last insert)``.  Feeding events in stream
    order maintains the invariant that the emitted batch passes
    :func:`repro.core.dynamic.validate_batch` and reproduces the raw
    run's final population:

    - a delete of a point inserted *in this batch* cancels the pending
      insert (net: the pre-batch delete, if any, survives alone);
    - an insert after a pending delete of the same oid completes a
      "move" (delete old fix, insert newest fix);
    - repeated moves keep the first delete and the newest insert.
    """

    def __init__(self, batch_size: int):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = batch_size
        self._seq = 0
        self._events = 0
        self._timestamp = 0.0
        # (side, oid) -> [pre-batch Point to delete | None,
        #                 Point to insert | None]
        self._net: dict[tuple[str, int], list[Point | None]] = {}

    def add(
        self, kind: str, point: Point, side: str, timestamp: float
    ) -> UpdateBatch | None:
        """Feed one raw event; returns the batch it closed, if any."""
        key = (side, point.oid)
        entry = self._net.get(key)
        if kind == "delete":
            if entry is None:
                self._net[key] = [point, None]
            elif entry[1] is not None:
                entry[1] = None  # cancels the in-batch insert
                if entry[0] is None:
                    del self._net[key]
            else:
                raise ValueError(
                    f"double delete of oid {point.oid} on side {side!r}"
                    " without an intervening insert"
                )
        elif kind == "insert":
            if entry is None:
                self._net[key] = [None, point]
            elif entry[1] is None:
                entry[1] = point  # completes a move
            else:
                raise ValueError(
                    f"double insert of oid {point.oid} on side {side!r}"
                    " without an intervening delete"
                )
        else:
            raise ValueError(f"unknown event kind {kind!r}")
        self._events += 1
        self._timestamp = timestamp
        if self._events >= self.batch_size:
            return self.close()
        return None

    def close(self) -> UpdateBatch | None:
        """Emit the open batch (None when empty)."""
        if not self._events:
            return None
        batch = UpdateBatch(seq=self._seq, timestamp=self._timestamp)
        batch.events = self._events
        for (side, _oid), (dead, born) in sorted(self._net.items()):
            if dead is not None:
                batch.deletes.append((dead, side))
            if born is not None:
                batch.inserts.append((born, side))
        self._seq += 1
        self._events = 0
        self._net = {}
        return batch


class _Vehicle:
    __slots__ = ("point", "state", "heading", "speed")

    def __init__(self, point: Point, state: str, heading: float, speed: float):
        self.point = point
        self.state = state
        self.heading = heading
        self.speed = speed


class FleetSimulator:
    """Deterministic fleet-vs-depots update stream over ``bounds``.

    Parameters
    ----------
    fleet, depots:
        Resident populations of side ``P`` (vehicles) and ``Q``
        (depots); churn replaces members but keeps the counts fixed.
    seed:
        Seeds the single internal :class:`random.Random`; equal
        parameters replay the identical stream.
    bounds:
        Movement domain, the paper's ``[0, 10000]²`` by default.
    tick_seconds:
        Simulated seconds per tick (timestamps are
        ``tick * tick_seconds``).
    """

    def __init__(
        self,
        fleet: int = 1000,
        depots: int = 1000,
        seed: int = 42,
        bounds: Rect | None = None,
        tick_seconds: float = TICK_SECONDS,
    ):
        self.bounds = bounds if bounds is not None else Rect(0, 0, 10000, 10000)
        self.tick_seconds = tick_seconds
        self._rng = random.Random(seed)
        self._tick = 0
        diag = math.hypot(
            self.bounds.xmax - self.bounds.xmin,
            self.bounds.ymax - self.bounds.ymin,
        )
        self._speed_lo = SPEED_RANGE[0] * diag
        self._speed_hi = SPEED_RANGE[1] * diag
        self._next_oid = {"P": 0, "Q": 1_000_000}
        self._vehicles: dict[int, _Vehicle] = {}
        self._depots: dict[int, Point] = {}
        for _ in range(fleet):
            v = self._spawn_vehicle()
            self._vehicles[v.point.oid] = v
        for _ in range(depots):
            d = self._spawn_depot()
            self._depots[d.oid] = d

    # ------------------------------------------------------------------
    # population access
    # ------------------------------------------------------------------
    def initial_points(self) -> tuple[list[Point], list[Point]]:
        """Alias of :meth:`current_points`, read before any tick."""
        return self.current_points()

    def current_points(self) -> tuple[list[Point], list[Point]]:
        """Current live ``(P, Q)`` populations (oid-sorted copies)."""
        fleet = [
            self._vehicles[oid].point for oid in sorted(self._vehicles)
        ]
        depots = [self._depots[oid] for oid in sorted(self._depots)]
        return fleet, depots

    # ------------------------------------------------------------------
    # the event stream
    # ------------------------------------------------------------------
    def events(self, ticks: int):
        """Yield ``(kind, point, side, timestamp)`` raw events.

        A vehicle position report arrives as its delete (the previous
        fix) immediately followed by its insert (the new fix, same
        oid); churn arrives as a delete of the retiring oid plus an
        insert of a fresh one.
        """
        for _ in range(ticks):
            self._tick += 1
            t = self._tick * self.tick_seconds
            for oid in sorted(self._vehicles):
                vehicle = self._vehicles[oid]
                yield from self._step_vehicle(vehicle, t)
            for oid in sorted(self._depots):
                if self._rng.random() < DEPOT_CHURN:
                    dead = self._depots.pop(oid)
                    yield "delete", dead, "Q", t
                    born = self._spawn_depot()
                    self._depots[born.oid] = born
                    yield "insert", born, "Q", t

    def batch_stream(self, batch_size: int, ticks: int):
        """Yield coalesced :class:`UpdateBatch` instances of
        ``batch_size`` raw events each (final partial batch included)."""
        acc = BatchAccumulator(batch_size)
        for kind, point, side, t in self.events(ticks):
            batch = acc.add(kind, point, side, t)
            if batch is not None:
                yield batch
        tail = acc.close()
        if tail is not None:
            yield tail

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _random_position(self) -> tuple[float, float]:
        return (
            self._rng.uniform(self.bounds.xmin, self.bounds.xmax),
            self._rng.uniform(self.bounds.ymin, self.bounds.ymax),
        )

    def _spawn_vehicle(self) -> _Vehicle:
        oid = self._next_oid["P"]
        self._next_oid["P"] += 1
        x, y = self._random_position()
        return _Vehicle(
            Point(x, y, oid),
            state="idle",
            heading=self._rng.uniform(0.0, 2.0 * math.pi),
            speed=self._rng.uniform(self._speed_lo, self._speed_hi),
        )

    def _spawn_depot(self) -> Point:
        oid = self._next_oid["Q"]
        self._next_oid["Q"] += 1
        x, y = self._random_position()
        return Point(x, y, oid)

    def _transition(self, state: str) -> str:
        draw = self._rng.random()
        acc = 0.0
        for nxt, prob in VEHICLE_TRANSITIONS[state]:
            acc += prob
            if draw < acc:
                return nxt
        return VEHICLE_TRANSITIONS[state][-1][0]

    def _step_vehicle(self, vehicle: _Vehicle, t: float):
        if self._rng.random() < VEHICLE_CHURN:
            dead = vehicle.point
            del self._vehicles[dead.oid]
            yield "delete", dead, "P", t
            born = self._spawn_vehicle()
            self._vehicles[born.point.oid] = born
            yield "insert", born.point, "P", t
            return
        vehicle.state = self._transition(vehicle.state)
        if vehicle.state != "en_route":
            return  # idle and in-service vehicles hold position
        vehicle.heading += self._rng.gauss(0.0, HEADING_JITTER)
        x = vehicle.point.x + vehicle.speed * math.cos(vehicle.heading)
        y = vehicle.point.y + vehicle.speed * math.sin(vehicle.heading)
        x, bx = self._bounce(x, self.bounds.xmin, self.bounds.xmax)
        y, by = self._bounce(y, self.bounds.ymin, self.bounds.ymax)
        if bx or by:
            vehicle.heading = math.atan2(
                (y - vehicle.point.y), (x - vehicle.point.x)
            )
        old = vehicle.point
        vehicle.point = Point(x, y, old.oid)
        yield "delete", old, "P", t
        yield "insert", vehicle.point, "P", t

    @staticmethod
    def _bounce(v: float, lo: float, hi: float) -> tuple[float, bool]:
        if v < lo:
            return min(2.0 * lo - v, hi), True
        if v > hi:
            return max(2.0 * hi - v, lo), True
        return v, False
