"""Synthetic workload generators driving the engine's scenarios.

:mod:`repro.workloads.moving` — the sustained moving-objects stream
(fleet telemetry) that exercises the dynamic backends' batched
maintenance path.
"""

from repro.workloads.moving import (
    BatchAccumulator,
    FleetSimulator,
    UpdateBatch,
)

__all__ = ["BatchAccumulator", "FleetSimulator", "UpdateBatch"]
