"""Observability: hierarchical span tracing, counters, exporters."""

from repro.obs.trace import (
    Span,
    TRACE_ENV,
    add_counter,
    counter_totals,
    current_span,
    set_attr,
    span,
    stage_timer,
    stage_totals,
    trace,
    tracing_enabled,
)
from repro.obs.export import (
    read_jsonl,
    render_tree,
    to_chrome,
    validate_chrome,
    write_jsonl,
)

__all__ = [
    "Span",
    "TRACE_ENV",
    "add_counter",
    "counter_totals",
    "current_span",
    "read_jsonl",
    "render_tree",
    "set_attr",
    "span",
    "stage_timer",
    "stage_totals",
    "to_chrome",
    "trace",
    "tracing_enabled",
    "validate_chrome",
    "write_jsonl",
]
