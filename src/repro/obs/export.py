"""Trace exporters: JSONL sink, Chrome trace-event / Perfetto JSON,
and a rendered per-stage tree for ``--explain`` / ``repro trace show``.

The JSONL sink is the on-disk interchange format (one span per line,
pre-order, parent links by id) — ``repro trace show`` and ``repro
trace export`` both consume it.  The Chrome form loads directly into
https://ui.perfetto.dev or ``chrome://tracing``.
"""

from __future__ import annotations

import json

from repro.obs.trace import Span, counter_totals

#: Schema tag written into every JSONL trace line.
JSONL_VERSION = 1


# ----------------------------------------------------------------------
# JSONL sink
# ----------------------------------------------------------------------

def span_records(root: Span) -> list[dict]:
    """Flatten a trace tree to per-span records (pre-order, ids are
    pre-order indexes, ``parent`` is None for the root)."""
    records: list[dict] = []
    ids: dict[int, int] = {}

    def visit(node: Span, parent: int | None) -> None:
        sid = len(records)
        ids[id(node)] = sid
        records.append(
            {
                "v": JSONL_VERSION,
                "id": sid,
                "parent": parent,
                "name": node.name,
                "kind": node.kind,
                "wall": node.wall,
                "seconds": node.seconds,
                "proc": node.proc,
                "attrs": dict(node.attrs),
                "counters": dict(node.counters),
            }
        )
        for child in node.children:
            visit(child, sid)

    visit(root, None)
    return records


def write_jsonl(root: Span, path: str) -> int:
    """Append one run's trace to a JSONL sink; returns spans written."""
    records = span_records(root)
    with open(path, "a", encoding="utf-8") as sink:
        for record in records:
            sink.write(json.dumps(record, sort_keys=True) + "\n")
    return len(records)


def read_jsonl(path: str) -> list[Span]:
    """Rebuild the trace trees stored in a JSONL sink (one root per
    traced run, in file order).  Corrupt lines are skipped."""
    roots: list[Span] = []
    nodes: dict[int, Span] = {}
    for line in open(path, encoding="utf-8"):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            name = record["name"]
            sid = int(record["id"])
            parent = record["parent"]
        except (ValueError, KeyError, TypeError):
            continue
        node = Span.from_dict({**record, "name": name, "children": ()})
        if parent is None:
            roots.append(node)
            nodes = {sid: node}
        elif parent in nodes:
            nodes[parent].children.append(node)
            nodes[sid] = node
    return roots


# ----------------------------------------------------------------------
# Chrome trace-event / Perfetto JSON
# ----------------------------------------------------------------------

def to_chrome(root: Span) -> dict:
    """Chrome trace-event JSON for one trace tree.

    Complete events (``ph="X"``) on a timeline relative to the root's
    wall-clock start; each OS process becomes a trace-event *pid* so
    worker shards render as their own named tracks in Perfetto.
    """
    events: list[dict] = []
    procs: dict[int, str] = {}

    def visit(node: Span) -> None:
        if node.proc not in procs:
            role = "coordinator" if node.proc == root.proc else "worker"
            procs[node.proc] = f"{role}-{node.proc}"
        args = dict(node.attrs)
        for key, value in node.counters.items():
            args[f"counter.{key}"] = value
        events.append(
            {
                "name": node.name,
                "cat": node.kind,
                "ph": "X",
                "ts": max(0.0, (node.wall - root.wall) * 1e6),
                "dur": node.seconds * 1e6,
                "pid": node.proc,
                "tid": node.proc,
                "args": args,
            }
        )
        for child in node.children:
            visit(child)

    visit(root)
    meta = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": pid,
            "args": {"name": label},
        }
        for pid, label in sorted(procs.items())
    ]
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def validate_chrome(doc: dict) -> None:
    """Raise ValueError unless ``doc`` is well-formed trace-event JSON
    (the schema check the CI trace smoke job runs after export)."""
    if not isinstance(doc, dict) or not isinstance(
        doc.get("traceEvents"), list
    ):
        raise ValueError("trace document must carry a traceEvents list")
    if not doc["traceEvents"]:
        raise ValueError("traceEvents is empty")
    for i, event in enumerate(doc["traceEvents"]):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        if event.get("ph") not in ("X", "M"):
            raise ValueError(f"traceEvents[{i}] has unsupported ph")
        for field in ("name", "pid", "tid"):
            if field not in event:
                raise ValueError(f"traceEvents[{i}] lacks {field!r}")
        if event["ph"] == "X":
            for field in ("ts", "dur"):
                value = event.get(field)
                if not isinstance(value, (int, float)) or value < 0:
                    raise ValueError(
                        f"traceEvents[{i}].{field} must be >= 0"
                    )


# ----------------------------------------------------------------------
# rendered tree (``--explain`` / ``repro trace show``)
# ----------------------------------------------------------------------

def _describe(node: Span) -> str:
    parts = [f"{node.name}  {node.seconds * 1e3:.3f} ms"]
    if node.attrs:
        attrs = " ".join(f"{k}={v}" for k, v in sorted(node.attrs.items()))
        parts.append(f"[{attrs}]")
    if node.counters:
        counters = " ".join(
            f"{k}={v}" for k, v in sorted(node.counters.items())
        )
        parts.append(f"({counters})")
    return "  ".join(parts)


def render_tree(root: Span, max_depth: int | None = None) -> str:
    """Human-readable per-stage tree of one trace."""
    lines = [_describe(root)]

    def visit(node: Span, prefix: str, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        for i, child in enumerate(node.children):
            last = i == len(node.children) - 1
            lines.append(prefix + ("└─ " if last else "├─ ") + _describe(child))
            visit(child, prefix + ("   " if last else "│  "), depth + 1)

    visit(root, "", 1)
    totals = counter_totals(root)
    if totals:
        summary = " ".join(f"{k}={v}" for k, v in sorted(totals.items()))
        lines.append(f"totals: {summary}")
    return "\n".join(lines)
