"""The hierarchical span tracer: one instrumentation layer for
planning, benchmarking and debugging.

A *trace* is a tree of :class:`Span` records rooted at one planner
entry point (``run_join`` / ``run_topk`` / ``run_family_join``).  Code
under an active trace opens child spans with the :func:`span` context
manager, attaches attributes (``span("pool", workers=4)``) and bumps
counters (:func:`add_counter`); the per-stage wall times the cost model
consumes are ordinary spans of ``kind="stage"`` created by
:func:`stage_timer`, so ``JoinReport.stage_seconds`` and the
calibration observation records are *derived* from the trace tree
(:func:`stage_totals`) instead of hand-threaded dicts.

Worker processes root their own ``"shard"`` traces
(:mod:`repro.parallel.pool`), serialize them with :meth:`Span.to_dict`
through the result pickle, and the coordinator re-parents them under
its pool span with :meth:`Span.from_dict` — one tree spans the whole
execution, processes included.

Overhead discipline
-------------------
Tracing is on by default and switches off under ``REPRO_TRACE=0``
(also ``off``/``false``/``no``).  Every entry point checks a
thread-local *active trace* first: with no active trace (disabled, or
code running outside a planner entry point) :func:`span` and
:func:`add_counter` return after one attribute lookup and
:func:`stage_timer` degrades to the bare accumulator path it replaced —
results are byte-identical either way, because spans only ever
*observe*.

The dict accumulator of :func:`stage_timer` is kept deliberately: both
sinks are fed from the **same** ``perf_counter`` reading, so the
accumulated dict and :func:`stage_totals` over the tree agree exactly,
and direct kernel callers (tests, benches) that pass plain dicts keep
working without a trace.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager

#: Kill switch: ``0``/``off``/``false``/``no`` disables tracing.
TRACE_ENV = "REPRO_TRACE"

#: Span kind of the per-stage timers (the only spans
#: :func:`stage_totals` sums — structural spans never leak into
#: ``stage_seconds``).
STAGE_KIND = "stage"


def tracing_enabled() -> bool:
    """Whether :func:`trace` roots real traces (``REPRO_TRACE``)."""
    flag = os.environ.get(TRACE_ENV, "1").strip().lower()
    return flag not in ("0", "off", "false", "no")


class Span:
    """One timed node of a trace tree.

    ``seconds`` is the monotonic (``perf_counter``) duration; ``wall``
    is the epoch start time (``time.time()``), which is what makes
    spans from different processes line up on one export timeline.
    ``attrs`` describe the work (engine, shard range, worker count),
    ``counters`` count it (candidates, verified pairs, bytes shipped).
    """

    __slots__ = (
        "name", "kind", "attrs", "counters", "children",
        "wall", "seconds", "proc",
    )

    def __init__(
        self,
        name: str,
        kind: str = "span",
        attrs: dict | None = None,
        proc: int | None = None,
    ):
        self.name = name
        self.kind = kind
        self.attrs = dict(attrs) if attrs else {}
        self.counters: dict = {}
        self.children: list[Span] = []
        self.wall = time.time()
        self.seconds = 0.0
        self.proc = os.getpid() if proc is None else proc

    # ------------------------------------------------------------------
    # mutation under an open span
    # ------------------------------------------------------------------
    def add(self, counter: str, n=1) -> None:
        """Bump one counter on this span."""
        self.counters[counter] = self.counters.get(counter, 0) + n

    def set(self, **attrs) -> None:
        """Attach (or overwrite) attributes on this span."""
        self.attrs.update(attrs)

    # ------------------------------------------------------------------
    # tree access
    # ------------------------------------------------------------------
    def walk(self):
        """Every span of the subtree, pre-order (self first)."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> list["Span"]:
        """All spans named ``name`` in the subtree, pre-order."""
        return [s for s in self.walk() if s.name == name]

    def __len__(self) -> int:
        return sum(1 for _ in self.walk())

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, kind={self.kind!r}, "
            f"seconds={self.seconds:.6f}, children={len(self.children)})"
        )

    # ------------------------------------------------------------------
    # serialization (the worker -> coordinator seam, and the JSONL sink)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-data form of the subtree (picklable, JSON-able)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "attrs": dict(self.attrs),
            "counters": dict(self.counters),
            "wall": self.wall,
            "seconds": self.seconds,
            "proc": self.proc,
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        """Rebuild a subtree from :meth:`to_dict` output."""
        span = cls.__new__(cls)
        span.name = str(data["name"])
        span.kind = str(data.get("kind", "span"))
        span.attrs = dict(data.get("attrs") or {})
        span.counters = dict(data.get("counters") or {})
        span.wall = float(data.get("wall", 0.0))
        span.seconds = float(data.get("seconds", 0.0))
        span.proc = int(data.get("proc", 0))
        span.children = [
            cls.from_dict(child) for child in data.get("children") or ()
        ]
        return span

    def adopt(self, data: dict) -> "Span":
        """Re-parent a serialized subtree (a worker's shard trace)
        under this span; returns the adopted child."""
        child = Span.from_dict(data)
        self.children.append(child)
        return child


# ----------------------------------------------------------------------
# the thread-local active trace
# ----------------------------------------------------------------------

_STATE = threading.local()


def _stack() -> list[Span] | None:
    return getattr(_STATE, "stack", None)


def current_span() -> Span | None:
    """The innermost open span of this thread's trace (None outside)."""
    stack = _stack()
    return stack[-1] if stack else None


def reset() -> None:
    """Drop any active trace on this thread.

    Pool initializers call this: ``fork``-started workers inherit the
    coordinator's thread-local stack, and without a reset a worker's
    :func:`trace` would degrade to a child span of the *coordinator's*
    tree (wrong process id, lost subtree) instead of rooting its own.
    """
    _STATE.stack = None


@contextmanager
def trace(name: str, **attrs):
    """Root a new trace (yields its root span, or None when disabled).

    A ``trace`` opened while another is already active degrades to a
    plain child :func:`span` — nested planner entry points join the
    enclosing tree instead of fighting over the thread-local root.
    """
    if _stack():
        with span(name, **attrs) as nested:
            yield nested
        return
    if not tracing_enabled():
        yield None
        return
    root = Span(name, attrs=attrs)
    _STATE.stack = [root]
    t0 = time.perf_counter()
    try:
        yield root
    finally:
        root.seconds = time.perf_counter() - t0
        _STATE.stack = None


@contextmanager
def span(name: str, *, kind: str = "span", **attrs):
    """Open a child span under the active trace (no-op outside one)."""
    stack = _stack()
    if not stack:
        yield None
        return
    node = Span(name, kind=kind, attrs=attrs, proc=stack[0].proc)
    stack[-1].children.append(node)
    stack.append(node)
    t0 = time.perf_counter()
    try:
        yield node
    finally:
        node.seconds = time.perf_counter() - t0
        stack.pop()


def add_counter(name: str, n=1) -> None:
    """Bump a counter on the innermost open span (no-op outside)."""
    stack = _stack()
    if stack:
        counters = stack[-1].counters
        counters[name] = counters.get(name, 0) + n


def set_attr(**attrs) -> None:
    """Attach attributes to the innermost open span (no-op outside)."""
    stack = _stack()
    if stack:
        stack[-1].attrs.update(attrs)


@contextmanager
def stage_timer(acc: dict | None, key: str):
    """Accumulate the wall time of a ``with`` block into ``acc[key]``
    *and* record it as a ``kind="stage"`` span of the active trace.

    The single seam every per-stage measurement flows through: the
    planner derives :attr:`JoinReport.stage_seconds` from the stage
    spans (:func:`stage_totals`), while direct kernel callers keep the
    plain-dict contract.  Both sinks receive the same ``perf_counter``
    reading, so they can never disagree.  ``acc=None`` outside a trace
    times nothing and costs one attribute lookup.
    """
    stack = _stack()
    if acc is None and not stack:
        yield
        return
    node = None
    if stack:
        node = Span(key, kind=STAGE_KIND, proc=stack[0].proc)
        stack[-1].children.append(node)
        stack.append(node)
    t0 = time.perf_counter()
    try:
        yield
    finally:
        dt = time.perf_counter() - t0
        if node is not None:
            node.seconds = dt
            stack.pop()
        if acc is not None:
            acc[key] = acc.get(key, 0.0) + dt


# ----------------------------------------------------------------------
# derivations over a finished tree
# ----------------------------------------------------------------------

def stage_totals(root: Span) -> dict[str, float]:
    """Per-stage wall seconds summed over the tree — the trace-derived
    replacement of the hand-threaded ``stage_seconds`` dicts.

    Only ``kind="stage"`` spans contribute (structural spans like the
    plan root or the pool coordinator would double-count their
    children).  Nested stage spans each contribute their own duration,
    matching the accumulator semantics of :func:`stage_timer` exactly.
    """
    totals: dict[str, float] = {}
    for node in root.walk():
        if node.kind == STAGE_KIND:
            totals[node.name] = totals.get(node.name, 0.0) + node.seconds
    return totals


def counter_totals(root: Span) -> dict:
    """Every counter summed over the tree (worker spans included)."""
    totals: dict = {}
    for node in root.walk():
        for key, value in node.counters.items():
            totals[key] = totals.get(key, 0) + value
    return totals
