"""Advanced spatial queries built on the incremental-NN skeleton.

The paper (Section 2.1) notes that the INN ranking scheme "has also
been successfully extended to process other advanced spatial queries
such as skyline retrieval [9] and reverse nearest neighbor search
[16]".  This package substantiates that remark on our own substrate:

- :mod:`repro.queries.rnn` — reverse nearest neighbours (monochromatic
  and bichromatic) with perpendicular-bisector pruning, the same
  half-plane machinery as the RCJ Filter step;
- :mod:`repro.queries.skyline` — branch-and-bound skyline (BBS) over
  the R-tree;
- :mod:`repro.queries.ann` — aggregate (group) nearest neighbours, the
  ref [10] the paper's "convenience" property leans on.
"""

from repro.queries.ann import aggregate_nearest
from repro.queries.rnn import bichromatic_reverse_nearest, reverse_nearest
from repro.queries.skyline import skyline

__all__ = [
    "aggregate_nearest",
    "bichromatic_reverse_nearest",
    "reverse_nearest",
    "skyline",
]
