"""Aggregate nearest-neighbour queries (Papadias et al., the paper's
ref [10]).

Given a *group* of query locations, the aggregate NN is the indexed
point minimising an aggregate of its distances to the whole group —
``max`` (the minimax meeting point) or ``sum`` (the weber/median
point).  The paper leans on ref [10] for its "convenience" property:
the ring centre of an RCJ pair minimises the *maximum* distance to the
two endpoints among all locations; this module answers the discrete
version ("which existing site serves the group best?") on the R-tree.

The algorithm is MBM (minimum bounding method): best-first search over
the tree keyed by the aggregate of per-query MINDISTs, which lower-
bounds the aggregate distance of every point in the subtree because
both aggregates are monotone.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable, Literal, Sequence

from repro.geometry.point import Point
from repro.rtree.tree import RTree

Aggregate = Literal["max", "sum"]

_AGGREGATES: dict[str, Callable[[Sequence[float]], float]] = {
    "max": max,
    "sum": math.fsum,
}


def aggregate_nearest(
    tree: RTree,
    group: Sequence[Point],
    agg: Aggregate = "max",
    k: int = 1,
) -> list[tuple[float, Point]]:
    """The ``k`` indexed points with the smallest aggregate distance to
    ``group``.

    Parameters
    ----------
    tree:
        The indexed candidate points.
    group:
        The query locations (non-empty).
    agg:
        ``"max"`` for the minimax meeting point, ``"sum"`` for the
        total-travel optimum.
    k:
        How many best points to return.

    Returns
    -------
    ``(aggregate_distance, point)`` tuples in ascending aggregate
    order; fewer than ``k`` when the tree is smaller.
    """
    if not group:
        raise ValueError("aggregate NN needs at least one query point")
    if k <= 0:
        return []
    try:
        combine = _AGGREGATES[agg]
    except KeyError:
        raise ValueError(
            f"unknown aggregate {agg!r}; expected one of {sorted(_AGGREGATES)}"
        ) from None

    results: list[tuple[float, Point]] = []
    if tree.root_pid is None:
        return results

    counter = itertools.count()
    heap: list[tuple[float, int, bool, object]] = [
        (0.0, next(counter), False, tree.root_pid)
    ]
    while heap:
        key, _tie, is_point, payload = heapq.heappop(heap)
        if results and key > results[-1][0] and len(results) >= k:
            break
        if is_point:
            results.append((key, payload))  # type: ignore[arg-type]
            if len(results) == k:
                break
            continue
        node = tree.read_node(payload)  # type: ignore[arg-type]
        if node.is_leaf:
            for pt in node.entries:
                value = combine([pt.dist_to(q) for q in group])
                heapq.heappush(heap, (value, next(counter), True, pt))
        else:
            for b in node.entries:
                bound = combine(
                    [math.sqrt(b.rect.mindist_sq(q.x, q.y)) for q in group]
                )
                heapq.heappush(heap, (bound, next(counter), False, b.child))
    return results


def aggregate_nearest_brute(
    points: Sequence[Point],
    group: Sequence[Point],
    agg: Aggregate = "max",
    k: int = 1,
) -> list[tuple[float, Point]]:
    """Quadratic reference, the test oracle for :func:`aggregate_nearest`."""
    if not group:
        raise ValueError("aggregate NN needs at least one query point")
    combine = _AGGREGATES[agg]
    scored = sorted(
        ((combine([p.dist_to(q) for q in group]), p) for p in points),
        key=lambda t: (t[0], t[1].oid),
    )
    return scored[:k]
