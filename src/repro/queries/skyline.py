"""Branch-and-bound skyline (BBS) over the R-tree.

The skyline of a pointset holds every point not *dominated* by another:
``z`` dominates ``p`` when ``z`` is no larger in both coordinates and
strictly smaller in at least one (minimisation in both dimensions, the
convention of Papadias et al., whose BBS algorithm this module
implements on our substrate).

BBS is the INN ranking skeleton with a different key and acceptance
test: entries are popped from a min-heap ordered by ``xmin + ymin``
(the L1 mindist to the origin), which guarantees that a popped point
can only be dominated by already-accepted skyline points — so a single
dominance check against the current skyline decides acceptance, and
dominated subtrees are discarded wholesale.
"""

from __future__ import annotations

import heapq
import itertools

from repro.geometry.point import Point
from repro.rtree.tree import RTree


def _dominates(z: Point, x: float, y: float) -> bool:
    """True when ``z`` dominates location ``(x, y)`` (minimisation)."""
    return z.x <= x and z.y <= y and (z.x < x or z.y < y)


def skyline(tree: RTree) -> list[Point]:
    """The skyline of the indexed pointset (minimise both coordinates).

    Returns
    -------
    Skyline points in ascending ``x + y`` order.  Coincident duplicates
    of a skyline point are all reported: duplicates do not dominate
    each other (dominance is strict in at least one coordinate).

    Notes
    -----
    I/O-optimal in the BBS sense: only nodes whose MBR is not dominated
    by an already-found skyline point are read.
    """
    results: list[Point] = []
    if tree.root_pid is None:
        return results
    counter = itertools.count()
    heap: list[tuple[float, int, bool, object]] = [
        (0.0, next(counter), False, tree.root_pid)
    ]
    while heap:
        _key, _tie, is_point, payload = heapq.heappop(heap)
        if is_point:
            p: Point = payload  # type: ignore[assignment]
            if not any(_dominates(z, p.x, p.y) for z in results):
                results.append(p)
            continue
        node = tree.read_node(payload)  # type: ignore[arg-type]
        if node.is_leaf:
            for pt in node.entries:
                if any(_dominates(z, pt.x, pt.y) for z in results):
                    continue
                heapq.heappush(
                    heap, (pt.x + pt.y, next(counter), True, pt)
                )
        else:
            for b in node.entries:
                # A subtree whose lower-left corner is dominated holds
                # only dominated points.
                if any(_dominates(z, b.rect.xmin, b.rect.ymin) for z in results):
                    continue
                heapq.heappush(
                    heap,
                    (b.rect.xmin + b.rect.ymin, next(counter), False, b.child),
                )
    return results


def skyline_brute(points: list[Point]) -> list[Point]:
    """Quadratic reference skyline, the test oracle for :func:`skyline`."""
    return [
        p
        for p in points
        if not any(_dominates(z, p.x, p.y) for z in points)
    ]
