"""Reverse nearest-neighbour search with bisector pruning.

A point ``p`` is a *reverse nearest neighbour* (RNN) of a query
location ``q`` when no other relevant point is strictly closer to ``p``
than ``q`` is — i.e. ``q`` is (one of) ``p``'s nearest neighbours, ties
included.

Both variants follow the filter-verification pattern of Tao et al.'s
TPL, reusing this library's half-plane machinery: the perpendicular
bisector of ``q`` and a discovered point ``z`` bounds the region in
which every location is strictly closer to ``z`` than to ``q``; points
and whole subtrees inside it can never be RNNs.  Pruning is sound (a
plane membership *witnesses* a closer point), so the surviving
candidates are a superset of the answer and each is confirmed with one
exact range check.

``HalfPlane`` is anchored at a boundary point with an outward normal,
so the bisector of ``q`` and ``z`` is the plane through their midpoint
with normal ``z - q`` — the same construction family as the paper's
Ψ− region, anchored at the midpoint instead of at ``z``.
"""

from __future__ import annotations

import heapq
import itertools

from repro.geometry.halfplane import HalfPlane
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.rtree.tree import RTree


def _bisector(q: Point, z: Point) -> HalfPlane:
    """Half-plane of locations strictly closer to ``z`` than to ``q``."""
    return HalfPlane(
        (q.x + z.x) / 2.0, (q.y + z.y) / 2.0, z.x - q.x, z.y - q.y
    )


def _closer_point_exists(
    tree: RTree, center: Point, q: Point, exclude_oid: int
) -> bool:
    """True when ``tree`` holds a point strictly closer to ``center``
    than ``q`` is (excluding ``exclude_oid``)."""
    limit_sq = center.dist_sq_to(q)
    limit = center.dist_to(q)
    window = Rect(
        center.x - limit, center.y - limit, center.x + limit, center.y + limit
    )
    for z in tree.range_search(window):
        if z.oid == exclude_oid:
            continue
        if center.dist_sq_to(z) < limit_sq:
            return True
    return False


def _filter_candidates(
    tree: RTree, q: Point, exclude_oid: int | None
) -> list[Point]:
    """INN sweep over ``tree`` accumulating bisector planes; returns the
    unpruned points (a superset of the RNNs of ``q`` within ``tree``)."""
    candidates: list[Point] = []
    planes: list[HalfPlane] = []
    if tree.root_pid is None:
        return candidates
    counter = itertools.count()
    heap: list[tuple[float, int, bool, object]] = [
        (0.0, next(counter), False, tree.root_pid)
    ]
    while heap:
        _d, _tie, is_point, payload = heapq.heappop(heap)
        if is_point:
            p: Point = payload  # type: ignore[assignment]
            if exclude_oid is not None and p.oid == exclude_oid:
                continue
            pruned = any(pl.contains_point(p.x, p.y) for pl in planes)
            if not pruned:
                candidates.append(p)
            # Every discovered point prunes, whether or not it is a
            # candidate itself.
            plane = _bisector(q, p)
            if not plane.is_degenerate():
                planes.append(plane)
            continue
        node = tree.read_node(payload)  # type: ignore[arg-type]
        if node.is_leaf:
            for pt in node.entries:
                heapq.heappush(
                    heap, (pt.dist_sq_to(q), next(counter), True, pt)
                )
        else:
            for b in node.entries:
                if any(pl.contains_rect(b.rect) for pl in planes):
                    continue
                heapq.heappush(
                    heap,
                    (b.rect.mindist_sq(q.x, q.y), next(counter), False, b.child),
                )
    return candidates


def reverse_nearest(
    tree: RTree, q: Point, exclude_oid: int | None = None
) -> list[Point]:
    """Monochromatic RNN: points of ``tree`` whose nearest *other* tree
    point is no closer than ``q``.

    Parameters
    ----------
    tree:
        The indexed dataset.
    q:
        The query location (need not be in the tree).
    exclude_oid:
        When ``q`` itself is an indexed point, its oid; it is neither a
        candidate nor allowed to disqualify others.

    Returns
    -------
    The RNN points in ascending distance from ``q``.  Ties count in
    ``q``'s favour: a point equidistant between ``q`` and another point
    is an RNN.
    """
    results = []
    for c in _filter_candidates(tree, q, exclude_oid):
        own_exclude = c.oid
        # A coincident duplicate of q must not disqualify: it is not
        # strictly closer.  _closer_point_exists is strict, so this
        # needs no special case.
        if not _closer_point_exists(tree, c, q, own_exclude):
            results.append(c)
    return results


def bichromatic_reverse_nearest(
    objects_tree: RTree, sites_tree: RTree, q: Point
) -> list[Point]:
    """Bichromatic RNN: objects whose nearest *site* is ``q``.

    ``q`` is a prospective site location; the answer is the set of
    objects that would adopt it, i.e. those with no existing site
    strictly closer — the influence set of the optimal-location query
    (paper Section 2.2).

    Parameters
    ----------
    objects_tree:
        Index over the objects (the candidates).
    sites_tree:
        Index over the existing sites (the competitors).
    q:
        The prospective site location.

    Returns
    -------
    The adopting objects in ascending distance from ``q``.
    """
    # Planes come from competitor sites near q: a site within twice an
    # object's distance is the only kind that can beat q for it.
    planes: list[HalfPlane] = []
    candidates: list[Point] = []
    if objects_tree.root_pid is None:
        return candidates

    counter = itertools.count()
    heap: list[tuple[float, int, bool, object]] = [
        (0.0, next(counter), False, objects_tree.root_pid)
    ]
    site_stream = _site_stream(sites_tree, q)
    next_site_d, next_site = next(site_stream, (float("inf"), None))

    while heap:
        d_sq, _tie, is_point, payload = heapq.heappop(heap)
        # Advance the site stream far enough to decide this entry.
        import math

        horizon = 2.0 * math.sqrt(d_sq)
        while next_site is not None and next_site_d <= horizon:
            plane = _bisector(q, next_site)
            if not plane.is_degenerate():
                planes.append(plane)
            next_site_d, next_site = next(site_stream, (float("inf"), None))
        if is_point:
            o: Point = payload  # type: ignore[assignment]
            if not any(pl.contains_point(o.x, o.y) for pl in planes):
                candidates.append(o)
            continue
        node = objects_tree.read_node(payload)  # type: ignore[arg-type]
        if node.is_leaf:
            for pt in node.entries:
                heapq.heappush(
                    heap, (pt.dist_sq_to(q), next(counter), True, pt)
                )
        else:
            for b in node.entries:
                if any(pl.contains_rect(b.rect) for pl in planes):
                    continue
                heapq.heappush(
                    heap,
                    (b.rect.mindist_sq(q.x, q.y), next(counter), False, b.child),
                )

    # Verification: confirm no site is strictly closer (subtree pruning
    # may have starved the plane set, so candidates are a superset).
    return [
        o
        for o in candidates
        if not _closer_point_exists(sites_tree, o, q, exclude_oid=-2)
    ]


def _site_stream(sites_tree: RTree, q: Point):
    """Yield ``(distance, site)`` in ascending distance from ``q``."""
    import math

    if sites_tree.root_pid is None:
        return
    counter = itertools.count()
    heap: list[tuple[float, int, bool, object]] = [
        (0.0, next(counter), False, sites_tree.root_pid)
    ]
    while heap:
        d_sq, _tie, is_point, payload = heapq.heappop(heap)
        if is_point:
            yield math.sqrt(d_sq), payload
            continue
        node = sites_tree.read_node(payload)  # type: ignore[arg-type]
        if node.is_leaf:
            for pt in node.entries:
                heapq.heappush(heap, (pt.dist_sq_to(q), next(counter), True, pt))
        else:
            for b in node.entries:
                heapq.heappush(
                    heap,
                    (b.rect.mindist_sq(q.x, q.y), next(counter), False, b.child),
                )
