"""The observation log: planned executions paired with measurements.

One observation is one executed plan: the planner's estimates
(``est_candidates``, ``est_bytes``, the density factor), the execution
coordinates (engine, worker count, workload kind), the measured
per-stage and total wall seconds, and a **host fingerprint** — CPU
count, platform identity and a one-shot microbenchmark constant — so a
store shared between hosts (a mounted home directory, a CI cache) can
be partitioned honestly at refit time.

Records append to ``observations.jsonl`` under the calibration
directory (``REPRO_CALIBRATION_DIR``, default
``~/.cache/repro/calibration``).  Appending is crash-tolerant on the
read side: :func:`load_observations` skips truncated or corrupt lines
instead of failing the refit.  Recording must never break a join —
:func:`record_planned_run` swallows I/O errors — and the whole loop
switches off under ``REPRO_CALIBRATION=0``.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time

#: Environment variable overriding where observations and profiles live.
CALIBRATION_DIR_ENV = "REPRO_CALIBRATION_DIR"

#: Kill switch: ``0``/``off``/``false``/``no`` disables recording *and*
#: profile-aware planning (the planner falls back to the static model).
CALIBRATION_ENABLE_ENV = "REPRO_CALIBRATION"

#: File the observation records append to.
OBSERVATIONS_FILENAME = "observations.jsonl"

#: Array length of the one-shot microbenchmark (a few ms of numpy work:
#: enough to rank hosts, cheap enough to run once per process).
_MICROBENCH_N = 200_000

#: Repetitions of the microbenchmark kernel (the minimum is kept, so a
#: scheduler hiccup cannot brand a fast host slow).
_MICROBENCH_REPS = 3


def calibration_enabled() -> bool:
    """Whether the calibration loop (recording + profile loading) is on."""
    flag = os.environ.get(CALIBRATION_ENABLE_ENV, "1").strip().lower()
    return flag not in ("0", "off", "false", "no")


def calibration_dir() -> str:
    """The directory holding the observation log and fitted profiles."""
    override = os.environ.get(CALIBRATION_DIR_ENV)
    if override:
        return override
    return os.path.join(
        os.path.expanduser("~"), ".cache", "repro", "calibration"
    )


def observations_path() -> str:
    """Path of the JSONL observation store."""
    return os.path.join(calibration_dir(), OBSERVATIONS_FILENAME)


_MICROBENCH_CACHE: float | None = None


def _microbench_seconds() -> float:
    """One-shot vectorized microbenchmark constant for this process.

    Times a fixed numpy kernel (multiply, sqrt, reduce over 200k
    doubles) and keeps the minimum of three runs.  The constant rides
    on every observation so refits can tell whether two stores came
    from comparably fast hosts; it is *not* used to scale predictions
    (the fitted per-candidate constants already embody host speed).
    """
    global _MICROBENCH_CACHE
    if _MICROBENCH_CACHE is None:
        import numpy as np

        a = np.arange(_MICROBENCH_N, dtype=np.float64)
        best = float("inf")
        for _ in range(_MICROBENCH_REPS):
            t0 = time.perf_counter()
            float(np.sqrt(a * 1.0001 + 1.5).sum())
            best = min(best, time.perf_counter() - t0)
        _MICROBENCH_CACHE = best
    return _MICROBENCH_CACHE


def host_fingerprint() -> dict:
    """Identity and speed of the executing host.

    ``key`` partitions observation stores and names the profile file;
    it is deliberately coarse (OS, architecture, core count) so reboots
    and kernel upgrades refit the same profile while a different
    machine class gets its own.
    """
    cpu = os.cpu_count() or 1
    return {
        "key": f"{sys.platform}-{platform.machine() or 'unknown'}-{cpu}cpu",
        "cpu_count": cpu,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "microbench_seconds": round(_microbench_seconds(), 6),
    }


def workload_key(kind: str, family: str | None = None) -> str:
    """The model-group key of one observation.

    Bulk RCJ joins fit under ``"join"``, ordered browsing under
    ``"topk"``, and each non-RCJ family under ``"family:<name>"`` —
    per-candidate cost differs enough between workloads that one shared
    constant would mispredict all of them.
    """
    if kind == "family" and family and family != "rcj":
        return f"family:{family}"
    return kind


def record_observation(
    *,
    kind: str,
    engine: str,
    workers: int,
    n_p: int,
    n_q: int,
    density_factor: float,
    est_candidates: int,
    est_bytes: int,
    stage_seconds: dict | None,
    total_seconds: float,
    family: str | None = None,
    workers_planned: int | None = None,
) -> str:
    """Append one observation record; returns the store path.

    ``workers`` is the *effective* worker count (what actually ran:
    1 on a serial fallback); ``workers_planned`` is the count the plan
    asked for, defaulting to ``workers`` when the two agree.  No-op
    (returns the path unwritten) when calibration is disabled or the
    execution carries no usable measurement (``total_seconds <= 0``).
    """
    path = observations_path()
    if not calibration_enabled() or not total_seconds > 0.0:
        return path
    record = {
        "ts": round(time.time(), 3),
        "kind": kind,
        "family": family,
        "workload": workload_key(kind, family),
        "engine": engine,
        "workers": int(workers),
        "workers_planned": int(
            workers if workers_planned is None else workers_planned
        ),
        "n_p": int(n_p),
        "n_q": int(n_q),
        "density_factor": round(float(density_factor), 6),
        "est_candidates": int(est_candidates),
        "est_bytes": int(est_bytes),
        "stage_seconds": {
            k: round(float(v), 6) for k, v in (stage_seconds or {}).items()
        },
        "total_seconds": round(float(total_seconds), 6),
        "host": host_fingerprint(),
    }
    os.makedirs(calibration_dir(), exist_ok=True)
    with open(path, "a") as f:
        f.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def record_planned_run(
    plan, report, kind: str, family: str | None = None
) -> None:
    """Record one planned execution from its plan and report.

    The seam :mod:`repro.engine.planner` and
    :mod:`repro.engine.families` call after every ``engine="auto"``
    run.  Swallows every exception: a full disk or read-only home
    directory must never fail the join that was measured.

    The recorded ``workers`` is the count that actually executed
    (``report.workers_used``) — a parallel plan whose run fell back to
    the in-process path records ``workers=1``, so refits never learn
    pool economics from a pool that never started.  The plan's request
    is kept alongside as ``workers_planned``.
    """
    if plan is None:
        return
    try:
        effective = getattr(report, "workers_used", None)
        record_observation(
            kind=kind,
            family=family,
            engine=plan.engine,
            workers=plan.workers if effective is None else effective,
            workers_planned=plan.workers,
            n_p=plan.n_p,
            n_q=plan.n_q,
            density_factor=plan.density_factor,
            est_candidates=plan.est_candidates,
            est_bytes=plan.est_bytes,
            stage_seconds=getattr(report, "stage_seconds", None),
            total_seconds=getattr(report, "cpu_seconds", 0.0),
        )
    except Exception:
        pass


def load_observations(path: str | None = None) -> list[dict]:
    """All parseable observation records, in append order.

    Corrupt or truncated lines (a crash mid-append, a concurrent
    writer) are skipped rather than failing the refit.
    """
    if path is None:
        path = observations_path()
    records: list[dict] = []
    try:
        with open(path) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict) and "total_seconds" in record:
                    records.append(record)
    except OSError:
        return []
    return records


def reset_calibration() -> list[str]:
    """Delete the observation store and every fitted profile.

    Returns the paths removed (the CLI's ``calibrate --reset``).
    """
    removed: list[str] = []
    directory = calibration_dir()
    try:
        names = os.listdir(directory)
    except OSError:
        return removed
    for name in names:
        if name == OBSERVATIONS_FILENAME or (
            name.startswith("profile-") and name.endswith(".json")
        ):
            full = os.path.join(directory, name)
            try:
                os.remove(full)
                removed.append(full)
            except OSError:
                pass
    return removed
