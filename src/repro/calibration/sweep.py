"""The bounded seed sweep: force every engine once, observe, refit.

Organic traffic only records the engine the planner *chose*, so a fresh
host would never observe the roads not taken (a 1-core container will
happily keep choosing ``array-parallel`` forever if nothing ever
measures how slow its pools are).  The sweep breaks that loop: it runs
one bounded synthetic workload through **every** engine — serial
array, the sharded pool at each candidate worker count, both top-k
routes, the shardable family pipelines — and records each run with the
same estimates the planner would have used, so the refit sees the full
decision space.

``python -m repro calibrate`` is the front door: sweep, refit, persist
the per-host profile.  The smoke variant (``--smoke``) bounds the whole
thing to a few seconds for CI.
"""

from __future__ import annotations

import os
from typing import Callable

import numpy as np

#: Neighbours per ε-probe the sweep's epsilon radius targets.
_EPS_TARGET_PER_PROBE = 8.0

#: k of the sweep's kNN-family runs.
_SWEEP_KNN_K = 8

#: k values of the sweep's top-k runs (one in the R-tree heap's
#: favoured regime, one in the streamed array engine's).
_SWEEP_TOPK_KS = (16, 128)


def _sweep_eps(points_p) -> float:
    """An ε giving roughly :data:`_EPS_TARGET_PER_PROBE` candidates per
    probe on this dataset (selective enough to be realistic, dense
    enough to measure)."""
    xs = np.array([p.x for p in points_p])
    ys = np.array([p.y for p in points_p])
    area = float(np.ptp(xs)) * float(np.ptp(ys))
    if not (area > 0.0 and np.isfinite(area)) or not len(points_p):
        return 1.0
    return float(
        np.sqrt(_EPS_TARGET_PER_PROBE * area / (np.pi * len(points_p)))
    )


def _worker_counts(max_workers: int | None) -> tuple[int, ...]:
    """Pool sizes the sweep measures.

    Always includes 2 — even (especially) on a 1-core host, where the
    measured 2-worker run is exactly the evidence that teaches the
    model pools don't pay here.
    """
    cpu = os.cpu_count() or 1
    counts = {2, max(2, cpu)}
    if max_workers is not None:
        counts = {min(c, max(max_workers, 2)) for c in counts}
        counts.add(max(max_workers, 2))
    return tuple(sorted(counts))


#: Batch sizes of the sweep's dynamic-maintenance series.
_SWEEP_DYNAMIC_BATCHES = (16, 64)

#: Update batches replayed per (backend, batch size) dynamic series.
_SWEEP_DYNAMIC_ROUNDS = 2


def _sweep_dynamic(size: int, seed: int, say) -> int:
    """Replay one bounded moving-objects stream through *both* dynamic
    backends, letting their own calibration hooks record each batch
    (``kind="dynamic"`` observations — what makes
    :func:`repro.parallel.costmodel.choose_dynamic_backend`
    profile-aware)."""
    from repro.core.dynamic import DynamicRCJ
    from repro.engine.streaming import DynamicArrayRCJ
    from repro.workloads.moving import FleetSimulator

    resident = max(192, min(size, 1024) // 2)
    recorded = 0
    for batch_size in _SWEEP_DYNAMIC_BATCHES:
        sim = FleetSimulator(
            fleet=resident, depots=resident, seed=seed + batch_size
        )
        points_p, points_q = sim.initial_points()
        batches = []
        stream = sim.batch_stream(batch_size, ticks=10_000)
        while len(batches) < _SWEEP_DYNAMIC_ROUNDS:
            batches.append(next(stream))
        for backend_cls, engine in (
            (DynamicArrayRCJ, "array"),
            (DynamicRCJ, "obj"),
        ):
            dyn = backend_cls(points_p, points_q)
            dyn.record_calibration = True
            for batch in batches:
                dyn.apply_batch(batch.inserts, batch.deletes)
                recorded += 1
            say(
                f"dynamic/{engine} n={2 * resident} batch={batch_size}: "
                f"{len(batches)} batches measured"
            )
    return recorded


def run_calibration_sweep(
    n: int = 4000,
    *,
    rounds: int = 2,
    max_workers: int | None = None,
    include_topk: bool = True,
    include_families: bool = True,
    include_dynamic: bool = True,
    seed: int = 211,
    echo: Callable[[str], None] | None = None,
) -> int:
    """Run the forced-engine sweep, recording one observation per run.

    Parameters
    ----------
    n:
        Largest dataset cardinality (a half-size round runs too, so the
        fits see two candidate volumes per engine and can separate base
        cost from per-candidate cost).
    rounds:
        Repetitions with distinct seeds; more rounds average out
        scheduler noise at linear cost.
    max_workers:
        Cap on the pool sizes measured (default: up to the machine's
        cores, always at least one 2-worker series).
    include_topk, include_families, include_dynamic:
        Gate the ordered-browsing, family-join and dynamic-maintenance
        series (the bulk-join series always runs — it anchors the
        shared serial constants).
    seed:
        Base RNG seed; each round offsets it so repeated sweeps
        accumulate fresh, non-duplicate observations.

    Returns the number of observations recorded.
    """
    from repro.calibration.observations import record_observation
    from repro.datasets.fixtures import uniform_pair
    from repro.engine.planner import run_join, run_topk
    from repro.parallel.costmodel import (
        estimate_bytes,
        estimate_candidates,
        estimate_family_candidates,
        estimate_topk_candidates,
        sample_density_factor,
    )

    def say(message: str) -> None:
        if echo is not None:
            echo(message)

    def record(kind, family, engine, workers, parr, qarr, est, report):
        record_observation(
            kind=kind,
            family=family,
            engine=engine,
            workers=workers,
            n_p=len(parr),
            n_q=len(qarr),
            density_factor=density,
            est_candidates=est,
            est_bytes=estimate_bytes(len(parr), len(qarr), workers, est),
            stage_seconds=report.stage_seconds,
            total_seconds=report.cpu_seconds,
        )

    workers_series = _worker_counts(max_workers)
    sizes = sorted({max(512, n // 2), max(512, n)})
    recorded = 0

    for round_no in range(max(rounds, 1)):
        for size in sizes:
            points_p, points_q = uniform_pair(
                size, size + size // 4, seed=seed + 13 * round_no
            )
            density = sample_density_factor(points_p, points_q)
            # A shard floor below |Q|/(2*workers) keeps the pools real
            # at sweep sizes instead of silently falling back serial.
            min_shard = max(
                64, len(points_q) // (2 * max(workers_series))
            )

            # -- bulk RCJ: serial + every pool size --------------------
            est = estimate_candidates(len(points_p), len(points_q), density)
            report = run_join(points_p, points_q, engine="array")
            record("join", None, "array", 1, points_p, points_q, est, report)
            recorded += 1
            say(
                f"join/array n={size}: {report.cpu_seconds:.3f}s "
                f"({report.result_count} pairs)"
            )
            for workers in workers_series:
                report = run_join(
                    points_p,
                    points_q,
                    engine="array-parallel",
                    workers=workers,
                    min_shard=min_shard,
                )
                record(
                    "join", None, "array-parallel", workers,
                    points_p, points_q, est, report,
                )
                recorded += 1
                say(
                    f"join/array-parallel@{workers} n={size}: "
                    f"{report.cpu_seconds:.3f}s"
                )

            # -- ordered browsing: both routes -------------------------
            if include_topk:
                for k in _SWEEP_TOPK_KS:
                    est_topk = estimate_topk_candidates(
                        k, density, len(points_p), len(points_q)
                    )
                    for engine in ("array", "obj"):
                        report = run_topk(
                            points_p, points_q, k, engine=engine
                        )
                        record(
                            "topk", None, engine, 1,
                            points_p, points_q, est_topk, report,
                        )
                        recorded += 1
                        say(
                            f"topk/{engine} k={k} n={size}: "
                            f"{report.cpu_seconds:.3f}s"
                        )

            # -- shardable families: serial + one pool size ------------
            if include_families:
                from repro.engine.families import run_family_join

                family_params = (
                    ("epsilon", {"eps": _sweep_eps(points_p)}),
                    ("knn", {"k": _SWEEP_KNN_K}),
                )
                for family, params in family_params:
                    est_fam, _probes = estimate_family_candidates(
                        family,
                        points_p,
                        points_q,
                        density=density,
                        **params,
                    )
                    report = run_family_join(
                        points_p, points_q, family,
                        engine="array", **params,
                    )
                    record(
                        "family", family, "array", 1,
                        points_p, points_q, est_fam, report,
                    )
                    recorded += 1
                    pool_w = workers_series[0]
                    report = run_family_join(
                        points_p, points_q, family,
                        engine="array-parallel",
                        workers=pool_w,
                        min_shard=min_shard,
                        **params,
                    )
                    record(
                        "family", family, "array-parallel", pool_w,
                        points_p, points_q, est_fam, report,
                    )
                    recorded += 1
                    say(
                        f"family:{family} n={size}: serial + pool@"
                        f"{pool_w} measured"
                    )

            # -- dynamic maintenance: both backends, batched -----------
            if include_dynamic:
                recorded += _sweep_dynamic(
                    size, seed + 13 * round_no, say
                )
    return recorded
