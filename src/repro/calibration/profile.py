"""The fitted per-host cost profile the planner loads.

A profile is a set of first-order *time* models fitted from measured
runs (:mod:`repro.calibration.refit`), keyed by workload and engine:

``"join/array"``
    Serial vectorized bulk RCJ: ``seconds = base + per_candidate * est``.
``"join/array-parallel@4"``
    The sharded pool at a specific observed worker count, fitted from
    runs at that count.  Keeping one linear model **per worker count**
    (instead of assuming work divides by ``w``) is what lets a 1-core
    host learn that its "parallel" line sits strictly above the serial
    one — the exact regime ``BENCH_parallel.json`` recorded.
``"topk/array"`` / ``"topk/obj"``, ``"family:epsilon/array"``, …
    The same shape for the other planned workloads.

``pools`` carries the derived pool overhead constants (startup seconds
plus per-worker seconds, least-squares over the parallel residuals
against the serial model) — surfaced in ``--explain`` and useful for
diagnosis, while predictions stay on the per-worker-count models.

Profiles persist as ``profile-<host key>.json`` next to the
observation store, so every host class keeps its own constants.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro.calibration.observations import (
    calibration_dir,
    calibration_enabled,
    host_fingerprint,
)

#: Profile document schema version.
PROFILE_VERSION = 1


@dataclass(frozen=True)
class EngineModel:
    """``seconds = base + per_candidate * est_candidates`` for one
    (workload, engine[, worker count]) group."""

    base_seconds: float
    per_candidate_seconds: float
    n_obs: int

    def predict(self, est_candidates: int) -> float:
        return self.base_seconds + self.per_candidate_seconds * max(
            est_candidates, 0
        )


@dataclass(frozen=True)
class PoolModel:
    """Derived pool overhead: ``startup + per_worker * w`` seconds of
    fixed cost the parallel engine pays beyond its share of the serial
    work."""

    startup_seconds: float
    per_worker_seconds: float
    n_obs: int


@dataclass(frozen=True)
class CalibrationProfile:
    """Every fitted constant of one host, ready for plan prediction."""

    host: dict
    fitted_at: str
    n_observations: int
    models: dict[str, EngineModel] = field(default_factory=dict)
    pools: dict[str, PoolModel] = field(default_factory=dict)

    # -- prediction ----------------------------------------------------

    def model_for(
        self, workload: str, engine: str, workers: int = 1
    ) -> EngineModel | None:
        """The fitted model of one plan shape, or None if never
        observed."""
        if engine == "array-parallel":
            return self.models.get(f"{workload}/array-parallel@{workers}")
        if engine == "pointwise":
            engine = "obj"
        return self.models.get(f"{workload}/{engine}")

    def predict_seconds(
        self, workload: str, engine: str, workers: int, est_candidates: int
    ) -> float | None:
        """Predicted wall seconds of one viable plan, or None when the
        profile holds no model for it (the planner then falls back to
        its static thresholds for that decision)."""
        model = self.model_for(workload, engine, workers)
        if model is None:
            return None
        return model.predict(est_candidates)

    def parallel_worker_counts(self, workload: str) -> tuple[int, ...]:
        """Worker counts the profile can predict for one workload,
        ascending."""
        prefix = f"{workload}/array-parallel@"
        counts = []
        for key in self.models:
            if key.startswith(prefix):
                try:
                    counts.append(int(key[len(prefix):]))
                except ValueError:
                    continue
        return tuple(sorted(counts))

    # -- presentation --------------------------------------------------

    def constants_line(self, workload: str) -> str:
        """One-line summary of the loaded constants for a workload
        (quoted into ``ExecutionPlan.reasons`` / ``--explain``)."""
        parts = []
        for key in sorted(self.models):
            if key.split("/", 1)[0] != workload:
                continue
            model = self.models[key]
            parts.append(
                f"{key.split('/', 1)[1]}: "
                f"{model.per_candidate_seconds:.3e}s/cand"
                f"+{model.base_seconds * 1000.0:.1f}ms"
            )
        pool = self.pools.get(workload)
        if pool is not None:
            parts.append(
                f"pool: {pool.startup_seconds * 1000.0:.1f}ms"
                f"+{pool.per_worker_seconds * 1000.0:.1f}ms/worker"
            )
        return "; ".join(parts) if parts else "no fitted constants"

    def describe(self) -> str:
        """Human-readable profile summary (the CLI's ``calibrate``
        output)."""
        lines = [
            f"calibration profile for {self.host.get('key', '?')}"
            f" (fitted {self.fitted_at},"
            f" {self.n_observations} observations)",
            f"  cpu count        {self.host.get('cpu_count', '?')}",
            f"  microbench       "
            f"{self.host.get('microbench_seconds', float('nan')) * 1000.0:.3f} ms",
        ]
        for key in sorted(self.models):
            model = self.models[key]
            lines.append(
                f"  {key:<28} {model.per_candidate_seconds:.3e} s/cand "
                f"+ {model.base_seconds * 1000.0:7.2f} ms base "
                f"({model.n_obs} obs)"
            )
        for key in sorted(self.pools):
            pool = self.pools[key]
            lines.append(
                f"  {key + ' pool overhead':<28} "
                f"{pool.startup_seconds * 1000.0:.2f} ms startup + "
                f"{pool.per_worker_seconds * 1000.0:.2f} ms/worker "
                f"({pool.n_obs} obs)"
            )
        return "\n".join(lines)

    # -- (de)serialization ---------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": PROFILE_VERSION,
            "host": self.host,
            "fitted_at": self.fitted_at,
            "n_observations": self.n_observations,
            "models": {
                key: {
                    "base_seconds": model.base_seconds,
                    "per_candidate_seconds": model.per_candidate_seconds,
                    "n_obs": model.n_obs,
                }
                for key, model in self.models.items()
            },
            "pools": {
                key: {
                    "startup_seconds": pool.startup_seconds,
                    "per_worker_seconds": pool.per_worker_seconds,
                    "n_obs": pool.n_obs,
                }
                for key, pool in self.pools.items()
            },
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "CalibrationProfile":
        models = {
            key: EngineModel(
                base_seconds=float(entry["base_seconds"]),
                per_candidate_seconds=float(entry["per_candidate_seconds"]),
                n_obs=int(entry.get("n_obs", 0)),
            )
            for key, entry in (doc.get("models") or {}).items()
        }
        pools = {
            key: PoolModel(
                startup_seconds=float(entry["startup_seconds"]),
                per_worker_seconds=float(entry["per_worker_seconds"]),
                n_obs=int(entry.get("n_obs", 0)),
            )
            for key, entry in (doc.get("pools") or {}).items()
        }
        return cls(
            host=dict(doc.get("host") or {}),
            fitted_at=str(doc.get("fitted_at", "")),
            n_observations=int(doc.get("n_observations", 0)),
            models=models,
            pools=pools,
        )


def profile_path(host_key: str | None = None) -> str:
    """Path of the persisted profile for one host class (default: the
    executing host's)."""
    if host_key is None:
        host_key = host_fingerprint()["key"]
    return os.path.join(calibration_dir(), f"profile-{host_key}.json")


def save_profile(
    profile: CalibrationProfile, path: str | None = None
) -> str:
    """Persist a fitted profile (stable key order); returns the path."""
    if path is None:
        path = profile_path(profile.host.get("key"))
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as f:
        json.dump(profile.to_dict(), f, indent=2, sort_keys=True)
        f.write("\n")
    return path


def load_profile(path: str | None = None) -> CalibrationProfile | None:
    """The persisted profile, or None when absent/corrupt/disabled."""
    if not calibration_enabled():
        return None
    if path is None:
        path = profile_path()
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError):
        return None
    try:
        return CalibrationProfile.from_dict(doc)
    except (KeyError, TypeError, ValueError):
        return None


#: Single-entry profile cache: ``(path, mtime_ns) -> profile-or-None``.
#: Keyed on the resolved path *and* its mtime so tests that repoint
#: ``REPRO_CALIBRATION_DIR`` or rewrite the profile are always seen.
_PROFILE_CACHE: tuple[str, int | None, CalibrationProfile | None] | None = None


def cached_profile() -> CalibrationProfile | None:
    """The executing host's profile with an mtime-validated cache.

    The planner calls this once per plan; re-parsing a small JSON file
    on every join would be harmless, but the cache makes the planner's
    overhead independent of plan volume (the serving workloads issue
    thousands of plans per second).
    """
    global _PROFILE_CACHE
    if not calibration_enabled():
        return None
    path = profile_path()
    try:
        mtime: int | None = os.stat(path).st_mtime_ns
    except OSError:
        mtime = None
    if _PROFILE_CACHE is not None:
        cached_path, cached_mtime, cached = _PROFILE_CACHE
        if cached_path == path and cached_mtime == mtime:
            return cached
    profile = load_profile(path) if mtime is not None else None
    _PROFILE_CACHE = (path, mtime, profile)
    return profile
