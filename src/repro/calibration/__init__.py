"""Self-calibration of the cost-based planner.

The planner's static model (:mod:`repro.parallel.costmodel`) picks
engines from first-order constants that cannot know the host: a 1-core
container, a 64-core server and a laptop throttling on battery all get
the same thresholds, and the shipped ``BENCH_parallel.json`` (speedup
0.35–0.93x at 2–4 workers on a 1-core host) shows exactly the mispick
that produces.  This package closes the measurement loop the PR 5/6
groundwork left open — estimates live on
:attr:`~repro.parallel.costmodel.ExecutionPlan.est_candidates`, measured
per-stage wall times on :attr:`~repro.core.pairs.JoinReport.stage_seconds`
and :attr:`~repro.parallel.costmodel.ExecutionPlan.measured` — in three
steps:

- :mod:`repro.calibration.observations` — every *planned* execution
  (``run_join`` / ``run_topk`` / family joins under ``engine="auto"``)
  appends one JSONL record pairing the plan's estimates with what
  actually happened, stamped with a host fingerprint (CPU count,
  platform, a one-shot microbenchmark constant).  The store lives under
  ``REPRO_CALIBRATION_DIR`` (default ``~/.cache/repro/calibration``);
  ``REPRO_CALIBRATION=0`` disables the whole loop.
- :mod:`repro.calibration.refit` — least-squares fit of per-engine cost
  constants (fixed setup seconds plus seconds per estimated candidate,
  per observed worker count for the parallel engine, and the derived
  pool startup / per-worker overhead) from the accumulated
  observations, persisted as a per-host profile JSON.
- :mod:`repro.calibration.profile` — the fitted
  :class:`CalibrationProfile` the planner loads: ``choose_plan``,
  ``choose_family_plan`` and ``choose_topk_plan`` compare *predicted
  seconds* per viable plan instead of raw threshold constants, falling
  back to the static thresholds whenever no profile (or no fitted model
  for a decision) exists.

:mod:`repro.calibration.sweep` seeds the store with a bounded forced
sweep of every engine (the CLI's ``python -m repro calibrate``), so a
fresh host converges in one command instead of waiting for organic
planned traffic.
"""

from repro.calibration.observations import (
    calibration_dir,
    calibration_enabled,
    host_fingerprint,
    load_observations,
    observations_path,
    record_observation,
    record_planned_run,
    reset_calibration,
    workload_key,
)
from repro.calibration.profile import (
    CalibrationProfile,
    EngineModel,
    PoolModel,
    cached_profile,
    load_profile,
    profile_path,
    save_profile,
)
from repro.calibration.refit import refit_profile
from repro.calibration.sweep import run_calibration_sweep

__all__ = [
    "CalibrationProfile",
    "EngineModel",
    "PoolModel",
    "cached_profile",
    "calibration_dir",
    "calibration_enabled",
    "host_fingerprint",
    "load_observations",
    "load_profile",
    "observations_path",
    "profile_path",
    "record_observation",
    "record_planned_run",
    "refit_profile",
    "reset_calibration",
    "run_calibration_sweep",
    "save_profile",
    "workload_key",
]
