"""Least-squares refit: observations -> per-host cost profile.

Each (workload, engine[, worker count]) group gets an independent
non-negative linear fit ``seconds = base + per_candidate * est``:

- With two or more observations spanning distinct candidate volumes,
  an ordinary least-squares solve of ``[1, est]``; negative solutions
  are clamped to the physically meaningful half-space (a negative
  slope becomes a flat fit at the mean, a negative intercept a
  through-origin fit).
- With a single observation (or zero spread), a through-origin ratio —
  one measured run is a rough constant, but strictly better than a
  guessed one.

Parallel groups are fitted **per observed worker count** (no assumption
that work divides by ``w``): the fitted line at ``w = 2`` on a 1-core
host sits strictly above the serial line in both coefficients, which is
precisely what makes the calibrated planner stop planning
``array-parallel`` there.  From the parallel residuals against the
serial model the refit also derives the classic pool constants
(``startup + per_worker * w``) for explain output.

Per-stage constants (seconds per estimated candidate for the
``candidate`` / ``prune`` / ``verify`` stages) are fitted the same way
from the recorded ``stage_seconds`` and stored as pseudo-engine models
under ``"<workload>/stage:<name>"`` — they don't drive engine choice
(total seconds do) but make ``--explain`` and the bench artifact
diagnosable stage by stage.
"""

from __future__ import annotations

import time

import numpy as np

from repro.calibration.observations import (
    host_fingerprint,
    load_observations,
)
from repro.calibration.profile import (
    CalibrationProfile,
    EngineModel,
    PoolModel,
)

#: Stages whose per-candidate constants are fitted individually
#: (the join/topk pipeline stages plus the dynamic batch path's
#: kill/probe/rebuild split).
STAGE_NAMES = ("candidate", "prune", "verify", "kill", "probe", "rebuild")


def _fit_linear(est: np.ndarray, secs: np.ndarray) -> tuple[float, float]:
    """Non-negative ``(base, per_candidate)`` least-squares fit."""
    est = np.asarray(est, dtype=np.float64)
    secs = np.asarray(secs, dtype=np.float64)
    sum_sq = float(np.dot(est, est))
    if len(est) >= 2 and float(np.ptp(est)) > 0.0:
        design = np.column_stack((np.ones_like(est), est))
        (base, slope), *_ = np.linalg.lstsq(design, secs, rcond=None)
        base, slope = float(base), float(slope)
        if slope < 0.0:
            # Work not explained by candidate volume: flat model.
            return float(secs.mean()), 0.0
        if base < 0.0:
            # Through-origin refit keeps predictions positive.
            return 0.0, float(np.dot(est, secs) / sum_sq) if sum_sq else 0.0
        return base, slope
    # Degenerate group: a single ratio (or a flat constant when the
    # estimate itself is zero, e.g. empty-input observations).
    if sum_sq > 0.0:
        return 0.0, float(np.dot(est, secs) / sum_sq)
    return float(secs.mean()) if len(secs) else 0.0, 0.0


def _engine_label(engine: str, workers: int) -> str:
    """Model key suffix of one observation's execution shape."""
    if engine == "pointwise":
        engine = "obj"
    if engine == "array-parallel":
        return f"array-parallel@{max(int(workers), 1)}"
    return engine


def _fit_pool_constants(
    observations: list[dict], serial: EngineModel
) -> PoolModel | None:
    """``startup + per_worker * w`` from parallel residuals against the
    serial model (clamped non-negative)."""
    ws, residuals = [], []
    for obs in observations:
        w = max(int(obs.get("workers", 1)), 1)
        residual = float(obs["total_seconds"]) - serial.predict(
            int(obs.get("est_candidates", 0))
        ) / w
        ws.append(float(w))
        residuals.append(residual)
    if not ws:
        return None
    ws_arr = np.asarray(ws)
    res_arr = np.asarray(residuals)
    if len(ws_arr) >= 2 and float(np.ptp(ws_arr)) > 0.0:
        design = np.column_stack((np.ones_like(ws_arr), ws_arr))
        (startup, per_worker), *_ = np.linalg.lstsq(
            design, res_arr, rcond=None
        )
        startup, per_worker = float(startup), float(per_worker)
        if per_worker < 0.0:
            startup, per_worker = float(res_arr.mean()), 0.0
        if startup < 0.0:
            startup = 0.0
            per_worker = max(
                float(np.dot(ws_arr, res_arr) / np.dot(ws_arr, ws_arr)), 0.0
            )
    else:
        startup = max(float(res_arr.mean()), 0.0)
        per_worker = 0.0
    return PoolModel(
        startup_seconds=max(startup, 0.0),
        per_worker_seconds=max(per_worker, 0.0),
        n_obs=len(ws),
    )


def refit_profile(
    observations: list[dict] | None = None,
    *,
    host_filter: bool = True,
) -> CalibrationProfile:
    """Fit every model the observations support; raises ``ValueError``
    when no usable observation exists.

    ``host_filter`` keeps only observations whose host key matches the
    executing host (a store shared across machine classes must not blur
    their constants together); pass ``False`` to refit someone else's
    recorded store deliberately.
    """
    if observations is None:
        observations = load_observations()
    host = host_fingerprint()
    if host_filter:
        observations = [
            obs
            for obs in observations
            if (obs.get("host") or {}).get("key") in (None, host["key"])
        ]
    usable = [
        obs
        for obs in observations
        if float(obs.get("total_seconds", 0.0)) > 0.0
        and obs.get("engine")
        and obs.get("workload")
    ]
    if not usable:
        raise ValueError(
            "no usable calibration observations for this host; run "
            "'python -m repro calibrate' (or any planned join) first"
        )

    groups: dict[str, list[dict]] = {}
    parallel_groups: dict[str, list[dict]] = {}
    for obs in usable:
        workload = str(obs["workload"])
        label = _engine_label(str(obs["engine"]), int(obs.get("workers", 1)))
        groups.setdefault(f"{workload}/{label}", []).append(obs)
        if label.startswith("array-parallel@"):
            parallel_groups.setdefault(workload, []).append(obs)

    models: dict[str, EngineModel] = {}
    for key, members in groups.items():
        est = np.array(
            [int(m.get("est_candidates", 0)) for m in members], np.float64
        )
        secs = np.array(
            [float(m["total_seconds"]) for m in members], np.float64
        )
        base, per_candidate = _fit_linear(est, secs)
        models[key] = EngineModel(
            base_seconds=base,
            per_candidate_seconds=per_candidate,
            n_obs=len(members),
        )

    # Per-stage constants from the serial measured stage times.
    stage_samples: dict[str, list[tuple[int, float]]] = {}
    for obs in usable:
        if obs.get("engine") not in ("array", "array-parallel"):
            continue
        for stage, secs in (obs.get("stage_seconds") or {}).items():
            if stage not in STAGE_NAMES:
                continue
            stage_samples.setdefault(
                f"{obs['workload']}/stage:{stage}", []
            ).append((int(obs.get("est_candidates", 0)), float(secs)))
    for key, samples in stage_samples.items():
        est = np.array([s[0] for s in samples], np.float64)
        secs = np.array([s[1] for s in samples], np.float64)
        base, per_candidate = _fit_linear(est, secs)
        models[key] = EngineModel(
            base_seconds=base,
            per_candidate_seconds=per_candidate,
            n_obs=len(samples),
        )

    pools: dict[str, PoolModel] = {}
    for workload, members in parallel_groups.items():
        serial = models.get(f"{workload}/array")
        if serial is None:
            continue
        pool = _fit_pool_constants(members, serial)
        if pool is not None:
            pools[workload] = pool

    return CalibrationProfile(
        host=host,
        fitted_at=time.strftime("%Y-%m-%dT%H:%M:%S"),
        n_observations=len(usable),
        models=models,
        pools=pools,
    )
