"""Recycling-station placement (the paper's flagship application).

"The city council wants to allocate recycling stations for appropriate
pairs between restaurants and residential complexes in the city": every
RCJ pair yields one station at its circle centre — at a fair distance
from its restaurant and its residential complex, with no other facility
closer to the station than those two.

Run with::

    python examples/recycling_stations.py
"""

from collections import Counter

from repro import gaussian_clusters, ring_constrained_join


def main() -> None:
    # A city with a handful of districts: restaurants cluster downtown,
    # residential complexes spread across more districts.
    restaurants = gaussian_clusters(600, w=4, seed=11)
    complexes = gaussian_clusters(800, w=9, seed=23, start_oid=600)

    pairs = ring_constrained_join(restaurants, complexes, method="obj")
    print(f"{len(restaurants)} restaurants x {len(complexes)} residential complexes")
    print(f"recycling stations to build: {len(pairs)}")

    # The ring adapts to local density: dense districts get small
    # service radii, sparse outskirts large ones (paper, Introduction:
    # "the join pairs of RCJ adapt to the local data density").
    radii = sorted(pair.radius for pair in pairs)
    print(f"service radius: min {radii[0]:.1f}  median "
          f"{radii[len(radii) // 2]:.1f}  max {radii[-1]:.1f}")

    # How many stations serve each restaurant?  (A restaurant whose
    # nearest facility of any kind is a complex is always served.)
    per_restaurant = Counter(pair.p.oid for pair in pairs)
    print(f"restaurants served: {len(per_restaurant)} / {len(restaurants)}")
    busiest, n_busiest = per_restaurant.most_common(1)[0]
    print(f"restaurant #{busiest} pairs with {n_busiest} complexes")

    print()
    print("ten station sites (restaurant, complex, station x/y, radius):")
    for pair in sorted(pairs, key=lambda pr: pr.radius)[:10]:
        cx, cy = pair.center
        print(
            f"  R#{pair.p.oid:<4} C#{pair.q.oid:<4} "
            f"({cx:7.1f}, {cy:7.1f})  r={pair.radius:7.1f}"
        )


if __name__ == "__main__":
    main()
