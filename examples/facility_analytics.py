"""Site analytics beyond the join: RNN influence and skyline screening.

A retail chain evaluates a prospective store location three ways on the
same indexed data:

1. **Adoption** — which households would have the new store as their
   nearest (bichromatic reverse NN against the existing competitors)?
2. **Cannibalisation** — which existing stores currently "own" those
   households (top influential sites)?
3. **Shortlist screening** — among candidate sites scored by (rent,
   distance to depot), which are Pareto-optimal (skyline)?

All three queries run on the library's R-tree substrate with the same
incremental-NN machinery as the RCJ Filter step.

Run with::

    python examples/facility_analytics.py
"""

from repro import Point, bulk_load, uniform
from repro.influence.queries import top_k_influential
from repro.queries import bichromatic_reverse_nearest, skyline


def main() -> None:
    households = uniform(800, seed=20)
    stores = uniform(12, seed=21, start_oid=10_000)

    households_tree = bulk_load(households, name="households")
    stores_tree = bulk_load(stores, name="stores")

    # 1. Adoption of a prospective site.
    site = Point(4200.0, 5800.0)
    adopters = bichromatic_reverse_nearest(households_tree, stores_tree, site)
    print(
        f"prospective store at ({site.x:.0f}, {site.y:.0f}) would be the "
        f"nearest store for {len(adopters)} of {len(households)} households"
    )

    # 2. Who loses those households today?
    top = top_k_influential(stores, households, k=3)
    print()
    print("most influential existing stores (households owned):")
    for store, influence in top:
        print(f"  store #{store.oid}: {influence} households")

    # 3. Skyline screening of candidate sites by (rent, depot distance).
    # Coordinates double as the two cost dimensions: minimise both.
    candidates = [
        Point(rent, depot_km, oid)
        for oid, (rent, depot_km) in enumerate(
            [
                (900, 14.0),
                (700, 18.0),
                (1200, 6.0),
                (800, 15.0),
                (650, 25.0),
                (1000, 9.0),
                (1500, 5.0),
                (720, 16.0),
            ]
        )
    ]
    pareto = skyline(bulk_load(candidates, name="candidates"))
    print()
    print("Pareto-optimal candidate sites (rent, depot distance):")
    for c in pareto:
        print(f"  site #{c.oid}: rent {c.x:.0f}, depot {c.y:.1f} km")


if __name__ == "__main__":
    main()
