"""Render paper-style SVG figures from experiment data.

Demonstrates the dependency-free SVG renderers: a Figure-10-style
resemblance sweep and a Figure-1-style join map, computed live at a
small scale.  Writes ``figure10_sp.svg`` and ``figure1_map.svg`` into
the working directory.

Run with::

    python examples/plot_figures.py
"""

from repro.core.gabriel import gabriel_rcj
from repro.datasets.real import join_combination
from repro.evaluation.resemblance import precision_recall
from repro.evaluation.svgplot import line_chart
from repro.joins.epsilon import epsilon_join_arrays


def main() -> None:
    points_q, points_p = join_combination("SP", scale=256)
    rcj_keys = {r.key() for r in gabriel_rcj(points_p, points_q)}

    multipliers = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0]
    # Density-normalised epsilon unit: a rough mean NN distance.
    unit = 10000.0 / (len(points_p) + len(points_q)) ** 0.5
    precisions, recalls = [], []
    for m in multipliers:
        eps_keys = epsilon_join_arrays(points_p, points_q, unit * m)
        prec, rec = precision_recall(eps_keys, rcj_keys)
        precisions.append(prec)
        recalls.append(rec)

    out = "figure10_sp.svg"
    line_chart(
        title="Figure 10 (SP stand-in): eps-range join vs RCJ",
        x_label="eps / mean NN distance",
        y_label="quality (%)",
        xs=multipliers,
        series={"precision": precisions, "recall": recalls},
        path=out,
    )
    print(f"wrote {out}")
    for m, p, r in zip(multipliers, precisions, recalls):
        print(f"  eps x{m:<5g} precision {p:5.1f}%  recall {r:5.1f}%")

    # A Figure-1-style map of a small join: both pointsets, every
    # pair's ring, and the derived middleman locations.
    from repro.core.brute import brute_force_rcj
    from repro.datasets.synthetic import uniform
    from repro.evaluation.joinmap import draw_join_map

    ps = uniform(40, seed=7)
    qs = uniform(35, seed=8, start_oid=100)
    pairs = brute_force_rcj(ps, qs)
    draw_join_map(ps, qs, pairs, title="RCJ (Figure 1 style)", path="figure1_map.svg")
    print(f"wrote figure1_map.svg ({len(pairs)} rings)")


if __name__ == "__main__":
    main()
