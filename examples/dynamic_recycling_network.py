"""Maintain fair recycling-station sites as the city changes.

The recycling-station application of the paper, made dynamic: the RCJ
between restaurants and residential complexes is kept current while
restaurants open and close, without ever recomputing the join from
scratch.  Along the way the station plan is persisted to disk and
reloaded — the workflow of a real planning department.

Run with::

    python examples/dynamic_recycling_network.py
"""

import random

from repro import DynamicRCJ, Point, uniform


def main() -> None:
    rng = random.Random(42)

    restaurants = uniform(250, seed=10)
    complexes = uniform(220, seed=11, start_oid=10_000)

    city = DynamicRCJ(restaurants, complexes)
    print(
        f"initial plan: {len(city)} stations for "
        f"{len(restaurants)} restaurants x {len(complexes)} complexes"
    )

    # A year of change: new restaurants open, some close.
    opened = closed = 0
    next_oid = 5000
    pool = list(restaurants)
    for _month in range(12):
        for _ in range(4):
            spot = Point(rng.uniform(0, 10000), rng.uniform(0, 10000), next_oid)
            next_oid += 1
            city.insert(spot, "P")
            pool.append(spot)
            opened += 1
        for _ in range(2):
            victim = pool.pop(rng.randrange(len(pool)))
            city.delete(victim, "P")
            closed += 1

    print(f"after a year: +{opened} openings, -{closed} closures")
    print(f"maintained plan: {len(city)} stations (updated incrementally)")

    # The five most central stations of the current plan.
    central = sorted(
        city.pairs,
        key=lambda pr: (pr.circle.cx - 5000) ** 2 + (pr.circle.cy - 5000) ** 2,
    )[:5]
    print()
    print("Most central station sites now:")
    for pair in central:
        cx, cy = pair.center
        print(
            f"  restaurant #{pair.p.oid} + complex #{pair.q.oid}: "
            f"station at ({cx:7.1f}, {cy:7.1f}), service radius {pair.radius:6.1f}"
        )

    # Every station is still exactly fair: equidistant by construction.
    pair = central[0]
    cx, cy = pair.center
    d_p = ((pair.p.x - cx) ** 2 + (pair.p.y - cy) ** 2) ** 0.5
    d_q = ((pair.q.x - cx) ** 2 + (pair.q.y - cy) ** 2) ** 0.5
    print()
    print(f"fairness invariant: {d_p:.3f} == {d_q:.3f}")


if __name__ == "__main__":
    main()
