"""Postbox placement via the self-RCJ.

The paper: "A nice distribution would be to have post boxes located at
centers of RCJ pairs between buildings.  This is viewed as the self-RCJ
problem, where both sets P and Q contain locations of all buildings."

Run with::

    python examples/postboxes_selfjoin.py
"""

from repro import gaussian_clusters, self_rcj


def main() -> None:
    buildings = gaussian_clusters(900, w=6, seed=47)

    pairs = self_rcj(buildings, algorithm="obj")
    print(f"buildings: {len(buildings)}")
    print(f"postbox sites (unordered RCJ pairs): {len(pairs)}")

    # The self-RCJ is the Gabriel graph of the buildings: its edge count
    # is linear in n (at most 3n - 8 edges in the plane), so the postbox
    # budget scales with the city, not quadratically.
    ratio = len(pairs) / len(buildings)
    print(f"postboxes per building: {ratio:.2f} (Gabriel graph => < 3)")
    assert len(pairs) <= 3 * len(buildings) - 8

    # Every building is covered (Gabriel graphs are connected).
    covered = {pr.p.oid for pr in pairs} | {pr.q.oid for pr in pairs}
    print(f"buildings with at least one nearby postbox: {len(covered)}")

    print()
    print("ten postbox sites (building a, building b, postbox x/y):")
    # Buildings clamped to the same location pair at radius zero; skip
    # those degenerate sites when presenting the plan.
    distinct = (pr for pr in sorted(pairs, key=lambda pr: pr.radius) if pr.radius > 0)
    for pair, _ in zip(distinct, range(10)):
        cx, cy = pair.center
        print(f"  B#{pair.p.oid:<4} B#{pair.q.oid:<4} at ({cx:7.1f}, {cy:7.1f})")


if __name__ == "__main__":
    main()
