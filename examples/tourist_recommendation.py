"""Tourist recommendation: browse RCJ pairs sorted by ring diameter.

The paper: "the RCJ result set can be sorted in ascending order of the
ring diameter so as to facilitate the tourist for making his/her choice
with ease".  Each recommendation is a cinema-restaurant pair the
tourist can visit conveniently from the ring centre, annotated with a
quality score the tourist can filter on.

Run with::

    python examples/tourist_recommendation.py
"""

import random

from repro import ring_constrained_join, uniform


def main() -> None:
    rng = random.Random(5)
    cinemas = uniform(250, seed=31)
    restaurants = uniform(350, seed=32, start_oid=250)

    # Qualities are application metadata keyed by oid (the RCJ itself is
    # parameterless; preference filtering happens on the sorted result).
    quality = {p.oid: rng.uniform(1.0, 5.0) for p in cinemas + restaurants}

    pairs = ring_constrained_join(cinemas, restaurants, method="obj")
    ranked = sorted(pairs, key=lambda pr: pr.diameter)

    print(f"RCJ pairs available: {len(ranked)}")
    print()
    print("top recommendations (closest cinema/restaurant pairings):")
    header = f"{'cinema':>7} {'restaur.':>8} {'walk':>8} {'c.qual':>7} {'r.qual':>7}"
    print(header)
    shown = 0
    for pair in ranked:
        cq, rq = quality[pair.p.oid], quality[pair.q.oid]
        # Tourist preference: skip pairings where either venue is poor.
        if min(cq, rq) < 2.5:
            continue
        print(
            f"{pair.p.oid:>7} {pair.q.oid:>8} {pair.radius:>8.1f} "
            f"{cq:>7.2f} {rq:>7.2f}"
        )
        shown += 1
        if shown == 10:
            break

    # The tourist standing at a recommended centre never has a closer
    # cinema or restaurant than the recommended two.
    best = ranked[0]
    cx, cy = best.center
    nearest_cinema = min(cinemas, key=lambda c: (c.x - cx) ** 2 + (c.y - cy) ** 2)
    nearest_restaurant = min(
        restaurants, key=lambda r: (r.x - cx) ** 2 + (r.y - cy) ** 2
    )
    assert nearest_cinema.oid == best.p.oid
    assert nearest_restaurant.oid == best.q.oid
    print()
    print(
        f"commercial-advantage check: from centre of pair "
        f"({best.p.oid}, {best.q.oid}) the nearest cinema/restaurant are "
        f"exactly that pair"
    )


if __name__ == "__main__":
    main()
