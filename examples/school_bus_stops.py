"""School-bus stop planning with result ranking by rider counts.

The paper: "Centers of RCJ pairs between estates provide handy
locations for placing school bus stops.  The RCJ result set can be
sorted in descending order of the number of children in the residential
estates associated with the RCJ pair."

Run with::

    python examples/school_bus_stops.py
"""

import random

from repro import gaussian_clusters, self_rcj


def main() -> None:
    rng = random.Random(99)
    estates = gaussian_clusters(500, w=5, seed=61)
    children = {e.oid: rng.randint(0, 120) for e in estates}

    # Bus stops between estates: the self-RCJ of the estate pointset.
    pairs = self_rcj(estates, algorithm="obj")

    # Rank candidate stops by how many children they would serve.
    ranked = sorted(
        pairs,
        key=lambda pr: children[pr.p.oid] + children[pr.q.oid],
        reverse=True,
    )

    print(f"estates: {len(estates)}, candidate bus stops: {len(pairs)}")
    print()
    print("ten best stops (estate pair, children served, stop x/y, walk):")
    for pair in ranked[:10]:
        served = children[pair.p.oid] + children[pair.q.oid]
        cx, cy = pair.center
        print(
            f"  E#{pair.p.oid:<4} E#{pair.q.oid:<4} kids={served:<4} "
            f"stop=({cx:7.1f}, {cy:7.1f}) walk<={pair.radius:6.1f}"
        )

    # A greedy cover: pick stops by rider count until every estate with
    # children is adjacent to a chosen stop.
    uncovered = {e.oid for e in estates if children[e.oid] > 0}
    chosen = []
    for pair in ranked:
        if pair.p.oid in uncovered or pair.q.oid in uncovered:
            chosen.append(pair)
            uncovered.discard(pair.p.oid)
            uncovered.discard(pair.q.oid)
        if not uncovered:
            break
    print()
    print(
        f"greedy plan: {len(chosen)} stops cover all "
        f"{sum(1 for e in estates if children[e.oid] > 0)} estates with children"
    )


if __name__ == "__main__":
    main()
