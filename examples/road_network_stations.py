"""Metro stations on a road network (the paper's future-work setting).

The planar ring constraint generalises to shortest-path distance: the
middleman becomes the network vertex minimising the maximum travel cost
to both facilities, and the ring the travel-cost ball around it.  This
example places metro stations between cinemas and restaurants on a
synthetic city road grid.

Run with::

    python examples/road_network_stations.py
"""

from repro.network import attach_points, grid_road_network, network_rcj


def main() -> None:
    # A 12x12 city grid with variable road quality.
    city = grid_road_network(12, 12, spacing=100.0, seed=3)
    cinemas = attach_points(city, 14, seed=4)
    restaurants = attach_points(city, 18, seed=5, start_oid=100)

    stations = network_rcj(city, cinemas, restaurants)
    print(f"cinemas: {len(cinemas)}, restaurants: {len(restaurants)}")
    print(f"network-RCJ station sites: {len(stations)}")
    print()
    print("ten stations (cinema, restaurant, grid vertex, max travel):")
    for s in sorted(stations, key=lambda s: s.radius)[:10]:
        print(
            f"  C#{s.p.oid:<4} R#{s.q.oid:<4} vertex={s.middleman} "
            f"travel<={s.radius:7.1f}"
        )

    # Fairness on the network: the middleman vertex minimises the
    # maximum shortest-path distance to the two facilities, so riders
    # from either side face balanced worst-case travel.
    tightest = min(stations, key=lambda s: s.radius)
    print()
    print(
        f"tightest pairing: cinema #{tightest.p.oid} and restaurant "
        f"#{tightest.q.oid} meet at {tightest.middleman} within "
        f"{tightest.radius:.1f} travel units"
    )


if __name__ == "__main__":
    main()
