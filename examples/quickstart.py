"""Quickstart: compute a ring-constrained join in three lines.

Run with::

    python examples/quickstart.py
"""

from repro import ring_constrained_join, uniform


def main() -> None:
    # Two small synthetic facility sets over the [0, 10000]^2 domain.
    cinemas = uniform(400, seed=1)
    restaurants = uniform(300, seed=2, start_oid=400)

    # The RCJ: pairs whose smallest enclosing circle is empty of other
    # facilities.  The default method is OBJ, the paper's best.
    pairs = ring_constrained_join(cinemas, restaurants)

    print(f"{len(cinemas)} cinemas x {len(restaurants)} restaurants")
    print(f"RCJ result pairs: {len(pairs)}")
    print()
    print("Five fair middleman locations (e.g. for taxi stands):")
    for pair in sorted(pairs, key=lambda pr: pr.radius)[:5]:
        cx, cy = pair.center
        print(
            f"  between cinema #{pair.p.oid} and restaurant #{pair.q.oid}: "
            f"stand at ({cx:7.1f}, {cy:7.1f}), each {pair.radius:6.1f} away"
        )

    # The centre is equidistant from both endpoints by construction
    # (fairness) and no other facility is nearer to it (commercial
    # advantage) -- see the paper's Introduction.
    example = pairs[0]
    cx, cy = example.center
    d_p = ((example.p.x - cx) ** 2 + (example.p.y - cy) ** 2) ** 0.5
    d_q = ((example.q.x - cx) ** 2 + (example.q.y - cy) ** 2) ** 0.5
    print()
    print(f"Fairness check for the first pair: {d_p:.3f} == {d_q:.3f}")


if __name__ == "__main__":
    main()
