"""Unit tests for the span tracer and its exporters."""

from __future__ import annotations

import json

import pytest

from repro.obs.export import (
    read_jsonl,
    render_tree,
    span_records,
    to_chrome,
    validate_chrome,
    write_jsonl,
)
from repro.obs.trace import (
    Span,
    add_counter,
    counter_totals,
    current_span,
    set_attr,
    span,
    stage_timer,
    stage_totals,
    trace,
    tracing_enabled,
)


class TestSpanTree:
    def test_nesting_builds_the_tree(self):
        with trace("root") as root:
            with span("a") as a:
                with span("b"):
                    pass
            with span("c"):
                pass
        assert [child.name for child in root.children] == ["a", "c"]
        assert [child.name for child in a.children] == ["b"]
        assert len(root) == 4
        assert root.seconds > 0.0
        assert all(node.seconds >= 0.0 for node in root.walk())

    def test_find_and_counters(self):
        with trace("root") as root:
            with span("shard"):
                add_counter("candidates", 10)
                add_counter("candidates", 5)
            with span("shard"):
                add_counter("candidates", 7)
                set_attr(lo=3)
        shards = root.find("shard")
        assert len(shards) == 2
        assert shards[0].counters == {"candidates": 15}
        assert shards[1].attrs == {"lo": 3}
        assert counter_totals(root) == {"candidates": 22}

    def test_current_span_tracks_innermost(self):
        assert current_span() is None
        with trace("root") as root:
            assert current_span() is root
            with span("child") as child:
                assert current_span() is child
            assert current_span() is root
        assert current_span() is None

    def test_span_outside_trace_is_noop(self):
        with span("orphan") as node:
            add_counter("x")
            set_attr(y=1)
        assert node is None

    def test_nested_trace_degrades_to_span(self):
        with trace("outer") as outer:
            with trace("inner") as inner:
                pass
        assert inner is not None
        assert inner in outer.children

    def test_exception_unwinds_the_stack(self):
        with pytest.raises(RuntimeError):
            with trace("root"):
                with span("child"):
                    raise RuntimeError("boom")
        assert current_span() is None

    def test_to_from_dict_round_trip(self):
        with trace("root", engine="array") as root:
            with span("child") as child:
                child.add("candidates", 3)
        rebuilt = Span.from_dict(root.to_dict())
        assert rebuilt.name == "root"
        assert rebuilt.attrs == {"engine": "array"}
        assert rebuilt.children[0].counters == {"candidates": 3}
        assert rebuilt.children[0].seconds == child.seconds
        assert rebuilt.proc == root.proc

    def test_adopt_reparents_a_serialized_tree(self):
        with trace("shard") as shard:
            with span("verify"):
                pass
        parent = Span("pool")
        child = parent.adopt(shard.to_dict())
        assert child in parent.children
        assert child.find("verify")


class TestKillSwitch:
    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert tracing_enabled()

    @pytest.mark.parametrize("off", ["0", "off", "false", "no"])
    def test_disables_tracing(self, monkeypatch, off):
        monkeypatch.setenv("REPRO_TRACE", off)
        assert not tracing_enabled()
        with trace("root") as root:
            with span("child") as child:
                add_counter("x")
        assert root is None and child is None

    def test_disabled_stage_timer_still_accumulates(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "0")
        acc: dict = {}
        with trace("root"):
            with stage_timer(acc, "verify"):
                pass
        assert acc["verify"] >= 0.0


class TestStageTimer:
    def test_dict_and_tree_measure_the_same_instant(self):
        acc: dict = {}
        with trace("root") as root:
            with stage_timer(acc, "verify"):
                pass
            with stage_timer(acc, "verify"):
                pass
        totals = stage_totals(root)
        assert totals["verify"] == pytest.approx(acc["verify"], abs=0.0)

    def test_accumulates_onto_existing_totals(self):
        acc = {"verify": 100.0}
        with stage_timer(acc, "verify"):
            pass
        assert acc["verify"] > 100.0

    def test_none_acc_outside_trace_times_nothing(self):
        with stage_timer(None, "verify"):
            pass  # must simply not crash, and record nowhere

    def test_stage_spans_have_stage_kind(self):
        with trace("root") as root:
            with stage_timer({}, "candidate"):
                pass
            with span("pool"):
                pass
        kinds = {node.name: node.kind for node in root.children}
        assert kinds == {"candidate": "stage", "pool": "span"}

    def test_structural_spans_never_leak_into_totals(self):
        with trace("root") as root:
            with span("pool"):
                with stage_timer(None, "verify"):
                    pass
        assert set(stage_totals(root)) == {"verify"}

    def test_nested_stage_timers_each_count(self):
        acc: dict = {}
        with trace("root") as root:
            with stage_timer(acc, "candidate"):
                with stage_timer(acc, "candidate"):
                    pass
        totals = stage_totals(root)
        assert totals["candidate"] == pytest.approx(acc["candidate"], abs=0.0)
        # Nested timers double-count by design (the accumulator always
        # did); both sinks must agree on that.
        inner = root.children[0].children[0]
        assert totals["candidate"] > inner.seconds


class TestJsonlSink:
    def _sample(self):
        with trace("join", engine="array") as root:
            with span("pool", workers=2) as pool:
                pool.add("bytes-shipped", 1024)
                with stage_timer(None, "verify"):
                    pass
        return root

    def test_round_trip(self, tmp_path):
        root = self._sample()
        path = str(tmp_path / "trace.jsonl")
        n = write_jsonl(root, path)
        assert n == len(root) == 3
        (rebuilt,) = read_jsonl(path)
        assert [s.name for s in rebuilt.walk()] == [
            s.name for s in root.walk()
        ]
        assert counter_totals(rebuilt) == counter_totals(root)
        assert stage_totals(rebuilt) == stage_totals(root)

    def test_appends_runs(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        write_jsonl(self._sample(), path)
        write_jsonl(self._sample(), path)
        assert len(read_jsonl(path)) == 2

    def test_corrupt_lines_skipped(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        write_jsonl(self._sample(), path)
        with open(path, "a") as f:
            f.write("{broken\n42\n")
        write_jsonl(self._sample(), path)
        assert len(read_jsonl(path)) == 2

    def test_records_carry_parent_links(self):
        records = span_records(self._sample())
        assert records[0]["parent"] is None
        assert records[1]["parent"] == 0
        assert records[2]["parent"] == 1


class TestChromeExport:
    def test_valid_and_complete(self):
        with trace("join") as root:
            with span("pool"):
                with stage_timer(None, "verify"):
                    pass
        doc = to_chrome(root)
        validate_chrome(doc)
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in xs} == {"join", "pool", "verify"}
        metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert any(
            e["args"]["name"].startswith("coordinator") for e in metas
        )
        assert json.loads(json.dumps(doc)) == doc  # JSON-serializable

    def test_worker_processes_get_their_own_pid(self):
        root = Span("join")
        worker = Span("shard", proc=root.proc + 1)
        root.children.append(worker)
        doc = to_chrome(root)
        validate_chrome(doc)
        pids = {e["pid"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert pids == {root.proc, worker.proc}
        labels = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M"
        }
        assert labels == {
            f"coordinator-{root.proc}",
            f"worker-{worker.proc}",
        }

    def test_counters_become_args(self):
        with trace("join") as root:
            add_counter("pairs", 9)
        doc = to_chrome(root)
        (event,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert event["args"]["counter.pairs"] == 9

    @pytest.mark.parametrize(
        "doc",
        [
            {},
            {"traceEvents": []},
            {"traceEvents": [{"name": "x", "ph": "Z", "pid": 1, "tid": 1}]},
            {"traceEvents": [{"ph": "X", "pid": 1, "tid": 1, "ts": 0, "dur": 1}]},
            {"traceEvents": [
                {"name": "x", "ph": "X", "pid": 1, "tid": 1, "ts": -5, "dur": 1}
            ]},
        ],
    )
    def test_validate_rejects_malformed(self, doc):
        with pytest.raises(ValueError):
            validate_chrome(doc)


class TestRenderTree:
    def test_renders_all_spans_with_attrs_and_counters(self):
        with trace("join", engine="array") as root:
            with span("pool", workers=2) as pool:
                pool.add("bytes-shipped", 64)
        text = render_tree(root)
        assert "join" in text and "pool" in text
        assert "engine=array" in text
        assert "bytes-shipped=64" in text
        assert "totals:" in text

    def test_depth_limit(self):
        with trace("a") as root:
            with span("b"):
                with span("c"):
                    pass
        text = render_tree(root, max_depth=1)
        assert "b" in text
        assert "c" not in text
