"""Integration tests: traces of real planner runs.

Pins the PR's acceptance contract — a traced parallel join carries
re-parented per-shard worker spans under the plan root, the report's
``stage_seconds`` and the calibration observation derive from the
trace tree, results are byte-identical with tracing disabled, and
serial fallbacks record the worker count that actually ran.
"""

from __future__ import annotations

import pytest

from repro.datasets.fixtures import uniform_pair
from repro.engine.planner import run_join, run_topk
from repro.obs.export import to_chrome, validate_chrome
from repro.obs.trace import counter_totals, stage_totals

#: Forces real multi-shard pools on test-sized inputs.
MIN_SHARD = 64

N = 600


@pytest.fixture(scope="module")
def pointsets():
    return uniform_pair(N, N, seed=77)


def _run(pointsets, workers):
    points_p, points_q = pointsets
    return run_join(
        points_p,
        points_q,
        engine="array-parallel",
        workers=workers,
        min_shard=MIN_SHARD,
    )


class TestTracedParallelJoin:
    def test_worker_spans_reparented_under_plan_root(self, pointsets):
        report = _run(pointsets, workers=4)
        root = report.trace
        assert root is not None and root.name == "join"
        (pool,) = root.find("pool")
        shards = pool.find("shard")
        assert len(shards) >= 2
        # Worker spans really crossed a process boundary...
        assert all(s.proc != root.proc for s in shards)
        # ...and carry the worker-measured stage spans and counters.
        assert all(s.find("verify") for s in shards)
        assert pool.counters["bytes-shipped"] > 0
        assert pool.find("pool-startup")
        assert report.workers_used == 4

    def test_stage_seconds_derived_from_the_trace(self, pointsets):
        report = _run(pointsets, workers=4)
        totals = stage_totals(report.trace)
        assert report.stage_seconds == totals
        assert {"candidate", "verify"} <= set(totals)

    def test_exports_valid_perfetto_json(self, pointsets):
        report = _run(pointsets, workers=4)
        doc = to_chrome(report.trace)
        validate_chrome(doc)
        workers = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["args"]["name"].startswith("worker-")
        }
        assert workers

    def test_observation_derives_from_the_trace(
        self, pointsets, tmp_path, monkeypatch
    ):
        from repro.calibration.observations import load_observations

        monkeypatch.setenv("REPRO_CALIBRATION_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_CALIBRATION", raising=False)
        points_p, points_q = pointsets
        report = run_join(points_p, points_q, engine="auto", workers=2)
        (obs,) = load_observations()
        assert obs["workers"] == report.workers_used
        assert obs["workers_planned"] == report.plan.workers
        if report.stage_seconds:
            totals = stage_totals(report.trace)
            for key, logged in obs["stage_seconds"].items():
                assert logged == pytest.approx(totals[key], abs=1e-6)


class TestRoundTripEquivalence:
    def test_same_tree_shape_and_counters_across_worker_counts(
        self, pointsets
    ):
        reports = {w: _run(pointsets, workers=w) for w in (1, 2, 4)}
        keys = {w: r.pair_keys() for w, r in reports.items()}
        assert keys[1] == keys[2] == keys[4]
        # workers=1 falls back in-process: stage spans sit under the
        # root; pooled runs re-parent them under shard spans.  Either
        # way the stage-name set and the verified/pairs totals agree.
        stage_names = {
            w: set(stage_totals(r.trace)) for w, r in reports.items()
        }
        assert stage_names[2] == stage_names[4]
        assert {"candidate", "verify"} <= stage_names[1] <= stage_names[2]
        totals = {w: counter_totals(r.trace) for w, r in reports.items()}
        for w in (1, 2, 4):
            assert totals[w]["verified"] == len(reports[w].pairs)
            assert totals[w]["pairs"] == len(reports[w].pairs)
        shards = {
            w: len(reports[w].trace.find("shard")) for w in (1, 2, 4)
        }
        assert shards[1] == 0
        # Pooled runs shard (granularity tracks the worker count, so
        # the exact decomposition may differ between 2 and 4 workers).
        assert shards[2] > 1 and shards[4] > 1

    def test_disabled_tracing_is_byte_identical(
        self, pointsets, monkeypatch
    ):
        traced = _run(pointsets, workers=2)
        monkeypatch.setenv("REPRO_TRACE", "0")
        untraced = _run(pointsets, workers=2)
        assert untraced.trace is None
        assert untraced.pair_keys() == traced.pair_keys()
        assert [p.key() for p in untraced.pairs] == [
            p.key() for p in traced.pairs
        ]
        assert untraced.candidate_count == traced.candidate_count
        # The dict-accumulator path still measures stages when untraced.
        assert set(untraced.stage_seconds) == set(traced.stage_seconds)


class TestEffectiveWorkers:
    def test_serial_fallback_reports_workers_used_1(self, pointsets):
        points_p, points_q = pointsets
        # Default min_shard (512) makes 600 probes fall back in-process.
        report = run_join(
            points_p, points_q, engine="array-parallel", workers=4
        )
        assert report.workers_used == 1
        assert not report.trace.find("pool")

    def test_pooled_run_reports_effective_count(self, pointsets):
        report = _run(pointsets, workers=2)
        assert report.workers_used == 2

    def test_serial_engines_report_one(self, pointsets):
        points_p, points_q = pointsets
        report = run_join(points_p, points_q, engine="array")
        assert report.workers_used == 1

    def test_fallback_observation_records_effective_workers(
        self, tmp_path, monkeypatch
    ):
        import dataclasses

        from repro.calibration.observations import load_observations
        from repro.parallel import costmodel

        monkeypatch.setenv("REPRO_CALIBRATION_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_CALIBRATION", raising=False)
        points_p, points_q = uniform_pair(300, 300, seed=5)
        # Force the planner to *choose* a parallel plan for an input
        # that the pool layer will then refuse to shard: the recorded
        # observation must reflect the serial execution, not the plan.
        plan = dataclasses.replace(
            costmodel.choose_plan(points_p, points_q, workers=4),
            engine="array-parallel",
            workers=4,
        )
        monkeypatch.setattr(costmodel, "choose_plan", lambda *a, **k: plan)
        report = run_join(points_p, points_q, engine="auto")
        assert report.workers_used == 1
        (obs,) = load_observations()
        assert obs["engine"] == "array-parallel"
        assert obs["workers"] == 1
        assert obs["workers_planned"] == 4


class TestTracedTopk:
    def test_topk_array_route_is_traced(self, pointsets):
        points_p, points_q = pointsets
        report = run_topk(points_p, points_q, 10, engine="array")
        root = report.trace
        assert root is not None and root.name == "topk"
        assert root.attrs["k"] == 10
        assert report.stage_seconds == stage_totals(root)

    def test_topk_rtree_route_counts_node_accesses(self, pointsets):
        points_p, points_q = pointsets
        report = run_topk(points_p, points_q, 5, engine="obj")
        root = report.trace
        assert root is not None
        assert root.counters["node-accesses"] == report.node_accesses


class TestTracedFamilies:
    def test_family_parallel_trace_has_worker_shards(self):
        from repro.engine.families import run_family_join

        points_p, points_q = uniform_pair(400, 400, seed=9)
        report = run_family_join(
            points_p,
            points_q,
            "epsilon",
            eps=120.0,
            engine="array-parallel",
            workers=2,
            min_shard=32,
        )
        root = report.trace
        assert root is not None and root.name == "family-join"
        (pool,) = root.find("pool")
        assert len(pool.find("shard")) >= 2
        assert report.workers_used == 2
        assert report.stage_seconds == stage_totals(root)

    def test_family_serial_pipeline_is_traced(self):
        from repro.engine.families import run_family_join

        points_p, points_q = uniform_pair(200, 200, seed=10)
        report = run_family_join(
            points_p, points_q, "knn", k=3, engine="array"
        )
        root = report.trace
        assert root is not None
        assert {"knn", "collect"} <= set(stage_totals(root))
        assert counter_totals(root)["verified"] == len(report.pairs)
