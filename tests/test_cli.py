"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.datasets.io import load_points


def read_pairs(path):
    out = []
    with open(path) as f:
        for line in f:
            p_oid, q_oid, cx, cy, r = line.split()
            out.append((int(p_oid), int(q_oid), float(cx), float(cy), float(r)))
    return out


class TestGenerate:
    def test_uniform(self, tmp_path, capsys):
        out = str(tmp_path / "u.txt")
        assert main(["generate", "--kind", "uniform", "-n", "50",
                     "--seed", "3", "-o", out]) == 0
        assert len(load_points(out)) == 50
        assert "wrote 50 points" in capsys.readouterr().out

    def test_gaussian(self, tmp_path):
        out = str(tmp_path / "g.txt")
        assert main(["generate", "--kind", "gaussian", "-n", "40", "-w", "3",
                     "--seed", "4", "-o", out]) == 0
        assert len(load_points(out)) == 40

    def test_start_oid(self, tmp_path):
        out = str(tmp_path / "u.txt")
        main(["generate", "-n", "5", "--start-oid", "100", "-o", out])
        assert [p.oid for p in load_points(out)] == list(range(100, 105))


class TestJoin:
    @pytest.fixture
    def files(self, tmp_path):
        p = str(tmp_path / "p.txt")
        q = str(tmp_path / "q.txt")
        main(["generate", "-n", "80", "--seed", "1", "-o", p])
        main(["generate", "-n", "70", "--seed", "2", "--start-oid", "80", "-o", q])
        return p, q

    def test_join_writes_pairs(self, files, tmp_path):
        p, q = files
        out = str(tmp_path / "pairs.txt")
        assert main(["join", p, q, "--method", "obj", "-o", out]) == 0
        pairs = read_pairs(out)
        assert pairs
        # Output oids come from the two inputs.
        assert all(a < 80 <= b for a, b, *_ in pairs)

    def test_methods_agree_via_cli(self, files, tmp_path):
        p, q = files
        results = {}
        for method in ("obj", "gabriel", "brute"):
            out = str(tmp_path / f"{method}.txt")
            main(["join", p, q, "--method", method, "-o", out])
            results[method] = {(a, b) for a, b, *_ in read_pairs(out)}
        assert results["obj"] == results["gabriel"] == results["brute"]

    def test_join_to_stdout(self, files, capsys):
        p, q = files
        assert main(["join", p, q]) == 0
        captured = capsys.readouterr()
        assert captured.out.strip()
        assert "pairs" in captured.err

    def test_radius_field_consistent(self, files, tmp_path):
        p, q = files
        out = str(tmp_path / "pairs.txt")
        main(["join", p, q, "-o", out])
        points = {pt.oid: pt for pt in load_points(p) + load_points(q)}
        for a, b, cx, cy, r in read_pairs(out):
            pa, pb = points[a], points[b]
            assert ((pa.x - cx) ** 2 + (pa.y - cy) ** 2) ** 0.5 == pytest.approx(r)
            assert ((pb.x - cx) ** 2 + (pb.y - cy) ** 2) ** 0.5 == pytest.approx(r)


class TestSelfJoin:
    def test_selfjoin(self, tmp_path):
        pts = str(tmp_path / "p.txt")
        out = str(tmp_path / "pairs.txt")
        main(["generate", "-n", "60", "--seed", "9", "-o", pts])
        assert main(["selfjoin", pts, "-o", out]) == 0
        pairs = read_pairs(out)
        assert pairs
        assert all(a < b for a, b, *_ in pairs)


class TestTopK:
    @pytest.fixture
    def files(self, tmp_path):
        p = str(tmp_path / "p.txt")
        q = str(tmp_path / "q.txt")
        main(["generate", "-n", "60", "--seed", "5", "-o", p])
        main(["generate", "-n", "60", "--seed", "6", "--start-oid", "60", "-o", q])
        return p, q

    def test_topk_reports_k_sorted_pairs(self, files, tmp_path):
        p, q = files
        out = str(tmp_path / "topk.txt")
        assert main(["topk", p, q, "-k", "7", "-o", out]) == 0
        pairs = read_pairs(out)
        assert len(pairs) == 7
        radii = [r for *_rest, r in pairs]
        assert radii == sorted(radii)

    def test_topk_are_the_smallest_join_pairs(self, files, tmp_path):
        p, q = files
        join_out = str(tmp_path / "all.txt")
        topk_out = str(tmp_path / "topk.txt")
        main(["join", p, q, "--method", "gabriel", "-o", join_out])
        main(["topk", p, q, "-k", "5", "-o", topk_out])
        all_pairs = sorted(read_pairs(join_out), key=lambda t: t[4])
        top = read_pairs(topk_out)
        assert {(a, b) for a, b, *_ in top} == {
            (a, b) for a, b, *_ in all_pairs[:5]
        }

    def test_topk_engines_agree_via_cli(self, files, tmp_path):
        p, q = files
        results = {}
        for engine in ("auto", "array", "obj", "pointwise"):
            out = str(tmp_path / f"topk_{engine}.txt")
            assert main(["topk", p, q, "-k", "6", "--engine", engine,
                         "-o", out]) == 0
            results[engine] = read_pairs(out)
        assert (
            results["auto"] == results["array"]
            == results["obj"] == results["pointwise"]
        )

    def test_join_mode_topk(self, files, tmp_path, capsys):
        p, q = files
        via_mode = str(tmp_path / "mode.txt")
        via_topk = str(tmp_path / "topk.txt")
        assert main(["join", p, q, "--mode", "topk", "--top-k", "4",
                     "--engine", "array", "-o", via_mode]) == 0
        assert "top-4" in capsys.readouterr().err
        main(["topk", p, q, "-k", "4", "--engine", "array", "-o", via_topk])
        assert read_pairs(via_mode) == read_pairs(via_topk)

    def test_top_k_flag_implies_mode(self, files, tmp_path):
        p, q = files
        out = str(tmp_path / "implied.txt")
        assert main(["join", p, q, "--top-k", "3", "-o", out]) == 0
        pairs = read_pairs(out)
        assert len(pairs) == 3
        radii = [r for *_rest, r in pairs]
        assert radii == sorted(radii)

    def test_mode_topk_requires_top_k(self, files, capsys):
        p, q = files
        assert main(["join", p, q, "--mode", "topk"]) == 2
        assert "--top-k" in capsys.readouterr().err

    def test_topk_auto_explain(self, files, capsys):
        p, q = files
        assert main(["topk", p, q, "-k", "3", "--explain"]) == 0
        assert "plan: engine=" in capsys.readouterr().err


class TestResemblance:
    @pytest.fixture
    def files(self, tmp_path):
        p = str(tmp_path / "p.txt")
        q = str(tmp_path / "q.txt")
        main(["generate", "-n", "80", "--seed", "7", "-o", p])
        main(["generate", "-n", "80", "--seed", "8", "--start-oid", "80", "-o", q])
        return p, q

    def test_eps_resemblance(self, files, capsys):
        p, q = files
        assert main(["resemblance", p, q, "--join", "eps", "--param", "400"]) == 0
        out = capsys.readouterr().out
        assert "precision=" in out and "recall=" in out

    def test_cij_needs_no_param(self, files, capsys):
        p, q = files
        assert main(["resemblance", p, q, "--join", "cij"]) == 0
        out = capsys.readouterr().out
        assert "recall=100.0%" in out

    def test_knn_resemblance(self, files, capsys):
        p, q = files
        assert main(["resemblance", p, q, "--join", "knn", "--param", "1"]) == 0
        assert "knn vs RCJ" in capsys.readouterr().out

    def test_kcp_resemblance(self, files, capsys):
        p, q = files
        assert main(["resemblance", p, q, "--join", "kcp", "--param", "50"]) == 0
        assert "kcp vs RCJ" in capsys.readouterr().out

    def test_param_required_for_eps(self, files, capsys):
        p, q = files
        assert main(["resemblance", p, q, "--join", "eps"]) == 2
        assert "--param is required" in capsys.readouterr().err


class TestTraceCLI:
    @pytest.fixture
    def files(self, tmp_path):
        p = str(tmp_path / "p.txt")
        q = str(tmp_path / "q.txt")
        main(["generate", "-n", "90", "--seed", "11", "-o", p])
        main(["generate", "-n", "90", "--seed", "12", "--start-oid", "90", "-o", q])
        return p, q

    def test_explain_keeps_stdout_machine_parseable(self, files, capsys):
        """--explain diagnostics (plan + trace tree) go to stderr only:
        every stdout line must parse as a 5-field pair record."""
        p, q = files
        assert main(["join", p, q, "--engine", "auto", "--explain"]) == 0
        captured = capsys.readouterr()
        assert "plan: engine=" in captured.err
        lines = captured.out.strip().splitlines()
        assert lines
        for line in lines:
            p_oid, q_oid, cx, cy, r = line.split()
            int(p_oid), int(q_oid)
            float(cx), float(cy), float(r)

    def test_trace_file_and_show_round_trip(self, files, tmp_path, capsys):
        p, q = files
        sink = str(tmp_path / "run.trace.jsonl")
        assert main(["join", p, q, "--engine", "array",
                     "--trace", sink]) == 0
        capsys.readouterr()
        assert main(["trace", "show", sink]) == 0
        shown = capsys.readouterr().out
        assert "join" in shown and "verify" in shown

    def test_trace_export_writes_valid_perfetto_json(
        self, files, tmp_path, capsys
    ):
        import json

        from repro.obs.export import validate_chrome

        p, q = files
        sink = str(tmp_path / "run.trace.jsonl")
        exported = str(tmp_path / "run.perfetto.json")
        main(["join", p, q, "--engine", "array", "--trace", sink])
        assert main(["trace", "export", sink, "-o", exported]) == 0
        with open(exported) as f:
            doc = json.load(f)
        validate_chrome(doc)
        names = {e["name"] for e in doc["traceEvents"]}
        assert "join" in names

    def test_trace_flag_with_tracing_disabled_warns(
        self, files, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_TRACE", "0")
        p, q = files
        sink = str(tmp_path / "run.trace.jsonl")
        assert main(["join", p, q, "--engine", "array",
                     "--trace", sink]) == 0
        captured = capsys.readouterr()
        assert "no trace captured" in captured.err
        assert not (tmp_path / "run.trace.jsonl").exists()

    def test_trace_show_missing_records_fails(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["trace", "show", str(empty)]) == 1
        assert "no trace records" in capsys.readouterr().err


class TestParser:
    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_method_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["join", "a", "b", "--method", "quantum"])

    def test_unknown_resemblance_join_rejected(self):
        with pytest.raises(SystemExit):
            main(["resemblance", "a", "b", "--join", "voronoi"])
