"""Tests for convex polygon clipping and intersection."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.polygon import (
    box_polygon,
    clip_convex_pair,
    clip_halfplane,
    convex_polygons_intersect,
    polygon_area,
    polygon_bbox,
    polygon_centroid,
)

_UNIT = box_polygon(0, 0, 10, 10)


def _regular(cx, cy, r, k=8):
    """CCW regular k-gon."""
    return [
        (cx + r * math.cos(2 * math.pi * i / k), cy + r * math.sin(2 * math.pi * i / k))
        for i in range(k)
    ]


class TestClipHalfplane:
    def test_clip_keeps_left_half(self):
        # Keep x <= 5: plane anchored at (5, 0), normal +x.
        got = clip_halfplane(_UNIT, 5, 0, 1, 0)
        assert polygon_area(got) == 50.0
        assert all(x <= 5.0 for x, _y in got)

    def test_clip_away_everything(self):
        got = clip_halfplane(_UNIT, -1, 0, 1, 0)
        assert polygon_area(got) == 0.0 or got == [] or all(x <= -1 for x, _ in got)
        assert not [v for v in got if v[0] > -1 + 1e-9]

    def test_clip_nothing(self):
        got = clip_halfplane(_UNIT, 20, 0, 1, 0)
        assert polygon_area(got) == 100.0

    def test_diagonal_clip(self):
        # Keep x + y <= 10: cuts the square into a triangle.
        got = clip_halfplane(_UNIT, 5, 5, 1, 1)
        assert math.isclose(polygon_area(got), 50.0)

    def test_clip_empty_polygon(self):
        assert clip_halfplane([], 0, 0, 1, 0) == []

    def test_sequential_clips_build_cell(self):
        cell = _UNIT
        cell = clip_halfplane(cell, 5, 0, 1, 0)  # x <= 5
        cell = clip_halfplane(cell, 0, 5, 0, 1)  # y <= 5
        assert math.isclose(polygon_area(cell), 25.0)

    def test_preserves_ccw_orientation(self):
        got = clip_halfplane(_UNIT, 5, 5, 1, 1)
        assert polygon_area(got) > 0


class TestAreaBBoxCentroid:
    def test_box_area(self):
        assert polygon_area(_UNIT) == 100.0

    def test_degenerate_area(self):
        assert polygon_area([(0, 0), (5, 5)]) == 0.0
        assert polygon_area([]) == 0.0

    def test_bbox(self):
        assert polygon_bbox(_UNIT) == (0, 0, 10, 10)

    def test_bbox_empty_raises(self):
        import pytest

        with pytest.raises(ValueError):
            polygon_bbox([])

    def test_centroid_of_box(self):
        assert polygon_centroid(_UNIT) == (5.0, 5.0)

    def test_centroid_degenerate_falls_back_to_mean(self):
        cx, cy = polygon_centroid([(0, 0), (4, 4)])
        assert (cx, cy) == (2.0, 2.0)


class TestIntersection:
    def test_overlapping_boxes(self):
        a = box_polygon(0, 0, 5, 5)
        b = box_polygon(3, 3, 8, 8)
        assert convex_polygons_intersect(a, b)

    def test_disjoint_boxes(self):
        a = box_polygon(0, 0, 2, 2)
        b = box_polygon(5, 5, 8, 8)
        assert not convex_polygons_intersect(a, b)

    def test_touching_edge_counts(self):
        a = box_polygon(0, 0, 5, 5)
        b = box_polygon(5, 0, 8, 5)
        assert convex_polygons_intersect(a, b)

    def test_touching_corner_counts(self):
        a = box_polygon(0, 0, 5, 5)
        b = box_polygon(5, 5, 8, 8)
        assert convex_polygons_intersect(a, b)

    def test_nested(self):
        assert convex_polygons_intersect(_UNIT, box_polygon(4, 4, 6, 6))

    def test_octagon_vs_box(self):
        assert convex_polygons_intersect(_regular(5, 5, 3), _UNIT)
        assert not convex_polygons_intersect(_regular(50, 50, 3), _UNIT)

    def test_rotated_separation(self):
        # Diagonal gap only a rotated axis detects.
        tri_a = [(0, 0), (4, 0), (0, 4)]
        tri_b = [(5, 5), (9, 5), (5, 9)]
        assert not convex_polygons_intersect(tri_a, tri_b)

    def test_empty_polygon_never_intersects(self):
        assert not convex_polygons_intersect([], _UNIT)
        assert not convex_polygons_intersect(_UNIT, [])

    @settings(max_examples=120, deadline=None)
    @given(
        st.tuples(
            st.integers(0, 20), st.integers(0, 20), st.integers(1, 8), st.integers(1, 8)
        ),
        st.tuples(
            st.integers(0, 20), st.integers(0, 20), st.integers(1, 8), st.integers(1, 8)
        ),
    )
    def test_property_sat_matches_clip_oracle_boxes(self, a, b):
        pa = box_polygon(a[0], a[1], a[0] + a[2], a[1] + a[3])
        pb = box_polygon(b[0], b[1], b[0] + b[2], b[1] + b[3])
        clipped = clip_convex_pair(pa, pb)
        assert convex_polygons_intersect(pa, pb) == bool(clipped)

    @settings(max_examples=120, deadline=None)
    @given(
        st.tuples(st.integers(0, 30), st.integers(0, 30)),
        st.integers(1, 6),
        st.tuples(st.integers(0, 30), st.integers(0, 30)),
        st.integers(1, 6),
    )
    def test_property_sat_matches_clip_oracle_octagons(self, ca, ra, cb, rb):
        pa = _regular(ca[0], ca[1], ra)
        pb = _regular(cb[0], cb[1], rb)
        clipped = clip_convex_pair(pa, pb)
        got = convex_polygons_intersect(pa, pb)
        if clipped and polygon_area(clipped) > 1e-9:
            assert got
        if not clipped:
            # SAT with tolerance may keep near-touching pairs; only a
            # clearly separated pair must be rejected.
            center_gap = math.hypot(ca[0] - cb[0], ca[1] - cb[1])
            if center_gap > ra + rb + 1e-6:
                assert not got

    def test_clip_convex_pair_of_overlap(self):
        a = box_polygon(0, 0, 6, 6)
        b = box_polygon(3, 3, 9, 9)
        overlap = clip_convex_pair(a, b)
        assert math.isclose(polygon_area(overlap), 9.0)
