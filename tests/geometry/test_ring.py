"""Unit tests for the exact ring predicate (the heart of the join)."""

import math

from hypothesis import assume, given, strategies as st

from repro.geometry.halfplane import HalfPlane
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.ring import Ring

coord = st.floats(-1e4, 1e4)
adversarial = st.floats(
    min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False
)


class TestGeometry:
    def test_center_and_radius(self):
        ring = Ring(0, 0, 4, 0)
        assert (ring.cx, ring.cy) == (2.0, 0.0)
        assert ring.r == 2.0

    def test_of_pair(self):
        ring = Ring.of_pair(Point(1, 1, 0), Point(3, 3, 1))
        assert (ring.cx, ring.cy) == (2.0, 2.0)
        assert math.isclose(ring.r, math.sqrt(2))

    def test_is_a_circle(self):
        from repro.geometry.circle import Circle

        assert isinstance(Ring(0, 0, 1, 1), Circle)


class TestExactPredicate:
    def test_interior(self):
        assert Ring(0, 0, 10, 0).contains_point(5, 1)

    def test_endpoints_exactly_zero(self):
        ring = Ring(0.1, 0.7, 9.3, 4.2)
        assert not ring.contains_point(0.1, 0.7)
        assert not ring.contains_point(9.3, 4.2)

    def test_boundary_point(self):
        # (5, 5) on the circle of diameter (0,0)-(10,0).
        assert not Ring(0, 0, 10, 0).contains_point(5, 5)

    def test_degenerate_ring_contains_nothing(self):
        ring = Ring(3, 3, 3, 3)
        assert not ring.contains_point(3, 3)
        assert not ring.contains_point(3.0000001, 3)

    @given(adversarial, adversarial, adversarial, adversarial)
    def test_endpoints_never_contained(self, px, py, qx, qy):
        # Exact for ANY floats, including adversarial near-coincident
        # pairs — the property that motivated the dot-product form.
        ring = Ring(px, py, qx, qy)
        assert not ring.contains_point(px, py)
        assert not ring.contains_point(qx, qy)

    @given(adversarial, adversarial, adversarial, adversarial,
           adversarial, adversarial)
    def test_exact_equivalence_with_halfplane(self, qx, qy, px, py, ox, oy):
        """The IEEE-exact Lemma-1 consistency: Ψ−(q, p) contains p'
        exactly when p is strictly inside Ring(p', q)."""
        q, p = Point(qx, qy), Point(px, py)
        assume(not q.same_location(p))
        hp = HalfPlane.psi_minus(q, p)
        ring = Ring(ox, oy, qx, qy)  # pair <p'=(ox,oy), q>
        assert hp.contains_point(ox, oy) == ring.contains_point(px, py)

    @given(adversarial, adversarial, adversarial, adversarial,
           adversarial, adversarial)
    def test_symmetric_in_pair_order(self, px, py, qx, qy, x, y):
        a = Ring(px, py, qx, qy).contains_point(x, y)
        b = Ring(qx, qy, px, py).contains_point(x, y)
        assert a == b


class TestCertainPredicate:
    def test_deep_interior_certain(self):
        ring = Ring(0, 0, 10, 0)
        assert ring.contains_point_certainly(5, 0)

    def test_boundary_not_certain(self):
        ring = Ring(0, 0, 10, 0)
        assert not ring.contains_point_certainly(0, 0)
        assert not ring.contains_point_certainly(5, 5)

    @given(adversarial, adversarial, adversarial, adversarial,
           adversarial, adversarial)
    def test_certain_implies_contained(self, px, py, qx, qy, x, y):
        ring = Ring(px, py, qx, qy)
        if ring.contains_point_certainly(x, y):
            assert ring.contains_point(x, y)


class TestRectInteractions:
    def test_descend_conservative(self):
        ring = Ring(0, 0, 10, 0)
        # Touching rect must be visited.
        assert ring.intersects_rect(Rect(10, -1, 12, 1))
        # Far rect is skipped.
        assert not ring.intersects_rect(Rect(100, 100, 110, 110))

    @given(adversarial, adversarial, adversarial, adversarial,
           adversarial, adversarial)
    def test_contained_point_implies_rect_visited(self, px, py, qx, qy, x, y):
        # Any point the predicate counts must be reachable: its
        # enclosing (degenerate) rect passes the descent test.
        ring = Ring(px, py, qx, qy)
        if ring.contains_point(x, y):
            assert ring.intersects_rect(Rect(x, y, x, y))

    def test_face_containment_requires_margin(self):
        ring = Ring(0, 0, 10, 0)
        # A side well inside the circle.
        assert ring.contains_rect_face(Rect(4, -1, 6, 1))
        # A rect whose sides all cross the boundary.
        assert not ring.contains_rect_face(Rect(-20, -20, 20, 20))
