"""Unit tests for the Ψ− pruning half-planes (Lemmas 1 and 3 geometry)."""

from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.geometry.enclosing import enclosing_circle
from repro.geometry.halfplane import HalfPlane
from repro.geometry.point import Point
from repro.geometry.rect import Rect

coord = st.floats(-100.0, 100.0)


class TestPsiMinusConstruction:
    def test_anchor_at_p_normal_away_from_q(self):
        q, p = Point(0, 0), Point(2, 0)
        hp = HalfPlane.psi_minus(q, p)
        assert (hp.ax, hp.ay) == (2, 0)
        assert (hp.nx, hp.ny) == (2, 0)

    def test_q_never_in_psi_minus(self):
        q, p = Point(1, 3), Point(4, -1)
        hp = HalfPlane.psi_minus(q, p)
        assert not hp.contains_point(q.x, q.y)

    def test_p_on_boundary_not_contained(self):
        q, p = Point(0, 0), Point(2, 0)
        hp = HalfPlane.psi_minus(q, p)
        assert not hp.contains_point(p.x, p.y)

    def test_point_beyond_p_contained(self):
        q, p = Point(0, 0), Point(2, 0)
        hp = HalfPlane.psi_minus(q, p)
        assert hp.contains_point(3, 0)
        assert hp.contains_point(2.001, 50)

    def test_degenerate_when_p_equals_q(self):
        q = Point(1, 1)
        hp = HalfPlane.psi_minus(q, Point(1, 1, 9))
        assert hp.is_degenerate()
        assert not hp.contains_point(100, 100)
        assert not hp.contains_rect(Rect(50, 50, 60, 60))


class TestContainsRect:
    def test_rect_fully_beyond_line(self):
        hp = HalfPlane.psi_minus(Point(0, 0), Point(2, 0))
        assert hp.contains_rect(Rect(3, -5, 6, 5))

    def test_rect_straddling_line(self):
        hp = HalfPlane.psi_minus(Point(0, 0), Point(2, 0))
        assert not hp.contains_rect(Rect(1, -1, 3, 1))

    def test_rect_touching_line_not_contained(self):
        # Strict semantics: a rect touching the boundary is kept.
        hp = HalfPlane.psi_minus(Point(0, 0), Point(2, 0))
        assert not hp.contains_rect(Rect(2, -1, 4, 1))

    @given(coord, coord, coord, coord, coord, coord, coord, coord)
    def test_rect_containment_implies_all_corners(
        self, qx, qy, px, py, x1, y1, x2, y2
    ):
        # contains_rect is deliberately conservative (it demands a
        # margin above floating-point noise), so it implies — but is not
        # implied by — strict containment of every corner.
        q, p = Point(qx, qy), Point(px, py)
        assume((qx, qy) != (px, py))
        hp = HalfPlane.psi_minus(q, p)
        rect = Rect(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))
        if hp.contains_rect(rect):
            assert all(hp.contains_point(x, y) for x, y in rect.corners())

    def test_rect_with_clear_margin_contained(self):
        hp = HalfPlane.psi_minus(Point(0, 0), Point(2, 0))
        assert hp.contains_rect(Rect(2.5, -3, 9, 3))

    def test_rect_within_noise_band_not_pruned(self):
        # A rect beyond the line by less than the conservative margin is
        # kept: missing a prune is cheap, a wrong prune is a bug.
        hp = HalfPlane.psi_minus(Point(0, 0), Point(1e8, 0))
        thin = Rect(1e8 + 1e-9, -1, 1e8 + 2e-9, 1)
        assert not hp.contains_rect(thin)


class TestLemma1Semantics:
    """A point strictly inside Ψ−(q, p) has p strictly inside the
    enclosing circle of <p', q> — the geometric heart of Lemma 1."""

    # The Ψ− half-plane covers well under half the coordinate box, so
    # the containment assume() discards most generated triples; that
    # filtering is the point of the test, not a generation problem
    # (same suppression as tests/core/test_lemmas.py).
    @settings(suppress_health_check=[HealthCheck.filter_too_much])
    @given(coord, coord, coord, coord, coord, coord)
    def test_pruned_point_pair_is_invalidated_by_p(
        self, qx, qy, px, py, ox, oy
    ):
        q, p, other = Point(qx, qy), Point(px, py), Point(ox, oy)
        assume((qx, qy) != (px, py))
        hp = HalfPlane.psi_minus(q, p)
        assume(hp.contains_point(other.x, other.y))
        circle = enclosing_circle(other, q)
        # p invalidates the pair <other, q> unless floating-point noise
        # puts it within the boundary slack; the slack only makes the
        # filter conservative, never incorrect, so allow a tiny margin.
        d_sq = (p.x - circle.cx) ** 2 + (p.y - circle.cy) ** 2
        assert d_sq <= circle.r_sq * (1.0 + 1e-9)
