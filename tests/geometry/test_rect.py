"""Unit tests for repro.geometry.rect."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry.point import Point
from repro.geometry.rect import Rect

coord = st.floats(-1000.0, 1000.0)


def rect_strategy():
    return st.tuples(coord, coord, coord, coord).map(
        lambda t: Rect(min(t[0], t[2]), min(t[1], t[3]), max(t[0], t[2]), max(t[1], t[3]))
    )


class TestConstruction:
    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            Rect(1, 0, 0, 1)
        with pytest.raises(ValueError):
            Rect(0, 1, 1, 0)

    def test_degenerate_rect_is_legal(self):
        r = Rect(2, 3, 2, 3)
        assert r.area() == 0.0
        assert r.contains_point(2, 3)

    def test_from_point(self):
        r = Rect.from_point(Point(5, 6))
        assert (r.xmin, r.ymin, r.xmax, r.ymax) == (5, 6, 5, 6)

    def test_from_points_tight(self):
        r = Rect.from_points([Point(1, 5), Point(3, 2), Point(2, 4)])
        assert (r.xmin, r.ymin, r.xmax, r.ymax) == (1, 2, 3, 5)

    def test_from_points_empty_raises(self):
        with pytest.raises(ValueError):
            Rect.from_points([])

    def test_union_of(self):
        r = Rect.union_of([Rect(0, 0, 1, 1), Rect(2, -1, 3, 0.5)])
        assert (r.xmin, r.ymin, r.xmax, r.ymax) == (0, -1, 3, 1)

    def test_union_of_empty_raises(self):
        with pytest.raises(ValueError):
            Rect.union_of([])


class TestMeasures:
    def test_area_margin_width_height(self):
        r = Rect(0, 0, 4, 3)
        assert r.width() == 4
        assert r.height() == 3
        assert r.area() == 12
        assert r.margin() == 7

    def test_center(self):
        assert Rect(0, 0, 4, 2).center() == (2.0, 1.0)

    def test_enlargement(self):
        r = Rect(0, 0, 2, 2)
        assert r.enlargement(Rect(1, 1, 3, 3)) == 9 - 4
        assert r.enlargement(Rect(0.5, 0.5, 1, 1)) == 0.0


class TestRelations:
    def test_contains_point_closed(self):
        r = Rect(0, 0, 2, 2)
        assert r.contains_point(0, 0)  # boundary included
        assert r.contains_point(2, 2)
        assert not r.contains_point(2.0001, 1)

    def test_contains_rect(self):
        assert Rect(0, 0, 4, 4).contains_rect(Rect(1, 1, 2, 2))
        assert Rect(0, 0, 4, 4).contains_rect(Rect(0, 0, 4, 4))
        assert not Rect(0, 0, 4, 4).contains_rect(Rect(3, 3, 5, 4))

    def test_intersects_touching_edges(self):
        assert Rect(0, 0, 1, 1).intersects(Rect(1, 0, 2, 1))
        assert not Rect(0, 0, 1, 1).intersects(Rect(1.01, 0, 2, 1))

    def test_intersection_area(self):
        assert Rect(0, 0, 2, 2).intersection_area(Rect(1, 1, 3, 3)) == 1.0
        assert Rect(0, 0, 1, 1).intersection_area(Rect(5, 5, 6, 6)) == 0.0
        # touching edges share zero area
        assert Rect(0, 0, 1, 1).intersection_area(Rect(1, 0, 2, 1)) == 0.0

    @given(rect_strategy(), rect_strategy())
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains_rect(a)
        assert u.contains_rect(b)

    @given(rect_strategy(), rect_strategy())
    def test_intersects_symmetric(self, a, b):
        assert a.intersects(b) == b.intersects(a)


class TestDistances:
    def test_mindist_inside_is_zero(self):
        assert Rect(0, 0, 2, 2).mindist_sq(1, 1) == 0.0

    def test_mindist_to_edge_and_corner(self):
        r = Rect(0, 0, 2, 2)
        assert r.mindist_sq(3, 1) == 1.0  # edge
        assert r.mindist_sq(3, 3) == 2.0  # corner
        assert math.isclose(r.mindist(3, 3), math.sqrt(2))

    def test_maxdist(self):
        r = Rect(0, 0, 2, 2)
        assert r.maxdist_sq(0, 0) == 8.0

    def test_rect_mindist(self):
        assert Rect(0, 0, 1, 1).rect_mindist_sq(Rect(2, 0, 3, 1)) == 1.0
        assert Rect(0, 0, 1, 1).rect_mindist_sq(Rect(2, 2, 3, 3)) == 2.0
        assert Rect(0, 0, 2, 2).rect_mindist_sq(Rect(1, 1, 3, 3)) == 0.0

    @given(rect_strategy(), coord, coord)
    def test_mindist_bounded_by_any_inner_point_distance(self, r, x, y):
        # MINDIST lower-bounds the distance to the rect centre.
        cx, cy = r.center()
        d_center = (cx - x) ** 2 + (cy - y) ** 2
        assert r.mindist_sq(x, y) <= d_center + 1e-9

    def test_corners_enumerates_four(self):
        assert len(list(Rect(0, 0, 1, 2).corners())) == 4


class TestDunder:
    def test_equality_and_hash(self):
        assert Rect(0, 0, 1, 1) == Rect(0, 0, 1, 1)
        assert len({Rect(0, 0, 1, 1), Rect(0, 0, 1, 1)}) == 1

    def test_repr_roundtrippable_values(self):
        assert "Rect(0, 0, 1, 2)" in repr(Rect(0, 0, 1, 2))
