"""Unit tests for smallest enclosing circles."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry.enclosing import enclosing_circle, welzl_circle
from repro.geometry.point import Point

coord = st.floats(-1000.0, 1000.0)


class TestPairCircle:
    def test_center_is_midpoint(self):
        c = enclosing_circle(Point(0, 0), Point(4, 0))
        assert (c.cx, c.cy) == (2.0, 0.0)
        assert c.r == 2.0

    def test_coincident_pair_gives_zero_radius(self):
        c = enclosing_circle(Point(3, 3), Point(3, 3, 1))
        assert c.r == 0.0
        assert (c.cx, c.cy) == (3.0, 3.0)

    @given(coord, coord, coord, coord)
    def test_endpoints_equidistant_from_center(self, ax, ay, bx, by):
        a, b = Point(ax, ay), Point(bx, by)
        c = enclosing_circle(a, b)
        da = math.hypot(a.x - c.cx, a.y - c.cy)
        db = math.hypot(b.x - c.cx, b.y - c.cy)
        assert math.isclose(da, db, rel_tol=1e-9, abs_tol=1e-9)
        assert math.isclose(da, c.r, rel_tol=1e-9, abs_tol=1e-9)

    @given(coord, coord, coord, coord)
    def test_symmetric_in_arguments(self, ax, ay, bx, by):
        c1 = enclosing_circle(Point(ax, ay), Point(bx, by))
        c2 = enclosing_circle(Point(bx, by), Point(ax, ay))
        assert c1 == c2

    def test_minimality_against_welzl(self):
        # The two-point circle is the smallest enclosing circle of the
        # pair, so Welzl on the same two points must agree.
        a, b = Point(1, 2), Point(7, -3)
        pair = enclosing_circle(a, b)
        general = welzl_circle([a, b])
        assert math.isclose(pair.r, general.r, rel_tol=1e-9)


class TestWelzl:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            welzl_circle([])

    def test_single_point(self):
        c = welzl_circle([Point(4, 5)])
        assert (c.cx, c.cy, c.r) == (4, 5, 0)

    def test_equilateral_triangle(self):
        pts = [Point(0, 0), Point(2, 0), Point(1, math.sqrt(3))]
        c = welzl_circle(pts)
        # Circumradius of an equilateral triangle with side 2.
        assert math.isclose(c.r, 2 / math.sqrt(3), rel_tol=1e-9)

    def test_collinear_points(self):
        pts = [Point(0, 0), Point(1, 0), Point(2, 0), Point(5, 0)]
        c = welzl_circle(pts)
        assert math.isclose(c.r, 2.5, rel_tol=1e-9)
        assert math.isclose(c.cx, 2.5, rel_tol=1e-9)

    @given(st.lists(st.tuples(coord, coord), min_size=1, max_size=30))
    def test_all_points_covered(self, coords):
        pts = [Point(x, y) for x, y in coords]
        c = welzl_circle(pts)
        for p in pts:
            d = math.hypot(p.x - c.cx, p.y - c.cy)
            assert d <= c.r * (1 + 1e-7) + 1e-7

    @given(st.lists(st.tuples(coord, coord), min_size=2, max_size=15))
    def test_not_larger_than_diameter_of_farthest_pair_bound(self, coords):
        pts = [Point(x, y) for x, y in coords]
        c = welzl_circle(pts)
        # The SEC radius never exceeds the farthest-pair distance.
        diameter = max(
            math.hypot(a.x - b.x, a.y - b.y) for a in pts for b in pts
        )
        assert c.r <= diameter * (1 + 1e-7) + 1e-7

    def test_deterministic_given_seed(self):
        pts = [Point(i * 3 % 7, i * 5 % 11) for i in range(10)]
        assert welzl_circle(pts, seed=1) == welzl_circle(pts, seed=1)
