"""Unit tests for repro.geometry.point."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry.point import Point, dist, dist_sq, midpoint, points_from_coords


class TestPointBasics:
    def test_coordinates_and_oid(self):
        p = Point(1.5, -2.0, 7)
        assert p.x == 1.5
        assert p.y == -2.0
        assert p.oid == 7

    def test_default_oid_is_anonymous(self):
        assert Point(0, 0).oid == -1

    def test_coordinates_coerced_to_float(self):
        p = Point(1, 2, 3)
        assert isinstance(p.x, float)
        assert isinstance(p.y, float)

    def test_immutable(self):
        p = Point(0, 0, 0)
        with pytest.raises(AttributeError):
            p.x = 5.0

    def test_iterates_as_coordinate_pair(self):
        assert tuple(Point(3, 4, 1)) == (3.0, 4.0)

    def test_equality_includes_oid(self):
        assert Point(1, 2, 3) == Point(1, 2, 3)
        assert Point(1, 2, 3) != Point(1, 2, 4)

    def test_hashable_consistent_with_equality(self):
        assert len({Point(1, 2, 3), Point(1, 2, 3), Point(1, 2, 4)}) == 2

    def test_same_location_ignores_oid(self):
        assert Point(1, 2, 3).same_location(Point(1, 2, 99))
        assert not Point(1, 2, 3).same_location(Point(1, 2.5, 3))

    def test_repr_mentions_oid(self):
        assert "oid=5" in repr(Point(0, 0, 5))


class TestDistances:
    def test_dist_pythagorean(self):
        assert dist(Point(0, 0), Point(3, 4)) == 5.0

    def test_dist_sq_avoids_sqrt(self):
        assert dist_sq(Point(0, 0), Point(3, 4)) == 25.0

    def test_dist_to_method_matches_function(self):
        a, b = Point(1, 1), Point(4, 5)
        assert a.dist_to(b) == dist(a, b)
        assert a.dist_sq_to(b) == dist_sq(a, b)

    def test_zero_distance_for_coincident_points(self):
        assert dist(Point(2, 3), Point(2, 3, 9)) == 0.0

    @given(
        st.floats(-1e6, 1e6), st.floats(-1e6, 1e6),
        st.floats(-1e6, 1e6), st.floats(-1e6, 1e6),
    )
    def test_dist_symmetry(self, ax, ay, bx, by):
        a, b = Point(ax, ay), Point(bx, by)
        assert dist(a, b) == dist(b, a)
        assert math.isclose(dist(a, b) ** 2, dist_sq(a, b), rel_tol=1e-9, abs_tol=1e-9)


class TestMidpoint:
    def test_midpoint_halves_segment(self):
        assert midpoint(Point(0, 0), Point(4, 6)) == (2.0, 3.0)

    @given(st.floats(-1e5, 1e5), st.floats(-1e5, 1e5))
    def test_midpoint_of_coincident_points_is_the_point(self, x, y):
        assert midpoint(Point(x, y), Point(x, y)) == (x, y)


class TestPointsFromCoords:
    def test_assigns_sequential_oids(self):
        pts = points_from_coords([(0, 0), (1, 1)], start_oid=10)
        assert [p.oid for p in pts] == [10, 11]

    def test_empty_input(self):
        assert points_from_coords([]) == []
