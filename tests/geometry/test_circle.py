"""Unit tests for repro.geometry.circle (the shared RCJ predicate)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.enclosing import enclosing_circle
from repro.geometry.rect import Rect


class TestConstruction:
    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            Circle(0, 0, -1)

    def test_zero_radius_allowed(self):
        c = Circle(1, 1, 0)
        assert c.r_sq == 0.0


class TestStrictContainment:
    def test_interior_point_contained(self):
        assert Circle(0, 0, 1).contains_point(0.5, 0)

    def test_boundary_point_not_contained(self):
        # The strict convention: boundary points never invalidate a pair.
        assert not Circle(0, 0, 1).contains_point(1.0, 0.0)
        assert not Circle(0, 0, 1).contains_point(0.0, -1.0)

    def test_defining_endpoints_of_pair_circle_not_contained(self):
        p, q = Point(3, 7), Point(11, 2)
        c = enclosing_circle(p, q)
        assert not c.contains_point(p.x, p.y)
        assert not c.contains_point(q.x, q.y)

    def test_zero_radius_contains_nothing(self):
        c = Circle(5, 5, 0)
        assert not c.contains_point(5, 5)

    def test_covers_point_closed(self):
        c = Circle(0, 0, 1)
        assert c.covers_point(1.0, 0.0)
        assert not c.covers_point(1.001, 0.0)

    @given(st.floats(-100, 100), st.floats(-100, 100), st.floats(0.001, 50))
    def test_center_always_strictly_inside_positive_circle(self, cx, cy, r):
        assert Circle(cx, cy, r).contains_point(cx, cy)


class TestRectRelations:
    def test_intersects_rect_overlapping(self):
        assert Circle(0, 0, 2).intersects_rect(Rect(1, 1, 3, 3))

    def test_intersects_rect_disjoint(self):
        assert not Circle(0, 0, 1).intersects_rect(Rect(2, 2, 3, 3))

    def test_intersects_rect_touching(self):
        # Closed semantics: touching counts (conservative for descent).
        assert Circle(0, 0, 1).intersects_rect(Rect(1, -1, 2, 1))

    def test_circle_inside_rect_intersects(self):
        assert Circle(5, 5, 0.1).intersects_rect(Rect(0, 0, 10, 10))

    def test_contains_rect_face_full_side_inside(self):
        # Left side of the rect is well inside the circle.
        c = Circle(0, 0, 10)
        assert c.contains_rect_face(Rect(-1, -1, 100, 1))

    def test_contains_rect_face_no_side_inside(self):
        c = Circle(0, 0, 1)
        # Rect surrounds the circle: no side inside.
        assert not c.contains_rect_face(Rect(-5, -5, 5, 5))

    def test_contains_rect_face_only_corner_inside(self):
        # One corner strictly inside but no complete side.
        c = Circle(0, 0, 1.1)
        rect = Rect(0.5, 0.5, 5, 5)
        assert c.contains_point(0.5, 0.5)
        assert not c.contains_rect_face(rect)

    def test_contains_rect_whole(self):
        c = Circle(0, 0, 10)
        assert c.contains_rect(Rect(-1, -1, 1, 1))
        assert not c.contains_rect(Rect(-1, -1, 20, 1))

    def test_contains_rect_implies_contains_face(self):
        c = Circle(0, 0, 10)
        r = Rect(-2, -2, 2, 2)
        assert c.contains_rect(r)
        assert c.contains_rect_face(r)

    def test_bounding_rect(self):
        b = Circle(1, 2, 3).bounding_rect()
        assert (b.xmin, b.ymin, b.xmax, b.ymax) == (-2, -1, 4, 5)


class TestMbrFaceProperty:
    """The verification step relies on: a full MBR side strictly inside
    the circle certifies a data point strictly inside."""

    @given(
        st.lists(
            st.tuples(st.floats(-50, 50), st.floats(-50, 50)),
            min_size=2,
            max_size=12,
        ),
        st.floats(-50, 50),
        st.floats(-50, 50),
        st.floats(1, 100),
    )
    def test_face_inside_implies_point_inside(self, coords, cx, cy, r):
        pts = [Point(x, y) for x, y in coords]
        rect = Rect.from_points(pts)
        c = Circle(cx, cy, r)
        if c.contains_rect_face(rect):
            # The MBR is tight: every side touches a data point, so some
            # point must lie strictly inside the circle.
            assert any(c.contains_point(p.x, p.y) for p in pts)


class TestDunder:
    def test_equality_hash(self):
        assert Circle(0, 0, 1) == Circle(0, 0, 1)
        assert len({Circle(0, 0, 1), Circle(0, 0, 1)}) == 1

    def test_dist_to_center(self):
        assert math.isclose(Circle(0, 0, 1).dist_to_center(3, 4), 5.0)
