"""Tests for the Hilbert curve and coordinate mapper."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.hilbert import DEFAULT_ORDER, HilbertMapper, d_to_xy, xy_to_d
from repro.geometry.point import Point
from repro.geometry.rect import Rect


class TestCurveTransform:
    def test_order_one_visits_all_cells(self):
        cells = [d_to_xy(1, d) for d in range(4)]
        assert sorted(cells) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_curve_starts_at_origin(self):
        for order in (1, 2, 5, 10):
            assert d_to_xy(order, 0) == (0, 0)

    @pytest.mark.parametrize("order", [1, 2, 3, 4])
    def test_bijection_exhaustive(self, order):
        side = 1 << order
        seen = set()
        for d in range(side * side):
            cell = d_to_xy(order, d)
            assert xy_to_d(order, *cell) == d
            seen.add(cell)
        assert len(seen) == side * side

    @pytest.mark.parametrize("order", [2, 3, 4, 5])
    def test_consecutive_cells_are_grid_neighbors(self, order):
        side = 1 << order
        prev = d_to_xy(order, 0)
        for d in range(1, side * side):
            x, y = d_to_xy(order, d)
            assert abs(x - prev[0]) + abs(y - prev[1]) == 1
            prev = (x, y)

    @given(
        order=st.integers(min_value=1, max_value=16),
        data=st.data(),
    )
    def test_roundtrip_random_cells(self, order, data):
        side = 1 << order
        x = data.draw(st.integers(min_value=0, max_value=side - 1))
        y = data.draw(st.integers(min_value=0, max_value=side - 1))
        d = xy_to_d(order, x, y)
        assert 0 <= d < side * side
        assert d_to_xy(order, d) == (x, y)

    def test_out_of_range_cell_rejected(self):
        with pytest.raises(ValueError):
            xy_to_d(2, 4, 0)
        with pytest.raises(ValueError):
            xy_to_d(2, 0, -1)

    def test_out_of_range_distance_rejected(self):
        with pytest.raises(ValueError):
            d_to_xy(2, 16)
        with pytest.raises(ValueError):
            d_to_xy(2, -1)


class TestHilbertMapper:
    def test_corners_map_to_extreme_cells(self):
        mapper = HilbertMapper(Rect(0, 0, 100, 100), order=4)
        assert mapper.cell_of(0, 0) == (0, 0)
        assert mapper.cell_of(100, 100) == (15, 15)

    def test_clamps_outside_domain(self):
        mapper = HilbertMapper(Rect(0, 0, 100, 100), order=4)
        assert mapper.cell_of(-50, 500) == (0, 15)

    def test_degenerate_domain_collapses_axis(self):
        mapper = HilbertMapper(Rect(5, 0, 5, 100), order=4)
        assert mapper.cell_of(5, 50)[0] == 0

    def test_single_point_domain(self):
        mapper = HilbertMapper.for_points([Point(3, 4, 0)], order=4)
        assert mapper.key(3, 4) == mapper.key_of_point(Point(3, 4, 9))

    def test_for_points_rejects_empty(self):
        with pytest.raises(ValueError):
            HilbertMapper.for_points([])

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            HilbertMapper(Rect(0, 0, 1, 1), order=0)
        with pytest.raises(ValueError):
            HilbertMapper(Rect(0, 0, 1, 1), order=32)

    def test_default_order(self):
        mapper = HilbertMapper(Rect(0, 0, 1, 1))
        assert mapper.order == DEFAULT_ORDER

    @settings(max_examples=50)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=10000.0),
                st.floats(min_value=0.0, max_value=10000.0),
            ),
            min_size=2,
            max_size=50,
        )
    )
    def test_keys_within_curve_range(self, coords):
        points = [Point(x, y, i) for i, (x, y) in enumerate(coords)]
        mapper = HilbertMapper.for_points(points, order=10)
        side = 1 << 10
        for p in points:
            assert 0 <= mapper.key_of_point(p) < side * side

    def test_nearby_points_have_nearby_keys_on_average(self):
        """Locality: the mean key gap of close pairs is far smaller than
        that of random pairs (statistical, fixed seed)."""
        import random

        rng = random.Random(7)
        mapper = HilbertMapper(Rect(0, 0, 10000, 10000), order=12)
        close_gaps, far_gaps = [], []
        for _ in range(300):
            x, y = rng.uniform(0, 9990), rng.uniform(0, 9990)
            close_gaps.append(
                abs(mapper.key(x, y) - mapper.key(x + 5, y + 5))
            )
            far_gaps.append(
                abs(
                    mapper.key(x, y)
                    - mapper.key(rng.uniform(0, 10000), rng.uniform(0, 10000))
                )
            )
        assert sum(close_gaps) / len(close_gaps) < sum(far_gaps) / len(far_gaps) / 10

    def test_key_of_rect_uses_center(self):
        mapper = HilbertMapper(Rect(0, 0, 100, 100), order=6)
        rect = Rect(10, 10, 30, 30)
        assert mapper.key_of_rect(rect) == mapper.key(20, 20)
