"""Unit tests for the alternative distance metrics."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry.metrics import (
    ChebyshevMetric,
    EuclideanMetric,
    ManhattanMetric,
    get_metric,
)
from repro.geometry.point import Point

coord = st.floats(-100.0, 100.0)


class TestLookup:
    def test_canonical_names(self):
        assert isinstance(get_metric("l1"), ManhattanMetric)
        assert isinstance(get_metric("l2"), EuclideanMetric)
        assert isinstance(get_metric("linf"), ChebyshevMetric)

    def test_aliases_and_case(self):
        assert isinstance(get_metric("Manhattan"), ManhattanMetric)
        assert isinstance(get_metric("EUCLIDEAN"), EuclideanMetric)
        assert isinstance(get_metric("chebyshev"), ChebyshevMetric)

    def test_unknown_metric_raises(self):
        with pytest.raises(ValueError, match="unknown metric"):
            get_metric("l3")


class TestDistances:
    def test_values_on_a_3_4_triangle(self):
        assert get_metric("l2").dist(0, 0, 3, 4) == 5.0
        assert get_metric("l1").dist(0, 0, 3, 4) == 7.0
        assert get_metric("linf").dist(0, 0, 3, 4) == 4.0

    @given(coord, coord, coord, coord)
    def test_metric_ordering(self, ax, ay, bx, by):
        # Classic norm inequalities: linf <= l2 <= l1 <= 2 * linf.
        linf = get_metric("linf").dist(ax, ay, bx, by)
        l2 = get_metric("l2").dist(ax, ay, bx, by)
        l1 = get_metric("l1").dist(ax, ay, bx, by)
        assert linf <= l2 * (1 + 1e-12) + 1e-12
        assert l2 <= l1 * (1 + 1e-12) + 1e-12
        assert l1 <= 2 * linf * (1 + 1e-12) + 1e-12

    @given(coord, coord, coord, coord)
    def test_symmetry_and_identity(self, ax, ay, bx, by):
        for name in ("l1", "l2", "linf"):
            m = get_metric(name)
            assert m.dist(ax, ay, bx, by) == m.dist(bx, by, ax, ay)
            assert m.dist(ax, ay, ax, ay) == 0.0


class TestPairBall:
    @given(coord, coord, coord, coord)
    def test_endpoints_on_ball_boundary(self, ax, ay, bx, by):
        p, q = Point(ax, ay), Point(bx, by)
        for name in ("l1", "l2", "linf"):
            ball = get_metric(name).pair_ball(p, q)
            # Endpoints sit exactly on the boundary: never strictly inside.
            assert not ball.contains_point(p.x, p.y)
            assert not ball.contains_point(q.x, q.y)

    def test_midpoint_strictly_inside_positive_ball(self):
        p, q = Point(0, 0), Point(4, 2)
        for name in ("l1", "l2", "linf"):
            ball = get_metric(name).pair_ball(p, q)
            assert ball.contains_point(ball.cx, ball.cy)

    def test_l1_ball_is_a_diamond(self):
        ball = get_metric("l1").pair_ball(Point(0, 0), Point(4, 0))
        # r = 2 around (2, 0): the corner point (3.9, 0) is inside but
        # (3.5, 1.0) (l1 distance 2.5) is outside.
        assert ball.contains_point(3.9, 0)
        assert not ball.contains_point(3.5, 1.0)

    def test_linf_ball_is_a_square(self):
        ball = get_metric("linf").pair_ball(Point(0, 0), Point(4, 0))
        # r = 2 around (2, 0): (3.9, 1.9) is inside the square.
        assert ball.contains_point(3.9, 1.9)
        assert not ball.contains_point(4.1, 0)

    @given(coord, coord, coord, coord, coord, coord)
    def test_bounding_rect_covers_ball_members(self, ax, ay, bx, by, px, py):
        p, q = Point(ax, ay), Point(bx, by)
        for name in ("l1", "l2", "linf"):
            ball = get_metric(name).pair_ball(p, q)
            if ball.contains_point(px, py):
                assert ball.bounding_rect().contains_point(px, py)
