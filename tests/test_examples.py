"""Smoke tests: every example script must run clean.

Examples are part of the public deliverable; running them in-process
(via runpy) keeps them from silently rotting as the API evolves.
"""

import os
import runpy

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")

EXAMPLES = [
    "quickstart.py",
    "recycling_stations.py",
    "tourist_recommendation.py",
    "postboxes_selfjoin.py",
    "school_bus_stops.py",
    "road_network_stations.py",
    "plot_figures.py",
    "dynamic_recycling_network.py",
    "facility_analytics.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys, tmp_path, monkeypatch):
    path = os.path.join(EXAMPLES_DIR, script)
    assert os.path.exists(path), f"missing example {script}"
    # Examples that write artifacts (e.g. SVG figures) target the cwd.
    monkeypatch.chdir(tmp_path)
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_examples_directory_complete():
    # Every example shipped is exercised above.
    shipped = {
        name
        for name in os.listdir(EXAMPLES_DIR)
        if name.endswith(".py")
    }
    assert shipped == set(EXAMPLES)
