"""Unit and property tests for the point quadtree substrate."""

import pytest
from hypothesis import given, settings

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.quadtree.node import QuadBranch, QuadNode
from repro.quadtree.tree import QuadTree

from tests.conftest import lattice_pointset, make_points


def validate(tree: QuadTree) -> None:
    """Assert the quadtree's structural invariants."""
    if tree.root_pid is None:
        assert tree.count == 0
        return
    seen = []

    def recurse(pid: int) -> Rect:
        node = tree.read_node(pid)
        assert node.entries, "empty node"
        if node.is_leaf:
            seen.extend(node.entries)
            return node.mbr()
        quadrants = [b.quadrant for b in node.entries]
        assert len(set(quadrants)) == len(quadrants), "duplicate quadrant"
        for b in node.entries:
            child_mbr = recurse(b.child)
            # Branch rects are TIGHT subtree MBRs (the face property the
            # shared verification step relies on).
            assert b.rect == child_mbr
        return node.mbr()

    recurse(tree.root_pid)
    assert len(seen) == tree.count


class TestNodeSerialisation:
    def test_leaf_roundtrip(self):
        node = QuadNode(0, [Point(1.5, 2.5, 3)])
        restored = QuadNode.from_bytes(node.to_bytes(1024))
        assert restored.is_leaf
        assert restored.entries[0] == Point(1.5, 2.5, 3)

    def test_branch_roundtrip(self):
        node = QuadNode(
            1,
            [
                QuadBranch(2, Rect(0, 0, 1, 1), 7),
                QuadBranch(0, Rect(-1, -1, 0, 0), 9),
            ],
        )
        restored = QuadNode.from_bytes(node.to_bytes(1024))
        assert [(b.quadrant, b.rect, b.child) for b in restored.entries] == [
            (2, Rect(0, 0, 1, 1), 7),
            (0, Rect(-1, -1, 0, 0), 9),
        ]


class TestInsertion:
    def test_out_of_bounds_rejected(self):
        tree = QuadTree()
        with pytest.raises(ValueError, match="outside"):
            tree.insert(Point(-1, 5, 0))

    def test_points_retrievable(self, rng):
        tree = QuadTree(page_size=192)
        pts = [
            Point(rng.uniform(0, 10000), rng.uniform(0, 10000), i)
            for i in range(300)
        ]
        for p in pts:
            tree.insert(p)
        assert sorted(p.oid for p in tree.all_points()) == list(range(300))
        validate(tree)

    def test_coincident_duplicates_beyond_capacity(self):
        # All points identical: splitting cannot separate them; the
        # depth cap lets the leaf grow.
        tree = QuadTree(page_size=256)
        for i in range(9):  # leaf capacity at 256B is 10
            tree.insert(Point(5000, 5000, i))
        for i in range(9, 30):
            tree.insert(Point(5000, 5000, i))
        assert sorted(p.oid for p in tree.all_points()) == list(range(30))

    def test_boundary_points(self):
        tree = QuadTree()
        corners = [
            Point(0, 0, 0),
            Point(10000, 0, 1),
            Point(0, 10000, 2),
            Point(10000, 10000, 3),
            Point(5000, 5000, 4),
        ]
        for p in corners:
            tree.insert(p)
        assert len(tree.all_points()) == 5

    @given(lattice_pointset(min_size=0, max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_structure_valid_on_lattice_workloads(self, coords):
        tree = QuadTree(page_size=192, bounds=Rect(0, 0, 64, 64))
        pts = make_points(coords)
        for p in pts:
            tree.insert(p)
        validate(tree)
        assert sorted(p.oid for p in tree.all_points()) == sorted(
            p.oid for p in pts
        )


class TestQueries:
    def test_range_matches_linear_scan(self, uniform_points, rng):
        tree = QuadTree()
        for p in uniform_points:
            tree.insert(p)
        for _ in range(20):
            x1, x2 = sorted(rng.uniform(0, 10000) for _ in range(2))
            y1, y2 = sorted(rng.uniform(0, 10000) for _ in range(2))
            window = Rect(x1, y1, x2, y2)
            expected = sorted(
                p.oid for p in uniform_points if window.contains_point(p.x, p.y)
            )
            got = sorted(p.oid for p in tree.range_search(window))
            assert got == expected

    def test_incremental_nn_protocol_compatible(self, uniform_points):
        # The R-tree INN iterator runs over the quadtree unchanged.
        from repro.rtree.inn import incremental_nearest

        tree = QuadTree()
        for p in uniform_points:
            tree.insert(p)
        got = [p.oid for _d, p in incremental_nearest(tree, 5000, 5000)]
        expected = [
            p.oid
            for p in sorted(
                uniform_points,
                key=lambda p: (p.x - 5000) ** 2 + (p.y - 5000) ** 2,
            )
        ]
        assert got == expected

    def test_leaf_pids_cover_everything(self, uniform_points):
        tree = QuadTree()
        for p in uniform_points:
            tree.insert(p)
        total = 0
        for pid in tree.leaf_pids():
            node = tree.read_node(pid)
            assert node.is_leaf
            total += len(node.entries)
        assert total == len(uniform_points)


class TestJoinAlgorithmsOverQuadtrees:
    """The paper's generality claim: the RCJ algorithms run over any
    hierarchical index with bounding-box entries."""

    def _build(self, points):
        tree = QuadTree()
        for p in points:
            tree.insert(p)
        return tree

    def test_inj_bij_obj_match_oracle(self):
        from repro.core.bij import bij
        from repro.core.brute import brute_force_rcj
        from repro.core.inj import inj
        from repro.datasets.synthetic import uniform

        points_p = uniform(400, seed=50)
        points_q = uniform(350, seed=51, start_oid=400)
        tree_p = self._build(points_p)
        tree_q = self._build(points_q)
        expected = {r.key() for r in brute_force_rcj(points_p, points_q)}
        assert inj(tree_q, tree_p).pair_keys() == expected
        assert bij(tree_q, tree_p).pair_keys() == expected
        assert bij(tree_q, tree_p, symmetric=True).pair_keys() == expected

    def test_mixed_index_join(self):
        # One side R-tree, the other quadtree: still exact.
        from repro.core.bij import bij
        from repro.core.brute import brute_force_rcj
        from repro.datasets.synthetic import uniform
        from repro.rtree.bulk import bulk_load

        points_p = uniform(300, seed=52)
        points_q = uniform(250, seed=53, start_oid=300)
        tree_p = bulk_load(points_p)
        tree_q = self._build(points_q)
        expected = {r.key() for r in brute_force_rcj(points_p, points_q)}
        assert bij(tree_q, tree_p, symmetric=True).pair_keys() == expected

    @given(
        lattice_pointset(min_size=1, max_size=20),
        lattice_pointset(min_size=1, max_size=20),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_equivalence_on_lattice(self, coords_p, coords_q):
        from repro.core.bij import bij
        from repro.core.brute import brute_force_rcj

        bounds = Rect(0, 0, 64, 64)
        points_p = make_points(coords_p)
        points_q = make_points(coords_q, start_oid=1000)
        tree_p = QuadTree(page_size=192, bounds=bounds)
        tree_q = QuadTree(page_size=192, bounds=bounds)
        for p in points_p:
            tree_p.insert(p)
        for q in points_q:
            tree_q.insert(q)
        expected = {r.key() for r in brute_force_rcj(points_p, points_q)}
        assert bij(tree_q, tree_p, symmetric=True).pair_keys() == expected
