"""Tests of the top-level public API (`import repro`)."""

import pytest

import repro
from repro import Point, ring_constrained_join, uniform


class TestRingConstrainedJoin:
    @pytest.fixture(scope="class")
    def datasets(self):
        return uniform(150, seed=1), uniform(120, seed=2, start_oid=150)

    def test_default_method_is_obj(self, datasets):
        p, q = datasets
        pairs = ring_constrained_join(p, q)
        assert pairs
        assert all(hasattr(pair, "center") for pair in pairs)

    def test_methods_agree(self, datasets):
        p, q = datasets
        reference = {
            pair.key() for pair in ring_constrained_join(p, q, method="brute")
        }
        for method in ("obj", "bij", "inj", "gabriel"):
            got = {
                pair.key()
                for pair in ring_constrained_join(p, q, method=method)
            }
            assert got == reference, method

    def test_unknown_method(self, datasets):
        p, q = datasets
        with pytest.raises(ValueError):
            ring_constrained_join(p, q, method="quantum")

    def test_result_semantics(self, datasets):
        # Every reported centre is empty of other facilities: re-check
        # with a linear scan.
        p, q = datasets
        everyone = p + q
        for pair in ring_constrained_join(p, q)[:50]:
            blockers = [
                x
                for x in everyone
                if pair.circle.contains_point(x.x, x.y)
            ]
            assert blockers == []


class TestApiSurface:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolvable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_point_in_api(self):
        assert repro.Point is Point

    def test_docstring_quickstart_runs(self):
        restaurants = uniform(50, seed=1)
        complexes = uniform(40, seed=2, start_oid=50)
        pairs = ring_constrained_join(restaurants, complexes)
        assert all(pair.p.oid < 50 <= pair.q.oid for pair in pairs)
