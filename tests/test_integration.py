"""End-to-end integration tests across the whole stack.

Each test exercises the full pipeline — dataset generation, STR bulk
loading into page-serialised trees, shared LRU buffer, join execution,
cost accounting — the way the benchmark harness uses it.
"""

import pytest

from repro.bench.runner import build_workload, run_algorithm, run_all_algorithms
from repro.core.brute import brute_force_rcj
from repro.core.gabriel import gabriel_rcj
from repro.datasets.real import join_combination
from repro.datasets.synthetic import gaussian_clusters, uniform
from repro.evaluation.resemblance import precision_recall
from repro.joins.epsilon import epsilon_join_arrays


class TestFullPipelineUniform:
    @pytest.fixture(scope="class")
    def workload(self):
        return build_workload(
            uniform(800, seed=1),
            uniform(800, seed=2, start_oid=800),
            buffer_fraction=0.01,
        )

    def test_algorithms_agree_and_match_gabriel(self, workload):
        reports = run_all_algorithms(workload)
        keys = {n: r.pair_keys() for n, r in reports.items()}
        assert keys["INJ"] == keys["BIJ"] == keys["OBJ"]
        gab = {
            r.key() for r in gabriel_rcj(workload.points_p, workload.points_q)
        }
        assert gab == keys["OBJ"]

    def test_cost_profile_matches_paper(self, workload):
        reports = run_all_algorithms(workload)
        # Bulk algorithms need far fewer node accesses than INJ
        # (Figure 13's CPU-time story).
        assert reports["BIJ"].node_accesses < reports["INJ"].node_accesses
        assert reports["OBJ"].node_accesses < reports["INJ"].node_accesses
        # Candidate ordering of Table 4.
        assert (
            reports["BIJ"].candidate_count
            >= reports["INJ"].candidate_count
            >= reports["OBJ"].candidate_count
        )

    def test_result_linear_in_input(self):
        # Figure 16b: result cardinality grows linearly with n.
        sizes = (250, 500, 1000)
        counts = []
        for n in sizes:
            w = build_workload(
                uniform(n, seed=3), uniform(n, seed=4, start_oid=n)
            )
            counts.append(run_algorithm(w, "OBJ").result_count)
        ratio1 = counts[1] / counts[0]
        ratio2 = counts[2] / counts[1]
        assert 1.6 < ratio1 < 2.4
        assert 1.6 < ratio2 < 2.4


class TestFullPipelineRealStandins:
    def test_sp_combination(self):
        points_q, points_p = join_combination("SP", scale=256)
        w = build_workload(points_q, points_p)
        reports = run_all_algorithms(w)
        assert reports["INJ"].pair_keys() == reports["OBJ"].pair_keys()
        ref = {
            r.key() for r in brute_force_rcj(points_p, points_q)
        }
        # Note the role convention: INJ iterates Q probing P, reporting
        # (p, q) keys; brute reports (p, q) too.
        assert reports["OBJ"].pair_keys() == ref


class TestSkewRobustness:
    def test_gaussian_agreement(self):
        points_p = gaussian_clusters(700, w=5, seed=10)
        points_q = gaussian_clusters(700, w=10, seed=11, start_oid=700)
        w = build_workload(points_q, points_p)
        reports = run_all_algorithms(w)
        assert reports["INJ"].pair_keys() == reports["OBJ"].pair_keys()


class TestResemblancePipeline:
    def test_eps_join_never_matches_rcj_exactly(self):
        # Section 5.1's claim: no ε achieves both high precision and
        # high recall.
        points_p = uniform(500, seed=20)
        points_q = uniform(500, seed=21, start_oid=500)
        w = build_workload(points_q, points_p)
        rcj_keys = run_algorithm(w, "OBJ").pair_keys()
        for eps in (50, 150, 300, 600, 1200):
            eps_keys = epsilon_join_arrays(points_p, points_q, eps)
            prec, rec = precision_recall(eps_keys, rcj_keys)
            assert not (prec > 90 and rec > 90), (eps, prec, rec)


class TestBufferSensitivity:
    def test_larger_buffer_fewer_faults(self):
        points_q = uniform(1200, seed=30)
        points_p = uniform(1200, seed=31, start_oid=1200)
        w = build_workload(points_q, points_p)
        faults = []
        for fraction in (0.005, 0.05, 0.5):
            w.set_buffer_fraction(fraction)
            faults.append(run_algorithm(w, "INJ").page_faults)
        assert faults[0] > faults[1] > faults[2]
