"""Unit tests for the SVG line-chart renderer."""

import pytest

from repro.evaluation.svgplot import PALETTE, _nice_ticks, line_chart


class TestNiceTicks:
    def test_covers_range(self):
        ticks = _nice_ticks(0, 100)
        assert ticks[0] <= 0
        assert ticks[-1] >= 100

    def test_sorted_distinct(self):
        ticks = _nice_ticks(3.7, 92.4)
        assert ticks == sorted(set(ticks))

    def test_degenerate_range(self):
        ticks = _nice_ticks(5, 5)
        assert len(ticks) >= 2


class TestLineChart:
    def test_basic_document(self):
        svg = line_chart(
            "T", "x", "y", [1, 2, 3], {"a": [1, 4, 9], "b": [2, 2, 2]}
        )
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert svg.count("<polyline") == 2
        assert "T" in svg and ">x<" in svg and ">y<" in svg
        assert PALETTE[0] in svg and PALETTE[1] in svg

    def test_empty_x_rejected(self):
        with pytest.raises(ValueError):
            line_chart("t", "x", "y", [], {})

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="values for"):
            line_chart("t", "x", "y", [1, 2], {"a": [1]})

    def test_log_scale_requires_positive(self):
        with pytest.raises(ValueError, match="positive"):
            line_chart("t", "x", "y", [1, 2], {"a": [1, 0]}, log_y=True)

    def test_log_scale_orders_series(self):
        # On a log axis 10 and 1000 map within the plot area.
        svg = line_chart(
            "t", "x", "y", [1, 2], {"a": [10, 1000]}, log_y=True
        )
        assert "1e" in svg  # log tick labels

    def test_writes_file(self, tmp_path):
        out = str(tmp_path / "chart.svg")
        svg = line_chart("t", "x", "y", [0, 1], {"a": [0, 1]}, path=out)
        assert open(out).read() == svg

    def test_coordinates_inside_canvas(self):
        svg = line_chart(
            "t", "x", "y", [0, 50, 100], {"a": [5, 99, 42]},
            width=640, height=400,
        )
        import re

        for cx, cy in re.findall(r'circle cx="([\d.]+)" cy="([\d.]+)"', svg):
            assert 0 <= float(cx) <= 640
            assert 0 <= float(cy) <= 400

    def test_single_point_series(self):
        svg = line_chart("t", "x", "y", [7], {"a": [3]})
        assert "<circle" in svg

    def test_figures_from_bench_data(self):
        # Smoke: render a Figure-10-like dataset.
        svg = line_chart(
            "Figure 10 (SP)",
            "eps / mean NN",
            "quality (%)",
            [0.25, 0.5, 1, 2, 4, 8, 16],
            {
                "precision": [98.4, 91.6, 71.0, 40.5, 16.4, 5.3, 1.8],
                "recall": [2.4, 8.6, 26.4, 58.3, 91.3, 99.9, 100.0],
            },
        )
        assert svg.count("<circle") == 14
