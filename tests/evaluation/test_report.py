"""Unit tests for the report formatting helpers."""

from repro.evaluation.report import format_series, format_table


class TestFormatTable:
    def test_alignment_and_rows(self):
        text = format_table(
            ["algo", "time"], [["INJ", 12], ["OBJ", 3]], title="Fig X"
        )
        lines = text.splitlines()
        assert lines[0] == "Fig X"
        assert "algo" in lines[1] and "time" in lines[1]
        assert any("INJ" in line and "12" in line for line in lines)
        # All data rows share the same width.
        widths = {len(line) for line in lines[1:]}
        assert len(widths) <= 2  # header/sep/rows aligned

    def test_no_title(self):
        text = format_table(["a"], [["1"]])
        assert text.splitlines()[0].startswith("a")


class TestFormatSeries:
    def test_series_columns(self):
        text = format_series(
            "n", [1, 2], {"INJ": [10, 20], "OBJ": [1, 2]}, title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "INJ" in lines[1] and "OBJ" in lines[1]
        assert "20" in text and "2" in text

    def test_row_per_x(self):
        text = format_series("k", [5, 10, 15], {"v": [0.1, 0.2, 0.3]})
        # header + separator + 3 rows
        assert len(text.splitlines()) == 5
