"""Unit tests for the analytical result-size / cost models."""

import pytest

from repro.bench.runner import build_workload, run_algorithm
from repro.datasets.synthetic import uniform
from repro.evaluation.analysis import (
    estimate_inj_node_accesses,
    expected_result_size,
    expected_tree_height,
    upper_bound_result_size,
)


class TestExpectedResultSize:
    def test_trivial_cases(self):
        assert expected_result_size(0, 10) == 0.0
        assert expected_result_size(10, 0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            expected_result_size(-1, 5)

    def test_balanced_formula(self):
        # |P| = |Q| = n: expectation 2n.
        assert expected_result_size(1000, 1000) == 2000.0

    def test_maximised_at_balanced_ratio(self):
        # Figure 17b's shape follows directly from the formula.
        total = 4000
        values = {
            ratio: expected_result_size(p, total - p)
            for ratio, p in (("1:4", 800), ("1:2", 1333), ("1:1", 2000),
                             ("2:1", 2667), ("4:1", 3200))
        }
        assert values["1:1"] == max(values.values())

    def test_linear_in_n(self):
        # Figure 16b's shape: doubling both inputs doubles the result.
        assert expected_result_size(2000, 2000) == 2 * expected_result_size(
            1000, 1000
        )

    @pytest.mark.parametrize("n", [500, 1000, 2000])
    def test_accurate_on_uniform_data(self, n):
        points_q = uniform(n, seed=300)
        points_p = uniform(n, seed=301, start_oid=n)
        w = build_workload(points_q, points_p)
        measured = run_algorithm(w, "OBJ").result_count
        predicted = expected_result_size(n, n)
        assert abs(measured - predicted) / predicted < 0.15

    def test_accurate_on_unbalanced_data(self):
        points_q = uniform(500, seed=302)
        points_p = uniform(2000, seed=303, start_oid=500)
        w = build_workload(points_q, points_p)
        measured = run_algorithm(w, "OBJ").result_count
        predicted = expected_result_size(2000, 500)
        assert abs(measured - predicted) / predicted < 0.20


class TestUpperBound:
    def test_planar_bound(self):
        assert upper_bound_result_size(100, 100) == 3 * 200 - 6

    def test_tiny_inputs(self):
        assert upper_bound_result_size(1, 1) == 1
        assert upper_bound_result_size(0, 10) == 0

    def test_bound_never_violated_empirically(self):
        from repro.core.brute import brute_force_rcj

        points_p = uniform(60, seed=310)
        points_q = uniform(60, seed=311, start_oid=60)
        result = brute_force_rcj(points_p, points_q)
        assert len(result) <= upper_bound_result_size(60, 60)


class TestTreeHeight:
    def test_single_leaf(self):
        assert expected_tree_height(40, 42, 25) == 1

    def test_two_levels(self):
        assert expected_tree_height(42 * 25, 42, 25) == 2

    def test_matches_actual_str_tree(self):
        from repro.rtree.bulk import bulk_load

        for n in (30, 500, 5000):
            tree = bulk_load(uniform(n, seed=5))
            assert tree.height == expected_tree_height(
                n, tree.leaf_capacity, tree.branch_capacity
            )


class TestInjAccessEstimate:
    def test_empty_inputs(self):
        assert estimate_inj_node_accesses(0, 100, 42, 25) == 0.0

    def test_within_factor_three_of_measured(self):
        n = 2000
        points_q = uniform(n, seed=320)
        points_p = uniform(n, seed=321, start_oid=n)
        w = build_workload(points_q, points_p)
        measured = run_algorithm(w, "INJ").node_accesses
        predicted = estimate_inj_node_accesses(
            n, n, w.tree_p.leaf_capacity, w.tree_p.branch_capacity
        )
        assert predicted / 3 < measured < predicted * 3
