"""Tests for the Figure-1-style SVG join map."""

import pytest

from repro.core.brute import brute_force_rcj
from repro.datasets.synthetic import uniform
from repro.evaluation.joinmap import draw_join_map
from repro.geometry.point import Point


@pytest.fixture
def small_join():
    ps = uniform(30, seed=0)
    qs = uniform(25, seed=1, start_oid=100)
    return ps, qs, brute_force_rcj(ps, qs)


class TestDrawJoinMap:
    def test_valid_svg_document(self, small_join):
        ps, qs, pairs = small_join
        svg = draw_join_map(ps, qs, pairs)
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert 'xmlns="http://www.w3.org/2000/svg"' in svg

    def test_one_marker_per_point_and_ring_per_pair(self, small_join):
        ps, qs, pairs = small_join
        svg = draw_join_map(ps, qs, pairs)
        assert svg.count('class="p"') == len(ps)
        assert svg.count('class="q"') == len(qs)
        assert svg.count('class="ring"') == len(pairs)
        assert svg.count('class="mid"') == len(pairs)

    def test_max_pairs_draws_smallest_rings(self, small_join):
        ps, qs, pairs = small_join
        svg = draw_join_map(ps, qs, pairs, max_pairs=3)
        assert svg.count('class="ring"') == 3
        # Title still reports the full pair count.
        assert f"pairs={len(pairs)}" in svg

    def test_title_and_counts_in_header(self, small_join):
        ps, qs, pairs = small_join
        svg = draw_join_map(ps, qs, pairs, title="Paper Figure 1")
        assert "Paper Figure 1" in svg
        assert f"|P|={len(ps)}" in svg

    def test_writes_file(self, small_join, tmp_path):
        ps, qs, pairs = small_join
        out = tmp_path / "map.svg"
        svg = draw_join_map(ps, qs, pairs, path=str(out))
        assert out.read_text() == svg

    def test_coordinates_inside_canvas(self, small_join):
        import re

        ps, qs, pairs = small_join
        svg = draw_join_map(ps, qs, pairs, size=500)
        for m in re.finditer(r'c[xy]="([-0-9.]+)"', svg):
            value = float(m.group(1))
            assert -1 <= value <= 501

    def test_empty_join_rejected(self):
        with pytest.raises(ValueError):
            draw_join_map([], [], [])

    def test_single_pair_degenerate_extent(self):
        ps = [Point(5, 5, 0)]
        qs = [Point(5, 6, 0)]
        pairs = brute_force_rcj(ps, qs)
        svg = draw_join_map(ps, qs, pairs)
        assert svg.count('class="ring"') == 1


class TestLatexTable:
    def test_basic_structure(self):
        from repro.evaluation.report import format_latex_table

        tex = format_latex_table(
            ["algo", "time"],
            [["OBJ", 1.5], ["INJ", 20.4]],
            caption="Costs",
            label="tab:costs",
        )
        assert tex.startswith(r"\begin{table}")
        assert r"\begin{tabular}{ll}" in tex
        assert r"OBJ & 1.5 \\" in tex
        assert r"\caption{Costs}" in tex
        assert r"\label{tab:costs}" in tex

    def test_escaping(self):
        from repro.evaluation.report import format_latex_table

        tex = format_latex_table(["x"], [["50% & #1_2"]])
        assert r"50\% \& \#1\_2" in tex

    def test_no_caption_or_label(self):
        from repro.evaluation.report import format_latex_table

        tex = format_latex_table(["a"], [[1]])
        assert "caption" not in tex
        assert "label" not in tex
