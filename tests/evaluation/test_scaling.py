"""Unit tests for the strong-scaling series evaluation."""

from __future__ import annotations

import json

import pytest

from repro.evaluation.scaling import (
    ScalePoint,
    scaling_summary,
    speedup_rows,
    write_json,
)

POINTS = [
    ScalePoint(n=1000, workers=1, wall_seconds=4.0, pairs=500),
    ScalePoint(n=1000, workers=2, wall_seconds=2.0, pairs=500),
    ScalePoint(n=1000, workers=4, wall_seconds=1.0, pairs=500),
    ScalePoint(n=2000, workers=1, wall_seconds=10.0, pairs=990),
    ScalePoint(n=2000, workers=4, wall_seconds=4.0, pairs=990),
]


class TestSpeedupRows:
    def test_speedup_and_efficiency(self):
        rows = speedup_rows(POINTS)
        by_key = {(r[0], r[1]): r for r in rows}
        assert by_key[(1000, 4)][4] == "4.00x"
        assert by_key[(1000, 4)][5] == "100%"
        assert by_key[(2000, 4)][4] == "2.50x"
        assert by_key[(2000, 4)][5] == "62%"

    def test_rows_sorted_by_n_then_workers(self):
        rows = speedup_rows(POINTS)
        assert [(r[0], r[1]) for r in rows] == sorted(
            (p.n, p.workers) for p in POINTS
        )

    def test_missing_baseline_rejected(self):
        orphan = [ScalePoint(n=500, workers=4, wall_seconds=1.0, pairs=1)]
        with pytest.raises(ValueError, match="baseline"):
            speedup_rows(orphan)


class TestSummary:
    def test_summary_shape(self):
        summary = scaling_summary(POINTS, cpu_count=4, identical_pairs=True)
        assert summary["benchmark"] == "parallel_scaling"
        assert summary["cpu_count"] == 4
        assert summary["identical_pairs"] is True
        assert len(summary["series"]) == len(POINTS)
        four = next(
            s
            for s in summary["series"]
            if s["n"] == 2000 and s["workers"] == 4
        )
        assert four["speedup"] == 2.5

    def test_write_json_roundtrip(self, tmp_path):
        path = tmp_path / "BENCH_parallel.json"
        summary = scaling_summary(POINTS, cpu_count=2, identical_pairs=True)
        write_json(str(path), summary)
        assert json.loads(path.read_text()) == summary
