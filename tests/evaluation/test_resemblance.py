"""Unit tests for the precision/recall resemblance measures."""

from hypothesis import given, strategies as st

from repro.evaluation.resemblance import precision, precision_recall, recall

pairs_st = st.sets(st.tuples(st.integers(0, 30), st.integers(0, 30)), max_size=40)


class TestDefinitions:
    def test_perfect_match(self):
        s = {(1, 2), (3, 4)}
        assert precision(s, s) == 100.0
        assert recall(s, s) == 100.0

    def test_disjoint_sets(self):
        assert precision({(1, 2)}, {(3, 4)}) == 0.0
        assert recall({(1, 2)}, {(3, 4)}) == 0.0

    def test_partial_overlap(self):
        result = {(1, 1), (2, 2), (3, 3), (4, 4)}
        reference = {(1, 1), (2, 2)}
        assert precision(result, reference) == 50.0
        assert recall(result, reference) == 100.0

    def test_empty_result_convention(self):
        assert precision(set(), {(1, 1)}) == 100.0
        assert recall(set(), {(1, 1)}) == 0.0

    def test_empty_reference_convention(self):
        assert recall({(1, 1)}, set()) == 100.0

    def test_paper_low_eps_shape(self):
        # Figure 10 at low ε: few found pairs, mostly correct -> high
        # precision, low recall.
        reference = {(i, i) for i in range(100)}
        result = {(i, i) for i in range(5)}
        assert precision(result, reference) == 100.0
        assert recall(result, reference) == 5.0


class TestCombined:
    @given(pairs_st, pairs_st)
    def test_precision_recall_consistent_with_parts(self, result, reference):
        prec, rec = precision_recall(result, reference)
        assert prec == precision(result, reference)
        assert rec == recall(result, reference)

    @given(pairs_st, pairs_st)
    def test_bounds(self, result, reference):
        prec, rec = precision_recall(result, reference)
        assert 0.0 <= prec <= 100.0
        assert 0.0 <= rec <= 100.0

    @given(pairs_st)
    def test_symmetric_roles_on_equal_sets(self, s):
        prec, rec = precision_recall(s, s)
        assert prec == 100.0
        assert rec == 100.0
