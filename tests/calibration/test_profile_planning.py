"""Integration tests: observations → refit → persisted profile →
profile-aware planning.

The round-trip the tentpole exists for: measured runs recorded by the
planner seam become a fitted per-host profile, and the profile changes
what ``choose_plan`` / ``choose_family_plan`` / ``choose_topk_plan``
decide — while its absence leaves every decision byte-identical to the
static thresholds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.calibration.observations import host_fingerprint
from repro.calibration.profile import (
    CalibrationProfile,
    EngineModel,
    load_profile,
    profile_path,
    save_profile,
)
from repro.calibration.refit import refit_profile
from repro.datasets.fixtures import uniform_pair
from repro.engine.arrays import PointArray
from repro.parallel.costmodel import (
    choose_family_plan,
    choose_plan,
    choose_topk_plan,
)

BIG = 1 << 40


@pytest.fixture
def store(tmp_path, monkeypatch):
    """A fresh calibration store; anything saved here is visible to the
    planner through ``cached_profile`` (mtime-validated, so rewrites
    within one test are seen too)."""
    monkeypatch.setenv("REPRO_CALIBRATION_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_CALIBRATION", raising=False)
    return tmp_path


def _fake_big(points, factor):
    arr = PointArray.from_points(points)
    n = len(arr) * factor

    class Inflated:
        x = np.resize(arr.x, n)
        y = np.resize(arr.y, n)

        def __len__(self):
            return n

    return Inflated()


def _profile(models: dict[str, EngineModel]) -> CalibrationProfile:
    return CalibrationProfile(
        host=host_fingerprint(),
        fitted_at="test",
        n_observations=8,
        models=models,
    )


class TestProfilePersistence:
    def test_save_load_round_trip(self, store):
        profile = _profile(
            {
                "join/array": EngineModel(0.01, 2e-6, 4),
                "join/array-parallel@2": EngineModel(0.05, 4e-6, 4),
            }
        )
        path = save_profile(profile)
        assert path == profile_path()
        loaded = load_profile()
        assert loaded == profile

    def test_corrupt_profile_loads_none(self, store):
        with open(profile_path(), "w") as f:
            f.write("{]")
        assert load_profile() is None

    def test_kill_switch_hides_profile(self, store, monkeypatch):
        save_profile(_profile({"join/array": EngineModel(0.01, 2e-6, 4)}))
        monkeypatch.setenv("REPRO_CALIBRATION", "0")
        assert load_profile() is None


class TestNoProfileFallback:
    """Without a profile the planner is byte-identical to the static
    thresholds — the acceptance criterion the equivalence suites rely
    on."""

    def test_plans_carry_no_prediction(self, store):
        points_p, points_q = uniform_pair(400, 400, seed=50)
        plan = choose_plan(points_p, points_q, workers=4, budget_bytes=BIG)
        assert plan.predicted_seconds is None
        assert not any("calibrated" in r for r in plan.reasons)

    def test_irrelevant_profile_leaves_decision_identical(self, store):
        points_p, points_q = uniform_pair(400, 400, seed=50)
        before = choose_plan(points_p, points_q, workers=4, budget_bytes=BIG)
        # A profile with no model for the bulk-join workload: the
        # calibrated branch must decline and fall through untouched.
        save_profile(
            _profile({"family:knn/array": EngineModel(0.01, 1e-6, 2)})
        )
        after = choose_plan(points_p, points_q, workers=4, budget_bytes=BIG)
        assert after == before

    def test_kill_switch_restores_static_decision(self, store, monkeypatch):
        points_p, points_q = uniform_pair(400, 400, seed=50)
        static = choose_plan(points_p, points_q, workers=4, budget_bytes=BIG)
        save_profile(
            _profile(
                {
                    "join/array": EngineModel(10.0, 1e-3, 4),
                    "join/array-parallel@2": EngineModel(0.0, 1e-9, 4),
                }
            )
        )
        calibrated = choose_plan(
            points_p, points_q, workers=4, budget_bytes=BIG
        )
        assert calibrated != static  # the profile did change the plan
        monkeypatch.setenv("REPRO_CALIBRATION", "0")
        disabled = choose_plan(
            points_p, points_q, workers=4, budget_bytes=BIG
        )
        assert disabled == static


class TestCalibratedJoinPlanning:
    def test_profile_flips_serial_to_parallel(self, store):
        # Static thresholds keep this size serial (est_cand below the
        # parallel floor); a profile that measured the pool faster must
        # override them.
        points_p, points_q = uniform_pair(400, 400, seed=51)
        big_p, big_q = _fake_big(points_p, 7), _fake_big(points_q, 7)
        static = choose_plan(big_p, big_q, workers=4, budget_bytes=BIG)
        assert static.engine == "array"

        save_profile(
            _profile(
                {
                    "join/array": EngineModel(0.0, 5e-6, 4),
                    "join/array-parallel@2": EngineModel(0.01, 1e-6, 4),
                }
            )
        )
        plan = choose_plan(big_p, big_q, workers=4, budget_bytes=BIG)
        assert plan.engine == "array-parallel"
        assert plan.workers == 2
        assert plan.predicted_seconds is not None
        assert any("calibrated" in r for r in plan.reasons)
        assert any("predicted" in r for r in plan.reasons)

    def test_1core_profile_flips_parallel_to_serial(self, store):
        # The recorded regression: static thresholds pick the pool on
        # paper-scale data, but a profile fitted from 1-core runs knows
        # the pool only loses there.
        points_p, points_q = uniform_pair(400, 400, seed=52)
        big_p, big_q = _fake_big(points_p, 500), _fake_big(points_q, 500)
        static = choose_plan(big_p, big_q, workers=4, budget_bytes=BIG)
        assert static.engine == "array-parallel"

        save_profile(
            _profile(
                {
                    "join/array": EngineModel(0.05, 2e-6, 4),
                    "join/array-parallel@2": EngineModel(0.15, 4.5e-6, 4),
                    "join/array-parallel@4": EngineModel(0.25, 5e-6, 4),
                }
            )
        )
        plan = choose_plan(big_p, big_q, workers=4, budget_bytes=BIG)
        assert plan.engine == "array"
        assert plan.workers == 1
        assert plan.predicted_seconds is not None

    def test_worker_budget_caps_profile_counts(self, store):
        points_p, points_q = uniform_pair(400, 400, seed=53)
        big_p, big_q = _fake_big(points_p, 500), _fake_big(points_q, 500)
        save_profile(
            _profile(
                {
                    "join/array": EngineModel(1.0, 5e-6, 4),
                    "join/array-parallel@2": EngineModel(0.2, 2e-6, 4),
                    "join/array-parallel@8": EngineModel(0.01, 1e-7, 4),
                }
            )
        )
        plan = choose_plan(big_p, big_q, workers=2, budget_bytes=BIG)
        assert (plan.engine, plan.workers) == ("array-parallel", 2)

    def test_profile_rewrite_is_seen(self, store):
        # cached_profile is mtime-validated: refitting mid-process must
        # change the very next plan.
        points_p, points_q = uniform_pair(400, 400, seed=54)
        big_p, big_q = _fake_big(points_p, 7), _fake_big(points_q, 7)
        save_profile(
            _profile(
                {
                    "join/array": EngineModel(0.0, 1e-6, 4),
                    "join/array-parallel@2": EngineModel(1.0, 1e-6, 4),
                }
            )
        )
        assert choose_plan(
            big_p, big_q, workers=4, budget_bytes=BIG
        ).engine == "array"
        save_profile(
            _profile(
                {
                    "join/array": EngineModel(1.0, 1e-6, 4),
                    "join/array-parallel@2": EngineModel(0.0, 1e-7, 4),
                }
            )
        )
        assert choose_plan(
            big_p, big_q, workers=4, budget_bytes=BIG
        ).engine == "array-parallel"


class TestCalibratedFamilyAndTopk:
    def test_family_profile_flips_engine(self, store):
        points_p, points_q = uniform_pair(400, 400, seed=55)
        big_p, big_q = _fake_big(points_p, 7), _fake_big(points_q, 7)
        static = choose_family_plan(
            "epsilon", big_p, big_q, eps=200.0, workers=4, budget_bytes=BIG
        )
        assert static.engine == "array"
        save_profile(
            _profile(
                {
                    "family:epsilon/array": EngineModel(0.0, 5e-6, 4),
                    "family:epsilon/array-parallel@2": EngineModel(
                        0.0, 1e-6, 4
                    ),
                }
            )
        )
        plan = choose_family_plan(
            "epsilon", big_p, big_q, eps=200.0, workers=4, budget_bytes=BIG
        )
        assert (plan.engine, plan.workers) == ("array-parallel", 2)
        assert plan.predicted_seconds is not None

    def test_topk_profile_flips_obj_to_array(self, store):
        # Static rule: tiny k over small data → the R-tree heap.  A
        # profile that measured the stream faster overrides it.
        points_p, points_q = uniform_pair(300, 300, seed=56)
        static = choose_topk_plan(points_p, points_q, k=5, budget_bytes=BIG)
        assert static.engine == "obj"
        save_profile(
            _profile(
                {
                    "topk/array": EngineModel(0.005, 1e-7, 4),
                    "topk/obj": EngineModel(0.2, 5e-5, 4),
                }
            )
        )
        plan = choose_topk_plan(points_p, points_q, k=5, budget_bytes=BIG)
        assert plan.engine == "array"
        assert plan.predicted_seconds is not None
        assert any("calibrated" in r for r in plan.reasons)

    def test_topk_partial_profile_falls_back_static(self, store):
        # Both routes must be modelled to compare; one-sided knowledge
        # keeps the static rules.
        points_p, points_q = uniform_pair(300, 300, seed=56)
        save_profile(_profile({"topk/array": EngineModel(0.005, 1e-7, 4)}))
        plan = choose_topk_plan(points_p, points_q, k=5, budget_bytes=BIG)
        assert plan.engine == "obj"
        assert plan.predicted_seconds is None


class TestEndToEndRoundTrip:
    def test_planned_runs_to_refit_to_flipped_decision(self, store):
        """The full loop on real executions: planned runs record
        observations, a refit persists the profile, and the very next
        plan is made from predictions (with synthetic parallel
        observations injected to give the fit both engine lines)."""
        from repro.calibration.observations import (
            load_observations,
            record_observation,
        )
        from repro.engine.planner import run_join

        points_p, points_q = uniform_pair(400, 400, seed=57)
        for seed in (1, 2):
            sub = points_p if seed == 1 else points_p[: len(points_p) // 2]
            report = run_join(sub, points_q, engine="auto", workers=1)
            assert report.plan is not None
        recorded = load_observations()
        assert len(recorded) == 2
        # Two synthetic pool observations at this host's key, strictly
        # slower than the measured serial runs (the 1-core story).
        for obs in recorded:
            record_observation(
                kind="join",
                engine="array-parallel",
                workers=2,
                n_p=obs["n_p"],
                n_q=obs["n_q"],
                density_factor=obs["density_factor"],
                est_candidates=obs["est_candidates"],
                est_bytes=obs["est_bytes"],
                stage_seconds=None,
                total_seconds=10 * obs["total_seconds"] + 0.1,
            )
        profile = refit_profile()
        save_profile(profile)
        assert profile.parallel_worker_counts("join") == (2,)

        big_p, big_q = _fake_big(points_p, 500), _fake_big(points_q, 500)
        plan = choose_plan(big_p, big_q, workers=2, budget_bytes=BIG)
        assert plan.predicted_seconds is not None
        assert plan.engine == "array"  # the pool measured 10x slower

    def test_parallel_execution_feeds_stage_times(self, store):
        """Satellite: a real pool run must land per-stage seconds on
        the report (and the plan), so parallel observations carry the
        same stage detail serial ones do."""
        from repro.engine.planner import run_join

        points_p, points_q = uniform_pair(600, 600, seed=58)
        report = run_join(
            points_p,
            points_q,
            engine="array-parallel",
            workers=2,
            min_shard=64,
        )
        assert report.stage_seconds, "pool run lost its stage times"
        assert set(report.stage_seconds) & {"candidate", "verify"}
