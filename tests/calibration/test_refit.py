"""Unit tests for the least-squares refit step."""

from __future__ import annotations

import numpy as np
import pytest

from repro.calibration.observations import host_fingerprint
from repro.calibration.profile import CalibrationProfile
from repro.calibration.refit import _fit_linear, refit_profile


def _obs(
    engine="array",
    workers=1,
    est=10_000,
    total=0.1,
    workload="join",
    stage_seconds=None,
    host=None,
):
    return {
        "kind": "join",
        "workload": workload,
        "engine": engine,
        "workers": workers,
        "n_p": 1000,
        "n_q": 1000,
        "est_candidates": est,
        "est_bytes": 1_000_000,
        "stage_seconds": stage_seconds or {},
        "total_seconds": total,
        "host": host if host is not None else host_fingerprint(),
    }


class TestFitLinear:
    def test_exact_line_recovered(self):
        est = np.array([1000.0, 2000.0, 4000.0])
        secs = 0.01 + 2e-6 * est
        base, slope = _fit_linear(est, secs)
        assert base == pytest.approx(0.01, rel=1e-6)
        assert slope == pytest.approx(2e-6, rel=1e-6)

    def test_negative_slope_clamped_to_flat_mean(self):
        est = np.array([1000.0, 2000.0, 4000.0])
        secs = np.array([0.4, 0.3, 0.1])  # faster with more work: noise
        base, slope = _fit_linear(est, secs)
        assert slope == 0.0
        assert base == pytest.approx(secs.mean())

    def test_negative_base_becomes_through_origin(self):
        est = np.array([1000.0, 2000.0])
        secs = np.array([0.0005, 0.004])  # lstsq intercept < 0
        base, slope = _fit_linear(est, secs)
        assert base == 0.0
        assert slope > 0.0
        # Predictions stay non-negative everywhere.
        assert base + slope * 100 >= 0.0

    def test_single_observation_is_a_ratio(self):
        base, slope = _fit_linear(np.array([5000.0]), np.array([0.05]))
        assert base == 0.0
        assert slope == pytest.approx(0.05 / 5000.0)

    def test_zero_estimates_flat(self):
        base, slope = _fit_linear(np.array([0.0, 0.0]), np.array([0.2, 0.4]))
        assert slope == 0.0
        assert base == pytest.approx(0.3)

    def test_empty(self):
        assert _fit_linear(np.array([]), np.array([])) == (0.0, 0.0)


class TestRefitProfile:
    def test_no_observations_raises_with_guidance(self):
        with pytest.raises(ValueError, match="calibrate"):
            refit_profile([])

    def test_groups_by_workload_engine_and_worker_count(self):
        observations = [
            _obs(est=10_000, total=0.02),
            _obs(est=40_000, total=0.05),
            _obs(engine="array-parallel", workers=2, est=10_000, total=0.06),
            _obs(engine="array-parallel", workers=2, est=40_000, total=0.12),
            _obs(engine="array-parallel", workers=4, est=40_000, total=0.2),
            _obs(workload="topk", engine="obj", est=100, total=0.3),
        ]
        profile = refit_profile(observations)
        assert isinstance(profile, CalibrationProfile)
        assert set(profile.models) >= {
            "join/array",
            "join/array-parallel@2",
            "join/array-parallel@4",
            "topk/obj",
        }
        assert profile.parallel_worker_counts("join") == (2, 4)
        assert profile.n_observations == 6

    def test_slower_parallel_host_fits_dominating_parallel_line(self):
        # The recorded 1-core regime: parallel strictly slower at every
        # size.  The per-worker-count fit must preserve that ordering
        # at any extrapolated candidate volume.
        observations = [
            _obs(est=10_000, total=0.02),
            _obs(est=40_000, total=0.08),
            _obs(engine="array-parallel", workers=2, est=10_000, total=0.15),
            _obs(engine="array-parallel", workers=2, est=40_000, total=0.40),
        ]
        profile = refit_profile(observations)
        for est in (1_000, 50_000, 10_000_000):
            serial = profile.predict_seconds("join", "array", 1, est)
            parallel = profile.predict_seconds(
                "join", "array-parallel", 2, est
            )
            assert parallel > serial, f"ordering lost at est={est}"

    def test_stage_models_fitted_from_stage_seconds(self):
        observations = [
            _obs(
                est=10_000,
                total=0.03,
                stage_seconds={"candidate": 0.01, "verify": 0.02},
            ),
            _obs(
                est=40_000,
                total=0.12,
                stage_seconds={"candidate": 0.04, "verify": 0.08},
            ),
        ]
        profile = refit_profile(observations)
        cand = profile.models["join/stage:candidate"]
        assert cand.predict(40_000) == pytest.approx(0.04, rel=0.05)
        assert "join/stage:verify" in profile.models
        # Unknown stage names are ignored, not modelled.
        assert "join/stage:merge" not in profile.models

    def test_pool_constants_derived(self):
        observations = [
            _obs(est=10_000, total=0.02),
            _obs(est=40_000, total=0.08),
            _obs(engine="array-parallel", workers=2, est=10_000, total=0.10),
            _obs(engine="array-parallel", workers=4, est=10_000, total=0.16),
        ]
        profile = refit_profile(observations)
        pool = profile.pools["join"]
        assert pool.startup_seconds >= 0.0
        assert pool.per_worker_seconds >= 0.0
        assert pool.n_obs == 2

    def test_other_hosts_filtered_out(self):
        alien = dict(host_fingerprint())
        alien["key"] = "plan9-mips-64cpu"
        observations = [
            _obs(est=10_000, total=0.02),
            _obs(est=10_000, total=9.99, host=alien),
        ]
        profile = refit_profile(observations)
        assert profile.n_observations == 1
        # host_filter=False deliberately blends them.
        blended = refit_profile(observations, host_filter=False)
        assert blended.n_observations == 2

    def test_only_alien_observations_raises(self):
        alien = dict(host_fingerprint())
        alien["key"] = "plan9-mips-64cpu"
        with pytest.raises(ValueError, match="no usable"):
            refit_profile([_obs(host=alien)])

    def test_pointwise_coerces_to_obj(self):
        profile = refit_profile(
            [_obs(workload="topk", engine="pointwise", est=100, total=0.2)]
        )
        assert "topk/obj" in profile.models
        assert profile.predict_seconds("topk", "pointwise", 1, 100) == (
            profile.predict_seconds("topk", "obj", 1, 100)
        )
