"""Unit tests for the calibration observation log."""

from __future__ import annotations

import json
import os

import pytest

from repro.calibration.observations import (
    calibration_dir,
    calibration_enabled,
    host_fingerprint,
    load_observations,
    observations_path,
    record_observation,
    record_planned_run,
    reset_calibration,
    workload_key,
)


@pytest.fixture
def store(tmp_path, monkeypatch):
    """A fresh, isolated calibration store for one test."""
    monkeypatch.setenv("REPRO_CALIBRATION_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_CALIBRATION", raising=False)
    return tmp_path


def _record(**overrides) -> str:
    fields = dict(
        kind="join",
        engine="array",
        workers=1,
        n_p=100,
        n_q=120,
        density_factor=1.1,
        est_candidates=1600,
        est_bytes=50_000,
        stage_seconds={"candidate": 0.01, "verify": 0.02},
        total_seconds=0.05,
    )
    fields.update(overrides)
    return record_observation(**fields)


class TestStore:
    def test_env_override_controls_location(self, store):
        assert calibration_dir() == str(store)
        assert observations_path() == str(store / "observations.jsonl")

    def test_record_and_load_round_trip(self, store):
        path = _record()
        records = load_observations(path)
        assert len(records) == 1
        (obs,) = records
        assert obs["workload"] == "join"
        assert obs["engine"] == "array"
        assert obs["est_candidates"] == 1600
        assert obs["stage_seconds"]["verify"] == pytest.approx(0.02)
        assert obs["host"]["key"] == host_fingerprint()["key"]

    def test_records_append(self, store):
        _record()
        _record(engine="array-parallel", workers=2)
        assert [o["engine"] for o in load_observations()] == [
            "array",
            "array-parallel",
        ]

    def test_zero_total_not_recorded(self, store):
        _record(total_seconds=0.0)
        assert load_observations() == []

    def test_corrupt_lines_skipped(self, store):
        _record()
        with open(observations_path(), "a") as f:
            f.write("{truncated\n")
            f.write("42\n")
        _record(engine="obj")
        assert len(load_observations()) == 2

    def test_missing_store_loads_empty(self, store):
        assert load_observations() == []

    def test_reset_removes_observations_and_profiles(self, store):
        _record()
        (store / "profile-somehost.json").write_text("{}\n")
        (store / "keepme.txt").write_text("not calibration data\n")
        removed = reset_calibration()
        assert len(removed) == 2
        assert load_observations() == []
        assert (store / "keepme.txt").exists()


class TestKillSwitch:
    @pytest.mark.parametrize("off", ["0", "off", "false", "no"])
    def test_disables_recording(self, store, monkeypatch, off):
        monkeypatch.setenv("REPRO_CALIBRATION", off)
        assert not calibration_enabled()
        _record()
        assert load_observations() == []

    def test_enabled_by_default(self, store):
        assert calibration_enabled()


class TestHostFingerprint:
    def test_carries_identity_and_speed(self):
        host = host_fingerprint()
        assert host["cpu_count"] == (os.cpu_count() or 1)
        assert f"{host['cpu_count']}cpu" in host["key"]
        assert host["microbench_seconds"] > 0.0

    def test_stable_within_process(self):
        assert host_fingerprint() == host_fingerprint()


class TestWorkloadKey:
    def test_families_get_their_own_workload(self):
        assert workload_key("join") == "join"
        assert workload_key("topk") == "topk"
        assert workload_key("family", "epsilon") == "family:epsilon"
        assert workload_key("family", "rcj") == "family"


class TestRecordPlannedRun:
    def test_records_from_plan_and_report(self, store):
        from repro.datasets.fixtures import uniform_pair
        from repro.engine.planner import run_join

        points_p, points_q = uniform_pair(200, 200, seed=41)
        report = run_join(points_p, points_q, engine="auto", workers=1)
        assert report.plan is not None
        records = load_observations()
        assert len(records) == 1
        (obs,) = records
        assert obs["engine"] == report.plan.engine
        assert obs["est_candidates"] == report.plan.est_candidates
        assert obs["total_seconds"] > 0.0

    def test_swallows_broken_reports(self, store):
        class Hostile:
            engine = "array"
            workers = 1
            n_p = 1
            n_q = 1
            density_factor = 1.0
            est_candidates = 1

            @property
            def est_bytes(self):
                raise RuntimeError("boom")

        record_planned_run(Hostile(), object(), "join")  # must not raise
        assert load_observations() == []

    def test_unplanned_run_records_nothing(self, store):
        from repro.datasets.fixtures import uniform_pair
        from repro.engine.planner import run_join

        points_p, points_q = uniform_pair(150, 150, seed=42)
        run_join(points_p, points_q, engine="array")
        assert load_observations() == []

    def test_family_and_topk_runs_record_their_workload(self, store):
        from repro.datasets.fixtures import uniform_pair
        from repro.engine.families import run_family_join
        from repro.engine.planner import run_topk

        points_p, points_q = uniform_pair(200, 200, seed=43)
        run_family_join(points_p, points_q, "epsilon", eps=30.0, workers=1)
        run_topk(points_p, points_q, 5, engine="auto")
        workloads = {o["workload"] for o in load_observations()}
        assert workloads == {"family:epsilon", "topk"}
