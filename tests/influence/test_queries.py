"""Unit tests for the influence-based queries (paper, Section 2.2)."""

import pytest

from repro.datasets.synthetic import uniform
from repro.geometry.point import Point
from repro.influence.queries import (
    influence_counts,
    optimal_location,
    top_k_influential,
)


@pytest.fixture
def figure3():
    """A configuration reproducing the paper's Figure 3 story:
    sites p1, p2, p3 with influences 3, 1, 2."""
    sites = [
        Point(0.25, 0.70, 1),  # p1
        Point(0.30, 0.20, 2),  # p2
        Point(0.80, 0.45, 3),  # p3
    ]
    objects = [
        # Three objects nearest to p1.
        Point(0.15, 0.80, 10),
        Point(0.30, 0.85, 11),
        Point(0.20, 0.60, 12),
        # One object nearest to p2.
        Point(0.35, 0.10, 13),
        # Two objects nearest to p3.
        Point(0.85, 0.55, 14),
        Point(0.75, 0.30, 15),
    ]
    return sites, objects


class TestInfluenceCounts:
    def test_figure3_counts(self, figure3):
        sites, objects = figure3
        counts = influence_counts(sites, objects)
        assert counts == {1: 3, 2: 1, 3: 2}

    def test_counts_partition_objects(self):
        sites = uniform(20, seed=1)
        objects = uniform(300, seed=2, start_oid=100)
        counts = influence_counts(sites, objects)
        assert sum(counts.values()) == len(objects)
        assert set(counts) == {s.oid for s in sites}

    def test_empty_sites(self):
        assert influence_counts([], uniform(5, seed=1)) == {}

    def test_empty_objects(self):
        sites = uniform(5, seed=1)
        counts = influence_counts(sites, [])
        assert counts == {s.oid: 0 for s in sites}

    def test_matches_linear_scan(self):
        sites = uniform(15, seed=3)
        objects = uniform(200, seed=4, start_oid=100)
        counts = influence_counts(sites, objects)
        expected: dict[int, int] = {s.oid: 0 for s in sites}
        for obj in objects:
            nearest = min(sites, key=obj.dist_sq_to)
            expected[nearest.oid] += 1
        assert counts == expected


class TestTopKInfluential:
    def test_figure3_top1(self, figure3):
        sites, objects = figure3
        top = top_k_influential(sites, objects, 1)
        assert top[0][0].oid == 1  # p1, the paper's top-1
        assert top[0][1] == 3

    def test_figure3_full_ranking(self, figure3):
        sites, objects = figure3
        ranked = top_k_influential(sites, objects, 3)
        assert [(s.oid, c) for s, c in ranked] == [(1, 3), (3, 2), (2, 1)]

    def test_k_zero(self, figure3):
        sites, objects = figure3
        assert top_k_influential(sites, objects, 0) == []

    def test_k_exceeds_sites(self, figure3):
        sites, objects = figure3
        assert len(top_k_influential(sites, objects, 99)) == 3

    def test_influence_descending(self):
        sites = uniform(25, seed=5)
        objects = uniform(400, seed=6, start_oid=100)
        ranked = top_k_influential(sites, objects, 25)
        influences = [c for _, c in ranked]
        assert influences == sorted(influences, reverse=True)


class TestOptimalLocation:
    def test_needs_objects(self):
        with pytest.raises(ValueError):
            optimal_location(uniform(3, seed=1), [])

    def test_no_existing_sites_captures_everything(self):
        objects = [Point(0, 0, 1), Point(1, 1, 2), Point(2, 2, 3)]
        _loc, influence = optimal_location([], objects)
        assert influence == len(objects)

    def test_new_location_beats_far_sites(self):
        # Sites far away; a candidate amid the objects captures all.
        sites = [Point(10000, 10000, 1)]
        objects = [Point(i, 0, 10 + i) for i in range(5)]
        loc, influence = optimal_location(sites, objects)
        assert influence == 5
        assert loc.y == 0

    def test_candidate_pool_respected(self):
        sites = [Point(0, 0, 1)]
        objects = [Point(10, 0, 2), Point(11, 0, 3)]
        candidates = [Point(500, 500, 9)]
        loc, influence = optimal_location(sites, objects, candidates)
        assert loc.oid == 9
        assert influence == 0  # candidate too far to win any object

    def test_influence_bounded_by_objects(self):
        sites = uniform(10, seed=7)
        objects = uniform(100, seed=8, start_oid=50)
        _loc, influence = optimal_location(sites, objects)
        assert 0 <= influence <= len(objects)
