"""Randomised end-to-end stress: every index type x every algorithm x
awkward page sizes x every data family, against the brute oracle.

Each configuration is small (the oracle is quadratic) but the matrix is
wide; these tests exist to catch interaction bugs that the per-module
suites cannot (e.g. a pruning rule that is only wrong for deep trees
over skewed data)."""

import random

import pytest

from repro.core.bij import bij
from repro.core.brute import brute_force_rcj
from repro.core.inj import inj
from repro.datasets.synthetic import gaussian_clusters, uniform
from repro.datasets.worstcase import lattice, split_alternating, two_clusters
from repro.kdtree import build_kdtree
from repro.quadtree.tree import QuadTree
from repro.rtree.bulk import bulk_load, hilbert_bulk_load
from repro.rtree.tree import RTree


def _rtree_str(points, page_size):
    return bulk_load(points, page_size=page_size)


def _rtree_hilbert(points, page_size):
    return hilbert_bulk_load(points, page_size=page_size)


def _rtree_insert(points, page_size):
    tree = RTree(page_size=page_size)
    for p in points:
        tree.insert(p)
    return tree


def _kdtree(points, page_size):
    return build_kdtree(points, page_size=page_size)


def _quadtree(points, page_size):
    tree = QuadTree(page_size=max(page_size, 256))
    for p in points:
        tree.insert(p)
    return tree


INDEX_BUILDERS = {
    "rtree-str": _rtree_str,
    "rtree-hilbert": _rtree_hilbert,
    "rtree-insert": _rtree_insert,
    "kdtree": _kdtree,
    "quadtree": _quadtree,
}

DATA_FAMILIES = {
    "uniform": lambda: (
        uniform(90, seed=400),
        uniform(80, seed=401, start_oid=1000),
    ),
    "gaussian": lambda: (
        gaussian_clusters(90, w=3, seed=402),
        gaussian_clusters(80, w=3, seed=403, start_oid=1000),
    ),
    "lattice": lambda: split_alternating(lattice(100)),
    "dumbbell": lambda: split_alternating(two_clusters(100, seed=404)),
}


@pytest.mark.parametrize("index_kind", sorted(INDEX_BUILDERS))
@pytest.mark.parametrize("family", sorted(DATA_FAMILIES))
def test_obj_matches_oracle_everywhere(index_kind, family):
    ps, qs = DATA_FAMILIES[family]()
    build = INDEX_BUILDERS[index_kind]
    tree_p = build(ps, 256)
    tree_q = build(qs, 256)
    expected = {r.key() for r in brute_force_rcj(ps, qs)}
    assert bij(tree_q, tree_p, symmetric=True).pair_keys() == expected


@pytest.mark.parametrize("page_size", [192, 320, 1024])
def test_inj_bij_across_page_sizes(page_size):
    ps, qs = DATA_FAMILIES["gaussian"]()
    tree_p = bulk_load(ps, page_size=page_size)
    tree_q = bulk_load(qs, page_size=page_size)
    expected = {r.key() for r in brute_force_rcj(ps, qs)}
    assert inj(tree_q, tree_p).pair_keys() == expected
    assert bij(tree_q, tree_p).pair_keys() == expected


def test_mixed_index_matrix():
    """Every ordered pair of index kinds on the two sides still joins
    exactly — the algorithms must not assume both trees are alike."""
    ps, qs = DATA_FAMILIES["uniform"]()
    expected = {r.key() for r in brute_force_rcj(ps, qs)}
    kinds = ["rtree-str", "kdtree", "quadtree"]
    trees_p = {k: INDEX_BUILDERS[k](ps, 256) for k in kinds}
    trees_q = {k: INDEX_BUILDERS[k](qs, 256) for k in kinds}
    for kp in kinds:
        for kq in kinds:
            got = bij(trees_q[kq], trees_p[kp], symmetric=True).pair_keys()
            assert got == expected, (kp, kq)


def test_random_config_fuzz():
    """A seeded sweep over random sizes, seeds and page sizes."""
    rng = random.Random(99)
    for trial in range(6):
        n_p = rng.randint(1, 120)
        n_q = rng.randint(1, 120)
        page = rng.choice([192, 256, 512])
        ps = uniform(n_p, seed=500 + trial)
        qs = uniform(n_q, seed=600 + trial, start_oid=5000)
        tree_p = bulk_load(ps, page_size=page)
        tree_q = bulk_load(qs, page_size=page)
        expected = {r.key() for r in brute_force_rcj(ps, qs)}
        assert bij(tree_q, tree_p, symmetric=True).pair_keys() == expected, trial
