"""Unit tests for the uniform-grid index."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.grid.index import GridIndex

from tests.conftest import lattice_pointset, make_points


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            GridIndex([])

    def test_invalid_cells(self):
        with pytest.raises(ValueError):
            GridIndex([Point(0, 0, 0)], cells_per_axis=0)

    def test_single_point(self):
        grid = GridIndex([Point(5, 5, 0)])
        assert grid.points_in_rect(Rect(0, 0, 10, 10)) == [Point(5, 5, 0)]

    def test_identical_points(self):
        pts = [Point(2, 2, i) for i in range(10)]
        grid = GridIndex(pts)
        assert len(grid.points_in_rect(Rect(2, 2, 2, 2))) == 10


class TestRangeQueries:
    def test_matches_linear_scan(self, uniform_points, rng):
        grid = GridIndex(uniform_points)
        for _ in range(20):
            x1, x2 = sorted(rng.uniform(0, 10000) for _ in range(2))
            y1, y2 = sorted(rng.uniform(0, 10000) for _ in range(2))
            window = Rect(x1, y1, x2, y2)
            expected = sorted(
                p.oid for p in uniform_points if window.contains_point(p.x, p.y)
            )
            got = sorted(p.oid for p in grid.points_in_rect(window))
            assert got == expected

    def test_matches_rtree(self, uniform_points):
        from repro.rtree.bulk import bulk_load

        grid = GridIndex(uniform_points)
        tree = bulk_load(uniform_points)
        window = Rect(1000, 2000, 6000, 7000)
        assert sorted(p.oid for p in grid.points_in_rect(window)) == sorted(
            p.oid for p in tree.range_search(window)
        )

    @given(lattice_pointset(min_size=1, max_size=40), st.integers(1, 10))
    @settings(max_examples=30, deadline=None)
    def test_property_window_queries(self, coords, cells):
        pts = make_points(coords)
        grid = GridIndex(pts, cells_per_axis=cells)
        window = Rect(5, 5, 30, 30)
        expected = sorted(
            p.oid for p in pts if window.contains_point(p.x, p.y)
        )
        assert sorted(p.oid for p in grid.points_in_rect(window)) == expected


class TestPredicateSearch:
    def test_any_point_where(self, uniform_points):
        grid = GridIndex(uniform_points)
        window = Rect(0, 0, 10000, 10000)
        assert grid.any_point_where(window, lambda p: p.oid == 17)
        assert not grid.any_point_where(window, lambda p: p.oid == 10**9)

    def test_predicate_restricted_to_window(self):
        pts = [Point(0, 0, 0), Point(100, 100, 1)]
        grid = GridIndex(pts, cells_per_axis=4)
        # oid 1 exists but outside the probed window's cells.
        assert not grid.any_point_where(
            Rect(0, 0, 10, 10), lambda p: p.oid == 1
        )

    def test_predicate_never_sees_points_outside_rect(self):
        # Points sharing a bucket with the queried region but lying
        # outside the rect must not satisfy the search.
        pts = [Point(0, 0, 0), Point(9, 9, 1)]
        grid = GridIndex(pts, cells_per_axis=1)  # one bucket holds both
        assert not grid.any_point_where(Rect(0, 0, 1, 1), lambda p: p.oid == 1)
        assert grid.any_point_where(Rect(0, 0, 1, 1), lambda p: p.oid == 0)

    def test_len(self, uniform_points):
        assert len(GridIndex(uniform_points)) == len(uniform_points)


class TestBoundaryAssignment:
    """Bucket assignment at the extremes of the indexed extent."""

    def test_max_extent_points_clamped_into_last_cell(self):
        pts = [Point(0, 0, 0), Point(10, 0, 1), Point(0, 10, 2), Point(10, 10, 3)]
        grid = GridIndex(pts, cells_per_axis=4)
        last = grid.cells_per_axis - 1
        assert grid._cell_of(10.0, 10.0) == (last, last)
        # A query hugging the max corner finds the corner point.
        assert [p.oid for p in grid.points_in_rect(Rect(10, 10, 10, 10))] == [3]

    def test_max_extent_found_with_fractional_cell_widths(self):
        # Widths that don't divide the extent exactly: the division for
        # x == xmax can land exactly on cells_per_axis and must clamp.
        pts = [Point(i * 0.7, i * 0.3, i) for i in range(30)]
        grid = GridIndex(pts, cells_per_axis=7)
        xmax = max(p.x for p in pts)
        ymax = max(p.y for p in pts)
        got = grid.points_in_rect(Rect(xmax, ymax, xmax, ymax))
        assert [p.oid for p in got] == [29]

    def test_queries_beyond_bounds_clamp(self):
        pts = [Point(5, 5, 0), Point(6, 6, 1)]
        grid = GridIndex(pts, cells_per_axis=3)
        assert sorted(
            p.oid for p in grid.points_in_rect(Rect(-100, -100, 100, 100))
        ) == [0, 1]
        assert grid.points_in_rect(Rect(50, 50, 60, 60)) == []

    def test_degenerate_extent_single_column(self):
        pts = [Point(5, y, i) for i, y in enumerate((0, 2, 7, 10))]
        grid = GridIndex(pts, cells_per_axis=3)
        assert sorted(
            p.oid for p in grid.points_in_rect(Rect(5, 0, 5, 10))
        ) == [0, 1, 2, 3]
        assert sorted(
            p.oid for p in grid.points_in_rect(Rect(5, 10, 5, 10))
        ) == [3]

    def test_all_points_coincident(self):
        pts = [Point(3, 3, i) for i in range(5)]
        grid = GridIndex(pts, cells_per_axis=2)
        assert len(grid.points_in_rect(Rect(3, 3, 3, 3))) == 5
