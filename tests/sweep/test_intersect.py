"""Tests for the plane-sweep rectangle-intersection kernels."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.rect import Rect
from repro.sweep import sweep_point_rect_pairs, sweep_rect_pairs

# Small integer bounds generate many touching/nested/duplicate configs.
_coord = st.integers(min_value=0, max_value=20)


def _rects(min_size=0, max_size=25):
    return st.lists(
        st.tuples(_coord, _coord, _coord, _coord).map(
            lambda t: Rect(min(t[0], t[2]), min(t[1], t[3]), max(t[0], t[2]), max(t[1], t[3]))
        ),
        min_size=min_size,
        max_size=max_size,
    )


def _brute_pairs(left, right):
    return {
        (i, j)
        for i, a in enumerate(left)
        for j, b in enumerate(right)
        if a.intersects(b)
    }


class TestSweepRectPairs:
    def test_empty_inputs(self):
        assert list(sweep_rect_pairs([], [])) == []
        assert list(sweep_rect_pairs([Rect(0, 0, 1, 1)], [])) == []
        assert list(sweep_rect_pairs([], [Rect(0, 0, 1, 1)])) == []

    def test_single_overlapping_pair(self):
        a, b = Rect(0, 0, 5, 5), Rect(3, 3, 8, 8)
        assert list(sweep_rect_pairs([a], [b])) == [(a, b)]

    def test_touching_edges_intersect(self):
        a, b = Rect(0, 0, 5, 5), Rect(5, 0, 10, 5)
        assert list(sweep_rect_pairs([a], [b])) == [(a, b)]

    def test_touching_corners_intersect(self):
        a, b = Rect(0, 0, 5, 5), Rect(5, 5, 10, 10)
        assert list(sweep_rect_pairs([a], [b])) == [(a, b)]

    def test_disjoint_in_x(self):
        assert list(sweep_rect_pairs([Rect(0, 0, 1, 9)], [Rect(2, 0, 3, 9)])) == []

    def test_disjoint_in_y_only(self):
        assert list(sweep_rect_pairs([Rect(0, 0, 9, 1)], [Rect(0, 2, 9, 3)])) == []

    def test_nested_rectangles(self):
        outer, inner = Rect(0, 0, 10, 10), Rect(4, 4, 6, 6)
        assert list(sweep_rect_pairs([outer], [inner])) == [(outer, inner)]

    def test_duplicate_rectangles_pair_all(self):
        a = [Rect(0, 0, 2, 2)] * 3
        b = [Rect(1, 1, 3, 3)] * 2
        assert len(list(sweep_rect_pairs(a, b))) == 6

    def test_degenerate_point_rectangles(self):
        a, b = Rect(5, 5, 5, 5), Rect(5, 5, 5, 5)
        assert list(sweep_rect_pairs([a], [b])) == [(a, b)]

    def test_accessors(self):
        left = [("a", Rect(0, 0, 2, 2))]
        right = [("b", Rect(1, 1, 3, 3))]
        got = list(
            sweep_rect_pairs(
                left, right, left_rect=lambda t: t[1], right_rect=lambda t: t[1]
            )
        )
        assert got == [(left[0], right[0])]

    def test_each_pair_reported_once(self):
        rng = random.Random(3)
        left = [
            Rect(x, y, x + rng.randint(0, 8), y + rng.randint(0, 8))
            for x, y in [(rng.randint(0, 20), rng.randint(0, 20)) for _ in range(40)]
        ]
        right = [
            Rect(x, y, x + rng.randint(0, 8), y + rng.randint(0, 8))
            for x, y in [(rng.randint(0, 20), rng.randint(0, 20)) for _ in range(40)]
        ]
        li = {id(r): i for i, r in enumerate(left)}
        ri = {id(r): i for i, r in enumerate(right)}
        got = [(li[id(a)], ri[id(b)]) for a, b in sweep_rect_pairs(left, right)]
        assert len(got) == len(set(got))
        assert set(got) == _brute_pairs(left, right)

    @settings(max_examples=80, deadline=None)
    @given(_rects(), _rects())
    def test_property_matches_brute_force(self, left, right):
        li = {id(r): i for i, r in enumerate(left)}
        ri = {id(r): i for i, r in enumerate(right)}
        got = {(li[id(a)], ri[id(b)]) for a, b in sweep_rect_pairs(left, right)}
        assert got == _brute_pairs(left, right)


class TestSweepPointRectPairs:
    @staticmethod
    def _run(points, rects):
        return {
            (p, (r.xmin, r.ymin, r.xmax, r.ymax))
            for p, r in sweep_point_rect_pairs(
                points, rects, point_xy=lambda p: p, rect_of=lambda r: r
            )
        }

    def test_empty(self):
        assert self._run([], []) == set()
        assert self._run([(1.0, 1.0)], []) == set()
        assert self._run([], [Rect(0, 0, 1, 1)]) == set()

    def test_point_inside(self):
        got = self._run([(1.0, 1.0)], [Rect(0, 0, 2, 2)])
        assert got == {((1.0, 1.0), (0.0, 0.0, 2.0, 2.0))}

    def test_point_on_boundary_counts(self):
        assert len(self._run([(0.0, 1.0)], [Rect(0, 0, 2, 2)])) == 1
        assert len(self._run([(2.0, 2.0)], [Rect(0, 0, 2, 2)])) == 1

    def test_point_outside(self):
        assert self._run([(3.0, 1.0)], [Rect(0, 0, 2, 2)]) == set()

    @settings(max_examples=80, deadline=None)
    @given(
        st.lists(st.tuples(_coord, _coord), max_size=25),
        _rects(),
    )
    def test_property_matches_brute_force(self, coords, rects):
        points = [(float(x), float(y)) for x, y in coords]
        got = {
            (i, j)
            for i, p in enumerate(points)
            for j, r in enumerate(rects)
            if r.contains_point(p[0], p[1])
        }
        pi = {id(p): i for i, p in enumerate(points)}
        rj = {id(r): j for j, r in enumerate(rects)}
        sweep = {
            (pi[id(p)], rj[id(r)])
            for p, r in sweep_point_rect_pairs(
                points, rects, point_xy=lambda p: p, rect_of=lambda r: r
            )
        }
        assert sweep == got
