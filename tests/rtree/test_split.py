"""Unit tests for the R* split algorithm."""

import pytest
from hypothesis import given, strategies as st

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.rtree.node import entries_mbr
from repro.rtree.split import rstar_split

coord = st.floats(0.0, 1000.0)


class TestBasics:
    def test_too_few_entries_rejected(self):
        pts = [Point(i, i) for i in range(3)]
        with pytest.raises(ValueError):
            rstar_split(pts, min_fill=2)

    def test_two_obvious_clusters_separated(self):
        left = [Point(x, y) for x in (0, 1, 2) for y in (0, 1)]
        right = [Point(x + 100, y) for x in (0, 1, 2) for y in (0, 1)]
        group_a, group_b = rstar_split(left + right, min_fill=3)
        xs_a = {p.x for p in group_a}
        xs_b = {p.x for p in group_b}
        assert max(xs_a) < 50 < min(xs_b) or max(xs_b) < 50 < min(xs_a)

    def test_split_axis_prefers_elongated_direction(self):
        # Points along y: the split should cut across y, not x.
        pts = [Point(0, i * 10) for i in range(8)]
        group_a, group_b = rstar_split(pts, min_fill=3)
        ys_a = {p.y for p in group_a}
        ys_b = {p.y for p in group_b}
        assert max(ys_a) < min(ys_b) or max(ys_b) < min(ys_a)


class TestInvariants:
    @given(
        st.lists(st.tuples(coord, coord), min_size=8, max_size=43),
        st.integers(min_value=2, max_value=4),
    )
    def test_partition_preserves_entries_and_fill(self, coords, min_fill):
        pts = [Point(x, y, i) for i, (x, y) in enumerate(coords)]
        group_a, group_b = rstar_split(pts, min_fill=min_fill)
        assert len(group_a) + len(group_b) == len(pts)
        assert len(group_a) >= min_fill
        assert len(group_b) >= min_fill
        assert {p.oid for p in group_a} | {p.oid for p in group_b} == {
            p.oid for p in pts
        }
        assert {p.oid for p in group_a} & {p.oid for p in group_b} == set()

    @given(st.lists(st.tuples(coord, coord), min_size=8, max_size=30))
    def test_group_mbrs_within_original(self, coords):
        pts = [Point(x, y, i) for i, (x, y) in enumerate(coords)]
        whole = entries_mbr(pts)
        group_a, group_b = rstar_split(pts, min_fill=2)
        assert whole.contains_rect(entries_mbr(group_a))
        assert whole.contains_rect(entries_mbr(group_b))

    def test_duplicate_points_split_cleanly(self):
        pts = [Point(5, 5, i) for i in range(10)]
        group_a, group_b = rstar_split(pts, min_fill=4)
        assert len(group_a) >= 4 and len(group_b) >= 4
