"""Unit tests for node layout and (de)serialisation."""

import pytest

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.rtree.node import (
    Branch,
    Node,
    branch_capacity,
    entries_mbr,
    entry_rect,
    leaf_capacity,
)


class TestCapacities:
    def test_paper_page_size(self):
        # 1 KiB pages: 42 points or 25 branches per node.
        assert leaf_capacity(1024) == 42
        assert branch_capacity(1024) == 25

    def test_small_page(self):
        assert leaf_capacity(128) == 5
        assert branch_capacity(128) == 3


class TestSerialisation:
    def test_leaf_roundtrip(self):
        pts = [Point(1.5, 2.5, 10), Point(-3.25, 4.0, -77)]
        node = Node(0, pts)
        restored = Node.from_bytes(node.to_bytes(1024))
        assert restored.is_leaf
        assert restored.level == 0
        assert [(p.x, p.y, p.oid) for p in restored.entries] == [
            (1.5, 2.5, 10),
            (-3.25, 4.0, -77),
        ]

    def test_branch_roundtrip(self):
        branches = [
            Branch(Rect(0, 0, 1, 1), 3),
            Branch(Rect(-5.5, 2, 7, 9.25), 12),
        ]
        node = Node(2, branches)
        restored = Node.from_bytes(node.to_bytes(1024))
        assert not restored.is_leaf
        assert restored.level == 2
        assert [(b.rect, b.child) for b in restored.entries] == [
            (Rect(0, 0, 1, 1), 3),
            (Rect(-5.5, 2, 7, 9.25), 12),
        ]

    def test_empty_node_roundtrip(self):
        restored = Node.from_bytes(Node(0, []).to_bytes(1024))
        assert restored.entries == []

    def test_full_leaf_fits_exactly(self):
        pts = [Point(i, i, i) for i in range(leaf_capacity(1024))]
        data = Node(0, pts).to_bytes(1024)
        assert len(data) <= 1024

    def test_overflow_raises(self):
        pts = [Point(i, i, i) for i in range(leaf_capacity(1024) + 1)]
        with pytest.raises(ValueError, match="overflows"):
            Node(0, pts).to_bytes(1024)

    def test_float_precision_preserved(self):
        p = Point(0.1 + 0.2, 1e-300, 2**62)
        restored = Node.from_bytes(Node(0, [p]).to_bytes(1024))
        assert restored.entries[0].x == 0.1 + 0.2
        assert restored.entries[0].y == 1e-300
        assert restored.entries[0].oid == 2**62


class TestMbr:
    def test_leaf_mbr(self):
        node = Node(0, [Point(0, 5), Point(3, 1)])
        assert node.mbr() == Rect(0, 1, 3, 5)

    def test_branch_mbr(self):
        node = Node(1, [Branch(Rect(0, 0, 1, 1), 1), Branch(Rect(2, -1, 3, 4), 2)])
        assert node.mbr() == Rect(0, -1, 3, 4)

    def test_empty_mbr_raises(self):
        with pytest.raises(ValueError):
            Node(0, []).mbr()


class TestEntryHelpers:
    def test_entry_rect_point_degenerate(self):
        assert entry_rect(Point(2, 3)) == Rect(2, 3, 2, 3)

    def test_entry_rect_branch(self):
        r = Rect(0, 0, 1, 1)
        assert entry_rect(Branch(r, 5)) is r

    def test_entries_mbr_mixed(self):
        mbr = entries_mbr([Point(0, 0), Point(10, 10)])
        assert mbr == Rect(0, 0, 10, 10)
