"""Unit and property tests for the R*-tree: insertion, bulk loading,
structural invariants and range search."""

import random

import pytest
from hypothesis import given, settings

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.rtree.bulk import bulk_load
from repro.rtree.tree import RTree
from repro.storage.buffer import BufferManager

from tests.conftest import lattice_pointset, make_points


def validate_structure(tree: RTree) -> None:
    """Assert every structural R-tree invariant."""
    if tree.root_pid is None:
        assert tree.count == 0
        return
    seen_points = []

    def recurse(pid: int, expected_level: int) -> Rect:
        node = tree.read_node(pid)
        assert node.level == expected_level, "level mismatch"
        assert node.entries, "empty node"
        if node.is_leaf:
            assert len(node.entries) <= tree.leaf_capacity
            seen_points.extend(node.entries)
            return node.mbr()
        assert len(node.entries) <= tree.branch_capacity
        for branch in node.entries:
            child_mbr = recurse(branch.child, expected_level - 1)
            assert branch.rect.contains_rect(child_mbr), "MBR not covering child"
        return node.mbr()

    recurse(tree.root_pid, tree.height - 1)
    assert len(seen_points) == tree.count


class TestInsertion:
    def test_empty_tree(self):
        tree = RTree()
        assert len(tree) == 0
        assert tree.range_search(Rect(0, 0, 1, 1)) == []

    def test_single_insert(self):
        tree = RTree()
        tree.insert(Point(1, 2, 0))
        assert len(tree) == 1
        assert tree.height == 1
        assert [p.oid for p in tree.all_points()] == [0]

    def test_inserts_retrievable(self, rng):
        tree = RTree(page_size=128)  # tiny pages force deep trees
        pts = [Point(rng.uniform(0, 100), rng.uniform(0, 100), i) for i in range(200)]
        for p in pts:
            tree.insert(p)
        assert sorted(p.oid for p in tree.all_points()) == list(range(200))
        validate_structure(tree)
        assert tree.height >= 3

    def test_duplicate_locations(self):
        tree = RTree(page_size=128)
        for i in range(50):
            tree.insert(Point(5, 5, i))
        assert sorted(p.oid for p in tree.all_points()) == list(range(50))
        validate_structure(tree)

    def test_collinear_points(self):
        tree = RTree(page_size=128)
        for i in range(64):
            tree.insert(Point(float(i), 0.0, i))
        validate_structure(tree)
        found = tree.range_search(Rect(10, 0, 20, 0))
        assert sorted(p.oid for p in found) == list(range(10, 21))

    @given(lattice_pointset(min_size=0, max_size=64))
    @settings(max_examples=30, deadline=None)
    def test_structure_valid_after_every_workload(self, coords):
        tree = RTree(page_size=128)
        pts = make_points(coords)
        for p in pts:
            tree.insert(p)
        validate_structure(tree)
        assert sorted(p.oid for p in tree.all_points()) == sorted(
            p.oid for p in pts
        )


class TestBulkLoad:
    def test_bulk_equals_input(self, uniform_points):
        tree = bulk_load(uniform_points)
        assert len(tree) == len(uniform_points)
        assert sorted(p.oid for p in tree.all_points()) == sorted(
            p.oid for p in uniform_points
        )
        validate_structure(tree)

    def test_bulk_empty(self):
        tree = bulk_load([])
        assert len(tree) == 0

    def test_bulk_single_point(self):
        tree = bulk_load([Point(1, 1, 0)])
        assert tree.height == 1
        assert len(tree) == 1

    def test_bulk_into_nonempty_tree_rejected(self):
        tree = RTree()
        tree.insert(Point(0, 0, 0))
        with pytest.raises(ValueError):
            bulk_load([Point(1, 1, 1)], tree=tree)

    def test_bulk_page_utilisation(self):
        # STR packs leaves near capacity: page count close to optimal.
        pts = [Point(i % 100, i // 100, i) for i in range(4200)]
        tree = bulk_load(pts)
        n_leaves = len(tree.leaf_pids())
        optimal = -(-4200 // tree.leaf_capacity)
        assert n_leaves <= optimal * 1.3

    @given(lattice_pointset(min_size=1, max_size=64))
    @settings(max_examples=30, deadline=None)
    def test_bulk_structure_valid(self, coords):
        tree = bulk_load(make_points(coords), page_size=128)
        validate_structure(tree)


class TestRangeSearch:
    @pytest.fixture
    def tree_and_points(self, uniform_points):
        return bulk_load(uniform_points), uniform_points

    def test_matches_linear_scan(self, tree_and_points, rng):
        tree, pts = tree_and_points
        for _ in range(25):
            x1, x2 = sorted(rng.uniform(0, 10000) for _ in range(2))
            y1, y2 = sorted(rng.uniform(0, 10000) for _ in range(2))
            window = Rect(x1, y1, x2, y2)
            expected = sorted(
                p.oid for p in pts if window.contains_point(p.x, p.y)
            )
            assert sorted(p.oid for p in tree.range_search(window)) == expected

    def test_whole_domain_returns_everything(self, tree_and_points):
        tree, pts = tree_and_points
        assert len(tree.range_search(Rect(0, 0, 10000, 10000))) == len(pts)

    def test_empty_window(self, tree_and_points):
        tree, _ = tree_and_points
        assert tree.range_search(Rect(-100, -100, -50, -50)) == []

    def test_boundary_inclusive(self):
        tree = bulk_load([Point(5, 5, 1)])
        assert len(tree.range_search(Rect(5, 5, 5, 5))) == 1


class TestNodeAccounting:
    def test_node_accesses_counted(self, uniform_points):
        tree = bulk_load(uniform_points)
        tree.reset_stats()
        tree.range_search(Rect(0, 0, 10000, 10000))
        assert tree.node_accesses == tree.disk.num_pages

    def test_buffer_integration(self, uniform_points):
        tree = bulk_load(uniform_points)
        buf = BufferManager(tree.disk.num_pages)
        tree.attach_buffer(buf)
        tree.range_search(Rect(0, 0, 10000, 10000))
        tree.range_search(Rect(0, 0, 10000, 10000))
        # Second scan entirely from the buffer.
        assert buf.stats.page_faults == tree.disk.num_pages
        assert buf.stats.buffer_hits == tree.disk.num_pages

    def test_write_invalidates_buffer(self, uniform_points):
        tree = bulk_load(uniform_points[:50])
        buf = BufferManager(64)
        tree.attach_buffer(buf)
        tree.range_search(Rect(0, 0, 10000, 10000))
        tree.insert(Point(1, 1, 9999))
        found = tree.range_search(Rect(1, 1, 1, 1))
        assert any(p.oid == 9999 for p in found)


class TestTraversal:
    def test_leaves_cover_all_points(self, uniform_points):
        tree = bulk_load(uniform_points)
        total = sum(len(leaf.entries) for leaf in tree.leaves())
        assert total == len(uniform_points)

    def test_leaf_pids_match_leaves(self, uniform_points):
        tree = bulk_load(uniform_points)
        pids = tree.leaf_pids()
        assert len(pids) == len(list(tree.leaves()))
        for pid in pids:
            assert tree.read_node(pid).is_leaf

    def test_depth_first_order_is_spatially_local(self, uniform_points):
        # Consecutive leaves in DF order should be closer on average
        # than random pairs of leaves (the Section 3.4 argument).
        tree = bulk_load(uniform_points)
        centers = [leaf.mbr().center() for leaf in tree.leaves()]
        if len(centers) < 4:
            pytest.skip("tree too small for the locality check")

        def d(a, b):
            return ((a[0] - b[0]) ** 2 + (a[1] - b[1]) ** 2) ** 0.5

        consecutive = sum(
            d(centers[i], centers[i + 1]) for i in range(len(centers) - 1)
        ) / (len(centers) - 1)
        rng = random.Random(0)
        pairs = [
            (rng.randrange(len(centers)), rng.randrange(len(centers)))
            for _ in range(200)
        ]
        random_avg = sum(d(centers[i], centers[j]) for i, j in pairs) / len(pairs)
        assert consecutive < random_avg
