"""Tests for Hilbert-packed bulk loading and the invariant checker."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.synthetic import uniform as uniform_points
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.rtree.bulk import bulk_load, hilbert_bulk_load
from repro.rtree.tree import RTree
from repro.rtree.validate import InvariantViolation, check_invariants


def _oids(points):
    return sorted(p.oid for p in points)


class TestHilbertBulkLoad:
    def test_empty_input_yields_empty_tree(self):
        tree = hilbert_bulk_load([])
        assert len(tree) == 0
        assert tree.root_pid is None

    def test_all_points_present(self):
        points = uniform_points(500, seed=1)
        tree = hilbert_bulk_load(points)
        assert len(tree) == 500
        assert _oids(tree.all_points()) == _oids(points)

    def test_invariants_hold(self):
        points = uniform_points(800, seed=2)
        tree = hilbert_bulk_load(points)
        summary = check_invariants(tree)
        assert summary.point_count == 800
        assert summary.height == tree.height

    def test_single_point(self):
        tree = hilbert_bulk_load([Point(1, 2, 7)])
        assert tree.height == 1
        assert tree.all_points() == [Point(1, 2, 7)]

    def test_rejects_nonempty_tree(self):
        tree = RTree()
        tree.insert(Point(0, 0, 0))
        with pytest.raises(ValueError):
            hilbert_bulk_load(uniform_points(10, seed=0), tree=tree)

    def test_range_search_matches_str_build(self):
        points = uniform_points(400, seed=3)
        hil = hilbert_bulk_load(points)
        strt = bulk_load(points)
        for rect in (
            Rect(0, 0, 2500, 2500),
            Rect(4000, 4000, 6000, 6000),
            Rect(0, 0, 10000, 10000),
        ):
            assert _oids(hil.range_search(rect)) == _oids(strt.range_search(rect))

    def test_leaves_are_full_except_last(self):
        points = uniform_points(300, seed=4)
        tree = hilbert_bulk_load(points)
        fills = [len(leaf.entries) for leaf in tree.leaves()]
        assert sum(fills) == 300
        assert fills.count(tree.leaf_capacity) >= len(fills) - 1

    def test_duplicate_locations_supported(self):
        points = [Point(5, 5, i) for i in range(100)]
        tree = hilbert_bulk_load(points)
        assert len(tree.range_search(Rect(5, 5, 5, 5))) == 100

    def test_custom_page_size(self):
        tree = hilbert_bulk_load(uniform_points(200, seed=5), page_size=512)
        assert tree.disk.page_size == 512
        check_invariants(tree)

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(min_value=1, max_value=300), seed=st.integers(0, 10))
    def test_property_valid_tree_any_size(self, n, seed):
        points = uniform_points(n, seed=seed)
        tree = hilbert_bulk_load(points)
        summary = check_invariants(tree)
        assert summary.point_count == n
        assert _oids(tree.all_points()) == _oids(points)


class TestCheckInvariants:
    def test_empty_tree_passes(self):
        summary = check_invariants(RTree())
        assert summary.node_count == 0

    def test_inserted_tree_passes_with_min_fill(self):
        tree = RTree()
        for p in uniform_points(300, seed=6):
            tree.insert(p)
        check_invariants(tree, check_min_fill=True)

    def test_detects_wrong_count(self):
        tree = bulk_load(uniform_points(50, seed=7))
        tree.count = 49
        with pytest.raises(InvariantViolation):
            check_invariants(tree)

    def test_detects_stale_branch_mbr(self):
        tree = bulk_load(uniform_points(300, seed=8))
        root = tree.read_node(tree.root_pid)
        assert not root.is_leaf
        bad = root.entries[0]
        bad.rect = Rect(
            bad.rect.xmin, bad.rect.ymin, bad.rect.xmax + 1, bad.rect.ymax
        )
        tree.write_node(tree.root_pid, root)
        with pytest.raises(InvariantViolation):
            check_invariants(tree)

    def test_summary_average_fill(self):
        tree = bulk_load(uniform_points(400, seed=9))
        summary = check_invariants(tree)
        assert 0 < summary.average_fill <= tree.leaf_capacity
