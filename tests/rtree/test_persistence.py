"""The index genuinely round-trips through disk pages.

These tests run the R-tree over a *file-backed* disk manager, so every
node access deserialises bytes that were physically written to a file —
validating that nothing survives only as Python objects.
"""

from repro.core.bij import bij
from repro.core.brute import brute_force_rcj
from repro.datasets.synthetic import uniform
from repro.geometry.rect import Rect
from repro.rtree.bulk import bulk_load
from repro.rtree.tree import RTree
from repro.storage.disk import DiskManager


class TestFileBackedTree:
    def test_bulk_load_and_query(self, tmp_path):
        points = uniform(500, seed=1)
        with DiskManager(path=str(tmp_path / "tree.pages")) as disk:
            tree = bulk_load(points, tree=RTree(disk=disk))
            window = Rect(2000, 2000, 7000, 7000)
            expected = sorted(
                p.oid for p in points if window.contains_point(p.x, p.y)
            )
            assert sorted(p.oid for p in tree.range_search(window)) == expected

    def test_insert_built_file_tree(self, tmp_path):
        points = uniform(200, seed=2)
        with DiskManager(path=str(tmp_path / "tree.pages")) as disk:
            tree = RTree(disk=disk)
            for p in points:
                tree.insert(p)
            assert sorted(p.oid for p in tree.all_points()) == sorted(
                p.oid for p in points
            )

    def test_join_over_file_backed_trees(self, tmp_path):
        points_p = uniform(200, seed=3)
        points_q = uniform(200, seed=4, start_oid=200)
        with DiskManager(path=str(tmp_path / "p.pages")) as disk_p, DiskManager(
            path=str(tmp_path / "q.pages")
        ) as disk_q:
            tree_p = bulk_load(points_p, tree=RTree(disk=disk_p, name="TP"))
            tree_q = bulk_load(points_q, tree=RTree(disk=disk_q, name="TQ"))
            got = bij(tree_q, tree_p, symmetric=True).pair_keys()
            assert got == {
                r.key() for r in brute_force_rcj(points_p, points_q)
            }

    def test_physical_read_counters(self, tmp_path):
        points = uniform(300, seed=5)
        with DiskManager(path=str(tmp_path / "tree.pages")) as disk:
            tree = bulk_load(points, tree=RTree(disk=disk))
            before = disk.physical_reads
            tree.range_search(Rect(0, 0, 10000, 10000))
            assert disk.physical_reads - before == disk.num_pages
