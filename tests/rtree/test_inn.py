"""Unit tests for the incremental nearest-neighbour iterator."""

import math

from hypothesis import given, settings, strategies as st

from repro.geometry.point import Point
from repro.rtree.bulk import bulk_load
from repro.rtree.inn import incremental_nearest, nearest_neighbors
from repro.rtree.tree import RTree

from tests.conftest import lattice_pointset, make_points


class TestIncrementalNearest:
    def test_empty_tree_yields_nothing(self):
        assert list(incremental_nearest(RTree(), 0, 0)) == []

    def test_ascending_distances(self, uniform_points):
        tree = bulk_load(uniform_points)
        dists = [d for d, _ in incremental_nearest(tree, 5000, 5000)]
        assert dists == sorted(dists)
        assert len(dists) == len(uniform_points)

    def test_matches_brute_force_order(self, uniform_points):
        tree = bulk_load(uniform_points)
        got = [p.oid for _, p in incremental_nearest(tree, 1234, 5678)]
        expected = [
            p.oid
            for p in sorted(
                uniform_points,
                key=lambda p: (p.x - 1234) ** 2 + (p.y - 5678) ** 2,
            )
        ]
        assert got == expected

    def test_distance_values_correct(self):
        tree = bulk_load([Point(3, 4, 0), Point(6, 8, 1)])
        results = list(incremental_nearest(tree, 0, 0))
        assert math.isclose(results[0][0], 5.0)
        assert math.isclose(results[1][0], 10.0)

    def test_lazy_consumption_reads_few_nodes(self, uniform_points):
        tree = bulk_load(uniform_points)
        tree.reset_stats()
        gen = incremental_nearest(tree, 5000, 5000)
        next(gen)
        # Certifying 1 NN must not scan the whole tree.
        assert tree.node_accesses < tree.disk.num_pages / 2

    @given(lattice_pointset(min_size=1, max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_enumerates_everything_once(self, coords):
        pts = make_points(coords)
        tree = bulk_load(pts, page_size=128)
        got = sorted(p.oid for _, p in incremental_nearest(tree, 10, 10))
        assert got == list(range(len(pts)))


class TestNearestNeighbors:
    def test_k_zero(self, uniform_points):
        tree = bulk_load(uniform_points)
        assert nearest_neighbors(tree, 0, 0, 0) == []

    def test_k_larger_than_tree(self):
        tree = bulk_load([Point(1, 1, 0)])
        assert len(nearest_neighbors(tree, 0, 0, 10)) == 1

    def test_first_is_nearest(self, uniform_points):
        tree = bulk_load(uniform_points)
        nn = nearest_neighbors(tree, 2500, 2500, 1)[0]
        best = min(
            uniform_points, key=lambda p: (p.x - 2500) ** 2 + (p.y - 2500) ** 2
        )
        assert nn.oid == best.oid

    def test_paper_example_semantics(self):
        # Figure 2 of the paper: the 2-NN query returns the two closest
        # points; replicate the shape with a small fixed dataset.
        pts = [
            Point(2, 13, 1), Point(4, 10, 2), Point(6, 12, 3),
            Point(12, 13, 4), Point(13, 11, 5), Point(14, 14, 6),
            Point(9, 6, 7), Point(5, 4, 8),
        ]
        tree = bulk_load(pts)
        got = [p.oid for p in nearest_neighbors(tree, 9, 7, 2)]
        assert got[0] == 7
        assert len(got) == 2
