"""Tests for R-tree deletion and update (condense-tree)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.synthetic import uniform as uniform_points
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.rtree.bulk import bulk_load
from repro.rtree.tree import RTree
from repro.rtree.validate import check_invariants


def _oids(points):
    return sorted(p.oid for p in points)


class TestDeleteBasics:
    def test_delete_from_empty_tree(self):
        assert RTree().delete(Point(1, 1, 0)) is False

    def test_delete_only_point_empties_tree(self):
        tree = RTree()
        p = Point(3, 4, 0)
        tree.insert(p)
        assert tree.delete(p) is True
        assert len(tree) == 0
        assert tree.root_pid is None
        assert tree.height == 0
        check_invariants(tree)

    def test_delete_missing_point_returns_false(self):
        tree = bulk_load(uniform_points(100, seed=0))
        assert tree.delete(Point(-1, -1, 9999)) is False
        assert len(tree) == 100

    def test_delete_requires_matching_oid(self):
        tree = RTree()
        tree.insert(Point(5, 5, 1))
        assert tree.delete(Point(5, 5, 2)) is False
        assert tree.delete(Point(5, 5, 1)) is True

    def test_delete_requires_matching_location(self):
        tree = RTree()
        tree.insert(Point(5, 5, 1))
        assert tree.delete(Point(5, 6, 1)) is False

    def test_deleted_point_not_in_range_search(self):
        points = uniform_points(200, seed=1)
        tree = bulk_load(points)
        victim = points[17]
        assert tree.delete(victim)
        found = tree.range_search(Rect(victim.x, victim.y, victim.x, victim.y))
        assert victim.oid not in {p.oid for p in found}

    def test_delete_one_of_coincident_points(self):
        tree = RTree()
        tree.insert(Point(5, 5, 1))
        tree.insert(Point(5, 5, 2))
        assert tree.delete(Point(5, 5, 1))
        remaining = tree.all_points()
        assert _oids(remaining) == [2]


class TestDeleteBulk:
    def test_delete_half_keeps_other_half(self):
        points = uniform_points(400, seed=2)
        tree = bulk_load(points)
        for p in points[:200]:
            assert tree.delete(p), p
        assert len(tree) == 200
        assert _oids(tree.all_points()) == _oids(points[200:])
        check_invariants(tree)

    def test_delete_everything(self):
        points = uniform_points(300, seed=3)
        tree = bulk_load(points)
        order = list(points)
        random.Random(5).shuffle(order)
        for p in order:
            assert tree.delete(p)
        assert len(tree) == 0
        assert tree.root_pid is None
        check_invariants(tree)

    def test_delete_from_inserted_tree(self):
        points = uniform_points(350, seed=4)
        tree = RTree()
        for p in points:
            tree.insert(p)
        for p in points[::2]:
            assert tree.delete(p)
        assert _oids(tree.all_points()) == _oids(points[1::2])
        check_invariants(tree)

    def test_height_shrinks_after_mass_delete(self):
        points = uniform_points(2000, seed=5)
        tree = bulk_load(points)
        tall = tree.height
        for p in points[:1990]:
            tree.delete(p)
        assert tree.height < tall
        assert _oids(tree.all_points()) == _oids(points[1990:])
        check_invariants(tree)

    def test_range_search_correct_after_interleaved_ops(self):
        rng = random.Random(11)
        tree = RTree()
        alive: dict[int, Point] = {}
        next_oid = 0
        for _ in range(600):
            if alive and rng.random() < 0.4:
                oid = rng.choice(list(alive))
                assert tree.delete(alive.pop(oid))
            else:
                p = Point(rng.uniform(0, 10000), rng.uniform(0, 10000), next_oid)
                alive[p.oid] = p
                tree.insert(p)
                next_oid += 1
        assert len(tree) == len(alive)
        window = Rect(2000, 2000, 8000, 8000)
        expected = sorted(
            p.oid for p in alive.values() if window.contains_point(p.x, p.y)
        )
        assert _oids(tree.range_search(window)) == expected
        check_invariants(tree)


class TestUpdate:
    def test_update_moves_point(self):
        tree = bulk_load(uniform_points(100, seed=6))
        old = tree.all_points()[0]
        new = Point(9999.0, 9999.0, old.oid)
        assert tree.update(old, new)
        assert len(tree) == 100
        found = tree.range_search(Rect(9999, 9999, 9999, 9999))
        assert old.oid in {p.oid for p in found}

    def test_update_missing_point_is_noop(self):
        tree = bulk_load(uniform_points(50, seed=7))
        assert tree.update(Point(-5, -5, 777), Point(1, 1, 777)) is False
        assert len(tree) == 50


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=150),
    delete_frac=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(0, 100),
)
def test_property_delete_random_subset(n, delete_frac, seed):
    """Deleting any subset leaves exactly the complement, with all
    structural invariants intact."""
    points = uniform_points(n, seed=seed)
    tree = bulk_load(points)
    rng = random.Random(seed)
    victims = [p for p in points if rng.random() < delete_frac]
    for v in victims:
        assert tree.delete(v)
    survivors = [p for p in points if p not in victims]
    assert _oids(tree.all_points()) == _oids(survivors)
    summary = check_invariants(tree)
    assert summary.point_count == len(survivors)
