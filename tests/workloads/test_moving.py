"""The moving-objects workload: determinism, coalescing, batch validity."""

from __future__ import annotations

import pytest

from repro.core.dynamic import validate_batch
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.workloads.moving import (
    BatchAccumulator,
    FleetSimulator,
    UpdateBatch,
)


class TestFleetSimulator:
    def test_equal_seeds_replay_identical_streams(self):
        sims = [FleetSimulator(fleet=30, depots=20, seed=7) for _ in range(2)]
        streams = [list(sim.events(5)) for sim in sims]
        assert streams[0] == streams[1]
        assert len(streams[0]) > 0

    def test_different_seeds_diverge(self):
        a = list(FleetSimulator(fleet=30, depots=20, seed=7).events(5))
        b = list(FleetSimulator(fleet=30, depots=20, seed=8).events(5))
        assert a != b

    def test_populations_stay_fixed_and_in_bounds(self):
        bounds = Rect(0, 0, 500, 500)
        sim = FleetSimulator(fleet=25, depots=15, seed=3, bounds=bounds)
        for _ in sim.events(30):
            pass
        fleet, depots = sim.current_points()
        assert len(fleet) == 25
        assert len(depots) == 15
        for pt in fleet + depots:
            assert bounds.xmin <= pt.x <= bounds.xmax
            assert bounds.ymin <= pt.y <= bounds.ymax

    def test_events_replay_onto_current_population(self):
        """Applying the raw events to the initial population lands on
        exactly ``current_points`` — the stream is self-consistent."""
        sim = FleetSimulator(fleet=20, depots=12, seed=5)
        init_p, init_q = sim.initial_points()
        pop = {"P": {p.oid: p for p in init_p}, "Q": {q.oid: q for q in init_q}}
        for kind, point, side, _t in sim.events(15):
            if kind == "delete":
                del pop[side][point.oid]
            else:
                assert point.oid not in pop[side]
                pop[side][point.oid] = point
        cur_p, cur_q = sim.current_points()
        assert {p.oid: p for p in cur_p} == pop["P"]
        assert {q.oid: q for q in cur_q} == pop["Q"]

    def test_timestamps_are_tick_multiples(self):
        sim = FleetSimulator(fleet=10, depots=5, seed=1, tick_seconds=2.5)
        stamps = {t for _k, _p, _s, t in sim.events(4)}
        assert stamps <= {2.5, 5.0, 7.5, 10.0}

    def test_moves_keep_oid(self):
        sim = FleetSimulator(fleet=15, depots=5, seed=9)
        pending: dict[tuple[str, int], bool] = {}
        for kind, point, side, _t in sim.events(10):
            key = (side, point.oid)
            if kind == "delete":
                pending[key] = True
            elif pending.pop(key, False):
                pass  # insert completing a move reuses the deleted oid
        # nothing asserts here beyond the stream being well-formed: a
        # delete of an oid never arrives twice without an insert, which
        # BatchAccumulator (below) would reject loudly.
        assert True


class TestBatchAccumulator:
    def test_rejects_nonpositive_batch_size(self):
        with pytest.raises(ValueError):
            BatchAccumulator(0)

    def test_two_moves_coalesce_to_one(self):
        acc = BatchAccumulator(batch_size=100)
        a0 = Point(0, 0, 7)
        a1 = Point(1, 1, 7)
        a2 = Point(2, 2, 7)
        acc.add("delete", a0, "P", 1.0)
        acc.add("insert", a1, "P", 1.0)
        acc.add("delete", a1, "P", 2.0)
        acc.add("insert", a2, "P", 2.0)
        batch = acc.close()
        assert batch.events == 4
        assert len(batch) == 2
        assert batch.deletes == [(a0, "P")]
        assert batch.inserts == [(a2, "P")]

    def test_insert_then_delete_cancels(self):
        acc = BatchAccumulator(batch_size=100)
        z = Point(5, 5, 9)
        acc.add("insert", z, "Q", 1.0)
        acc.add("delete", z, "Q", 2.0)
        batch = acc.close()
        assert batch.events == 2
        assert len(batch) == 0

    def test_raw_event_count_closes_batch(self):
        acc = BatchAccumulator(batch_size=2)
        assert acc.add("delete", Point(0, 0, 1), "P", 1.0) is None
        batch = acc.add("insert", Point(1, 1, 1), "P", 1.0)
        assert isinstance(batch, UpdateBatch)
        assert batch.events == 2
        assert acc.close() is None  # nothing left open

    def test_double_delete_raises(self):
        acc = BatchAccumulator(batch_size=100)
        acc.add("delete", Point(0, 0, 1), "P", 1.0)
        with pytest.raises(ValueError, match="double delete"):
            acc.add("delete", Point(0, 0, 1), "P", 2.0)

    def test_sequence_numbers_and_sorting(self):
        acc = BatchAccumulator(batch_size=2)
        b0 = acc.add("insert", Point(0, 0, 5), "Q", 1.0) or acc.add(
            "insert", Point(0, 0, 3), "P", 1.0
        )
        assert b0.seq == 0
        # nets are (side, oid)-sorted for deterministic replay
        assert [(s, p.oid) for p, s in b0.inserts] == [("P", 3), ("Q", 5)]
        b1 = acc.add("insert", Point(0, 0, 6), "Q", 2.0) or acc.add(
            "insert", Point(0, 0, 7), "Q", 2.0
        )
        assert b1.seq == 1


class TestBatchStream:
    def test_batches_pass_validation_against_population(self):
        """Every emitted batch must be a valid ``apply_batch`` argument
        against the population at its boundary."""
        sim = FleetSimulator(fleet=25, depots=15, seed=13)
        init_p, init_q = sim.initial_points()
        pop = {"P": {p.oid for p in init_p}, "Q": {q.oid for q in init_q}}
        n_batches = 0
        for batch in sim.batch_stream(16, ticks=12):
            validate_batch(
                batch.inserts,
                batch.deletes,
                lambda side, oid: oid in pop[side],
            )
            for pt, side in batch.deletes:
                pop[side].discard(pt.oid)
            for pt, side in batch.inserts:
                pop[side].add(pt.oid)
            n_batches += 1
        assert n_batches > 1
        cur_p, cur_q = sim.current_points()
        assert pop["P"] == {p.oid for p in cur_p}
        assert pop["Q"] == {q.oid for q in cur_q}

    def test_batch_stream_deterministic(self):
        def keys(seed):
            out = []
            for b in FleetSimulator(20, 10, seed=seed).batch_stream(8, ticks=6):
                out.append(
                    (
                        b.seq,
                        b.events,
                        tuple((s, p.oid, p.x, p.y) for p, s in b.inserts),
                        tuple((s, p.oid) for p, s in b.deletes),
                    )
                )
            return out

        assert keys(21) == keys(21)
