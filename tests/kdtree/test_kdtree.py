"""Tests for the disk-resident k-d tree."""

import pytest
from hypothesis import given, settings

from repro.core.bij import bij
from repro.core.brute import brute_force_rcj
from repro.core.inj import inj
from repro.datasets.synthetic import uniform
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.kdtree import KDTree, build_kdtree
from repro.rtree.bulk import bulk_load
from repro.rtree.inn import incremental_nearest
from repro.storage.buffer import BufferManager

from tests.conftest import lattice_pointset, make_points


def _oids(points):
    return sorted(p.oid for p in points)


class TestConstruction:
    def test_empty_build(self):
        tree = build_kdtree([])
        assert len(tree) == 0
        assert tree.root_pid is None
        assert tree.leaf_pids() == []

    def test_single_point(self):
        tree = build_kdtree([Point(1, 2, 5)])
        assert tree.height == 1
        assert tree.all_points() == [Point(1, 2, 5)]

    def test_all_points_present(self):
        points = uniform(700, seed=0)
        tree = build_kdtree(points)
        assert len(tree) == 700
        assert _oids(tree.all_points()) == _oids(points)

    def test_build_rejects_nonempty(self):
        tree = build_kdtree(uniform(10, seed=1))
        with pytest.raises(ValueError):
            tree.build(uniform(10, seed=2))

    def test_tiny_page_rejected(self):
        with pytest.raises(ValueError):
            KDTree(page_size=32)

    def test_balanced_height(self):
        """Median splits keep the tree near log2(n / leaf capacity)."""
        import math

        points = uniform(4000, seed=3)
        tree = build_kdtree(points)
        min_height = math.ceil(math.log2(4000 / tree.leaf_capacity)) + 1
        assert tree.height <= min_height + 2

    def test_coincident_points_build(self):
        points = [Point(7, 7, i) for i in range(200)]
        tree = build_kdtree(points)
        assert _oids(tree.all_points()) == list(range(200))

    def test_branch_mbrs_are_tight(self):
        """Every branch rect equals the tight MBR of its subtree — the
        property the verification face-kill relies on."""
        tree = build_kdtree(uniform(600, seed=4))
        stack = [tree.root_pid]
        while stack:
            node = tree.read_node(stack.pop())
            if node.is_leaf:
                continue
            for b in node.entries:
                pts = []
                inner = [b.child]
                while inner:
                    sub = tree.read_node(inner.pop())
                    if sub.is_leaf:
                        pts.extend(sub.entries)
                    else:
                        inner.extend(c.child for c in sub.entries)
                tight = Rect.from_points(pts)
                assert (b.rect.xmin, b.rect.ymin, b.rect.xmax, b.rect.ymax) == (
                    tight.xmin,
                    tight.ymin,
                    tight.xmax,
                    tight.ymax,
                )
                stack.append(b.child)


class TestQueries:
    def test_range_search_matches_brute(self):
        points = uniform(500, seed=5)
        tree = build_kdtree(points)
        for rect in (
            Rect(0, 0, 3000, 3000),
            Rect(2500, 2500, 7500, 7500),
            Rect(0, 0, 10000, 10000),
            Rect(9990, 9990, 10000, 10000),
        ):
            expected = sorted(
                p.oid for p in points if rect.contains_point(p.x, p.y)
            )
            assert _oids(tree.range_search(rect)) == expected

    def test_range_search_empty_tree(self):
        assert build_kdtree([]).range_search(Rect(0, 0, 1, 1)) == []

    def test_incremental_nearest_order(self):
        points = uniform(400, seed=6)
        tree = build_kdtree(points)
        probe = Point(5000, 5000)
        ranked = list(incremental_nearest(tree, probe.x, probe.y))
        got = [p.oid for _d, p in ranked]
        expected = [p.oid for p in points]
        # Same multiset, in non-decreasing distance order.
        assert sorted(got) == sorted(expected)
        dists = [d for d, _p in ranked]
        assert dists == sorted(dists)

    def test_mbr_of_empty_tree_raises(self):
        with pytest.raises(ValueError):
            build_kdtree([]).mbr()

    def test_node_access_accounting(self):
        tree = build_kdtree(uniform(300, seed=7))
        tree.reset_stats()
        tree.range_search(Rect(0, 0, 10000, 10000))
        assert tree.node_accesses > 0

    def test_buffered_reads_hit_buffer(self):
        tree = build_kdtree(uniform(300, seed=8))
        buffer = BufferManager(capacity=64)
        tree.attach_buffer(buffer)
        tree.range_search(Rect(0, 0, 10000, 10000))
        tree.range_search(Rect(0, 0, 10000, 10000))
        assert buffer.stats.buffer_hits > 0


class TestJoinAlgorithmsOverKDTrees:
    """The generality claim, third index: identical INJ/BIJ/OBJ code
    over k-d trees computes the exact RCJ."""

    def test_inj_bij_obj_match_oracle(self):
        points_p = uniform(400, seed=60)
        points_q = uniform(350, seed=61, start_oid=400)
        tree_p = build_kdtree(points_p, name="KP")
        tree_q = build_kdtree(points_q, name="KQ")
        expected = {r.key() for r in brute_force_rcj(points_p, points_q)}
        assert inj(tree_q, tree_p).pair_keys() == expected
        assert bij(tree_q, tree_p).pair_keys() == expected
        assert bij(tree_q, tree_p, symmetric=True).pair_keys() == expected

    def test_mixed_kdtree_rtree_join(self):
        points_p = uniform(300, seed=62)
        points_q = uniform(250, seed=63, start_oid=300)
        tree_p = bulk_load(points_p)
        tree_q = build_kdtree(points_q)
        expected = {r.key() for r in brute_force_rcj(points_p, points_q)}
        assert bij(tree_q, tree_p, symmetric=True).pair_keys() == expected

    @given(
        lattice_pointset(min_size=1, max_size=20),
        lattice_pointset(min_size=1, max_size=20),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_equivalence_on_lattice(self, coords_p, coords_q):
        points_p = make_points(coords_p)
        points_q = make_points(coords_q, start_oid=1000)
        tree_p = build_kdtree(points_p, page_size=192)
        tree_q = build_kdtree(points_q, page_size=192)
        expected = {r.key() for r in brute_force_rcj(points_p, points_q)}
        assert bij(tree_q, tree_p, symmetric=True).pair_keys() == expected
