"""Unit tests for the synthetic road-network generator."""

import networkx as nx
import pytest

from repro.network.roadnet import attach_points, grid_road_network


class TestGridRoadNetwork:
    def test_size(self):
        g = grid_road_network(4, 5, seed=1)
        assert g.number_of_nodes() == 20
        # Grid edges: rows*(cols-1) + (rows-1)*cols.
        assert g.number_of_edges() == 4 * 4 + 3 * 5

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            grid_road_network(1, 5)

    def test_connected(self):
        assert nx.is_connected(grid_road_network(6, 6, seed=2))

    def test_positive_edge_lengths(self):
        g = grid_road_network(5, 5, seed=3)
        for _, _, data in g.edges(data=True):
            assert data["length"] > 0

    def test_node_coordinates_attached(self):
        g = grid_road_network(3, 3, seed=4)
        for _, data in g.nodes(data=True):
            assert "x" in data and "y" in data

    def test_deterministic(self):
        a = grid_road_network(4, 4, seed=5)
        b = grid_road_network(4, 4, seed=5)
        assert [a.nodes[n]["x"] for n in a] == [b.nodes[n]["x"] for n in b]


class TestAttachPoints:
    def test_distinct_vertices(self):
        g = grid_road_network(5, 5, seed=1)
        located = attach_points(g, 10, seed=2)
        vertices = [v for _, v in located]
        assert len(set(vertices)) == 10

    def test_too_many_points_rejected(self):
        g = grid_road_network(2, 2, seed=1)
        with pytest.raises(ValueError):
            attach_points(g, 5)

    def test_oids_sequential(self):
        g = grid_road_network(4, 4, seed=1)
        located = attach_points(g, 5, seed=3, start_oid=100)
        assert [p.oid for p, _ in located] == list(range(100, 105))

    def test_point_coordinates_match_vertex(self):
        g = grid_road_network(4, 4, seed=1)
        for p, v in attach_points(g, 6, seed=4):
            assert p.x == g.nodes[v]["x"]
            assert p.y == g.nodes[v]["y"]
