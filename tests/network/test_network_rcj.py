"""Unit tests for the network-distance RCJ."""

import networkx as nx
import pytest

from repro.network.rcj import network_rcj
from repro.network.roadnet import attach_points, grid_road_network


def brute_network_rcj(graph, located_p, located_q, weight="length"):
    """Independent quadratic re-implementation for cross-checking."""
    dist = {
        v: nx.single_source_dijkstra_path_length(graph, v, weight=weight)
        for v in {v for _, v in located_p} | {v for _, v in located_q}
    }
    occupants = list(located_p) + list(located_q)
    nodes = list(graph.nodes)
    out = set()
    for p, vp in located_p:
        for q, vq in located_q:
            m = min(nodes, key=lambda v: max(dist[vp][v], dist[vq][v]))
            r = max(dist[vp][m], dist[vq][m])
            if not any(
                dist[vo][m] < r * (1 - 1e-9)
                for o, vo in occupants
                if o is not p and o is not q
            ):
                out.add((p.oid, q.oid))
    return out


@pytest.fixture
def small_network():
    g = grid_road_network(6, 6, seed=11)
    located_p = attach_points(g, 6, seed=12)
    located_q = attach_points(g, 6, seed=13, start_oid=100)
    return g, located_p, located_q


class TestNetworkRCJ:
    def test_empty_inputs(self, small_network):
        g, lp, lq = small_network
        assert network_rcj(g, [], lq) == []
        assert network_rcj(g, lp, []) == []

    def test_disconnected_rejected(self, small_network):
        _, lp, lq = small_network
        g2 = nx.Graph()
        g2.add_edge((0, 0), (0, 1), length=1.0)
        g2.add_node((9, 9))
        with pytest.raises(ValueError, match="connected"):
            network_rcj(g2, lp[:1], lq[:1])

    def test_matches_independent_implementation(self, small_network):
        g, lp, lq = small_network
        got = {r.key() for r in network_rcj(g, lp, lq)}
        assert got == brute_network_rcj(g, lp, lq)

    def test_single_pair_always_joins(self):
        g = grid_road_network(3, 3, seed=1)
        lp = attach_points(g, 1, seed=2)
        lq = attach_points(g, 1, seed=3, start_oid=10)
        result = network_rcj(g, lp, lq)
        assert len(result) == 1

    def test_middleman_minimises_max_distance(self, small_network):
        g, lp, lq = small_network
        dist = {
            v: nx.single_source_dijkstra_path_length(g, v, weight="length")
            for v in {v for _, v in lp} | {v for _, v in lq}
        }
        vertex_of = {p.oid: v for p, v in lp}
        vertex_of.update({q.oid: v for q, v in lq})
        for pair in network_rcj(g, lp, lq):
            vp, vq = vertex_of[pair.p.oid], vertex_of[pair.q.oid]
            best = min(max(dist[vp][v], dist[vq][v]) for v in g.nodes)
            assert pair.radius == pytest.approx(best)

    def test_fairness_radius_bounded_by_path_length(self, small_network):
        g, lp, lq = small_network
        dist = {
            v: nx.single_source_dijkstra_path_length(g, v, weight="length")
            for v in {v for _, v in lp} | {v for _, v in lq}
        }
        vertex_of = {p.oid: v for p, v in lp}
        vertex_of.update({q.oid: v for q, v in lq})
        for pair in network_rcj(g, lp, lq):
            vp, vq = vertex_of[pair.p.oid], vertex_of[pair.q.oid]
            d_pq = dist[vp][vq]
            # max-dist at the best vertex is at least half the distance
            # and at most the full distance (meet at an endpoint).
            assert d_pq / 2 - 1e-9 <= pair.radius <= d_pq + 1e-9
