"""Unit tests for the benchmark workload runner."""

import pytest

from repro.bench.runner import (
    ALGORITHMS,
    ENGINE_ROWS,
    BenchScale,
    build_workload,
    run_algorithm,
    run_all_algorithms,
    smoke,
)
from repro.datasets.synthetic import uniform


@pytest.fixture
def workload():
    return build_workload(
        uniform(200, seed=1), uniform(250, seed=2, start_oid=200)
    )


class TestBuildWorkload:
    def test_trees_share_buffer(self, workload):
        assert workload.tree_q.buffer is workload.buffer
        assert workload.tree_p.buffer is workload.buffer

    def test_buffer_fraction(self):
        w = build_workload(
            uniform(2000, seed=1),
            uniform(2000, seed=2, start_oid=5000),
            buffer_fraction=0.5,
        )
        total = w.tree_q.disk.num_pages + w.tree_p.disk.num_pages
        assert w.buffer.capacity == int(total * 0.5)

    def test_reset_clears_counters(self, workload):
        run_algorithm(workload, "OBJ")
        workload.reset()
        assert workload.buffer.stats.page_faults == 0
        assert workload.tree_q.node_accesses == 0

    def test_set_buffer_fraction(self, workload):
        workload.set_buffer_fraction(1.0)
        total = workload.tree_q.disk.num_pages + workload.tree_p.disk.num_pages
        assert workload.buffer.capacity == total


class TestRunAlgorithm:
    def test_unknown_algorithm(self, workload):
        with pytest.raises(ValueError, match="unknown algorithm"):
            run_algorithm(workload, "FAST")

    def test_all_algorithms_registered(self):
        assert set(ALGORITHMS) == {"INJ", "BIJ", "OBJ"}

    def test_results_agree(self, workload):
        reports = run_all_algorithms(workload)
        keys = {name: r.pair_keys() for name, r in reports.items()}
        assert keys["INJ"] == keys["BIJ"] == keys["OBJ"]

    def test_fresh_counters_per_run(self, workload):
        first = run_algorithm(workload, "OBJ")
        second = run_algorithm(workload, "OBJ")
        # Counter deltas are per-run, not cumulative.
        assert second.node_accesses == pytest.approx(first.node_accesses, rel=0.01)

    def test_engine_rows_registered(self):
        assert set(ENGINE_ROWS) == {"ARRAY", "PARALLEL", "AUTO"}

    def test_parallel_row_agrees_with_obj(self, workload):
        obj = run_algorithm(workload, "OBJ")
        par = run_algorithm(workload, "PARALLEL", workers=2, min_shard=32)
        assert par.pair_keys() == obj.pair_keys()
        assert par.algorithm == "ARRAY-PARALLEL"
        assert par.node_accesses == 0  # memory backend: no R-tree touched

    def test_auto_row_agrees_and_carries_plan(self, workload):
        obj = run_algorithm(workload, "OBJ")
        auto = run_algorithm(workload, "AUTO", workers=2)
        assert auto.pair_keys() == obj.pair_keys()
        assert auto.plan is not None


class TestSmoke:
    def test_smoke_passes_at_small_n(self, capsys):
        assert smoke(n=300, workers=2) == 0
        out = capsys.readouterr().out
        assert "passed" in out
        for name in ("OBJ", "ARRAY", "PARALLEL", "AUTO"):
            assert name in out


class TestBenchScale:
    def test_synthetic_n_scaling(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_N", raising=False)
        monkeypatch.setenv("REPRO_SCALE", "100")
        scale = BenchScale()
        assert scale.synthetic_n(200_000) == 2000

    def test_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_N", "123")
        scale = BenchScale()
        assert scale.synthetic_n(200_000) == 123

    def test_floor(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_N", raising=False)
        monkeypatch.setenv("REPRO_SCALE", "10000000")
        assert BenchScale().synthetic_n(200_000) == 64
