"""Shared fixtures and hypothesis strategies for the test suite.

Dataset construction lives in :mod:`repro.datasets.fixtures` (shared
with the benchmark harness); this file only binds it to pytest and
declares the hypothesis strategies.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, settings, strategies as st

from repro.datasets.fixtures import make_points  # noqa: F401  (re-export)
from repro.datasets.synthetic import uniform

# ----------------------------------------------------------------------
# hypothesis profiles
# ----------------------------------------------------------------------
settings.register_profile(
    "default",
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "heavy",
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("default")


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
#: Integer-lattice coordinates: small domain on purpose, to generate the
#: degenerate configurations (duplicates, collinear and cocircular
#: points) that stress the strict-containment conventions.
lattice_coord = st.integers(min_value=0, max_value=64).map(float)

#: Continuous coordinates in the paper's domain.
continuous_coord = st.floats(
    min_value=0.0, max_value=10000.0, allow_nan=False, allow_infinity=False
)


def lattice_pointset(min_size: int = 0, max_size: int = 40):
    """Strategy: list of lattice coordinate pairs (duplicates allowed)."""
    return st.lists(
        st.tuples(lattice_coord, lattice_coord),
        min_size=min_size,
        max_size=max_size,
    )


def continuous_pointset(min_size: int = 0, max_size: int = 60):
    """Strategy: list of continuous coordinate pairs."""
    return st.lists(
        st.tuples(continuous_coord, continuous_coord),
        min_size=min_size,
        max_size=max_size,
    )


# ----------------------------------------------------------------------
# fixtures
# ----------------------------------------------------------------------
@pytest.fixture(scope="session", autouse=True)
def _hermetic_calibration(tmp_path_factory):
    """Point the calibration store at a session-private directory.

    Planned runs record observations and the planner loads any fitted
    profile from ``REPRO_CALIBRATION_DIR`` — left unset, the suite
    would write into (and, worse, *read* a previously fitted profile
    from) ``~/.cache/repro/calibration``, making plan-selection tests
    depend on the machine's calibration history."""
    import os

    path = str(tmp_path_factory.mktemp("calibration"))
    old = os.environ.get("REPRO_CALIBRATION_DIR")
    os.environ["REPRO_CALIBRATION_DIR"] = path
    yield
    if old is None:
        os.environ.pop("REPRO_CALIBRATION_DIR", None)
    else:
        os.environ["REPRO_CALIBRATION_DIR"] = old


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG per test."""
    return random.Random(1234)


@pytest.fixture
def uniform_points() -> list:
    """300 uniform points over the paper's domain (seed 1234)."""
    return uniform(300, seed=1234)
