"""Unit tests for the k-closest-pairs join."""

import itertools
import math

from repro.joins.closest_pairs import incremental_closest_pairs, k_closest_pairs
from repro.rtree.bulk import bulk_load


def brute_sorted_pairs(points_p, points_q):
    return sorted(
        (math.hypot(p.x - q.x, p.y - q.y), p.oid, q.oid)
        for p in points_p
        for q in points_q
    )


class TestKClosestPairs:
    def test_k_zero(self, uniform_points):
        tree = bulk_load(uniform_points)
        assert k_closest_pairs(tree, tree, 0) == []

    def test_top_k_matches_brute(self, uniform_points):
        points_p = uniform_points[:120]
        points_q = uniform_points[120:]
        tree_p = bulk_load(points_p)
        tree_q = bulk_load(points_q)
        for k in (1, 5, 40):
            got = k_closest_pairs(tree_p, tree_q, k)
            assert len(got) == k
            ref = brute_sorted_pairs(points_p, points_q)[:k]
            # Compare distances (ties may order differently).
            got_d = [d for d, _, _ in got]
            ref_d = [d for d, _, _ in ref]
            for a, b in zip(got_d, ref_d):
                assert math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)

    def test_k_exceeding_product_size(self):
        from repro.geometry.point import Point

        points_p = [Point(0, 0, 0), Point(1, 0, 1)]
        points_q = [Point(5, 5, 10)]
        got = k_closest_pairs(bulk_load(points_p), bulk_load(points_q), 100)
        assert len(got) == 2

    def test_empty_trees(self, uniform_points):
        tree = bulk_load(uniform_points)
        empty = bulk_load([])
        assert k_closest_pairs(tree, empty, 5) == []
        assert k_closest_pairs(empty, tree, 5) == []


class TestIncrementalClosestPairs:
    def test_ascending_distance(self, uniform_points):
        points_p = uniform_points[:80]
        points_q = uniform_points[80:160]
        tree_p = bulk_load(points_p)
        tree_q = bulk_load(points_q)
        dists = [
            d
            for d, _, _ in itertools.islice(
                incremental_closest_pairs(tree_p, tree_q), 200
            )
        ]
        assert dists == sorted(dists)

    def test_enumerates_full_product(self):
        from repro.geometry.point import Point

        points_p = [Point(i, 0, i) for i in range(6)]
        points_q = [Point(i, 3, 10 + i) for i in range(5)]
        tree_p = bulk_load(points_p)
        tree_q = bulk_load(points_q)
        all_pairs = list(incremental_closest_pairs(tree_p, tree_q))
        assert len(all_pairs) == 30
        assert {(p.oid, q.oid) for _, p, q in all_pairs} == {
            (p.oid, q.oid) for p in points_p for q in points_q
        }

    def test_lazy_consumption(self):
        # Certifying the first pair costs a small fraction of the node
        # reads needed to drain the whole generator.
        from repro.datasets.synthetic import uniform

        points_p = uniform(1000, seed=41)
        points_q = uniform(1000, seed=42, start_oid=5000)
        tree_p = bulk_load(points_p)
        tree_q = bulk_load(points_q)

        tree_p.reset_stats()
        tree_q.reset_stats()
        next(iter(incremental_closest_pairs(tree_p, tree_q)))
        first_cost = tree_p.node_accesses + tree_q.node_accesses

        tree_p.reset_stats()
        tree_q.reset_stats()
        for _ in incremental_closest_pairs(tree_p, tree_q):
            pass
        full_cost = tree_p.node_accesses + tree_q.node_accesses
        assert first_cost < full_cost / 5
