"""Unit tests for the ε-distance join."""

import math

import pytest
from hypothesis import given, settings

from repro.joins.epsilon import epsilon_join, epsilon_join_arrays
from repro.rtree.bulk import bulk_load

from tests.conftest import lattice_pointset, make_points


def brute_eps(points_p, points_q, eps):
    return {
        (p.oid, q.oid)
        for p in points_p
        for q in points_q
        if math.hypot(p.x - q.x, p.y - q.y) <= eps
    }


class TestRTreeEpsilonJoin:
    def test_negative_eps_rejected(self, uniform_points):
        tree = bulk_load(uniform_points)
        with pytest.raises(ValueError):
            epsilon_join(tree, tree, -1.0)

    def test_empty_tree(self, uniform_points):
        tree = bulk_load(uniform_points)
        empty = bulk_load([])
        assert epsilon_join(tree, empty, 100.0) == []
        assert epsilon_join(empty, tree, 100.0) == []

    def test_matches_brute(self, uniform_points):
        points_p = uniform_points[:150]
        points_q = uniform_points[150:]
        tree_p = bulk_load(points_p)
        tree_q = bulk_load(points_q)
        for eps in (0.0, 50.0, 300.0, 1500.0):
            got = {
                (p.oid, q.oid) for p, q in epsilon_join(tree_p, tree_q, eps)
            }
            assert got == brute_eps(points_p, points_q, eps), eps

    def test_different_tree_heights(self):
        from repro.datasets.synthetic import uniform

        small = uniform(5, seed=1)
        large = uniform(3000, seed=2, start_oid=10)
        tree_s = bulk_load(small)
        tree_l = bulk_load(large)
        got = {(p.oid, q.oid) for p, q in epsilon_join(tree_s, tree_l, 150.0)}
        assert got == brute_eps(small, large, 150.0)

    def test_eps_zero_finds_coincident_only(self):
        from repro.geometry.point import Point

        points_p = [Point(1, 1, 0), Point(2, 2, 1)]
        points_q = [Point(1, 1, 10), Point(3, 3, 11)]
        got = {
            (p.oid, q.oid)
            for p, q in epsilon_join(bulk_load(points_p), bulk_load(points_q), 0.0)
        }
        assert got == {(0, 10)}

    @given(
        lattice_pointset(min_size=1, max_size=25),
        lattice_pointset(min_size=1, max_size=25),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_matches_brute(self, coords_p, coords_q):
        points_p = make_points(coords_p)
        points_q = make_points(coords_q, start_oid=1000)
        tree_p = bulk_load(points_p, page_size=128)
        tree_q = bulk_load(points_q, page_size=128)
        for eps in (1.0, 5.0):
            got = {
                (p.oid, q.oid) for p, q in epsilon_join(tree_p, tree_q, eps)
            }
            assert got == brute_eps(points_p, points_q, eps)


class TestArrayEpsilonJoin:
    def test_matches_rtree_variant(self, uniform_points):
        points_p = uniform_points[:100]
        points_q = uniform_points[100:250]
        tree_p = bulk_load(points_p)
        tree_q = bulk_load(points_q)
        for eps in (100.0, 700.0):
            a = epsilon_join_arrays(points_p, points_q, eps)
            b = {(p.oid, q.oid) for p, q in epsilon_join(tree_p, tree_q, eps)}
            assert a == b

    def test_empty_input(self):
        assert epsilon_join_arrays([], [], 5.0) == set()

    def test_monotone_in_eps(self, uniform_points):
        points_p = uniform_points[:100]
        points_q = uniform_points[100:]
        prev: set = set()
        for eps in (10, 100, 400, 1000):
            cur = epsilon_join_arrays(points_p, points_q, eps)
            assert prev <= cur
            prev = cur
