"""Unit tests for the kNN join."""

from repro.joins.knn import knn_join, knn_join_prefixes
from repro.rtree.bulk import bulk_load


def brute_knn(points_p, points_q, k):
    out = set()
    for p in points_p:
        ranked = sorted(points_q, key=p.dist_sq_to)[:k]
        out.update((p.oid, q.oid) for q in ranked)
    return out


class TestKnnJoin:
    def test_k_zero(self, uniform_points):
        tree = bulk_load(uniform_points)
        assert knn_join(uniform_points, tree, 0) == []

    def test_result_size_is_k_times_p(self, uniform_points):
        points_p = uniform_points[:100]
        points_q = uniform_points[100:]
        tree_q = bulk_load(points_q)
        for k in (1, 3):
            assert len(knn_join(points_p, tree_q, k)) == k * len(points_p)

    def test_matches_brute(self, uniform_points):
        points_p = uniform_points[:80]
        points_q = uniform_points[80:200]
        tree_q = bulk_load(points_q)
        got = {(p.oid, q.oid) for p, q in knn_join(points_p, tree_q, 4)}
        assert got == brute_knn(points_p, points_q, 4)

    def test_asymmetric(self, uniform_points):
        # Paper Table 1: the kNN join is not symmetric.
        points_p = uniform_points[:60]
        points_q = uniform_points[60:120]
        tree_p = bulk_load(points_p)
        tree_q = bulk_load(points_q)
        forward = {(p.oid, q.oid) for p, q in knn_join(points_p, tree_q, 2)}
        backward = {
            (p.oid, q.oid) for q, p in knn_join(points_q, tree_p, 2)
        }
        assert forward != backward

    def test_k_larger_than_q(self):
        from repro.geometry.point import Point

        points_p = [Point(0, 0, 0)]
        points_q = [Point(1, 1, 10), Point(2, 2, 11)]
        tree_q = bulk_load(points_q)
        assert len(knn_join(points_p, tree_q, 99)) == 2


class TestKnnPrefixes:
    def test_prefixes_nested(self, uniform_points):
        points_p = uniform_points[:60]
        tree_q = bulk_load(uniform_points[60:])
        prefixes = knn_join_prefixes(points_p, tree_q, 5)
        for k in range(1, 5):
            assert prefixes[k] <= prefixes[k + 1]

    def test_prefix_matches_direct_join(self, uniform_points):
        points_p = uniform_points[:60]
        points_q = uniform_points[60:]
        tree_q = bulk_load(points_q)
        prefixes = knn_join_prefixes(points_p, tree_q, 4)
        for k in (1, 2, 4):
            direct = {(p.oid, q.oid) for p, q in knn_join(points_p, tree_q, k)}
            assert prefixes[k] == direct
