"""Tests for the common influence join and Voronoi cell construction."""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.brute import brute_force_rcj
from repro.datasets.synthetic import uniform
from repro.geometry.point import Point
from repro.geometry.polygon import box_polygon, polygon_area
from repro.geometry.rect import Rect
from repro.joins.common_influence import (
    common_influence_join,
    voronoi_cell,
    voronoi_cells,
)

from tests.conftest import make_points


def _keys(pairs):
    return {(p.oid, q.oid) for p, q in pairs}


def _nn(points, x, y):
    return min(points, key=lambda p: (p.x - x) ** 2 + (p.y - y) ** 2)


class TestVoronoiCell:
    def test_lone_point_keeps_whole_box(self):
        box = box_polygon(0, 0, 10, 10)
        cell = voronoi_cell(Point(5, 5, 0), [], box)
        assert polygon_area(cell) == 100.0

    def test_two_points_split_in_half(self):
        box = box_polygon(0, 0, 10, 10)
        cell = voronoi_cell(Point(2, 5, 0), [Point(8, 5, 1)], box)
        assert math.isclose(polygon_area(cell), 50.0)
        assert all(x <= 5.0 + 1e-9 for x, _y in cell)

    def test_coincident_competitor_ignored(self):
        box = box_polygon(0, 0, 10, 10)
        cell = voronoi_cell(Point(5, 5, 0), [Point(5, 5, 1)], box)
        assert polygon_area(cell) == 100.0

    def test_surrounded_point_has_small_cell(self):
        box = box_polygon(0, 0, 10, 10)
        ring = [
            Point(5 + 2 * math.cos(a), 5 + 2 * math.sin(a), i)
            for i, a in enumerate(
                [k * math.pi / 4 for k in range(8)]
            )
        ]
        cell = voronoi_cell(Point(5, 5, 99), ring, box)
        assert 0 < polygon_area(cell) < 10


class TestVoronoiCells:
    def test_cells_partition_the_box(self):
        points = uniform(60, seed=70)
        bounds = Rect(0, 0, 10000, 10000)
        cells = voronoi_cells(points, bounds)
        total = sum(polygon_area(c) for c in cells)
        assert math.isclose(total, 10000.0 * 10000.0, rel_tol=1e-6)

    def test_each_cell_contains_its_point(self):
        points = uniform(80, seed=71)
        bounds = Rect(0, 0, 10000, 10000)
        for p, cell in zip(points, voronoi_cells(points, bounds)):
            # The point is in its own cell: test via nearest-vertex
            # membership — clip the cell by nothing, just containment
            # through the bisector property: p is closer to itself than
            # to anyone, so sample the centroid side.
            assert cell, p
            from repro.geometry.polygon import polygon_centroid

            cx, cy = polygon_centroid(cell)
            assert _nn(points, cx, cy).oid == p.oid

    def test_delaunay_and_allpairs_agree(self):
        points = uniform(40, seed=72)
        bounds = Rect(0, 0, 10000, 10000)
        fast = voronoi_cells(points, bounds)
        box = box_polygon(0, 0, 10000, 10000)
        for i, p in enumerate(points):
            others = [z for j, z in enumerate(points) if j != i]
            exact = voronoi_cell(p, others, box)
            assert math.isclose(
                polygon_area(fast[i]), polygon_area(exact), rel_tol=1e-9, abs_tol=1e-6
            )

    def test_collinear_points_fall_back(self):
        points = [Point(i * 100.0, 5000.0, i) for i in range(10)]
        bounds = Rect(0, 0, 10000, 10000)
        cells = voronoi_cells(points, bounds)
        total = sum(polygon_area(c) for c in cells)
        assert math.isclose(total, 1e8, rel_tol=1e-6)

    def test_empty_input(self):
        assert voronoi_cells([]) == []


class TestCommonInfluenceJoin:
    def test_single_pair(self):
        got = common_influence_join([Point(2, 2, 0)], [Point(8, 8, 10)])
        assert _keys(got) == {(0, 10)}

    def test_empty_inputs(self):
        assert common_influence_join([], [Point(1, 1, 0)]) == []
        assert common_influence_join([Point(1, 1, 0)], []) == []

    def test_two_by_two_cross(self):
        # P splits space left/right, Q splits top/bottom: every cell
        # pair intersects in a quadrant.
        ps = [Point(2000, 5000, 0), Point(8000, 5000, 1)]
        qs = [Point(5000, 2000, 10), Point(5000, 8000, 11)]
        got = common_influence_join(ps, qs, bounds=Rect(0, 0, 10000, 10000))
        assert _keys(got) == {(0, 10), (0, 11), (1, 10), (1, 11)}

    def test_far_cells_do_not_join(self):
        # Three collinear P points vs Q points clustered at one end:
        # the far P cell must not reach the near Q cells.
        ps = [Point(1000, 5000, 0), Point(5000, 5000, 1), Point(9000, 5000, 2)]
        qs = [
            Point(800, 5000, 10),
            Point(1200, 5000, 11),
            Point(1000, 4000, 12),
            Point(1000, 6000, 13),
            Point(1100, 5100, 14),
        ]
        got = _keys(
            common_influence_join(ps, qs, bounds=Rect(0, 0, 10000, 10000))
        )
        # q10's cell is capped at x=1000 by the bisector with q11, so it
        # cannot reach p2's cell (x >= 7000)...
        assert (2, 10) not in got
        # ...while q11's cell is unbounded to the right and does: CIJ
        # pairs distant points when a cell is huge — one of the ways its
        # semantics differ from RCJ's ring constraint.
        assert (2, 11) in got

    def test_symmetry(self):
        ps = uniform(50, seed=73)
        qs = uniform(50, seed=74, start_oid=100)
        bounds = Rect(0, 0, 10000, 10000)
        ab = _keys(common_influence_join(ps, qs, bounds))
        ba = {(a, b) for b, a in _keys(common_influence_join(qs, ps, bounds))}
        assert ab == ba

    def test_sampled_nn_pairs_are_in_result(self):
        """Soundness: the (NN_P(x), NN_Q(x)) pair of any location x
        witnesses a cell intersection."""
        ps = uniform(60, seed=75)
        qs = uniform(60, seed=76, start_oid=100)
        got = _keys(common_influence_join(ps, qs, bounds=Rect(0, 0, 10000, 10000)))
        rng = random.Random(9)
        for _ in range(200):
            x, y = rng.uniform(0, 10000), rng.uniform(0, 10000)
            assert (_nn(ps, x, y).oid, _nn(qs, x, y).oid) in got

    def test_rcj_pairs_are_cij_pairs(self):
        """General position: an empty ring's centre has p and q as its
        nearest P/Q points, so RCJ ⊆ CIJ."""
        ps = uniform(80, seed=77)
        qs = uniform(80, seed=78, start_oid=200)
        cij = _keys(common_influence_join(ps, qs, bounds=Rect(0, 0, 10000, 10000)))
        rcj = {r.key() for r in brute_force_rcj(ps, qs)}
        assert rcj <= cij

    def test_cij_is_strict_superset_in_practice(self):
        ps = uniform(80, seed=79)
        qs = uniform(80, seed=80, start_oid=200)
        cij = _keys(common_influence_join(ps, qs, bounds=Rect(0, 0, 10000, 10000)))
        rcj = {r.key() for r in brute_force_rcj(ps, qs)}
        assert len(cij) > len(rcj)

    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_property_sampled_nn_pairs_small_sets(self, data):
        """On arbitrary small float pointsets the join still covers
        every sampled nearest-neighbour pair."""
        coord = st.floats(min_value=0.0, max_value=100.0)
        ps = make_points(
            data.draw(
                st.lists(st.tuples(coord, coord), min_size=1, max_size=12)
            )
        )
        qs = make_points(
            data.draw(
                st.lists(st.tuples(coord, coord), min_size=1, max_size=12)
            ),
            start_oid=100,
        )
        bounds = Rect(-1, -1, 101, 101)
        got = _keys(common_influence_join(ps, qs, bounds))
        rng = random.Random(0)
        for _ in range(30):
            x, y = rng.uniform(0, 100), rng.uniform(0, 100)
            assert (_nn(ps, x, y).oid, _nn(qs, x, y).oid) in got
