"""Tests for branch-and-bound skyline retrieval."""

from hypothesis import given, settings

from repro.datasets.synthetic import uniform
from repro.geometry.point import Point
from repro.queries import skyline
from repro.queries.skyline import skyline_brute
from repro.rtree.bulk import bulk_load
from repro.rtree.tree import RTree

from tests.conftest import lattice_pointset, make_points


class TestSkyline:
    def test_empty_tree(self):
        assert skyline(RTree()) == []

    def test_single_point(self):
        tree = RTree()
        tree.insert(Point(5, 5, 0))
        assert [p.oid for p in skyline(tree)] == [0]

    def test_dominated_point_excluded(self):
        tree = RTree()
        tree.insert(Point(1, 1, 0))
        tree.insert(Point(2, 2, 1))
        assert {p.oid for p in skyline(tree)} == {0}

    def test_incomparable_points_both_kept(self):
        tree = RTree()
        tree.insert(Point(1, 10, 0))
        tree.insert(Point(10, 1, 1))
        assert {p.oid for p in skyline(tree)} == {0, 1}

    def test_coincident_duplicates_all_kept(self):
        tree = RTree()
        tree.insert(Point(3, 3, 0))
        tree.insert(Point(3, 3, 1))
        assert {p.oid for p in skyline(tree)} == {0, 1}

    def test_same_x_different_y(self):
        tree = RTree()
        tree.insert(Point(3, 5, 0))
        tree.insert(Point(3, 4, 1))
        assert {p.oid for p in skyline(tree)} == {1}

    def test_staircase_all_on_skyline(self):
        points = [Point(i, 100 - i, i) for i in range(100)]
        tree = bulk_load(points)
        assert {p.oid for p in skyline(tree)} == set(range(100))

    def test_matches_brute_uniform(self):
        points = uniform(500, seed=40)
        tree = bulk_load(points)
        got = {p.oid for p in skyline(tree)}
        assert got == {p.oid for p in skyline_brute(points)}

    def test_output_sorted_by_l1_key(self):
        points = uniform(400, seed=41)
        tree = bulk_load(points)
        keys = [p.x + p.y for p in skyline(tree)]
        assert keys == sorted(keys)

    def test_io_pruning_reads_few_nodes(self):
        """BBS must not touch subtrees dominated by found skyline
        points: on uniform data that is almost the whole tree."""
        points = uniform(5000, seed=42)
        tree = bulk_load(points)
        tree.reset_stats()
        skyline(tree)
        total_nodes = tree.disk.num_pages
        assert tree.node_accesses < total_nodes / 2

    @given(lattice_pointset(min_size=0, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_property_matches_brute(self, coords):
        points = make_points(coords)
        tree = bulk_load(points, page_size=256)
        got = sorted(p.oid for p in skyline(tree))
        assert got == sorted(p.oid for p in skyline_brute(points))

    @given(lattice_pointset(min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_property_skyline_is_antichain(self, coords):
        from repro.queries.skyline import _dominates

        points = make_points(coords)
        tree = bulk_load(points, page_size=256)
        result = skyline(tree)
        for a in result:
            for b in result:
                assert not _dominates(a, b.x, b.y)
