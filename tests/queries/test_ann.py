"""Tests for aggregate nearest-neighbour search."""

import pytest
from hypothesis import given, settings

from repro.datasets.synthetic import uniform
from repro.geometry.point import Point
from repro.queries.ann import aggregate_nearest, aggregate_nearest_brute
from repro.rtree.bulk import bulk_load
from repro.rtree.tree import RTree

from tests.conftest import lattice_pointset, make_points


class TestAggregateNearest:
    def test_empty_tree(self):
        assert aggregate_nearest(RTree(), [Point(1, 1)]) == []

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            aggregate_nearest(RTree(), [])

    def test_unknown_aggregate_rejected(self):
        tree = bulk_load(uniform(10, seed=0))
        with pytest.raises(ValueError):
            aggregate_nearest(tree, [Point(1, 1)], agg="median")

    def test_k_zero(self):
        tree = bulk_load(uniform(10, seed=0))
        assert aggregate_nearest(tree, [Point(1, 1)], k=0) == []

    def test_single_query_point_is_plain_nn(self):
        points = uniform(300, seed=1)
        tree = bulk_load(points)
        q = Point(5000, 5000)
        ((d, best),) = aggregate_nearest(tree, [q], agg="max")
        expected = min(points, key=lambda p: p.dist_sq_to(q))
        assert best.oid == expected.oid
        assert d == pytest.approx(expected.dist_to(q))

    def test_minimax_between_two_points_prefers_midpointish(self):
        # Candidate sites on a line between the two group members: the
        # minimax winner is the one nearest the midpoint.
        sites = [Point(x, 0, i) for i, x in enumerate(range(0, 101, 10))]
        tree = bulk_load(sites)
        group = [Point(0, 0), Point(100, 0)]
        ((_d, best),) = aggregate_nearest(tree, group, agg="max")
        assert best.x == 50

    def test_sum_differs_from_max(self):
        # An off-centre cluster: sum favours the crowd, max the centre.
        sites = [Point(0, 0, 0), Point(55, 0, 1)]
        group = [Point(0, 0), Point(0, 10), Point(10, 0), Point(100, 0)]
        tree = bulk_load(sites)
        ((_d1, best_sum),) = aggregate_nearest(tree, group, agg="sum")
        ((_d2, best_max),) = aggregate_nearest(tree, group, agg="max")
        assert best_sum.oid == 0
        assert best_max.oid == 1

    @pytest.mark.parametrize("agg", ["max", "sum"])
    def test_matches_brute_uniform(self, agg):
        points = uniform(400, seed=2)
        tree = bulk_load(points)
        group = [Point(2000, 3000), Point(7000, 6000), Point(5000, 9000)]
        got = aggregate_nearest(tree, group, agg=agg, k=5)
        expected = aggregate_nearest_brute(points, group, agg=agg, k=5)
        assert [p.oid for _d, p in got] == [p.oid for _d, p in expected] or [
            d for d, _p in got
        ] == pytest.approx([d for d, _p in expected])

    def test_k_larger_than_tree(self):
        points = uniform(5, seed=3)
        tree = bulk_load(points)
        got = aggregate_nearest(tree, [Point(0, 0)], k=50)
        assert len(got) == 5

    def test_results_sorted(self):
        points = uniform(200, seed=4)
        tree = bulk_load(points)
        got = aggregate_nearest(
            tree, [Point(1000, 1000), Point(9000, 9000)], agg="sum", k=10
        )
        values = [d for d, _p in got]
        assert values == sorted(values)

    @pytest.mark.parametrize("agg", ["max", "sum"])
    @given(coords=lattice_pointset(min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_property_matches_brute(self, agg, coords):
        points = make_points(coords)
        tree = bulk_load(points, page_size=256)
        group = [Point(10, 10), Point(50, 30)]
        got = aggregate_nearest(tree, group, agg=agg, k=3)
        expected = aggregate_nearest_brute(points, group, agg=agg, k=3)
        assert [d for d, _p in got] == pytest.approx(
            [d for d, _p in expected]
        )

    def test_rcj_convenience_property(self):
        """The RCJ ring centre is the continuous minimax optimum for its
        endpoints; the discrete ANN over a fine site grid lands next to
        it."""
        from repro.core.brute import brute_force_rcj

        ps = [Point(2000, 5000, 0)]
        qs = [Point(4000, 5000, 0)]
        (pair,) = brute_force_rcj(ps, qs)
        cx, cy = pair.center
        sites = [
            Point(x, y, i)
            for i, (x, y) in enumerate(
                (x, y)
                for x in range(0, 10001, 250)
                for y in range(0, 10001, 250)
            )
        ]
        tree = bulk_load(sites)
        ((best_val, best),) = aggregate_nearest(
            tree, [ps[0], qs[0]], agg="max"
        )
        # The winning site is the grid point nearest the ring centre,
        # and its minimax value is within a grid step of the optimum.
        assert abs(best.x - cx) <= 125 and abs(best.y - cy) <= 125
        assert best_val <= pair.radius + 250
