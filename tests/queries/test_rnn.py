"""Tests for reverse nearest-neighbour search."""

from hypothesis import given, settings

from repro.datasets.synthetic import uniform
from repro.geometry.point import Point
from repro.queries import bichromatic_reverse_nearest, reverse_nearest
from repro.rtree.bulk import bulk_load
from repro.rtree.tree import RTree

from tests.conftest import lattice_pointset, make_points


def _mono_oracle(points, q, exclude_oid=None):
    """p is RNN of q iff no other point is strictly closer to p than q."""
    out = set()
    for p in points:
        if exclude_oid is not None and p.oid == exclude_oid:
            continue
        d_q = p.dist_sq_to(q)
        beaten = any(
            z.oid != p.oid
            and (exclude_oid is None or z.oid != exclude_oid)
            and p.dist_sq_to(z) < d_q
            for z in points
        )
        if not beaten:
            out.add(p.oid)
    return out


def _bi_oracle(objects, sites, q):
    """o adopts q iff no existing site is strictly closer to o."""
    return {
        o.oid
        for o in objects
        if not any(o.dist_sq_to(s) < o.dist_sq_to(q) for s in sites)
    }


class TestMonochromaticRNN:
    def test_empty_tree(self):
        assert reverse_nearest(RTree(), Point(5, 5)) == []

    def test_single_point_is_rnn(self):
        tree = RTree()
        tree.insert(Point(10, 10, 0))
        assert [p.oid for p in reverse_nearest(tree, Point(0, 0))] == [0]

    def test_two_points_far_query(self):
        # q far away: only the nearer point has q as its NN?  Neither —
        # each point's NN is the other, both closer than q.
        tree = RTree()
        tree.insert(Point(100, 100, 0))
        tree.insert(Point(101, 100, 1))
        assert reverse_nearest(tree, Point(5000, 5000)) == []

    def test_query_between_two_points(self):
        tree = RTree()
        tree.insert(Point(0, 0, 0))
        tree.insert(Point(10, 0, 1))
        got = {p.oid for p in reverse_nearest(tree, Point(5, 0))}
        assert got == {0, 1}

    def test_equidistant_tie_counts_for_query(self):
        # p at (0,0); q and z both at distance 5.  z is not *strictly*
        # closer, so p remains an RNN of q.
        tree = RTree()
        tree.insert(Point(0, 0, 0))
        tree.insert(Point(5, 0, 1))
        got = {p.oid for p in reverse_nearest(tree, Point(-5, 0))}
        assert 0 in got

    def test_matches_oracle_uniform(self):
        points = uniform(300, seed=20)
        tree = bulk_load(points)
        for q in (Point(5000, 5000), Point(0, 0), Point(9999, 123)):
            got = {p.oid for p in reverse_nearest(tree, q)}
            assert got == _mono_oracle(points, q)

    def test_exclude_oid_self_query(self):
        points = uniform(200, seed=21)
        tree = bulk_load(points)
        q = points[7]
        got = {p.oid for p in reverse_nearest(tree, q, exclude_oid=q.oid)}
        assert got == _mono_oracle(points, q, exclude_oid=q.oid)
        assert q.oid not in got

    def test_results_sorted_by_distance(self):
        points = uniform(250, seed=22)
        tree = bulk_load(points)
        q = Point(4000, 6000)
        got = reverse_nearest(tree, q)
        dists = [p.dist_to(q) for p in got]
        assert dists == sorted(dists)

    @given(lattice_pointset(min_size=0, max_size=25))
    @settings(max_examples=40, deadline=None)
    def test_property_matches_oracle(self, coords):
        points = make_points(coords)
        tree = bulk_load(points, page_size=256)
        q = Point(32, 32)
        got = {p.oid for p in reverse_nearest(tree, q)}
        assert got == _mono_oracle(points, q)

    @given(lattice_pointset(min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_property_rnn_of_member_query(self, coords):
        points = make_points(coords)
        tree = bulk_load(points, page_size=256)
        q = points[0]
        got = {p.oid for p in reverse_nearest(tree, q, exclude_oid=q.oid)}
        assert got == _mono_oracle(points, q, exclude_oid=q.oid)


class TestBichromaticRNN:
    def test_empty_objects(self):
        sites = bulk_load(uniform(50, seed=23))
        assert bichromatic_reverse_nearest(RTree(), sites, Point(5, 5)) == []

    def test_no_sites_everything_adopts(self):
        objects = uniform(100, seed=24)
        tree = bulk_load(objects)
        got = bichromatic_reverse_nearest(tree, RTree(), Point(5000, 5000))
        assert {o.oid for o in got} == {o.oid for o in objects}

    def test_dominating_site_blocks_all(self):
        # A site coincident with every object: nothing adopts a distant q.
        objects = [Point(100, 100, i) for i in range(10)]
        sites = [Point(100, 100, 0)]
        got = bichromatic_reverse_nearest(
            bulk_load(objects), bulk_load(sites), Point(9000, 9000)
        )
        assert got == []

    def test_matches_oracle_uniform(self):
        objects = uniform(250, seed=25)
        sites = uniform(40, seed=26, start_oid=1000)
        to, ts = bulk_load(objects), bulk_load(sites)
        for q in (Point(5000, 5000), Point(1234, 8765), Point(0, 0)):
            got = {o.oid for o in bichromatic_reverse_nearest(to, ts, q)}
            assert got == _bi_oracle(objects, sites, q)

    def test_results_sorted_by_distance(self):
        objects = uniform(200, seed=27)
        sites = uniform(20, seed=28, start_oid=1000)
        q = Point(3000, 3000)
        got = bichromatic_reverse_nearest(bulk_load(objects), bulk_load(sites), q)
        dists = [o.dist_to(q) for o in got]
        assert dists == sorted(dists)

    @given(
        lattice_pointset(min_size=0, max_size=20),
        lattice_pointset(min_size=0, max_size=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_matches_oracle(self, obj_coords, site_coords):
        objects = make_points(obj_coords)
        sites = make_points(site_coords, start_oid=1000)
        to = bulk_load(objects, page_size=256)
        ts = bulk_load(sites, page_size=256)
        q = Point(32, 32)
        got = {o.oid for o in bichromatic_reverse_nearest(to, ts, q)}
        assert got == _bi_oracle(objects, sites, q)

    def test_agrees_with_influence_counting(self):
        """Adopting objects of an existing site = that site's influence
        set from the influence module."""
        from repro.influence.queries import influence_counts

        objects = uniform(150, seed=29)
        sites = uniform(10, seed=30, start_oid=500)
        to, ts_all = bulk_load(objects), bulk_load(sites)
        counts = influence_counts(sites, objects)
        # Re-derive each site's influence with bRNN, excluding the site
        # itself from the competitor tree.
        for s in sites:
            others = [z for z in sites if z.oid != s.oid]
            got = bichromatic_reverse_nearest(to, bulk_load(others), s)
            # bRNN counts ties for q; influence counting may break ties
            # differently, so compare as a superset relation.
            assert len(got) >= counts[s.oid]
