"""All RCJ algorithms agree on the adversarial families.

The main equivalence suite drives the algorithms on uniform and lattice
data; these tests pin the degenerate regimes (ties everywhere,
quadratic results, giant empty rings) where implementations typically
diverge.
"""

import pytest

from repro.core.bij import bij
from repro.core.brute import brute_force_rcj
from repro.core.gabriel import gabriel_rcj
from repro.core.inj import inj
from repro.datasets.worstcase import (
    cocircular,
    coincident,
    collinear,
    lattice,
    split_alternating,
    two_clusters,
)
from repro.rtree.bulk import bulk_load


def _all_algorithms(ps, qs):
    tree_p = bulk_load(ps, name="TP")
    tree_q = bulk_load(qs, name="TQ")
    return {
        "brute": {r.key() for r in brute_force_rcj(ps, qs)},
        "gabriel": {r.key() for r in gabriel_rcj(ps, qs)},
        "inj": inj(tree_q, tree_p).pair_keys(),
        "bij": bij(tree_q, tree_p).pair_keys(),
        "obj": bij(tree_q, tree_p, symmetric=True).pair_keys(),
    }


@pytest.mark.parametrize(
    "family",
    [
        pytest.param(lambda: collinear(60), id="collinear"),
        pytest.param(lambda: collinear(60, jitter=3.0, seed=1), id="jittered-line"),
        pytest.param(lambda: cocircular(48), id="cocircular"),
        pytest.param(lambda: lattice(64), id="lattice"),
        pytest.param(lambda: two_clusters(80, seed=2), id="two-clusters"),
        pytest.param(lambda: coincident(20), id="coincident"),
    ],
)
def test_all_algorithms_agree(family):
    ps, qs = split_alternating(family())
    results = _all_algorithms(ps, qs)
    reference = results.pop("brute")
    for name, got in results.items():
        assert got == reference, name


def test_all_algorithms_agree_small_pages():
    """Deep trees (tiny pages) over the lattice: maximal stress on the
    MBR-level pruning shortcuts."""
    ps, qs = split_alternating(lattice(49))
    tree_p = bulk_load(ps, page_size=192, name="TP")
    tree_q = bulk_load(qs, page_size=192, name="TQ")
    expected = {r.key() for r in brute_force_rcj(ps, qs)}
    assert bij(tree_q, tree_p, symmetric=True).pair_keys() == expected
    assert inj(tree_q, tree_p).pair_keys() == expected


def test_self_join_on_lattice():
    from repro.core.selfjoin import self_rcj

    pts = lattice(36)
    pairs = self_rcj(pts, algorithm="obj")
    oracle = self_rcj(pts, algorithm="brute")
    assert {p.key() for p in pairs} == {p.key() for p in oracle}
