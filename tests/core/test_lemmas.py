"""Property tests of the paper's pruning lemmas.

These tests check the *mathematical statements* of Lemmas 1, 2, 3 and 5
directly against the brute-force definition of the ring constraint, on
adversarial lattice configurations.
"""

import math

from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.geometry.ring import Ring
from repro.geometry.halfplane import HalfPlane
from repro.geometry.point import Point
from repro.geometry.rect import Rect

lattice = st.integers(min_value=0, max_value=32).map(float)
point_st = st.tuples(lattice, lattice)


class TestLemma1:
    """Any p' strictly inside Ψ−(q, p) cannot form an RCJ pair with q,
    because p lies strictly inside the circle of <p', q>."""

    @given(point_st, point_st, point_st)
    @settings(suppress_health_check=[HealthCheck.filter_too_much])
    def test_pruned_pair_is_invalid(self, qc, pc, oc):
        q, p, other = Point(*qc, 1), Point(*pc, 2), Point(*oc, 3)
        assume(not q.same_location(p))
        hp = HalfPlane.psi_minus(q, p)
        assume(hp.contains_point(other.x, other.y))
        circle = Ring.of_pair(other, q)
        # p strictly inside => pair <other, q> invalid w.r.t. {p}.
        assert circle.contains_point(p.x, p.y)


class TestLemma2:
    """Points in Ψ+(q, p) are *independent* of p: p never lies strictly
    inside their pair circle, so the pruning region is maximal."""

    @given(point_st, point_st, point_st)
    @settings(suppress_health_check=[HealthCheck.filter_too_much])
    def test_unpruned_pair_unaffected_by_p(self, qc, pc, oc):
        q, p, other = Point(*qc, 1), Point(*pc, 2), Point(*oc, 3)
        assume(not q.same_location(p))
        hp = HalfPlane.psi_minus(q, p)
        assume(not hp.contains_point(other.x, other.y))  # other in Ψ+ or on L
        circle = Ring.of_pair(other, q)
        assert not circle.contains_point(p.x, p.y)


class TestLemma3:
    """An MBR entirely inside Ψ−(q, p) contains no joinable point."""

    @given(
        point_st,
        point_st,
        st.lists(
            st.tuples(st.floats(0.5, 8.0), st.floats(-8.0, 8.0)),
            min_size=1,
            max_size=8,
        ),
    )
    @settings(suppress_health_check=[HealthCheck.filter_too_much])
    def test_every_point_of_contained_mbr_pruned(self, qc, pc, offsets):
        q, p = Point(*qc, 1), Point(*pc, 2)
        assume(not q.same_location(p))
        # Construct points strictly beyond L(q, p): p + t*n + s*perp
        # with t > 0 (their MBR usually lands inside Ψ−, which is what
        # the lemma is about).
        norm = math.hypot(p.x - q.x, p.y - q.y)
        nx, ny = (p.x - q.x) / norm, (p.y - q.y) / norm
        pts = [
            Point(p.x + t * nx - s * ny, p.y + t * ny + s * nx, 10 + i)
            for i, (t, s) in enumerate(offsets)
        ]
        mbr = Rect.from_points(pts)
        hp = HalfPlane.psi_minus(q, p)
        assume(hp.contains_rect(mbr))
        for other in pts:
            # Containment of the MBR implies containment of each point,
            # hence Lemma 1 applies pointwise.
            assert hp.contains_point(other.x, other.y)
            assert Ring.of_pair(other, q).contains_point(p.x, p.y)


class TestLemma5:
    """The symmetric rule: a point q' of Q prunes P points exactly like
    a discovered P point does."""

    @given(point_st, point_st, point_st)
    @settings(suppress_health_check=[HealthCheck.filter_too_much])
    def test_symmetric_pruning_sound(self, qc, q2c, pc):
        q, q_prime, p = Point(*qc, 1), Point(*q2c, 2), Point(*pc, 3)
        assume(not q.same_location(q_prime))
        hp = HalfPlane.psi_minus(q, q_prime)
        assume(hp.contains_point(p.x, p.y))
        circle = Ring.of_pair(p, q)
        # q' strictly inside the circle of <p, q>: pair invalid.
        assert circle.contains_point(q_prime.x, q_prime.y)


class TestPrunedPointsAreFarther:
    """Geometric sanity: a point prunable via Ψ−(q, p) is farther from
    q than p is — so discovering points in ascending distance (the
    filter's INN order) maximises pruning power."""

    @given(point_st, point_st, point_st)
    @settings(max_examples=100, suppress_health_check=[HealthCheck.filter_too_much])
    def test_ordering(self, qc, pc, oc):
        q, p, other = Point(*qc), Point(*pc), Point(*oc)
        assume(not q.same_location(p))
        hp = HalfPlane.psi_minus(q, p)
        assume(hp.contains_point(other.x, other.y))
        assert q.dist_sq_to(other) > q.dist_sq_to(p)
